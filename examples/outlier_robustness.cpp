// The paper's mining headline (Figure 4(b)) as a runnable scenario: a table
// with six planted regions plus 1% outliers. Sweeping p shows fractional
// norms recover the planted clustering while L1/L2 are thrown off by the
// outliers.
//
//   ./build/examples/outlier_robustness

#include <cstdio>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "data/six_region.h"
#include "eval/confusion.h"
#include "table/tiling.h"

int main() {
  using namespace tabsketch;  // NOLINT: example brevity

  data::SixRegionOptions options;
  options.rows = 256;
  options.cols = 512;
  options.outlier_fraction = 0.01;
  auto dataset = data::GenerateSixRegion(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  // 8x8 tiles give ~2000 tiles, the paper's Figure 4(b) setup.
  auto grid = table::TileGrid::Create(&dataset->table, 8, 8);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  const std::vector<int> truth = data::GroundTruthForTiles(*dataset, *grid);

  std::printf(
      "six planted regions, %zu tiles, 1%% outliers; sketched k-means "
      "(k = %d)\n\n",
      grid->num_tiles(), static_cast<int>(data::kNumRegions));
  std::printf("%6s %22s\n", "p", "tiles correctly placed");

  for (double p : {0.25, 0.5, 0.8, 1.0, 1.5, 2.0}) {
    auto backend = cluster::SketchBackend::Create(
        &*grid, {.p = p, .k = 256, .seed = 5},
        cluster::SketchMode::kPrecomputed);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    // Best of 5 restarts: Lloyd's lands in seed-dependent local minima;
    // restarting is nearly free when every distance costs O(k).
    auto result = cluster::RunKMeansBestOfRestarts(
        &*backend,
        {.k = data::kNumRegions, .max_iterations = 60, .seed = 97,
         .seeding = cluster::SeedingMethod::kPlusPlus},
        /*restarts=*/5);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const double accuracy = eval::BestMatchAgreement(
        truth, result->assignment, data::kNumRegions);
    std::printf("%6.2f %21.1f%%\n", p, 100.0 * accuracy);
  }

  std::printf(
      "\nWhy: a single outlier contributes |d|^p to the distance; at p = 2\n"
      "that square dominates every comparison, while p < 1 damps it. Too\n"
      "small a p degenerates toward Hamming distance (everything differs),\n"
      "so the sweet spot is a fractional p around 0.25-0.8 (paper 4.5).\n");
  return 0;
}
