// Streaming sketch maintenance: a tabular store accumulates call counts in
// place (cell += delta), and each tile's sketch is kept current in O(k) per
// update — without ever re-reading the tile. This is the turnstile-stream
// usage of stable sketches (Indyk, FOCS 2000) that the paper's machinery
// rests on, enabled here by counter-based random-matrix access.
//
// The demo maintains an updatable sketch per tile while a random update
// stream mutates the table, then verifies that (a) the maintained sketches
// equal freshly computed ones bit-for-bit, and (b) distance queries against
// the maintained sketches track the mutated data.
//
//   ./build/examples/streaming_updates

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "core/updatable_sketch.h"
#include "data/call_volume.h"
#include "rng/xoshiro256.h"
#include "table/tiling.h"
#include "util/timer.h"

int main() {
  using namespace tabsketch;  // NOLINT: example brevity

  data::CallVolumeOptions options;
  options.num_stations = 128;
  options.bins_per_day = 144;
  auto volume = data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  table::Matrix& table = *volume;
  auto grid = table::TileGrid::Create(&table, 16, 16);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }

  core::SketchParams params{.p = 1.0, .k = 128, .seed = 9};
  auto sketcher = core::Sketcher::Create(params);
  auto estimator = core::DistanceEstimator::Create(params);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // One updatable sketch per tile.
  std::vector<core::UpdatableSketch> live;
  live.reserve(grid->num_tiles());
  for (size_t t = 0; t < grid->num_tiles(); ++t) {
    auto sketch = core::UpdatableSketch::FromView(*sketcher, grid->Tile(t));
    if (!sketch.ok()) {
      std::fprintf(stderr, "%s\n", sketch.status().ToString().c_str());
      return 1;
    }
    live.push_back(std::move(sketch).value());
  }
  std::printf("%zu tiles under maintenance (k = %zu per sketch)\n",
              live.size(), params.k);

  // Random update stream: 50,000 cell increments.
  constexpr size_t kUpdates = 50000;
  rng::Xoshiro256 gen(31);
  util::WallTimer timer;
  for (size_t u = 0; u < kUpdates; ++u) {
    const size_t tile = gen.NextBounded(grid->num_tiles());
    const size_t r = gen.NextBounded(grid->tile_rows());
    const size_t c = gen.NextBounded(grid->tile_cols());
    const double delta = gen.NextDouble() * 20.0 - 5.0;
    live[tile].ApplyUpdate(r, c, delta);
    table.At(grid->TileOriginRow(tile) + r,
             grid->TileOriginCol(tile) + c) += delta;
  }
  const double seconds = timer.ElapsedSeconds();
  std::printf("%zu point updates absorbed in %.2fs (%.0f ns/update)\n",
              kUpdates, seconds, 1e9 * seconds / kUpdates);

  // (a) Maintained sketches equal recomputed sketches.
  double worst_residual = 0.0;
  for (size_t t = 0; t < grid->num_tiles(); ++t) {
    const core::Sketch fresh = sketcher->SketchOf(grid->Tile(t));
    for (size_t i = 0; i < params.k; ++i) {
      worst_residual = std::max(
          worst_residual,
          std::abs(live[t].sketch().values[i] - fresh.values[i]));
    }
  }
  std::printf("max |maintained - recomputed| sketch component: %.3g\n",
              worst_residual);

  // (b) Distance queries against maintained sketches track the data.
  const double exact =
      core::LpDistance(grid->Tile(0), grid->Tile(17), params.p);
  const double approx =
      estimator->Estimate(live[0].sketch(), live[17].sketch());
  std::printf("tile 0 vs tile 17: exact %.0f, maintained-sketch estimate "
              "%.0f (ratio %.3f)\n",
              exact, approx, approx / exact);

  std::printf(
      "\nEach update touched k = %zu sketch components and regenerated the\n"
      "needed random-matrix entries on the fly; the data tile itself was\n"
      "never re-read. A nightly re-sketch is unnecessary — the residual\n"
      "above is floating-point accumulation only.\n",
      params.k);
  return 0;
}
