// The paper's second motivating application: router traffic indexed by
// destination and time — "which IP subnet traffic distributions over time
// intervals are similar?" This example recovers each subnet's temporal
// behavior class (steady / diurnal / bursty) by:
//   1. tiling the table one-subnet-per-tile,
//   2. mean-normalizing each tile (table/transforms.h) so that heavy-tailed
//      volume differences between subnets don't mask the *shape* of their
//      traffic,
//   3. sketching the transformed tiles,
//   4. agglomerative hierarchical clustering (average linkage) on sketched
//      fractional-norm (p = 0.5) distances — fractional p damps the flash
//      events, exactly the paper's outlier story — cut at 3 clusters.
//
//   ./build/examples/ip_subnet_profiles

#include <cstdio>
#include <vector>

#include "cluster/hierarchy.h"
#include "cluster/sketch_backend.h"
#include "data/ip_traffic.h"
#include "eval/confusion.h"
#include "table/tiling.h"
#include "table/transforms.h"

int main() {
  using namespace tabsketch;  // NOLINT: example brevity

  data::IpTrafficOptions options;
  options.num_hosts = 1024;
  options.hosts_per_subnet = 32;
  options.num_bins = 288;
  options.flash_events = 6.0;
  options.noise_sigma = 0.15;
  auto traffic = data::GenerateIpTraffic(options);
  if (!traffic.ok()) {
    std::fprintf(stderr, "%s\n", traffic.status().ToString().c_str());
    return 1;
  }
  const size_t num_subnets = traffic->profile_of_subnet.size();
  std::printf("traffic table: %zu hosts x %zu bins, %zu subnets\n",
              traffic->table.rows(), traffic->table.cols(), num_subnets);

  // Ground truth: profile class per subnet tile.
  std::vector<int> truth(num_subnets);
  for (size_t s = 0; s < num_subnets; ++s) {
    truth[s] = static_cast<int>(traffic->profile_of_subnet[s]);
  }

  for (table::TileTransform transform :
       {table::TileTransform::kIdentity, table::TileTransform::kUnitMean}) {
    auto transformed = table::TransformTiles(
        traffic->table, options.hosts_per_subnet, options.num_bins,
        transform);
    if (!transformed.ok()) {
      std::fprintf(stderr, "%s\n", transformed.status().ToString().c_str());
      return 1;
    }
    auto grid = table::TileGrid::Create(&*transformed,
                                        options.hosts_per_subnet,
                                        options.num_bins);
    if (!grid.ok()) {
      std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
      return 1;
    }
    auto backend = cluster::SketchBackend::Create(
        &*grid, {.p = 0.5, .k = 1024, .seed = 24},
        cluster::SketchMode::kPrecomputed);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    auto dendrogram =
        cluster::AgglomerativeCluster(&*backend, cluster::Linkage::kAverage);
    if (!dendrogram.ok()) {
      std::fprintf(stderr, "%s\n", dendrogram.status().ToString().c_str());
      return 1;
    }
    auto cut = dendrogram->CutAtK(3);
    if (!cut.ok()) {
      std::fprintf(stderr, "%s\n", cut.status().ToString().c_str());
      return 1;
    }
    const double accuracy = eval::BestMatchAgreement(truth, *cut, 3);
    std::printf(
        "  %-12s transform: %5.1f%% of subnets grouped by true behavior\n",
        table::TileTransformName(transform), 100.0 * accuracy);
  }

  std::printf(
      "\nWhy the transform matters: per-host rates are Pareto-distributed,\n"
      "so raw distances cluster subnets by *volume*; dividing each tile by\n"
      "its mean first makes the clustering see the temporal *shape*\n"
      "(steady vs diurnal vs bursty), which is the question being asked.\n"
      "Fractional p = 0.5 damps the flash-event outliers, and the narrow\n"
      "(~1.2x) within/cross-class gap calls for k = 1024 sketches — see\n"
      "bench/ablation_sketch_size for the accuracy-vs-k tradeoff.\n");
  return 0;
}
