// Clustering a synthetic national call-volume table with sketch-accelerated
// k-means, and rendering the clustering the way the paper's Figure 5 does:
// stations on one axis, hours on the other, one glyph per cluster.
//
// Demonstrates the paper's observation that p acts as a "slider": p = 2.0
// shows full detail (metros, suburbs), while p = 0.25 mutes everything but
// the most unusual regions.
//
//   ./build/examples/call_volume_clustering

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "data/call_volume.h"
#include "table/tiling.h"

namespace {

using tabsketch::cluster::KMeansOptions;
using tabsketch::cluster::RunKMeans;
using tabsketch::cluster::SketchBackend;
using tabsketch::cluster::SketchMode;

/// Renders the tile grid as text: rows = station groups, cols = hours of the
/// day. The largest cluster prints as ' ' (the paper uses blank for the
/// dominant low-volume cluster); others get letters.
void Render(const tabsketch::table::TileGrid& grid,
            const std::vector<int>& assignment, size_t k) {
  std::vector<size_t> counts(k, 0);
  for (int cluster : assignment) ++counts[cluster];
  size_t largest = 0;
  for (size_t c = 1; c < k; ++c) {
    if (counts[c] > counts[largest]) largest = c;
  }
  const std::string glyphs = "#@%*+=-:oxsvn^";

  // Column header: hour ruler.
  std::printf("      ");
  for (size_t gc = 0; gc < grid.grid_cols(); ++gc) {
    std::printf("%c", gc % 6 == 0 ? '|' : '.');
  }
  std::printf("\n");
  for (size_t gr = 0; gr < grid.grid_rows(); ++gr) {
    std::printf("%4zu  ", gr);
    for (size_t gc = 0; gc < grid.grid_cols(); ++gc) {
      const int cluster = assignment[gr * grid.grid_cols() + gc];
      if (static_cast<size_t>(cluster) == largest) {
        std::printf(" ");
      } else {
        std::printf("%c", glyphs[static_cast<size_t>(cluster) %
                                 glyphs.size()]);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // One synthetic day: 512 station groups x 144 ten-minute bins.
  tabsketch::data::CallVolumeOptions data_options;
  data_options.num_stations = 512;
  data_options.bins_per_day = 144;
  auto volume = tabsketch::data::GenerateCallVolume(data_options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }

  // Tiles: 16 neighboring station groups x 1 hour (6 bins).
  auto grid = tabsketch::table::TileGrid::Create(&*volume, 16, 6);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("table: %zux%zu doubles, %zu tiles of %zux%zu\n",
              volume->rows(), volume->cols(), grid->num_tiles(),
              grid->tile_rows(), grid->tile_cols());

  constexpr size_t kClusters = 8;
  for (double p : {2.0, 0.25}) {
    auto backend = SketchBackend::Create(
        &*grid, {.p = p, .k = 128, .seed = 7}, SketchMode::kPrecomputed);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    auto result = RunKMeans(
        &*backend, KMeansOptions{.k = kClusters, .max_iterations = 40,
                                 .seed = 11});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\n=== p = %.2f   (%zu iterations, %.2fs, %zu distance evals) ===\n",
        p, result->iterations, result->seconds,
        result->distance_evaluations);
    std::printf("rows = station groups (East at top), cols = hours 0-23\n");
    Render(*grid, result->assignment, kClusters);
  }

  std::printf(
      "\nReading the pictures: at p = 2.0 many regions separate from the\n"
      "background (population centers and their flanks); at p = 0.25 only\n"
      "the most distinctive regions remain, the paper's 'slider' effect.\n");
  return 0;
}
