// Representative trends in a long time series (the use case of the paper's
// predecessor, Indyk-Koudas-Muthukrishnan VLDB 2000): among all windows of a
// day's length in one station's multi-week series, find the *relaxation
// period* — the window whose total distance to all other windows is
// smallest, i.e. the most "typical" day — using O(k)-per-comparison
// sketches, and cross-check against the exact computation.
//
//   ./build/examples/time_series_trends

#include <cstdio>
#include <limits>
#include <span>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/series_sketch.h"
#include "data/call_volume.h"
#include "util/timer.h"

int main() {
  using namespace tabsketch;  // NOLINT: example brevity

  // Twelve weeks of one station group's call volume.
  data::CallVolumeOptions options;
  options.num_stations = 32;
  options.bins_per_day = 144;
  options.num_days = 84;
  auto volume = data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  // One busy station's series.
  std::vector<double> series(volume->Row(16).begin(), volume->Row(16).end());
  const size_t window = 7 * options.bins_per_day;  // week-length windows
  const size_t stride = 72;                         // every 12 hours

  core::SketchParams params{.p = 1.0, .k = 128, .seed = 404};
  auto sketcher = core::SeriesSketcher::Create(params);
  auto estimator = core::DistanceEstimator::Create(params);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // All-positions sketches via 1-D FFT (Theorem 3 in one dimension).
  util::WallTimer prep_timer;
  auto field_or = sketcher->SketchAllPositions(
      series, window, core::SketchAlgorithm::kFft);
  if (!field_or.ok()) {
    std::fprintf(stderr, "sketching failed: %s\n",
                 field_or.status().message().c_str());
    return 1;
  }
  const core::SeriesSketchField& field = *field_or;
  std::printf("series length %zu, %zu window positions, sketched in %.2fs\n",
              series.size(), field.positions(), prep_timer.ElapsedSeconds());

  std::vector<size_t> anchors;
  for (size_t pos = 0; pos + window <= series.size(); pos += stride) {
    anchors.push_back(pos);
  }

  // Representative window by sketched distances.
  util::WallTimer sketch_timer;
  size_t best_sketch = 0;
  double best_sketch_total = std::numeric_limits<double>::infinity();
  std::vector<double> scratch;
  for (size_t a : anchors) {
    const core::Sketch sa = field.SketchAt(a);
    double total = 0.0;
    for (size_t b : anchors) {
      if (a == b) continue;
      const core::Sketch sb = field.SketchAt(b);
      total += estimator->EstimateWithScratch(sa.values, sb.values, &scratch);
    }
    if (total < best_sketch_total) {
      best_sketch_total = total;
      best_sketch = a;
    }
  }
  const double sketch_seconds = sketch_timer.ElapsedSeconds();

  // Exact reference.
  util::WallTimer exact_timer;
  size_t best_exact = 0;
  double best_exact_total = std::numeric_limits<double>::infinity();
  auto span = std::span<const double>(series);
  for (size_t a : anchors) {
    double total = 0.0;
    for (size_t b : anchors) {
      if (a == b) continue;
      total += core::LpDistance(span.subspan(a, window),
                                span.subspan(b, window), params.p);
    }
    if (total < best_exact_total) {
      best_exact_total = total;
      best_exact = a;
    }
  }
  const double exact_seconds = exact_timer.ElapsedSeconds();

  // How good is the sketch's pick, measured exactly? (Several windows of a
  // periodic series are near-ties for "most typical", so compare totals,
  // not indices — the same yardstick the paper uses for clusterings.)
  double sketch_pick_exact_total = 0.0;
  for (size_t b : anchors) {
    if (b == best_sketch) continue;
    sketch_pick_exact_total += core::LpDistance(
        span.subspan(best_sketch, window), span.subspan(b, window), params.p);
  }

  std::printf(
      "\nrepresentative week-window (%zu anchors, all-pairs comparison):\n"
      "  sketched pick: start bin %5zu (day %4.1f)  found in %.3fs\n"
      "  exact pick:    start bin %5zu (day %4.1f)  found in %.3fs\n"
      "  sketched pick's exact total is %.1f%% of the optimal total\n",
      anchors.size(), best_sketch,
      static_cast<double>(best_sketch) / 144.0, sketch_seconds, best_exact,
      static_cast<double>(best_exact) / 144.0, exact_seconds,
      100.0 * best_exact_total / sketch_pick_exact_total);
  std::printf(
      "\nSeveral windows are near-ties for 'most typical', so the indices\n"
      "may differ while the totals agree to within a few percent. Each\n"
      "sketch comparison touches k = %zu doubles instead of %zu.\n",
      params.k, window);
  return 0;
}
