// Similarity search over tiles with the filter-and-refine pattern: sketches
// select a candidate set cheaply, exact Lp distances re-rank it. Reports
// recall against exhaustive exact search and the cost of each stage —
// "which geographic regions have similar usage distribution" (the paper's
// opening question) as a query workload.
//
//   ./build/examples/similarity_search

#include <cstdio>
#include <set>
#include <vector>

#include "core/estimator.h"
#include "core/knn.h"
#include "core/ondemand.h"
#include "core/sketcher.h"
#include "data/call_volume.h"
#include "table/tiling.h"
#include "util/timer.h"

int main() {
  using namespace tabsketch;  // NOLINT: example brevity

  data::CallVolumeOptions options;
  options.num_stations = 1024;
  options.bins_per_day = 144;
  options.num_days = 8;
  auto volume = data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  // Tiles: 32 stations x 2 days (large objects are where sketches pay).
  auto grid = table::TileGrid::Create(&*volume, 32, 288);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }

  core::SketchParams params{.p = 1.0, .k = 128, .seed = 2718};
  auto sketcher = core::Sketcher::Create(params);
  auto estimator = core::DistanceEstimator::Create(params);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  util::WallTimer prep_timer;
  const std::vector<core::Sketch> sketches =
      core::SketchAllTiles(*sketcher, *grid);
  std::printf("%zu tiles of %zu values, sketched (k = %zu) in %.2fs\n\n",
              grid->num_tiles(), grid->tile_size(), params.k,
              prep_timer.ElapsedSeconds());

  constexpr size_t kNeighbors = 10;
  std::printf("%12s %10s %12s %12s\n", "candidates", "recall@10",
              "refine_s", "exact_s");

  for (size_t candidates : {10u, 20u, 40u, 80u}) {
    size_t hits = 0;
    size_t total = 0;
    double refine_seconds = 0.0;
    double exact_seconds = 0.0;
    for (size_t query = 0; query < grid->num_tiles(); query += 3) {
      util::WallTimer exact_timer;
      const auto exact =
          core::TopKExact(*grid, params.p, query, kNeighbors);
      exact_seconds += exact_timer.ElapsedSeconds();

      util::WallTimer refine_timer;
      auto refined = core::TopKFilterRefine(*grid, sketches, *estimator,
                                            query, kNeighbors, candidates);
      refine_seconds += refine_timer.ElapsedSeconds();
      if (!refined.ok()) {
        std::fprintf(stderr, "%s\n", refined.status().ToString().c_str());
        return 1;
      }
      std::set<size_t> truth;
      for (const core::Neighbor& neighbor : exact) {
        truth.insert(neighbor.index);
      }
      for (const core::Neighbor& neighbor : *refined) {
        if (truth.count(neighbor.index) > 0) ++hits;
      }
      total += exact.size();
    }
    std::printf("%12zu %9.1f%% %12.3f %12.3f\n", candidates,
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(total),
                refine_seconds, exact_seconds);
  }

  std::printf(
      "\nReading the table: a candidate buffer a few times k recovers\n"
      "nearly all true neighbors while touching full tiles only for the\n"
      "candidates — the sketch scan does the rest at O(k) per tile.\n");
  return 0;
}
