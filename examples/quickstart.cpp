// Quickstart: sketch two subtables and compare their estimated Lp distance
// with the exact one, for classic and fractional p.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace {

tabsketch::table::Matrix RandomTable(size_t rows, size_t cols,
                                     uint64_t seed) {
  tabsketch::rng::Xoshiro256 gen(seed);
  tabsketch::table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 100.0;
  return out;
}

}  // namespace

int main() {
  using tabsketch::core::DistanceEstimator;
  using tabsketch::core::LpDistance;
  using tabsketch::core::Sketcher;
  using tabsketch::core::SketchParams;

  // Two 64x64 "subtables" (anything tabular: call volumes, router traffic).
  const auto x = RandomTable(64, 64, /*seed=*/1);
  const auto y = RandomTable(64, 64, /*seed=*/2);

  std::printf("Sketch-based Lp distance estimation (k = 256 per sketch)\n");
  std::printf("%6s %16s %16s %10s\n", "p", "exact", "estimated", "ratio");

  for (double p : {0.5, 1.0, 1.5, 2.0}) {
    // A sketch family is defined by (p, k, seed); equal parameters produce
    // comparable sketches everywhere.
    SketchParams params{.p = p, .k = 256, .seed = 42};
    auto sketcher = Sketcher::Create(params);
    auto estimator = DistanceEstimator::Create(params);
    if (!sketcher.ok() || !estimator.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   sketcher.ok() ? estimator.status().ToString().c_str()
                                 : sketcher.status().ToString().c_str());
      return 1;
    }

    // Constant-size sketches: 256 doubles each, regardless of table size.
    const auto sketch_x = sketcher->SketchOf(x.View());
    const auto sketch_y = sketcher->SketchOf(y.View());

    const double exact = LpDistance(x.View(), y.View(), p);
    const double approx = estimator->Estimate(sketch_x, sketch_y);
    std::printf("%6.2f %16.2f %16.2f %10.3f\n", p, exact, approx,
                approx / exact);
  }

  std::printf(
      "\nSketches are linear: sketch(mean of tiles) = mean of sketches,\n"
      "which is what makes sketch-space k-means centroids exact.\n");
  return 0;
}
