// Precomputing a dyadic sketch pool over a table, then answering distance
// queries between *arbitrary* rectangles in O(k) each — the paper's
// Theorem 6 workflow (canonical dyadic sizes + compound sketches).
//
//   ./build/examples/sketch_pool_queries

#include <cstdio>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_pool.h"
#include "data/call_volume.h"
#include "util/timer.h"

int main() {
  using namespace tabsketch;  // NOLINT: example brevity

  // Two days of call volume for 256 station groups.
  data::CallVolumeOptions data_options;
  data_options.num_stations = 256;
  data_options.bins_per_day = 144;
  data_options.num_days = 2;
  auto volume = data::GenerateCallVolume(data_options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }

  core::SketchParams params{.p = 1.0, .k = 64, .seed = 2024};
  core::PoolOptions pool_options;
  pool_options.log2_min_rows = 4;  // canonical heights 16..256
  pool_options.log2_min_cols = 4;  // canonical widths  16..256
  pool_options.log2_max_rows = 7;
  pool_options.log2_max_cols = 7;

  util::WallTimer timer;
  auto pool = core::SketchPool::Build(*volume, params, pool_options);
  if (!pool.ok()) {
    std::fprintf(stderr, "%s\n", pool.status().ToString().c_str());
    return 1;
  }
  std::printf("pool over %zux%zu table built in %.2fs; canonical sizes:",
              volume->rows(), volume->cols(), timer.ElapsedSeconds());
  for (const auto& [h, w] : pool->CanonicalSizes()) {
    std::printf(" %zux%zu", h, w);
  }
  std::printf("\n\n");

  auto estimator = core::DistanceEstimator::Create(params);
  if (!estimator.ok()) {
    std::fprintf(stderr, "%s\n", estimator.status().ToString().c_str());
    return 1;
  }

  // Compare the same geographic band across the two days, and two different
  // bands within one day — with a non-dyadic rectangle (40 stations x 90
  // bins) that no canonical size matches exactly.
  struct Query {
    const char* label;
    size_t r1, c1, r2, c2;
  };
  const size_t rows = 40;
  const size_t cols = 90;
  const Query queries[] = {
      {"same band, day 1 vs day 2", 30, 20, 30, 20 + 144},
      {"band A vs band B, day 1", 30, 20, 170, 20},
      {"band A vs itself (sanity)", 30, 20, 30, 20},
  };

  std::printf("%-28s %14s %14s %8s\n", "query (40x90 rectangles)",
              "exact L1", "pool O(k)", "ratio");
  for (const Query& q : queries) {
    auto sketch1 = pool->Query(q.r1, q.c1, rows, cols);
    auto sketch2 = pool->Query(q.r2, q.c2, rows, cols);
    if (!sketch1.ok() || !sketch2.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    const double approx = estimator->Estimate(*sketch1, *sketch2);
    const double exact =
        core::LpDistance(volume->Window(q.r1, q.c1, rows, cols),
                         volume->Window(q.r2, q.c2, rows, cols), params.p);
    std::printf("%-28s %14.0f %14.0f %8s\n", q.label, exact, approx,
                exact > 0 ? std::to_string(approx / exact).substr(0, 5).c_str()
                          : "-");
  }

  std::printf(
      "\nCompound estimates carry up to a 4x inflation for non-dyadic\n"
      "rectangles (Theorem 5) but equal-dimension queries stay mutually\n"
      "comparable: note the near/far ordering above is preserved.\n");
  return 0;
}
