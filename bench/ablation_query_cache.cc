// Ablation of the query engine's sketch-cache policy on a repeated-query
// batch: the same mixed distance/knn workload runs uncached (every lookup
// re-sketches its tile), through the unbounded on-demand cache, and through
// the byte-budgeted LRU cache at two budgets — one sized for the whole tile
// set and one tight enough to churn. Every policy must produce byte-identical
// answers (sketches are deterministic; retention only moves compute), so the
// only thing that varies is time and residency. Rows land in
// BENCH_query.json; CI asserts that the sized LRU beats the uncached path
// while peak residency stays under its budget.
//
// usage: ablation_query_cache [--metrics-json=FILE] [--trace-json=FILE]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "core/sketch_cache.h"
#include "core/sketcher.h"
#include "data/six_region.h"
#include "serve/query_engine.h"
#include "table/tiling.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::core::LruSketchCache;
using tabsketch::core::TileSketchCache;
using tabsketch::serve::QueryRequest;

struct Row {
  std::string policy;
  double seconds = 0;
  size_t computed = 0;
  size_t hits = 0;
  size_t evictions = 0;
  size_t peak_bytes = 0;
  size_t budget_bytes = 0;  // 0 for unbounded policies
};

/// A serving-shaped workload: a handful of hot query tiles asked for
/// neighbors over and over, plus repeated point distances between hot pairs.
/// Every knn sweeps the whole corpus, so any retention at all collapses the
/// sketch-compute count from requests*tiles to ~tiles.
std::vector<QueryRequest> RepeatedBatch(size_t tiles) {
  std::vector<QueryRequest> batch;
  const size_t hot = 8;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t q = 0; q < hot; ++q) {
      batch.push_back(QueryRequest{QueryRequest::Kind::kKnn, q % tiles, 0, 8});
    }
    for (size_t i = 0; i < 64; ++i) {
      batch.push_back(QueryRequest{QueryRequest::Kind::kDistance, i % hot,
                                   (i + 7) % tiles, 0});
    }
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);

  tabsketch::data::SixRegionOptions data_options;
  data_options.rows = 256;
  data_options.cols = 256;
  data_options.seed = 42;
  auto dataset = tabsketch::data::GenerateSixRegion(data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto grid =
      tabsketch::table::TileGrid::Create(&dataset->table, 32, 32);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  const tabsketch::core::SketchParams params{.p = 1.0, .k = 128, .seed = 42};
  auto sketcher = tabsketch::core::Sketcher::Create(params);
  auto estimator = tabsketch::core::DistanceEstimator::Create(params);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "sketch family setup failed\n");
    return 1;
  }

  const size_t tiles = grid->num_tiles();
  const std::vector<QueryRequest> batch = RepeatedBatch(tiles);
  const size_t entry_bytes = LruSketchCache::EntryBytes(params.k);
  const size_t sized_budget = entry_bytes * tiles;   // holds every tile
  const size_t tight_budget = entry_bytes * (tiles / 4);  // forced churn

  std::printf("=== Ablation: query-engine sketch-cache policy ===\n");
  std::printf("%zu tiles, k=%zu, %zu requests, entry=%zuB\n", tiles, params.k,
              batch.size(), entry_bytes);
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "policy", "seconds",
              "computed", "hits", "evictions", "peak_bytes");

  std::vector<Row> rows;
  std::vector<std::string> reference;
  bool identical_output = true;
  const auto run = [&](const std::string& policy,
                       std::unique_ptr<TileSketchCache> cache,
                       size_t budget) {
    tabsketch::serve::QueryEngine engine(&*grid, cache.get(), &*estimator,
                                         {.threads = 1});
    tabsketch::util::WallTimer timer;
    auto results = engine.Run(batch);
    const double seconds = timer.ElapsedSeconds();
    if (!results.ok()) {
      std::fprintf(stderr, "%s: %s\n", policy.c_str(),
                   results.status().ToString().c_str());
      std::exit(1);
    }
    if (reference.empty()) {
      reference = *results;
    } else if (*results != reference) {
      identical_output = false;
    }
    Row row;
    row.policy = policy;
    row.seconds = seconds;
    row.computed = cache->computed();
    row.hits = cache->hits();
    row.budget_bytes = budget;
    if (const auto* lru = dynamic_cast<const LruSketchCache*>(cache.get())) {
      row.evictions = lru->evictions();
      row.peak_bytes = lru->peak_bytes();
    }
    rows.push_back(row);
    std::printf("%-10s %10.4f %10zu %10zu %10zu %12zu\n", policy.c_str(),
                row.seconds, row.computed, row.hits, row.evictions,
                row.peak_bytes);
  };

  run("uncached",
      std::make_unique<tabsketch::core::UncachedSketchSource>(&*sketcher,
                                                              &*grid),
      0);
  run("ondemand",
      std::make_unique<tabsketch::core::OnDemandSketchCache>(&*sketcher,
                                                             &*grid),
      0);
  LruSketchCache::Options sized;
  sized.capacity_bytes = sized_budget;
  run("lru", std::make_unique<LruSketchCache>(&*sketcher, &*grid, sized),
      sized_budget);
  LruSketchCache::Options tight;
  tight.capacity_bytes = tight_budget;
  run("lru-tight",
      std::make_unique<LruSketchCache>(&*sketcher, &*grid, tight),
      tight_budget);

  std::printf("identical output across policies: %s\n",
              identical_output ? "yes" : "NO");

  const char* json_path = "BENCH_query.json";
  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"ablation_query_cache\",\n"
               "  \"tiles\": %zu,\n"
               "  \"sketch_k\": %zu,\n"
               "  \"requests\": %zu,\n"
               "  \"entry_bytes\": %zu,\n"
               "  \"identical_output\": %s,\n"
               "  \"results\": [\n",
               tiles, params.k, batch.size(), entry_bytes,
               identical_output ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(json,
                 "    {\"policy\": \"%s\", \"seconds\": %.6f, "
                 "\"computed\": %zu, \"hits\": %zu, \"evictions\": %zu, "
                 "\"peak_bytes\": %zu, \"budget_bytes\": %zu}%s\n",
                 row.policy.c_str(), row.seconds, row.computed, row.hits,
                 row.evictions, row.peak_bytes, row.budget_bytes,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("results -> %s\n", json_path);
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
