// Micro-benchmark of the quantized code tier (ISSUE-7): on a 1024x1024
// table tiled 32x32 (1024 tiles, k=64, p=1) it measures
//
//   1. per-pair scan throughput of the int8/int16 code kernels against the
//      full double-sketch estimator — the headline claim is that the int8
//      code scan beats the double scan by >= 3x in pairs/s (it also moves
//      8x fewer bytes, reported as effective GB/s);
//   2. recall of the true sketch-space top-k inside the prefilter's
//      candidate set as the slack is scaled by {0, 0.5, 1.0} — at the full
//      guaranteed slack recall must be exactly 1.0 (that is the
//      byte-identity bound of DESIGN.md §13, asserted here);
//   3. end-to-end knn batches through serve::QueryEngine under a tight LRU
//      sketch budget, --quant=off vs --quant=int8, asserting byte-identical
//      answers.
//
// Rows land in BENCH_quant.json; a failed assertion exits non-zero so CI
// can gate on it.
//
// usage: micro_quantcodes [--metrics-json=FILE] [--trace-json=FILE]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/code_kernels.h"
#include "core/estimator.h"
#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "core/quantized_sketch.h"
#include "core/sketcher.h"
#include "data/six_region.h"
#include "serve/query_engine.h"
#include "table/tiling.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::LruSketchCache;
using tabsketch::core::QuantizedCodePool;
using tabsketch::core::QuantKind;
using tabsketch::serve::QueryRequest;

constexpr size_t kQueries = 64;       // query tiles per scan timing rep
constexpr size_t kNeighbors = 10;     // top-k for the recall sweep
constexpr double kMinSpeedup = 3.0;   // int8 pairs/s vs double pairs/s

struct ScanRow {
  std::string tier;
  double ns_per_pair = 0;
  double gbps = 0;          // effective operand bytes moved per second
  double speedup = 1.0;     // vs the double-sketch scan
};

struct RecallRow {
  std::string tier;
  double slack_multiplier = 0;
  double recall = 0;         // true top-k found among kept candidates
  double kept_fraction = 0;  // candidates kept / corpus
};

/// Times `body(pair_index)` over `pairs` pairs, repeating until the clock
/// has at least ~0.2s of work, and returns ns per pair.
template <typename Body>
double TimePairs(size_t pairs, const Body& body) {
  size_t reps = 1;
  for (;;) {
    tabsketch::util::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      for (size_t i = 0; i < pairs; ++i) body(i);
    }
    const double seconds = timer.ElapsedSeconds();
    if (seconds >= 0.2 || reps >= 1u << 12) {
      return seconds * 1e9 / (static_cast<double>(reps) *
                              static_cast<double>(pairs));
    }
    reps *= 4;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);

  tabsketch::data::SixRegionOptions data_options;
  data_options.rows = 1024;
  data_options.cols = 1024;
  data_options.seed = 42;
  auto dataset = tabsketch::data::GenerateSixRegion(data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto grid = tabsketch::table::TileGrid::Create(&dataset->table, 32, 32);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  const tabsketch::core::SketchParams params{.p = 1.0, .k = 64, .seed = 42};
  auto sketcher = tabsketch::core::Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "sketch family setup failed\n");
    return 1;
  }
  const size_t tiles = grid->num_tiles();

  // Materialize every tile sketch once; scans below are pure reads.
  tabsketch::core::OnDemandSketchCache warm(&*sketcher, &*grid);
  std::vector<std::shared_ptr<const tabsketch::core::Sketch>> sketches(tiles);
  for (size_t i = 0; i < tiles; ++i) sketches[i] = warm.Get(i);

  auto pool8 = QuantizedCodePool::Build(&warm, QuantKind::kInt8, params,
                                        grid->tile_rows(), grid->tile_cols());
  auto pool16 = QuantizedCodePool::Build(&warm, QuantKind::kInt16, params,
                                         grid->tile_rows(), grid->tile_cols());
  if (!pool8.ok() || !pool16.ok()) {
    std::fprintf(stderr, "code pool build failed\n");
    return 1;
  }

  std::printf("=== Micro-benchmark: quantized code scans ===\n");
  std::printf("%zu tiles (%zux%zu table, 32x32 tiles), k=%zu, p=%.0f\n",
              tiles, data_options.rows, data_options.cols, params.k,
              params.p);

  // --- 1. per-pair scan throughput: query tiles x whole corpus ---------
  const size_t pairs = kQueries * tiles;
  const bool l2 = false;  // p=1 serves through the median estimator
  std::vector<double> est_scratch;
  std::vector<double> sink(97);

  const double double_ns = TimePairs(pairs, [&](size_t i) {
    const size_t q = i / tiles;
    const size_t t = i % tiles;
    sink[i % sink.size()] = estimator->EstimateWithScratch(
        sketches[q]->values, sketches[t]->values, &est_scratch);
  });
  tabsketch::core::kernels::CodeScratch scratch;
  const double int8_ns = TimePairs(pairs, [&](size_t i) {
    sink[i % sink.size()] =
        pool8->CodeEstimate(i / tiles, i % tiles, l2, &scratch);
  });
  const double int16_ns = TimePairs(pairs, [&](size_t i) {
    sink[i % sink.size()] =
        pool16->CodeEstimate(i / tiles, i % tiles, l2, &scratch);
  });

  const auto scan_row = [&](const std::string& tier, double ns,
                            size_t operand_bytes) {
    ScanRow row;
    row.tier = tier;
    row.ns_per_pair = ns;
    row.gbps = static_cast<double>(2 * params.k * operand_bytes) / ns;
    row.speedup = double_ns / ns;
    return row;
  };
  std::vector<ScanRow> scans = {
      scan_row("double", double_ns, sizeof(double)),
      scan_row("int8", int8_ns, 1),
      scan_row("int16", int16_ns, 2),
  };
  std::printf("%-8s %14s %10s %10s\n", "tier", "ns/pair", "GB/s", "speedup");
  for (const ScanRow& row : scans) {
    std::printf("%-8s %14.1f %10.2f %9.2fx\n", row.tier.c_str(),
                row.ns_per_pair, row.gbps, row.speedup);
  }

  bool failed = false;
  const double int8_speedup = scans[1].speedup;
  if (int8_speedup < kMinSpeedup) {
    failed = true;
    std::fprintf(stderr, "FAIL: int8 code scan %.2fx vs double, needs %.1fx\n",
                 int8_speedup, kMinSpeedup);
  }

  // --- 2. recall of true top-k vs slack multiplier ---------------------
  // The knn prefilter keeps tile i iff its code distance is within
  // 2*slack of the k-th smallest code distance; scaling that slack by
  // m < 1 shows how much of the guarantee margin the data actually needs.
  std::vector<RecallRow> recalls;
  const auto sweep = [&](const QuantizedCodePool& pool,
                         const std::string& tier) {
    const double slack = pool.Slack(*estimator);
    const double inv_scale = 1.0 / estimator->scale();
    for (const double multiplier : {0.0, 0.5, 1.0}) {
      size_t found = 0, wanted = 0, kept_total = 0;
      for (size_t q = 0; q < kQueries; ++q) {
        // True sketch-space top-k (excluding the query itself).
        std::vector<std::pair<double, size_t>> exact;
        exact.reserve(tiles - 1);
        for (size_t t = 0; t < tiles; ++t) {
          if (t == q) continue;
          exact.emplace_back(estimator->EstimateWithScratch(
                                 sketches[q]->values, sketches[t]->values,
                                 &est_scratch),
                             t);
        }
        std::partial_sort(exact.begin(), exact.begin() + kNeighbors,
                          exact.end());
        // Code distances and the want-th smallest as the filter threshold.
        std::vector<double> code(tiles);
        std::vector<double> order;
        order.reserve(tiles - 1);
        for (size_t t = 0; t < tiles; ++t) {
          code[t] = pool.CodeEstimate(q, t, l2, &scratch) * inv_scale;
          if (t != q) order.push_back(code[t]);
        }
        std::nth_element(order.begin(), order.begin() + (kNeighbors - 1),
                         order.end());
        const double threshold =
            order[kNeighbors - 1] + 2.0 * slack * multiplier;
        size_t kept = 0;
        for (size_t t = 0; t < tiles; ++t) {
          if (t != q && !(code[t] > threshold)) ++kept;
        }
        kept_total += kept;
        for (size_t j = 0; j < kNeighbors; ++j) {
          ++wanted;
          if (!(code[exact[j].second] > threshold)) ++found;
        }
      }
      RecallRow row;
      row.tier = tier;
      row.slack_multiplier = multiplier;
      row.recall = static_cast<double>(found) / static_cast<double>(wanted);
      row.kept_fraction = static_cast<double>(kept_total) /
                          static_cast<double>(kQueries * (tiles - 1));
      recalls.push_back(row);
      std::printf("recall %-6s slack x%.1f: %.4f (kept %.1f%% of corpus)\n",
                  tier.c_str(), multiplier, row.recall,
                  row.kept_fraction * 100.0);
      if (multiplier == 1.0 && row.recall != 1.0) {
        failed = true;
        std::fprintf(stderr,
                     "FAIL: %s recall %.4f at full slack — the guaranteed "
                     "bound is violated\n",
                     tier.c_str(), row.recall);
      }
    }
  };
  sweep(*pool8, "int8");
  sweep(*pool16, "int16");

  // --- 3. end-to-end knn under a tight LRU budget ----------------------
  std::vector<QueryRequest> batch;
  for (size_t q = 0; q < 128; ++q) {
    batch.push_back(QueryRequest{QueryRequest::Kind::kKnn,
                                 (q * 37) % tiles, 0, kNeighbors});
  }
  const size_t budget =
      LruSketchCache::EntryBytes(params.k) * (tiles / 4);  // forced churn
  const auto serve = [&](const QuantizedCodePool* codes, double* seconds) {
    LruSketchCache::Options options;
    options.capacity_bytes = budget;
    LruSketchCache cache(&*sketcher, &*grid, options);
    tabsketch::serve::QueryEngineOptions engine_options;
    engine_options.threads = 1;
    engine_options.quant = codes ? codes->kind() : QuantKind::kOff;
    tabsketch::serve::QueryEngine engine(&*grid, &cache, &*estimator,
                                         engine_options, codes);
    tabsketch::util::WallTimer timer;
    auto results = engine.Run(batch);
    *seconds = timer.ElapsedSeconds();
    if (!results.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   results.status().ToString().c_str());
      std::exit(1);
    }
    return *results;
  };
  double off_seconds = 0, int8_seconds = 0;
  const auto off_answers = serve(nullptr, &off_seconds);
  const auto int8_answers = serve(&*pool8, &int8_seconds);
  const bool identical_output = off_answers == int8_answers;
  std::printf("e2e knn (%zu requests, lru budget %zuB): off %.4fs, "
              "int8 %.4fs, identical output: %s\n",
              batch.size(), budget, off_seconds, int8_seconds,
              identical_output ? "yes" : "NO");
  if (!identical_output) {
    failed = true;
    std::fprintf(stderr, "FAIL: --quant=int8 answers differ from off\n");
  }

  const char* json_path = "BENCH_quant.json";
  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"micro_quantcodes\",\n"
               "  \"tiles\": %zu,\n"
               "  \"sketch_k\": %zu,\n"
               "  \"p\": %.1f,\n"
               "  \"min_int8_speedup\": %.1f,\n"
               "  \"identical_output\": %s,\n"
               "  \"scan\": [\n",
               tiles, params.k, params.p, kMinSpeedup,
               identical_output ? "true" : "false");
  for (size_t i = 0; i < scans.size(); ++i) {
    std::fprintf(json,
                 "    {\"tier\": \"%s\", \"ns_per_pair\": %.1f, "
                 "\"gbps\": %.3f, \"speedup_vs_double\": %.3f}%s\n",
                 scans[i].tier.c_str(), scans[i].ns_per_pair, scans[i].gbps,
                 scans[i].speedup, i + 1 < scans.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"recall\": [\n");
  for (size_t i = 0; i < recalls.size(); ++i) {
    std::fprintf(json,
                 "    {\"tier\": \"%s\", \"slack_multiplier\": %.1f, "
                 "\"recall\": %.4f, \"kept_fraction\": %.4f}%s\n",
                 recalls[i].tier.c_str(), recalls[i].slack_multiplier,
                 recalls[i].recall, recalls[i].kept_fraction,
                 i + 1 < recalls.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"e2e\": [\n"
               "    {\"quant\": \"off\", \"seconds\": %.4f},\n"
               "    {\"quant\": \"int8\", \"seconds\": %.4f}\n"
               "  ]\n}\n",
               off_seconds, int8_seconds);
  std::fclose(json);
  std::printf("results -> %s\n", json_path);
  if (!tabsketch::util::FlushObservability(observability)) return 1;
  return failed ? 1 : 0;
}
