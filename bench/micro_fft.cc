// Micro-benchmark of the FFT engine: 1-D and 2-D transform throughput plus
// valid-mode correlate latency per kernel — single-kernel Correlate vs the
// real-pair-packed CorrelatePair — across transform sizes. Writes the rows
// to BENCH_fft.json so future FFT changes have a trajectory to compare
// against (twiddle tables, blocked 2-D passes, pair packing, ...).
//
// usage: micro_fft [size_list] [--metrics-json=FILE]
//   default sizes: 256,512,1024,2048

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fft/complex_fft.h"
#include "fft/correlate.h"
#include "fft/fft2d.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::fft::ComplexGrid;
using tabsketch::fft::CorrelationPlan;
using tabsketch::table::Matrix;

std::vector<size_t> ParseSizeList(const std::string& text) {
  std::vector<size_t> out;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    out.push_back(static_cast<size_t>(
        std::strtoull(text.substr(begin, end - begin).c_str(), nullptr, 10)));
    begin = end + 1;
  }
  return out;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  tabsketch::rng::Xoshiro256 gen(seed);
  Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 2.0 - 1.0;
  return out;
}

struct Row {
  size_t n;
  double fft1d_us;        // per 1-D transform of length n
  double fft2d_ms;        // per 2-D transform of an n x n grid
  double correlate_ms;    // per kernel, single-kernel Correlate
  double pair_ms;         // per kernel, CorrelatePair (2 kernels per call)
};

// Tracked pair-speedup baselines per transform size, refreshed on current
// hardware. Historical note: the n=2048 entry used to pin a real-pair
// packing cliff (2.9x at 256 decaying to ~1.07x at 2048, the padded grid
// falling out of LLC); measured speedups now sit near 2x across the sweep,
// so the old values were stale in both directions — 256 was unreachable and
// 2048 masked any regression up to 2x. The assertion below keeps future
// drops visible against these measured values.
struct SpeedupBaseline {
  size_t n;
  double pair_speedup;
};
const SpeedupBaseline kPairSpeedupBaselines[] = {
    {256, 1.942}, {512, 1.809}, {1024, 1.965}, {2048, 2.177}};

// Wall-clock noise on shared runners is real; only flag a regression when
// the measured speedup drops below 60% of the recorded baseline, and call
// out a baseline refresh when it exceeds 150% (e.g. after the retiling
// lands).
constexpr double kRegressTolerance = 0.6;
constexpr double kImproveThreshold = 1.5;

double BaselineFor(size_t n) {
  for (const auto& entry : kPairSpeedupBaselines) {
    if (entry.n == n) return entry.pair_speedup;
  }
  return 0.0;  // unknown size: no baseline, no assertion
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  const std::vector<size_t> sizes =
      argc > 1 ? ParseSizeList(argv[1])
               : std::vector<size_t>{256, 512, 1024, 2048};

  std::printf("=== Micro-benchmark: FFT engine ===\n");
  std::printf("%6s %12s %12s %16s %16s %10s\n", "n", "fft1d_us", "fft2d_ms",
              "corr_ms/kern", "pair_ms/kern", "pair_gain");

  std::vector<Row> rows;
  for (size_t n : sizes) {
    Row row{};
    row.n = n;
    tabsketch::rng::Xoshiro256 gen(n);

    {
      // 1-D: forward/inverse round trips keep the signal bounded.
      std::vector<std::complex<double>> line(n);
      for (auto& value : line) {
        value = {gen.NextDouble() - 0.5, gen.NextDouble() - 0.5};
      }
      const size_t reps = (1u << 22) / n + 1;
      tabsketch::fft::Forward(line);  // warm the twiddle cache
      tabsketch::fft::Inverse(line);
      tabsketch::util::WallTimer timer;
      for (size_t r = 0; r < reps; ++r) {
        tabsketch::fft::Forward(line);
        tabsketch::fft::Inverse(line);
      }
      row.fft1d_us =
          timer.ElapsedSeconds() * 1e6 / (2.0 * static_cast<double>(reps));
    }

    {
      ComplexGrid grid(n, n);
      for (auto& value : grid.values()) {
        value = {gen.NextDouble() - 0.5, gen.NextDouble() - 0.5};
      }
      const size_t reps = (1u << 26) / (n * n) + 1;
      tabsketch::fft::Forward2D(&grid);
      tabsketch::fft::Inverse2D(&grid);
      tabsketch::util::WallTimer timer;
      for (size_t r = 0; r < reps; ++r) {
        tabsketch::fft::Forward2D(&grid);
        tabsketch::fft::Inverse2D(&grid);
      }
      row.fft2d_ms =
          timer.ElapsedSeconds() * 1e3 / (2.0 * static_cast<double>(reps));
    }

    {
      // Correlate at the pool build's shape: data n x n, kernels n/4 x n/4
      // (a middle rung of the dyadic ladder).
      const Matrix data = RandomMatrix(n, n, 17 * n + 1);
      const size_t kernel_side = n >= 4 ? n / 4 : 1;
      const Matrix kernel_a = RandomMatrix(kernel_side, kernel_side, 29);
      const Matrix kernel_b = RandomMatrix(kernel_side, kernel_side, 31);
      const CorrelationPlan plan(data);
      const size_t reps = (1u << 24) / (n * n) + 4;

      (void)plan.Correlate(kernel_a);  // warm per-thread workspaces
      tabsketch::util::WallTimer single;
      for (size_t r = 0; r < reps; ++r) {
        (void)plan.Correlate(kernel_a);
        (void)plan.Correlate(kernel_b);
      }
      row.correlate_ms =
          single.ElapsedSeconds() * 1e3 / (2.0 * static_cast<double>(reps));

      tabsketch::util::WallTimer paired;
      for (size_t r = 0; r < reps; ++r) {
        (void)plan.CorrelatePair(kernel_a, kernel_b);
      }
      row.pair_ms =
          paired.ElapsedSeconds() * 1e3 / (2.0 * static_cast<double>(reps));
    }

    rows.push_back(row);
    std::printf("%6zu %12.2f %12.3f %16.3f %16.3f %9.2fx\n", row.n,
                row.fft1d_us, row.fft2d_ms, row.correlate_ms, row.pair_ms,
                row.correlate_ms / row.pair_ms);
  }

  // Assert each measured pair speedup against its tracked baseline.
  bool regressed = false;
  std::vector<const char*> statuses(rows.size(), "untracked");
  for (size_t i = 0; i < rows.size(); ++i) {
    const double baseline = BaselineFor(rows[i].n);
    if (baseline <= 0.0) continue;
    const double speedup = rows[i].correlate_ms / rows[i].pair_ms;
    if (speedup < baseline * kRegressTolerance) {
      statuses[i] = "regressed";
      regressed = true;
      std::fprintf(stderr,
                   "FAIL: n=%zu pair_speedup %.3f below %.0f%% of baseline "
                   "%.3f\n",
                   rows[i].n, speedup, kRegressTolerance * 100.0, baseline);
    } else if (speedup > baseline * kImproveThreshold) {
      statuses[i] = "improved-update-baseline";
      std::printf("note: n=%zu pair_speedup %.3f beats baseline %.3f by "
                  ">%.0f%%; refresh kPairSpeedupBaselines\n",
                  rows[i].n, speedup, baseline,
                  (kImproveThreshold - 1.0) * 100.0);
    } else {
      statuses[i] = "ok";
    }
  }

  const char* json_path = "BENCH_fft.json";
  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"micro_fft\",\n"
               "  \"kernel_side\": \"n/4\",\n"
               "  \"pair_speedup_tolerance\": %.2f,\n"
               "  \"results\": [\n",
               kRegressTolerance);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    {\"n\": %zu, \"fft1d_us\": %.3f, \"fft2d_ms\": %.4f, "
                 "\"correlate_ms_per_kernel\": %.4f, "
                 "\"pair_ms_per_kernel\": %.4f, \"pair_speedup\": %.3f, "
                 "\"pair_speedup_baseline\": %.3f, \"status\": \"%s\"}%s\n",
                 rows[i].n, rows[i].fft1d_us, rows[i].fft2d_ms,
                 rows[i].correlate_ms, rows[i].pair_ms,
                 rows[i].correlate_ms / rows[i].pair_ms, BaselineFor(rows[i].n),
                 statuses[i], i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("results -> %s\n", json_path);
  if (!tabsketch::util::FlushObservability(observability)) return 1;
  return regressed ? 1 : 0;
}
