// Figure 4(b) reproduction: accuracy of recovering a *known* clustering as a
// function of p, on the synthetic six-region dataset with ~1% injected
// outliers (paper Section 4.2). Clustering runs entirely on sketches.
//
// The paper's result to reproduce: a 100% plateau for fractional p (they
// report p in [0.25, 0.8]), with accuracy collapsing as p approaches 2
// because squared outlier deviations swamp the inter-region signal, and
// degradation also expected for p very close to 0 (the measure approaches
// Hamming distance and every value differs).

#include <cstdio>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "data/six_region.h"
#include "eval/confusion.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/observability.h"

namespace {

using tabsketch::cluster::KMeansOptions;
using tabsketch::cluster::RunKMeansBestOfRestarts;
using tabsketch::cluster::SeedingMethod;
using tabsketch::cluster::SketchBackend;
using tabsketch::cluster::SketchMode;

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf(
      "=== Figure 4(b): finding a known 6-clustering vs p (sketched "
      "k-means) ===\n");

  tabsketch::data::SixRegionOptions options;
  options.rows = 256;
  options.cols = 512;
  options.outlier_fraction = 0.01;
  auto dataset = tabsketch::data::GenerateSixRegion(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto grid = tabsketch::table::TileGrid::Create(&dataset->table, 8, 8);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  const std::vector<int> truth =
      tabsketch::data::GroundTruthForTiles(*dataset, *grid);
  std::printf(
      "table: %zux%zu, %zu tiles (paper: ~2000), regions "
      "1/4,1/4,1/4,1/8,1/16,1/16, 1%% outliers\n\n",
      dataset->table.rows(), dataset->table.cols(), grid->num_tiles());

  std::printf("%6s %22s\n", "p", "tiles correctly placed");
  for (double p : {0.05, 0.1, 0.25, 0.4, 0.5, 0.65, 0.8, 1.0, 1.25, 1.5,
                   1.75, 2.0}) {
    auto backend = SketchBackend::Create(
        &*grid, {.p = p, .k = 256, .seed = 5}, SketchMode::kPrecomputed);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    // Best of 5 restarts with D^2 seeding isolates the distance measure's
    // effect from Lloyd's local-minimum luck (the regions have very unequal
    // sizes, so a bad seeding otherwise dominates the measurement).
    auto result = RunKMeansBestOfRestarts(
        &*backend,
        KMeansOptions{.k = tabsketch::data::kNumRegions,
                      .max_iterations = 60,
                      .seed = 97,
                      .seeding = SeedingMethod::kPlusPlus},
        /*restarts=*/5);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const double accuracy = tabsketch::eval::BestMatchAgreement(
        truth, result->assignment, tabsketch::data::kNumRegions);
    std::printf("%6.2f %21.1f%%\n", p, 100.0 * accuracy);
  }

  std::printf(
      "\nExpected shape (paper Fig 4b): ~100%% for fractional p, degrading\n"
      "toward p = 2 where outliers dominate squared distances. Deviation\n"
      "noted in EXPERIMENTS.md: the paper also reports poor accuracy at\n"
      "p = 1; with our outlier recipe the linear penalty is still small\n"
      "relative to the inter-region signal, so the collapse starts above 1.\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
