// Micro-benchmarks for the kernel-level claims behind the paper's figures:
//   - stable sampling cost across p (why sketch construction cost is
//     independent of p, Section 4.4),
//   - exact Lp comparison cost vs sketch comparison cost as objects grow
//     (the heart of Figure 2),
//   - the median estimator vs the p = 2 L2 estimator (the paper's remark
//     that L2 estimation is faster),
//   - all-positions sketching, naive O(kNM) vs FFT O(kN log M) (Theorem 3),
//   - O(k) compound-sketch pool queries (Theorem 6).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_pool.h"
#include "core/sketcher.h"
#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/median.h"
#include "util/observability.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::EstimatorKind;
using tabsketch::core::LpDistance;
using tabsketch::core::PoolOptions;
using tabsketch::core::SketchAlgorithm;
using tabsketch::core::Sketcher;
using tabsketch::core::SketchParams;
using tabsketch::core::SketchPool;

tabsketch::table::Matrix RandomTable(size_t rows, size_t cols,
                                     uint64_t seed) {
  tabsketch::rng::Xoshiro256 gen(seed);
  tabsketch::table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 100.0;
  return out;
}

void BM_StableSample(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 100.0;
  auto sampler = tabsketch::rng::StableSampler::Create(alpha).value();
  tabsketch::rng::Xoshiro256 gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(gen));
  }
}
BENCHMARK(BM_StableSample)->Arg(50)->Arg(100)->Arg(150)->Arg(200);

void BM_ExactLpComparison(benchmark::State& state) {
  const size_t side = static_cast<size_t>(state.range(0));
  const auto x = RandomTable(side, side, 1);
  const auto y = RandomTable(side, side, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpDistance(x.View(), y.View(), 1.0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * side * side *
                                               sizeof(double)));
}
BENCHMARK(BM_ExactLpComparison)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_SketchComparisonMedian(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  SketchParams params{.p = 1.0, .k = k, .seed = 3};
  auto estimator = DistanceEstimator::Create(params).value();
  tabsketch::rng::Xoshiro256 gen(4);
  std::vector<double> a(k), b(k), scratch;
  for (auto& v : a) v = gen.NextDouble();
  for (auto& v : b) v = gen.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateWithScratch(a, b, &scratch));
  }
}
BENCHMARK(BM_SketchComparisonMedian)->Arg(64)->Arg(256)->Arg(1024);

void BM_SketchComparisonL2(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  SketchParams params{.p = 2.0, .k = k, .seed = 3};
  auto estimator = DistanceEstimator::Create(params, EstimatorKind::kL2)
                       .value();
  tabsketch::rng::Xoshiro256 gen(4);
  std::vector<double> a(k), b(k), scratch;
  for (auto& v : a) v = gen.NextDouble();
  for (auto& v : b) v = gen.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.EstimateWithScratch(a, b, &scratch));
  }
}
BENCHMARK(BM_SketchComparisonL2)->Arg(64)->Arg(256)->Arg(1024);

void BM_SingleSketchConstruction(benchmark::State& state) {
  const size_t side = static_cast<size_t>(state.range(0));
  SketchParams params{.p = 1.0, .k = 64, .seed = 5};
  auto sketcher = Sketcher::Create(params).value();
  const auto data = RandomTable(side, side, 6);
  sketcher.SketchOf(data.View());  // warm the matrix cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketcher.SketchOf(data.View()));
  }
}
BENCHMARK(BM_SingleSketchConstruction)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_AllPositionsNaive(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  SketchParams params{.p = 1.0, .k = 8, .seed = 7};
  auto sketcher = Sketcher::Create(params).value();
  const auto data = RandomTable(128, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketcher.SketchAllPositions(
        data, window, window, SketchAlgorithm::kNaive));
  }
}
BENCHMARK(BM_AllPositionsNaive)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_AllPositionsFft(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  SketchParams params{.p = 1.0, .k = 8, .seed = 7};
  auto sketcher = Sketcher::Create(params).value();
  const auto data = RandomTable(128, 128, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketcher.SketchAllPositions(
        data, window, window, SketchAlgorithm::kFft));
  }
}
BENCHMARK(BM_AllPositionsFft)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_PoolQuery(benchmark::State& state) {
  const auto data = RandomTable(128, 128, 9);
  SketchParams params{.p = 1.0, .k = 64, .seed = 10};
  PoolOptions options;
  options.log2_min_rows = 3;
  options.log2_min_cols = 3;
  auto pool = SketchPool::Build(data, params, options).value();
  size_t offset = 0;
  for (auto _ : state) {
    // Non-dyadic rectangle; cycle the anchor to defeat trivial caching.
    offset = (offset + 1) % 64;
    benchmark::DoNotOptimize(pool.Query(offset, offset, 11, 13));
  }
}
BENCHMARK(BM_PoolQuery);

void BM_MedianSelection(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  tabsketch::rng::Xoshiro256 gen(11);
  std::vector<double> values(n);
  for (auto& v : values) v = gen.NextDouble();
  std::vector<double> scratch;
  for (auto _ : state) {
    scratch = values;
    benchmark::DoNotOptimize(tabsketch::util::MedianInPlace(scratch));
  }
}
BENCHMARK(BM_MedianSelection)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared observability flags
// (--metrics-json / --trace-json / --audit-rate) are stripped before
// google-benchmark sees the argument list.
int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
