// Figure 2 reproduction: time and accuracy of assessing the distance between
// 20,000 randomly chosen pairs of square-ish tiles, for L1 and L2, across
// object sizes from 256 bytes to 256 KB.
//
// Per (norm, size) row this reports the paper's three timing series —
//   exact:      compute the exact Lp distance per pair (cost grows with size)
//   sketch:     compare precomputed sketches per pair (cost independent)
//   preprocess: build sketches for all positions of that size via FFT
//               (Theorem 3; cost depends on the table, not the tile)
// — and the three accuracy measures of Definitions 7-9.
//
// Scaling note (EXPERIMENTS.md): the paper ran a 34 MB table on a 400 MHz
// UltraSparc; we run a 1 MB table on one modern core. Ratios and shapes, not
// absolute seconds, are the reproduction target.

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "data/call_volume.h"
#include "eval/measures.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::LpDistance;
using tabsketch::core::SketchAlgorithm;
using tabsketch::core::Sketcher;
using tabsketch::core::SketchField;
using tabsketch::core::SketchParams;

constexpr size_t kNumPairs = 20000;
constexpr size_t kSketchSize = 64;

struct TileShape {
  size_t rows, cols;
  size_t bytes() const { return rows * cols * sizeof(double); }
};

// 256 B ... 256 KB of doubles, the paper's x-axis.
constexpr TileShape kShapes[] = {
    {4, 8}, {8, 16}, {16, 32}, {32, 64}, {64, 128}, {128, 256},
};

void RunNorm(const tabsketch::table::Matrix& data, double p) {
  std::printf(
      "\n--- L%.1f ---\n"
      "%10s %12s %12s %12s %8s %8s %8s\n",
      p, "tile", "exact_s", "sketch_s", "preproc_s", "cum%", "avg%",
      "pair%");

  for (const TileShape& shape : kShapes) {
    SketchParams params{.p = p, .k = kSketchSize, .seed = 77};
    auto sketcher = Sketcher::Create(params);
    auto estimator = DistanceEstimator::Create(params);
    if (!sketcher.ok() || !estimator.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return;
    }

    // Preprocessing: sketches of every position of this window size (the
    // paper's "preprocessing for sketches" series).
    tabsketch::util::WallTimer preprocess_timer;
    auto field_or = sketcher->SketchAllPositions(
        data, shape.rows, shape.cols, SketchAlgorithm::kFft);
    if (!field_or.ok()) {
      std::fprintf(stderr, "sketching failed\n");
      return;
    }
    const SketchField& field = *field_or;
    const double preprocess_seconds = preprocess_timer.ElapsedSeconds();

    // Random tile triples (X, Y, Z): pairs (X, Y) feed the estimation
    // measures, the third corner feeds pairwise comparisons.
    tabsketch::rng::Xoshiro256 gen(1000 + static_cast<uint64_t>(p * 10));
    const size_t max_row = data.rows() - shape.rows;
    const size_t max_col = data.cols() - shape.cols;
    struct Corner { size_t r, c; };
    std::vector<Corner> xs(kNumPairs), ys(kNumPairs), zs(kNumPairs);
    for (size_t i = 0; i < kNumPairs; ++i) {
      xs[i] = {gen.NextBounded(max_row + 1), gen.NextBounded(max_col + 1)};
      ys[i] = {gen.NextBounded(max_row + 1), gen.NextBounded(max_col + 1)};
      zs[i] = {gen.NextBounded(max_row + 1), gen.NextBounded(max_col + 1)};
    }

    // Exact distances.
    std::vector<double> exact_xy(kNumPairs), exact_xz(kNumPairs);
    tabsketch::util::WallTimer exact_timer;
    for (size_t i = 0; i < kNumPairs; ++i) {
      exact_xy[i] = LpDistance(
          data.Window(xs[i].r, xs[i].c, shape.rows, shape.cols),
          data.Window(ys[i].r, ys[i].c, shape.rows, shape.cols), p);
    }
    const double exact_seconds = exact_timer.ElapsedSeconds();
    for (size_t i = 0; i < kNumPairs; ++i) {
      exact_xz[i] = LpDistance(
          data.Window(xs[i].r, xs[i].c, shape.rows, shape.cols),
          data.Window(zs[i].r, zs[i].c, shape.rows, shape.cols), p);
    }

    // Sketch-estimated distances from the precomputed field.
    std::vector<double> approx_xy(kNumPairs), approx_xz(kNumPairs);
    std::vector<double> scratch;
    tabsketch::util::WallTimer sketch_timer;
    for (size_t i = 0; i < kNumPairs; ++i) {
      approx_xy[i] = estimator->EstimateWithScratch(
          field.SketchAt(xs[i].r, xs[i].c).values,
          field.SketchAt(ys[i].r, ys[i].c).values, &scratch);
    }
    const double sketch_seconds = sketch_timer.ElapsedSeconds();
    for (size_t i = 0; i < kNumPairs; ++i) {
      approx_xz[i] = estimator->EstimateWithScratch(
          field.SketchAt(xs[i].r, xs[i].c).values,
          field.SketchAt(zs[i].r, zs[i].c).values, &scratch);
    }

    const double cumulative =
        tabsketch::eval::CumulativeCorrectness(exact_xy, approx_xy);
    const double average =
        tabsketch::eval::AverageCorrectness(exact_xy, approx_xy);
    const double pairwise = tabsketch::eval::PairwiseComparisonCorrectness(
        exact_xy, exact_xz, approx_xy, approx_xz);

    char label[32];
    std::snprintf(label, sizeof(label), "%zuB", shape.bytes());
    std::printf("%10s %12.3f %12.3f %12.3f %8.2f %8.2f %8.2f\n", label,
                exact_seconds, sketch_seconds, preprocess_seconds,
                100.0 * cumulative, 100.0 * average, 100.0 * pairwise);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf(
      "=== Figure 2: distance assessment, %zu random pairs, k = %zu ===\n",
      kNumPairs, kSketchSize);

  tabsketch::data::CallVolumeOptions options;
  options.num_stations = 256;
  options.bins_per_day = 144;
  options.num_days = 4;
  auto volume = tabsketch::data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  std::printf("table: %zux%zu doubles (%.1f MB synthetic call volume)\n",
              volume->rows(), volume->cols(),
              static_cast<double>(volume->size() * sizeof(double)) / 1e6);

  RunNorm(*volume, 2.0);
  RunNorm(*volume, 1.0);

  std::printf(
      "\nExpected shape (paper Fig 2): exact time grows linearly with tile\n"
      "size; sketch compare time is flat; preprocessing is roughly flat\n"
      "(it depends on the table size, not the tile size); accuracy within\n"
      "a few percent, with pairwise correctness dipping for the largest\n"
      "L1 tiles where all pairs are nearly equidistant.\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
