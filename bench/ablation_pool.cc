// Ablation: the dyadic sketch-pool pipeline of Theorem 6 end to end —
// precompute cost (FFT vs naive all-positions sketching), pool memory,
// O(k) query latency, and compound-estimate comparability across rectangle
// shapes. Backs the claims that (a) FFT precompute wins and grows like
// O(k N log^3 N), and (b) queries are constant-time regardless of the
// rectangle queried.

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_pool.h"
#include "data/call_volume.h"
#include "rng/xoshiro256.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::PoolOptions;
using tabsketch::core::Sketch;
using tabsketch::core::SketchAlgorithm;
using tabsketch::core::SketchParams;
using tabsketch::core::SketchPool;

size_t PoolBytes(const SketchPool& pool) {
  size_t total = 0;
  for (const auto& [size, field] : pool.fields()) {
    total += field.k() * field.position_rows() * field.position_cols() *
             sizeof(double);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf("=== Ablation: dyadic sketch pools (Theorem 6) ===\n");

  SketchParams params{.p = 1.0, .k = 32, .seed = 11};

  // Precompute cost vs table size, FFT vs naive.
  std::printf("\nprecompute (canonical sizes 8x8 ... table, k = %zu):\n",
              params.k);
  std::printf("%12s %12s %12s %10s %12s\n", "table", "fft_s", "naive_s",
              "speedup", "pool_MB");
  for (size_t side : {64u, 128u, 256u}) {
    tabsketch::data::CallVolumeOptions data_options;
    data_options.num_stations = side;
    data_options.bins_per_day = side;
    auto volume = tabsketch::data::GenerateCallVolume(data_options);
    if (!volume.ok()) {
      std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
      return 1;
    }
    PoolOptions fft_options;
    fft_options.log2_min_rows = 3;
    fft_options.log2_min_cols = 3;
    PoolOptions naive_options = fft_options;
    naive_options.algorithm = SketchAlgorithm::kNaive;

    tabsketch::util::WallTimer fft_timer;
    auto fft_pool = SketchPool::Build(*volume, params, fft_options);
    const double fft_seconds = fft_timer.ElapsedSeconds();
    if (!fft_pool.ok()) {
      std::fprintf(stderr, "pool build failed\n");
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%zux%zu", side, side);
    if (side <= 128) {
      // The naive path grows as O(k N M); at 256x256 it takes minutes, so
      // it is measured only where it finishes promptly.
      tabsketch::util::WallTimer naive_timer;
      auto naive_pool = SketchPool::Build(*volume, params, naive_options);
      const double naive_seconds = naive_timer.ElapsedSeconds();
      if (!naive_pool.ok()) {
        std::fprintf(stderr, "pool build failed\n");
        return 1;
      }
      std::printf("%12s %12.2f %12.2f %9.1fx %12.1f\n", label, fft_seconds,
                  naive_seconds, naive_seconds / fft_seconds,
                  static_cast<double>(PoolBytes(*fft_pool)) / 1e6);
    } else {
      std::printf("%12s %12.2f %12s %10s %12.1f\n", label, fft_seconds,
                  "(skipped)", "-",
                  static_cast<double>(PoolBytes(*fft_pool)) / 1e6);
    }
  }

  // Query latency: constant in the rectangle size.
  std::printf("\nquery latency (pool over 256x256, 20000 queries per "
              "shape):\n");
  std::printf("%14s %16s\n", "rectangle", "ns/query");
  tabsketch::data::CallVolumeOptions data_options;
  data_options.num_stations = 256;
  data_options.bins_per_day = 256;
  auto volume = tabsketch::data::GenerateCallVolume(data_options);
  if (!volume.ok()) return 1;
  PoolOptions options;
  options.log2_min_rows = 3;
  options.log2_min_cols = 3;
  auto pool = SketchPool::Build(*volume, params, options);
  if (!pool.ok()) return 1;

  tabsketch::rng::Xoshiro256 gen(3);
  for (size_t side : {9u, 17u, 33u, 65u, 129u}) {
    constexpr size_t kQueries = 20000;
    tabsketch::util::WallTimer timer;
    double checksum = 0.0;
    for (size_t q = 0; q < kQueries; ++q) {
      const size_t row = gen.NextBounded(256 - side);
      const size_t col = gen.NextBounded(256 - side);
      auto sketch = pool->Query(row, col, side, side);
      checksum += sketch->values[0];
    }
    const double seconds = timer.ElapsedSeconds();
    char label[32];
    std::snprintf(label, sizeof(label), "%zux%zu", side, side);
    std::printf("%14s %16.0f   (checksum %.3g)\n", label,
                1e9 * seconds / kQueries, checksum);
  }

  // Compound-estimate comparability: same-dimension near/far ordering
  // across shapes, checked against exact distances.
  std::printf("\ncompound ordering check (non-dyadic shapes, L1):\n");
  auto estimator = DistanceEstimator::Create(params);
  if (!estimator.ok()) return 1;
  size_t agree = 0;
  size_t total = 0;
  for (size_t side : {11u, 19u, 27u, 45u}) {
    for (int trial = 0; trial < 200; ++trial) {
      const size_t r1 = gen.NextBounded(256 - side);
      const size_t c1 = gen.NextBounded(256 - side);
      const size_t r2 = gen.NextBounded(256 - side);
      const size_t c2 = gen.NextBounded(256 - side);
      const size_t r3 = gen.NextBounded(256 - side);
      const size_t c3 = gen.NextBounded(256 - side);
      auto s1 = pool->Query(r1, c1, side, side);
      auto s2 = pool->Query(r2, c2, side, side);
      auto s3 = pool->Query(r3, c3, side, side);
      const double approx_near = estimator->Estimate(*s1, *s2);
      const double approx_far = estimator->Estimate(*s1, *s3);
      const double exact_near = tabsketch::core::LpDistance(
          volume->Window(r1, c1, side, side),
          volume->Window(r2, c2, side, side), params.p);
      const double exact_far = tabsketch::core::LpDistance(
          volume->Window(r1, c1, side, side),
          volume->Window(r3, c3, side, side), params.p);
      if ((approx_near < approx_far) == (exact_near < exact_far)) ++agree;
      ++total;
    }
  }
  std::printf("  pairwise ordering agreement: %.1f%% over %zu triples\n",
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(total),
              total);

  std::printf(
      "\nExpected shape: FFT precompute beats naive with a growing margin;\n"
      "query latency is flat in the rectangle size (it is 4 gathers + a\n"
      "vector add); compound estimates order pairs correctly the vast\n"
      "majority of the time despite the Theorem-5 inflation band.\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
