// Ablation: thread scaling of the dyadic pool build (Theorem 6's
// O(k N log^3 N) precompute). One CorrelationPlan — i.e. one forward FFT of
// the data — is shared across every (canonical size x kernel) work item, and
// the items fan out over util::ParallelFor. Reports wall-clock per thread
// count, the speedup over single-threaded, verifies the pool is bit-identical
// across thread counts and that exactly one plan is constructed per build,
// and writes the rows to BENCH_pool_build.json.
//
// usage: ablation_threads [side] [k] [min_log2] [thread_list]
//   defaults: 1024 64 3 1,2,4,8   (the acceptance configuration)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sketch_pool.h"
#include "data/call_volume.h"
#include "fft/correlate.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using tabsketch::core::PoolOptions;
using tabsketch::core::SketchParams;
using tabsketch::core::SketchPool;

std::vector<size_t> ParseThreadList(const std::string& text) {
  std::vector<size_t> out;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    out.push_back(static_cast<size_t>(
        std::strtoull(text.substr(begin, end - begin).c_str(), nullptr, 10)));
    begin = end + 1;
  }
  return out;
}

/// Order-independent fingerprint of every plane value in the pool; equal
/// fingerprints across thread counts back the bit-identical claim.
double PoolChecksum(const SketchPool& pool) {
  double checksum = 0.0;
  for (const auto& [size, field] : pool.fields()) {
    for (size_t i = 0; i < field.k(); ++i) {
      for (double value : field.plane(i).Values()) checksum += value;
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  const size_t side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const size_t min_log2 = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
  const std::vector<size_t> thread_counts =
      argc > 4 ? ParseThreadList(argv[4])
               : std::vector<size_t>{1, 2, 4, 8};

  std::printf("=== Ablation: pool-build thread scaling ===\n");
  std::printf("table %zux%zu, k=%zu, canonical sizes from 2^%zu "
              "(machine has %zu hardware threads)\n\n",
              side, side, k, min_log2, tabsketch::util::DefaultThreadCount());

  tabsketch::data::CallVolumeOptions data_options;
  data_options.num_stations = side;
  data_options.bins_per_day = side;
  auto volume = tabsketch::data::GenerateCallVolume(data_options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }

  SketchParams params{.p = 1.0, .k = k, .seed = 17};
  std::printf("%8s %12s %10s %12s %12s\n", "threads", "seconds", "speedup",
              "plans", "checksum");

  double base_seconds = 0.0;
  double base_checksum = 0.0;
  bool checksums_agree = true;
  bool one_plan_per_build = true;
  struct Row {
    size_t threads;
    double seconds;
    double speedup;
    size_t plans;
  };
  std::vector<Row> rows;

  for (size_t threads : thread_counts) {
    PoolOptions options;
    options.log2_min_rows = min_log2;
    options.log2_min_cols = min_log2;
    options.threads = threads;

    const size_t plans_before =
        tabsketch::fft::CorrelationPlan::plans_constructed();
    tabsketch::util::WallTimer timer;
    auto pool = SketchPool::Build(*volume, params, options);
    const double seconds = timer.ElapsedSeconds();
    const size_t plans =
        tabsketch::fft::CorrelationPlan::plans_constructed() - plans_before;
    if (!pool.ok()) {
      std::fprintf(stderr, "pool build failed: %s\n",
                   pool.status().ToString().c_str());
      return 1;
    }

    const double checksum = PoolChecksum(*pool);
    if (rows.empty()) {
      base_seconds = seconds;
      base_checksum = checksum;
    }
    if (checksum != base_checksum) checksums_agree = false;
    if (plans != 1) one_plan_per_build = false;
    const double speedup = base_seconds / seconds;
    rows.push_back({threads, seconds, speedup, plans});
    std::printf("%8zu %12.2f %9.2fx %12zu %12.6g\n", threads, seconds,
                speedup, plans, checksum);
  }

  std::printf("\nbit-identical across thread counts: %s\n",
              checksums_agree ? "yes" : "NO — BUG");
  std::printf("one data-FFT (plan) per build:      %s\n",
              one_plan_per_build ? "yes" : "NO — BUG");

  const char* json_path = "BENCH_pool_build.json";
  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"pool_build_thread_scaling\",\n"
               "  \"table\": [%zu, %zu],\n"
               "  \"k\": %zu,\n"
               "  \"min_log2\": %zu,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"bit_identical\": %s,\n"
               "  \"one_plan_per_build\": %s,\n"
               "  \"results\": [\n",
               side, side, k, min_log2,
               tabsketch::util::DefaultThreadCount(),
               checksums_agree ? "true" : "false",
               one_plan_per_build ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %zu, \"seconds\": %.4f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 rows[i].threads, rows[i].seconds, rows[i].speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("results -> %s\n", json_path);

  const bool metrics_ok =
      tabsketch::util::FlushObservability(observability);
  return (checksums_agree && one_plan_per_build && metrics_ok)
             ? 0
             : 1;
}
