// Figure 5 reproduction: a single day of call volume, clustered under
// p = 2.0 and p = 0.25, rendered as the paper's picture — stations (grouped
// geographically) down the page, hours of the day across it, one glyph per
// cluster with the largest (background, low-volume) cluster left blank.
//
// Features to look for, as in the paper:
//   - long vertical runs: a region keeps the same cluster all day;
//   - metro cores (dark/dense glyph columns) flanked by lighter suburbs;
//   - business-hours bands starting ~3 hours later toward the bottom
//     (the West coast) than at the top (the East coast);
//   - p = 2.0 shows much more structure; p = 0.25 keeps only the most
//     distinctive regions visible.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "data/call_volume.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/observability.h"

namespace {

using tabsketch::cluster::KMeansOptions;
using tabsketch::cluster::RunKMeans;
using tabsketch::cluster::SketchBackend;
using tabsketch::cluster::SketchMode;

constexpr size_t kClusters = 10;

void Render(const tabsketch::table::TileGrid& grid,
            const std::vector<int>& assignment) {
  std::vector<size_t> counts(kClusters, 0);
  for (int cluster : assignment) ++counts[cluster];
  size_t background = 0;
  for (size_t c = 1; c < kClusters; ++c) {
    if (counts[c] > counts[background]) background = c;
  }
  const std::string glyphs = "#@%&*+=-:.";

  std::printf("hour  ");
  for (size_t gc = 0; gc < grid.grid_cols(); ++gc) {
    std::printf("%zu", gc % 10);
  }
  std::printf("\n");
  for (size_t gr = 0; gr < grid.grid_rows(); ++gr) {
    std::printf("%4zu  ", gr);
    for (size_t gc = 0; gc < grid.grid_cols(); ++gc) {
      const size_t cluster = static_cast<size_t>(
          assignment[gr * grid.grid_cols() + gc]);
      std::printf("%c", cluster == background
                            ? ' '
                            : glyphs[cluster % glyphs.size()]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf("=== Figure 5: one day's clustering at p = 2.0 and p = 0.25 "
              "===\n");

  tabsketch::data::CallVolumeOptions options;
  options.num_stations = 900;
  options.bins_per_day = 144;
  auto volume = tabsketch::data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }

  // Tiles: 15 neighboring station groups x 1 hour (paper: 75 stations x 1
  // hour, scaled to our station count). 60 tile-rows x 24 tile-cols.
  auto grid = tabsketch::table::TileGrid::Create(&*volume, 15, 6);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("table: %zux%zu, %zu tiles (%zu station-groups x %zu hours)\n",
              volume->rows(), volume->cols(), grid->num_tiles(),
              grid->grid_rows(), grid->grid_cols());

  for (double p : {2.0, 0.25}) {
    auto backend = SketchBackend::Create(
        &*grid, {.p = p, .k = 192, .seed = 71}, SketchMode::kPrecomputed);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    auto result = RunKMeans(&*backend,
                            KMeansOptions{.k = kClusters,
                                          .max_iterations = 40,
                                          .seed = 13});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n--- p = %.2f (rows: East coast at top, West at bottom; "
                "blank = background cluster) ---\n",
                p);
    Render(*grid, result->assignment);
  }
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
