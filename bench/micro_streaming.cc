// Micro-benchmark of streaming window maintenance (ISSUE-8): a 256-row
// stream tiled 16x16 slides a 1024-column window (16x64 = 1024 tiles,
// k=64, p=1) one tile column at a time. Each slide is measured two ways:
//
//   1. incremental — GrowingTableSketcher::AppendColumns (sketches only the
//      16 new tiles) + RetireColumns(1), plus QuantizedCodePool::
//      BuildSuccessor twice (surviving code rows are memcpy'd, only the new
//      tile column is encoded);
//   2. rebuild — batch SketchAllTilesParallel over the full window region
//      plus a from-scratch int8 pool Build, i.e. what `serve` would pay for
//      a cold reload of the slid table.
//
// The headline claim is that the incremental slide is >= 5x cheaper in
// total across the run. Byte-identity is asserted in-bench every slide:
// the window's sketches must equal the batch rebuild's bytes exactly, and
// the successor pool's code estimates must stay within the Slack() bound
// of the exact estimator (the §14 map-validity guarantee; code *bytes* may
// legitimately differ from a cold build after a retire-driven range
// shrink, so bytes are asserted on sketches, validity on codes).
//
// Rows land in BENCH_streaming.json; a failed assertion exits non-zero so
// CI can gate on it.
//
// usage: micro_streaming [--metrics-json=FILE] [--trace-json=FILE]

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/growing.h"
#include "core/ondemand.h"
#include "core/quantized_sketch.h"
#include "core/sketcher.h"
#include "data/six_region.h"
#include "table/tiling.h"
#include "util/observability.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using tabsketch::core::GrowingTableSketcher;
using tabsketch::core::QuantizedCodePool;
using tabsketch::core::QuantKind;
using tabsketch::core::Sketch;

constexpr size_t kRows = 256;
constexpr size_t kTileRows = 16;
constexpr size_t kTileCols = 16;
constexpr size_t kWindowTileCols = 64;  // 1024-column window
constexpr size_t kWindowCols = kWindowTileCols * kTileCols;
constexpr size_t kSlides = 8;
constexpr double kMinSpeedup = 5.0;

/// Copies `cols` stream columns starting at `start` into a fresh matrix.
tabsketch::table::Matrix SliceCols(const tabsketch::table::Matrix& stream,
                                   size_t start, size_t cols) {
  tabsketch::table::Matrix slice(stream.rows(), cols);
  for (size_t r = 0; r < stream.rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      slice.At(r, c) = stream.At(r, start + c);
    }
  }
  return slice;
}

struct SlideRow {
  size_t start_tile_col = 0;
  double incremental_seconds = 0;
  double rebuild_seconds = 0;
  bool pool_rebuilt = false;  // append grew the pool range
};

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  const size_t threads = tabsketch::util::DefaultThreadCount();

  tabsketch::data::SixRegionOptions data_options;
  data_options.rows = kRows;
  data_options.cols = kWindowCols + kSlides * kTileCols;
  data_options.seed = 42;
  auto dataset = tabsketch::data::GenerateSixRegion(data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const tabsketch::table::Matrix& stream = dataset->table;

  const tabsketch::core::SketchParams params{.p = 1.0, .k = 64, .seed = 42};
  auto sketcher = tabsketch::core::Sketcher::Create(params);
  auto estimator = tabsketch::core::DistanceEstimator::Create(params);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "sketch family setup failed\n");
    return 1;
  }

  auto store =
      GrowingTableSketcher::Create(params, kRows, kTileRows, kTileCols);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  tabsketch::util::WallTimer seed_timer;
  if (auto status = store->AppendColumns(SliceCols(stream, 0, kWindowCols),
                                         threads);
      !status.ok()) {
    std::fprintf(stderr, "seed append: %s\n", status.ToString().c_str());
    return 1;
  }
  const double seed_seconds = seed_timer.ElapsedSeconds();
  const size_t grid_rows = store->grid_rows();
  const size_t tiles = store->num_tiles();

  // Window sketches by tile index, refreshed after every mutation; the pool
  // builders consume this getter.
  std::vector<std::shared_ptr<const Sketch>> shares =
      store->SketchSharesInGridOrder();
  const auto sketch_of = [&shares](size_t i) {
    return std::span<const double>(shares[i]->values);
  };

  auto pool = QuantizedCodePool::BuildFromGetter(
      sketch_of, tiles, QuantKind::kInt8, params, kTileRows, kTileCols);
  if (!pool.ok()) {
    std::fprintf(stderr, "pool: %s\n", pool.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Micro-benchmark: sliding-window streaming ingest ===\n");
  std::printf("%zux%zu window (%zu tiles of %zux%zu, k=%zu, p=%.0f), "
              "%zu slides of one tile column, %zu threads\n",
              kRows, kWindowCols, tiles, kTileRows, kTileCols, params.k,
              params.p, kSlides, threads);
  std::printf("initial window build: %.4fs\n", seed_seconds);

  bool failed = false;
  std::vector<SlideRow> slides;
  double incremental_total = 0, rebuild_total = 0;
  tabsketch::core::kernels::CodeScratch code_scratch;
  std::vector<double> est_scratch;

  for (size_t slide = 0; slide < kSlides; ++slide) {
    const tabsketch::table::Matrix piece = SliceCols(
        stream, kWindowCols + slide * kTileCols, kTileCols);

    // --- incremental slide: append one tile column, retire one ----------
    SlideRow row;
    bool append_rebuilt = false;
    bool retire_rebuilt = false;
    tabsketch::util::WallTimer slide_timer;
    {
      if (auto status = store->AppendColumns(piece, threads); !status.ok()) {
        std::fprintf(stderr, "append: %s\n", status.ToString().c_str());
        return 1;
      }
      shares = store->SketchSharesInGridOrder();
      // Grown grid: tile (gr, gc) was tile gr*64+gc, last column is new.
      std::vector<size_t> grown(grid_rows * (kWindowTileCols + 1));
      for (size_t gr = 0; gr < grid_rows; ++gr) {
        for (size_t gc = 0; gc <= kWindowTileCols; ++gc) {
          grown[gr * (kWindowTileCols + 1) + gc] =
              gc < kWindowTileCols ? gr * kWindowTileCols + gc
                                   : QuantizedCodePool::kNewTile;
        }
      }
      auto appended = QuantizedCodePool::BuildSuccessor(
          *pool, sketch_of, grown, &append_rebuilt);
      if (!appended.ok()) {
        std::fprintf(stderr, "pool append: %s\n",
                     appended.status().ToString().c_str());
        return 1;
      }
      if (auto status = store->RetireColumns(1); !status.ok()) {
        std::fprintf(stderr, "retire: %s\n", status.ToString().c_str());
        return 1;
      }
      shares = store->SketchSharesInGridOrder();
      // Back to 64 tile columns: tile (gr, gc) was tile gr*65 + gc + 1.
      std::vector<size_t> slid(grid_rows * kWindowTileCols);
      for (size_t gr = 0; gr < grid_rows; ++gr) {
        for (size_t gc = 0; gc < kWindowTileCols; ++gc) {
          slid[gr * kWindowTileCols + gc] =
              gr * (kWindowTileCols + 1) + gc + 1;
        }
      }
      auto retired = QuantizedCodePool::BuildSuccessor(
          *appended, sketch_of, slid, &retire_rebuilt);
      if (!retired.ok()) {
        std::fprintf(stderr, "pool retire: %s\n",
                     retired.status().ToString().c_str());
        return 1;
      }
      pool = std::move(retired);
    }
    row.incremental_seconds = slide_timer.ElapsedSeconds();
    row.pool_rebuilt = append_rebuilt || retire_rebuilt;
    row.start_tile_col = store->retired_tile_cols();

    // --- rebuild reference: batch sketch + cold pool over the window -----
    const tabsketch::table::Matrix window = SliceCols(
        stream, (slide + 1) * kTileCols, kWindowCols);
    std::vector<Sketch> reference;
    tabsketch::util::WallTimer rebuild_timer;
    {
      auto grid =
          tabsketch::table::TileGrid::Create(&window, kTileRows, kTileCols);
      if (!grid.ok()) {
        std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
        return 1;
      }
      reference =
          tabsketch::core::SketchAllTilesParallel(*sketcher, *grid, threads);
      auto cold = QuantizedCodePool::BuildFromSketches(
          reference, QuantKind::kInt8, params, kTileRows, kTileCols);
      if (!cold.ok()) {
        std::fprintf(stderr, "cold pool: %s\n",
                     cold.status().ToString().c_str());
        return 1;
      }
    }
    row.rebuild_seconds = rebuild_timer.ElapsedSeconds();

    // --- byte-identity: window sketches == batch rebuild bytes -----------
    const std::vector<Sketch> incremental = store->SketchesInGridOrder();
    for (size_t t = 0; t < reference.size(); ++t) {
      if (incremental[t].values != reference[t].values) {
        failed = true;
        std::fprintf(stderr,
                     "FAIL: slide %zu tile %zu sketch bytes diverge from "
                     "the batch rebuild\n",
                     slide, t);
        break;
      }
    }
    if (store->sketches_computed() !=
        grid_rows * (kWindowTileCols + store->retired_tile_cols())) {
      failed = true;
      std::fprintf(stderr, "FAIL: slide %zu recomputed a surviving tile\n",
                   slide);
    }
    // --- map validity: code estimates within Slack of the exact scan -----
    const double slack = pool->Slack(*estimator);
    const double inv_scale = 1.0 / estimator->scale();
    for (size_t pair = 0; pair < 64; ++pair) {
      const size_t a = (pair * 131) % tiles;
      const size_t b = (pair * 131 + 577) % tiles;
      const double exact = estimator->EstimateWithScratch(
          incremental[a].values, incremental[b].values, &est_scratch);
      const double code =
          pool->CodeEstimate(a, b, /*l2=*/false, &code_scratch) * inv_scale;
      if (!(std::abs(code - exact) <= slack)) {
        failed = true;
        std::fprintf(stderr,
                     "FAIL: slide %zu pair (%zu,%zu) code estimate %.6g "
                     "drifts more than slack %.6g from exact %.6g\n",
                     slide, a, b, code, slack, exact);
        break;
      }
    }

    incremental_total += row.incremental_seconds;
    rebuild_total += row.rebuild_seconds;
    slides.push_back(row);
    std::printf("slide %zu (window tile-cols [%zu, %zu)): incremental "
                "%.4fs, rebuild %.4fs (%.1fx)%s\n",
                slide, row.start_tile_col,
                row.start_tile_col + kWindowTileCols,
                row.incremental_seconds, row.rebuild_seconds,
                row.rebuild_seconds / row.incremental_seconds,
                row.pool_rebuilt ? " [pool range grew: re-encoded]" : "");
  }

  const double speedup = rebuild_total / incremental_total;
  std::printf("total: incremental %.4fs, rebuild %.4fs -> %.1fx cheaper\n",
              incremental_total, rebuild_total, speedup);
  if (speedup < kMinSpeedup) {
    failed = true;
    std::fprintf(stderr,
                 "FAIL: incremental slide only %.2fx cheaper than rebuild, "
                 "needs %.1fx\n",
                 speedup, kMinSpeedup);
  }

  const char* json_path = "BENCH_streaming.json";
  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"micro_streaming\",\n"
               "  \"window_cols\": %zu,\n"
               "  \"tiles\": %zu,\n"
               "  \"sketch_k\": %zu,\n"
               "  \"p\": %.1f,\n"
               "  \"threads\": %zu,\n"
               "  \"seed_seconds\": %.4f,\n"
               "  \"min_speedup\": %.1f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"byte_identical\": %s,\n"
               "  \"slides\": [\n",
               kWindowCols, tiles, params.k, params.p, threads, seed_seconds,
               kMinSpeedup, speedup, failed ? "false" : "true");
  for (size_t i = 0; i < slides.size(); ++i) {
    std::fprintf(json,
                 "    {\"start_tile_col\": %zu, \"incremental_seconds\": "
                 "%.5f, \"rebuild_seconds\": %.5f, \"pool_rebuilt\": %s}%s\n",
                 slides[i].start_tile_col, slides[i].incremental_seconds,
                 slides[i].rebuild_seconds,
                 slides[i].pool_rebuilt ? "true" : "false",
                 i + 1 < slides.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("results -> %s\n", json_path);
  if (!tabsketch::util::FlushObservability(observability)) return 1;
  return failed ? 1 : 0;
}
