// Serving-path overhead of the `tabsketch serve` daemon: the same mixed
// distance/knn request stream is answered (a) in-process by the snapshot's
// QueryEngine, (b) over a loopback socket one synchronous round-trip at a
// time, and (c) over the socket fully pipelined. The spread between (a) and
// (b) is the per-request protocol + admission + wire cost; (c) shows how
// much of it amortizes when a client streams. Answers are asserted
// byte-identical across all three paths. A fourth section (d) prices the
// introspection plane: per-scrape latency of `stats json` (registry
// capture + ticker-window diff + render) and `stats prom` (full text
// exposition), with the rolling MetricsTicker running as in production.
//
// usage: micro_serve [--metrics-json=FILE] [--trace-json=FILE]

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/six_region.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "table/table_io.h"
#include "util/metrics_snapshot.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::serve::QueryRequest;

/// Blocking loopback line client (same shape as the test client).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      std::fprintf(stderr, "connect failed\n");
      std::exit(1);
    }
  }
  ~Client() { ::close(fd_); }

  void Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        std::fprintf(stderr, "send failed\n");
        std::exit(1);
      }
      sent += static_cast<size_t>(n);
    }
  }

  std::string RecvLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        std::fprintf(stderr, "recv failed\n");
        std::exit(1);
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);

  tabsketch::data::SixRegionOptions data_options;
  data_options.rows = 128;
  data_options.cols = 128;
  data_options.seed = 42;
  auto dataset = tabsketch::data::GenerateSixRegion(data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const std::string table_path =
      (std::filesystem::temp_directory_path() / "micro_serve_table.tbl")
          .string();
  if (auto status = tabsketch::table::WriteBinary(dataset->table, table_path);
      !status.ok()) {
    std::fprintf(stderr, "write table: %s\n", status.ToString().c_str());
    return 1;
  }

  tabsketch::serve::SnapshotSpec spec;
  spec.table_path = table_path;
  spec.tile_rows = 16;
  spec.tile_cols = 16;
  spec.params = {.p = 1.0, .k = 64, .seed = 42};
  spec.cache_bytes = size_t{1} << 20;
  auto snapshot = tabsketch::serve::Snapshot::Create(spec);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const size_t tiles = (*snapshot)->num_tiles();

  // A serving-shaped stream: mostly point distances, some knn sweeps.
  std::vector<QueryRequest> batch;
  std::vector<std::string> lines;
  for (size_t i = 0; i < 512; ++i) {
    if (i % 16 == 0) {
      batch.push_back(QueryRequest{QueryRequest::Kind::kKnn, i % tiles, 0, 8});
      lines.push_back("knn " + std::to_string(i % tiles) + " 8");
    } else {
      batch.push_back(QueryRequest{QueryRequest::Kind::kDistance, i % tiles,
                                   (i * 7 + 3) % tiles, 0});
      lines.push_back("distance " + std::to_string(i % tiles) + " " +
                      std::to_string((i * 7 + 3) % tiles));
    }
  }

  std::printf("=== Micro: serve daemon overhead ===\n");
  std::printf("%zu tiles, %zu requests\n", tiles, batch.size());

  // (a) in-process engine, the no-daemon floor.
  tabsketch::util::WallTimer engine_timer;
  auto reference = (*snapshot)->engine().Run(batch);
  const double engine_seconds = engine_timer.ElapsedSeconds();
  if (!reference.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  tabsketch::serve::SnapshotHolder holder(*snapshot);
  // The introspection plane runs exactly as in production: a 100ms ticker
  // backs the `stats json` window rates scraped in path (d).
  tabsketch::util::MetricsTicker::Options ticker_options;
  ticker_options.interval_seconds = 0.1;
  tabsketch::util::MetricsTicker ticker(ticker_options);
  tabsketch::serve::ServerOptions server_options;
  server_options.ticker = &ticker;
  auto server = tabsketch::serve::Server::Start(&holder, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  bool identical = true;
  // (b) synchronous round-trips.
  double sync_seconds = 0;
  {
    Client client((*server)->port());
    tabsketch::util::WallTimer timer;
    for (size_t i = 0; i < lines.size(); ++i) {
      client.Send(lines[i] + "\n");
      if (client.RecvLine() != (*reference)[i]) identical = false;
    }
    sync_seconds = timer.ElapsedSeconds();
  }
  // (c) pipelined: one write burst, then drain.
  double pipelined_seconds = 0;
  {
    Client client((*server)->port());
    std::string burst;
    for (const std::string& line : lines) burst += line + "\n";
    tabsketch::util::WallTimer timer;
    client.Send(burst);
    for (size_t i = 0; i < lines.size(); ++i) {
      if (client.RecvLine() != (*reference)[i]) identical = false;
    }
    pipelined_seconds = timer.ElapsedSeconds();
  }
  // (d) introspection scrapes: what observing the daemon costs a client.
  constexpr size_t kJsonScrapes = 256;
  constexpr size_t kPromScrapes = 64;
  double stats_seconds = 0;
  double prom_seconds = 0;
  {
    Client client((*server)->port());
    tabsketch::util::WallTimer json_timer;
    for (size_t i = 0; i < kJsonScrapes; ++i) {
      client.Send("stats json\n");
      const std::string line = client.RecvLine();
      if (line.rfind("{\"schema\":\"tabsketch-stats-v1\"", 0) != 0) {
        std::fprintf(stderr, "bad stats line: %s\n", line.c_str());
        return 1;
      }
    }
    stats_seconds = json_timer.ElapsedSeconds();
    tabsketch::util::WallTimer prom_timer;
    for (size_t i = 0; i < kPromScrapes; ++i) {
      client.Send("stats prom\n");
      while (client.RecvLine() != "# EOF") {
      }
    }
    prom_seconds = prom_timer.ElapsedSeconds();
  }
  (*server)->Shutdown();
  std::remove(table_path.c_str());

  const double n = static_cast<double>(batch.size());
  std::printf("%-12s %10s %14s\n", "path", "seconds", "us/request");
  std::printf("%-12s %10.4f %14.1f\n", "in-process", engine_seconds,
              engine_seconds / n * 1e6);
  std::printf("%-12s %10.4f %14.1f\n", "sync", sync_seconds,
              sync_seconds / n * 1e6);
  std::printf("%-12s %10.4f %14.1f\n", "pipelined", pipelined_seconds,
              pipelined_seconds / n * 1e6);
  std::printf("%-12s %10.4f %14.1f\n", "stats-json", stats_seconds,
              stats_seconds / kJsonScrapes * 1e6);
  std::printf("%-12s %10.4f %14.1f\n", "stats-prom", prom_seconds,
              prom_seconds / kPromScrapes * 1e6);
  std::printf("byte-identical across paths: %s\n", identical ? "yes" : "NO");

  if (!identical) return 1;
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
