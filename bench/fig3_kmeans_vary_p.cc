// Figure 3 reproduction: k-means (k = 20) over stitched multi-day call
// volume, tiles of a day's data for a group of neighboring stations,
// sweeping p in {0.25, ..., 2.0}.
//
// Panel (a): clustering time under three distance routines —
//   sketches precomputed (preprocessing reported separately),
//   sketching on demand (first touch pays, later comparisons are O(k)),
//   exact distance computation.
// Panel (b): clustering agreement with the exact run (confusion-matrix
// agreement under best label matching, Definition 10) and quality of the
// sketched clustering as a percentage of the exact one (Definition 11,
// spread measured with exact distances for both).
//
// Scaling note: the paper stitched 18 days (~600 MB) and used 9K tiles
// (2304 4-byte values) against 256-entry sketches on a scalar 400 MHz
// UltraSparc. We stitch 8 days for 1024 stations (~9 MB) and use 64
// stations x 1 day tiles (9216 values): on modern SIMD hardware an exact
// L1 scan of 2304 values costs about the same as a k = 256 median
// selection, so preserving the paper's *cost ratio* (what drives the
// figure's shape) requires a larger tile/sketch element ratio.

#include <cstdio>
#include <vector>

#include "cluster/exact_backend.h"
#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "data/call_volume.h"
#include "eval/confusion.h"
#include "eval/quality.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::cluster::ExactBackend;
using tabsketch::cluster::KMeansOptions;
using tabsketch::cluster::KMeansResult;
using tabsketch::cluster::RunKMeans;
using tabsketch::cluster::SketchBackend;
using tabsketch::cluster::SketchMode;

constexpr size_t kClusters = 20;
constexpr size_t kSketchEntries = 256;

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf(
      "=== Figure 3: 20-means over stitched days, tile = 64 stations x 1 day "
      "===\n");

  tabsketch::data::CallVolumeOptions options;
  options.num_stations = 1024;
  options.bins_per_day = 144;
  options.num_days = 8;
  auto volume = tabsketch::data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  auto grid = tabsketch::table::TileGrid::Create(&*volume, 64, 144);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("table: %zux%zu (%.1f MB), %zu tiles of %zu values each\n\n",
              volume->rows(), volume->cols(),
              static_cast<double>(volume->size() * sizeof(double)) / 1e6,
              grid->num_tiles(), grid->tile_size());

  std::printf("%6s | %12s %12s %12s %12s | %14s | %10s %9s\n", "p",
              "precomp_s", "ondemand_s", "exact_s", "sketchprep_s",
              "iters(s/o/e)", "agreement%", "quality%");

  const KMeansOptions kmeans{.k = kClusters, .max_iterations = 25,
                             .seed = 2002};

  for (double p : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    // Scenario (1): precomputed sketches. Backend construction does all the
    // sketching; RunKMeans then times only the clustering loop.
    tabsketch::util::WallTimer prep_timer;
    auto precomputed_backend = SketchBackend::Create(
        &*grid, {.p = p, .k = kSketchEntries, .seed = 9},
        SketchMode::kPrecomputed);
    const double prep_seconds = prep_timer.ElapsedSeconds();
    if (!precomputed_backend.ok()) {
      std::fprintf(stderr, "%s\n",
                   precomputed_backend.status().ToString().c_str());
      return 1;
    }
    auto precomputed = RunKMeans(&*precomputed_backend, kmeans);

    // Scenario (2): sketches on demand (timed inside the clustering loop).
    auto ondemand_backend = SketchBackend::Create(
        &*grid, {.p = p, .k = kSketchEntries, .seed = 9},
        SketchMode::kOnDemand);
    if (!ondemand_backend.ok()) {
      std::fprintf(stderr, "%s\n",
                   ondemand_backend.status().ToString().c_str());
      return 1;
    }
    auto ondemand = RunKMeans(&*ondemand_backend, kmeans);

    // Scenario (3): exact distances.
    auto exact_backend = ExactBackend::Create(&*grid, p);
    if (!exact_backend.ok()) {
      std::fprintf(stderr, "%s\n", exact_backend.status().ToString().c_str());
      return 1;
    }
    auto exact = RunKMeans(&*exact_backend, kmeans);

    if (!precomputed.ok() || !ondemand.ok() || !exact.ok()) {
      std::fprintf(stderr, "clustering failed at p=%f\n", p);
      return 1;
    }

    const double agreement =
        100.0 * tabsketch::eval::BestMatchAgreement(
                    exact->assignment, precomputed->assignment, kClusters);
    const double spread_exact = tabsketch::eval::ClusteringSpread(
        *grid, exact->assignment, kClusters, p);
    const double spread_sketch = tabsketch::eval::ClusteringSpread(
        *grid, precomputed->assignment, kClusters, p);
    const double quality = tabsketch::eval::QualityOfSketchedClusteringPercent(
        spread_exact, spread_sketch);

    char iters[32];
    std::snprintf(iters, sizeof(iters), "%zu/%zu/%zu",
                  precomputed->iterations, ondemand->iterations,
                  exact->iterations);
    std::printf("%6.2f | %12.2f %12.2f %12.2f %12.2f | %14s | %10.1f %9.1f\n",
                p, precomputed->seconds, ondemand->seconds, exact->seconds,
                prep_seconds, iters, agreement, quality);
  }

  std::printf(
      "\nExpected shape (paper Fig 3): sketch-based runs are several times\n"
      "faster than exact and roughly flat in p; sketch preprocessing adds a\n"
      "near-constant cost (and p = 2 estimation is cheapest: L2 estimator,\n"
      "no median); agreement is high for small p and dips for p = 2, while\n"
      "quality stays ~100%% — the sketched clustering is as good as exact\n"
      "even when it is a different local minimum.\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
