// Ablation: median estimator vs L2 estimator for p = 2 sketches.
//
// The paper (Section 4.4) notes that "L2 distance is faster to estimate
// with sketches ... since the approximate distance is found by computing the
// L2 distance between the sketches, rather than by running a median
// algorithm, which is slower". This bench quantifies that remark: both
// estimators are consistent for p = 2, so the comparison is cost and
// accuracy at equal k, plus end-to-end clustering time with each.

#include <cstdio>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/ondemand.h"
#include "core/sketcher.h"
#include "data/call_volume.h"
#include "eval/confusion.h"
#include "eval/measures.h"
#include "rng/xoshiro256.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::EstimatorKind;
using tabsketch::core::LpDistance;
using tabsketch::core::Sketch;
using tabsketch::core::SketchAllTiles;
using tabsketch::core::Sketcher;
using tabsketch::core::SketchParams;

constexpr size_t kNumPairs = 20000;

void AccuracyAndCost(const tabsketch::table::TileGrid& grid,
                     EstimatorKind kind, const char* label) {
  SketchParams params{.p = 2.0, .k = 256, .seed = 5};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params, kind);
  if (!sketcher.ok() || !estimator.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return;
  }
  const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, grid);

  tabsketch::rng::Xoshiro256 gen(777);
  std::vector<double> exact(kNumPairs), approx(kNumPairs);
  std::vector<std::pair<size_t, size_t>> pairs(kNumPairs);
  for (auto& pair : pairs) {
    pair.first = gen.NextBounded(grid.num_tiles());
    do {
      pair.second = gen.NextBounded(grid.num_tiles());
    } while (pair.second == pair.first);
  }
  for (size_t i = 0; i < kNumPairs; ++i) {
    exact[i] =
        LpDistance(grid.Tile(pairs[i].first), grid.Tile(pairs[i].second),
                   2.0);
  }
  std::vector<double> scratch;
  tabsketch::util::WallTimer timer;
  for (size_t i = 0; i < kNumPairs; ++i) {
    approx[i] = estimator->EstimateWithScratch(
        sketches[pairs[i].first].values, sketches[pairs[i].second].values,
        &scratch);
  }
  const double seconds = timer.ElapsedSeconds();
  std::printf("%10s %14.0f %14.2f %14.2f\n", label,
              1e9 * seconds / static_cast<double>(kNumPairs),
              100.0 * tabsketch::eval::CumulativeCorrectness(exact, approx),
              100.0 * tabsketch::eval::AverageCorrectness(exact, approx));
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf("=== Ablation: median vs L2 estimator for p = 2 ===\n");

  tabsketch::data::CallVolumeOptions options;
  options.num_stations = 512;
  options.bins_per_day = 144;
  options.num_days = 4;
  auto volume = tabsketch::data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  auto grid = tabsketch::table::TileGrid::Create(&*volume, 16, 144);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu tiles of %zu values, k = 256, %zu pairs\n\n",
              grid->num_tiles(), grid->tile_size(), kNumPairs);

  std::printf("%10s %14s %14s %14s\n", "estimator", "ns/compare",
              "cum_corr%", "avg_corr%");
  AccuracyAndCost(*grid, EstimatorKind::kMedian, "median");
  AccuracyAndCost(*grid, EstimatorKind::kL2, "l2");

  // End-to-end clustering with each estimator.
  std::printf("\n20-means end-to-end (precomputed sketches):\n");
  std::printf("%10s %14s %10s\n", "estimator", "cluster_s", "iters");
  for (EstimatorKind kind : {EstimatorKind::kMedian, EstimatorKind::kL2}) {
    auto backend = tabsketch::cluster::SketchBackend::Create(
        &*grid, {.p = 2.0, .k = 256, .seed = 5},
        tabsketch::cluster::SketchMode::kPrecomputed, kind);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    auto result = tabsketch::cluster::RunKMeans(
        &*backend, {.k = 20, .max_iterations = 30, .seed = 2002});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%10s %14.3f %10zu\n",
                kind == EstimatorKind::kMedian ? "median" : "l2",
                result->seconds, result->iterations);
  }

  std::printf(
      "\nExpected shape: both estimators are accurate; the L2 estimator is\n"
      "several times cheaper per comparison (no selection), which is why\n"
      "the library uses it automatically when p = 2 (EstimatorKind::kAuto).\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
