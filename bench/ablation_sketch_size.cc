// Ablation: sketch size k vs estimation accuracy and comparison cost.
//
// The paper states that "the accuracy of sketching can be improved by using
// larger sized sketches" (Section 4.3) and the theory gives
// k = O(log(1/delta)/eps^2) (Theorem 2). This bench quantifies the tradeoff
// on synthetic call-volume tiles: average/pairwise correctness and
// per-comparison latency as k sweeps 16 ... 1024, for a fractional, the L1
// and the L2 norm.

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/ondemand.h"
#include "core/sketcher.h"
#include "data/call_volume.h"
#include "eval/measures.h"
#include "rng/xoshiro256.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::LpDistance;
using tabsketch::core::Sketch;
using tabsketch::core::SketchAllTiles;
using tabsketch::core::Sketcher;
using tabsketch::core::SketchParams;

constexpr size_t kNumPairs = 4000;

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf("=== Ablation: sketch size k (accuracy vs cost) ===\n");

  tabsketch::data::CallVolumeOptions options;
  options.num_stations = 256;
  options.bins_per_day = 144;
  auto volume = tabsketch::data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  auto grid = tabsketch::table::TileGrid::Create(&*volume, 16, 16);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu tiles of %zu values, %zu random pairs per row\n\n",
              grid->num_tiles(), grid->tile_size(), kNumPairs);

  // Random tile pairs and triples, shared across all rows.
  tabsketch::rng::Xoshiro256 gen(12345);
  std::vector<size_t> xs(kNumPairs), ys(kNumPairs), zs(kNumPairs);
  for (size_t i = 0; i < kNumPairs; ++i) {
    xs[i] = gen.NextBounded(grid->num_tiles());
    do {
      ys[i] = gen.NextBounded(grid->num_tiles());
    } while (ys[i] == xs[i]);
    do {
      zs[i] = gen.NextBounded(grid->num_tiles());
    } while (zs[i] == xs[i] || zs[i] == ys[i]);
  }

  for (double p : {0.5, 1.0, 2.0}) {
    // Exact references.
    std::vector<double> exact_xy(kNumPairs), exact_xz(kNumPairs);
    for (size_t i = 0; i < kNumPairs; ++i) {
      exact_xy[i] = LpDistance(grid->Tile(xs[i]), grid->Tile(ys[i]), p);
      exact_xz[i] = LpDistance(grid->Tile(xs[i]), grid->Tile(zs[i]), p);
    }

    std::printf("--- p = %.1f ---\n", p);
    std::printf("%8s %12s %12s %16s\n", "k", "avg_corr%", "pair_corr%",
                "ns/comparison");
    for (size_t k : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      SketchParams params{.p = p, .k = k, .seed = 9};
      auto sketcher = Sketcher::Create(params);
      auto estimator = DistanceEstimator::Create(params);
      if (!sketcher.ok() || !estimator.ok()) {
        std::fprintf(stderr, "setup failed\n");
        return 1;
      }
      const std::vector<Sketch> sketches = SketchAllTiles(*sketcher, *grid);

      std::vector<double> approx_xy(kNumPairs), approx_xz(kNumPairs);
      std::vector<double> scratch;
      tabsketch::util::WallTimer timer;
      for (size_t i = 0; i < kNumPairs; ++i) {
        approx_xy[i] = estimator->EstimateWithScratch(
            sketches[xs[i]].values, sketches[ys[i]].values, &scratch);
      }
      const double seconds = timer.ElapsedSeconds();
      for (size_t i = 0; i < kNumPairs; ++i) {
        approx_xz[i] = estimator->EstimateWithScratch(
            sketches[xs[i]].values, sketches[zs[i]].values, &scratch);
      }

      const double average =
          tabsketch::eval::AverageCorrectness(exact_xy, approx_xy);
      const double pairwise =
          tabsketch::eval::PairwiseComparisonCorrectness(
              exact_xy, exact_xz, approx_xy, approx_xz);
      std::printf("%8zu %12.2f %12.2f %16.0f\n", k, 100.0 * average,
                  100.0 * pairwise,
                  1e9 * seconds / static_cast<double>(kNumPairs));
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape: accuracy rises with k roughly as 1 - c/sqrt(k) and\n"
      "cost rises linearly in k; the paper's clustering settings (k = 256)\n"
      "sit where pairwise correctness has largely saturated.\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
