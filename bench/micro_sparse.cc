// Micro-benchmark of the very-sparse-projection tier (DESIGN.md Section 16):
// on a 1024x1024 table it builds the small-window rungs of the dyadic pool
// ladder (8/16-cell sides — the rungs where the padded-FFT cost dwarfs
// the O(nnz) time-domain walk) and measures
//
//   1. pool-build wall time, dense family (sparsity 1) vs sparsity 0.1 —
//      the headline claim is >= 2x end-to-end build speedup from routing
//      sparse kernels onto the direct path;
//   2. a full-rate audit of the sparse pool's canonical sketches: the
//      median relative error of estimated vs exact L1 distances over
//      sampled window pairs must sit inside the Li envelope
//      eps = C(p)/sqrt(k) * sparsity^(-1/2) of DESIGN.md Section 16;
//   3. byte-identity of the sparse pool across thread counts (path
//      selection depends only on sizes and nnz, never on scheduling).
//
// Rows land in BENCH_sparse.json; a failed assertion exits non-zero so CI
// can gate on it.
//
// usage: micro_sparse [--metrics-json=FILE] [--trace-json=FILE]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_pool.h"
#include "data/six_region.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "util/observability.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

using tabsketch::core::DistanceEstimator;
using tabsketch::core::PoolOptions;
using tabsketch::core::SketchParams;
using tabsketch::core::SketchPool;

constexpr double kSparsity = 0.1;
constexpr double kMinSpeedup = 2.0;   // sparse vs dense pool build
constexpr size_t kSketchK = 16;
constexpr size_t kAuditPairs = 200;   // sampled window pairs per rung

/// Median of a (small) vector, destructively.
double Median(std::vector<double>* values) {
  std::sort(values->begin(), values->end());
  return (*values)[values->size() / 2];
}

bool PoolsAreBitIdentical(const SketchPool& a, const SketchPool& b) {
  if (a.CanonicalSizes() != b.CanonicalSizes()) return false;
  for (const auto& [shape, field] : a.fields()) {
    const auto it = b.fields().find(shape);
    if (it == b.fields().end()) return false;
    for (size_t plane = 0; plane < field.k(); ++plane) {
      const auto lhs = field.plane(plane).Values();
      const auto rhs = it->second.plane(plane).Values();
      if (lhs.size() != rhs.size()) return false;
      for (size_t i = 0; i < lhs.size(); ++i) {
        if (lhs[i] != rhs[i]) return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);

  tabsketch::data::SixRegionOptions data_options;
  data_options.rows = 1024;
  data_options.cols = 1024;
  data_options.seed = 42;
  auto dataset = tabsketch::data::GenerateSixRegion(data_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const tabsketch::table::Matrix& data = dataset->table;

  const SketchParams dense_params{.p = 1.0, .k = kSketchK, .seed = 42};
  const SketchParams sparse_params{
      .p = 1.0, .k = kSketchK, .seed = 42, .sparsity = kSparsity};

  // Small-window rungs only: 8/16-cell sides over the 1024x1024 table.
  // These are the rungs where every FFT pass runs over the same padded
  // 2048x2048 grid regardless of the kernel, while the sparse-direct walk
  // touches nnz * positions ~ 0.1 * side^2 * 1M cells — the regime the
  // auto-router sends to the time-domain path. (By the 32-cell rung the
  // direct walk's nnz ~ 102 already costs about as much as one FFT pass,
  // so including it would only dilute the contrast being tracked.)
  PoolOptions options;
  options.log2_min_rows = 3;
  options.log2_max_rows = 4;
  options.log2_min_cols = 3;
  options.log2_max_cols = 4;
  options.threads = tabsketch::util::DefaultThreadCount();

  std::printf("=== Micro-benchmark: very sparse stable projections ===\n");
  std::printf("table %zux%zu, windows 8..16, k=%zu, p=%.0f, sparsity %.2f, "
              "%zu threads\n",
              data.rows(), data.cols(), dense_params.k, dense_params.p,
              kSparsity, options.threads);

  // --- 1. pool-build wall time, dense vs sparse ------------------------
  tabsketch::util::WallTimer dense_timer;
  auto dense_pool = SketchPool::Build(data, dense_params, options);
  const double dense_seconds = dense_timer.ElapsedSeconds();
  if (!dense_pool.ok()) {
    std::fprintf(stderr, "dense build: %s\n",
                 dense_pool.status().ToString().c_str());
    return 1;
  }
  tabsketch::util::WallTimer sparse_timer;
  auto sparse_pool = SketchPool::Build(data, sparse_params, options);
  const double sparse_seconds = sparse_timer.ElapsedSeconds();
  if (!sparse_pool.ok()) {
    std::fprintf(stderr, "sparse build: %s\n",
                 sparse_pool.status().ToString().c_str());
    return 1;
  }
  const double speedup = dense_seconds / sparse_seconds;
  std::printf("pool build: dense %.3fs, sparse %.3fs -> %.2fx\n",
              dense_seconds, sparse_seconds, speedup);

  bool failed = false;
  if (speedup < kMinSpeedup) {
    failed = true;
    std::fprintf(stderr,
                 "FAIL: sparse pool build %.2fx vs dense, needs %.1fx\n",
                 speedup, kMinSpeedup);
  }

  // --- 2. full-rate audit: estimate vs exact within the Li envelope ----
  // eps = C(p)/sqrt(k) * sparsity^(-1/2), C(1) = 4 (DESIGN.md Section 16).
  // The demanded band is the guarantee; the measured medians run far
  // inside it for spread-out data, and both land in the JSON so the margin
  // is tracked over time.
  const double li_bound =
      4.0 / std::sqrt(static_cast<double>(kSketchK)) / std::sqrt(kSparsity);
  auto estimator = DistanceEstimator::Create(sparse_params);
  if (!estimator.ok()) {
    std::fprintf(stderr, "estimator setup failed\n");
    return 1;
  }
  struct AuditRow {
    size_t window;
    double median_relerr;
  };
  std::vector<AuditRow> audits;
  tabsketch::rng::Xoshiro256 gen(7);
  for (const size_t window : {size_t{8}, size_t{16}}) {
    std::vector<double> relerrs;
    relerrs.reserve(kAuditPairs);
    const size_t max_anchor_row = data.rows() - window;
    const size_t max_anchor_col = data.cols() - window;
    for (size_t i = 0; i < kAuditPairs; ++i) {
      const size_t ar = gen.NextBounded(max_anchor_row + 1);
      const size_t ac = gen.NextBounded(max_anchor_col + 1);
      const size_t br = gen.NextBounded(max_anchor_row + 1);
      const size_t bc = gen.NextBounded(max_anchor_col + 1);
      auto sa = sparse_pool->CanonicalSketchAt(ar, ac, window, window);
      auto sb = sparse_pool->CanonicalSketchAt(br, bc, window, window);
      if (!sa.ok() || !sb.ok()) {
        std::fprintf(stderr, "canonical sketch lookup failed\n");
        return 1;
      }
      const double exact = tabsketch::core::LpDistance(
          data.Window(ar, ac, window, window),
          data.Window(br, bc, window, window), sparse_params.p);
      if (exact <= 0.0) continue;
      const double approx = estimator->Estimate(*sa, *sb);
      relerrs.push_back(std::fabs(approx / exact - 1.0));
    }
    AuditRow row{window, Median(&relerrs)};
    audits.push_back(row);
    std::printf("audit window %2zu: median relerr %.4f (Li bound %.4f)\n",
                row.window, row.median_relerr, li_bound);
    if (row.median_relerr > li_bound) {
      failed = true;
      std::fprintf(stderr,
                   "FAIL: window %zu median relerr %.4f outside the Li "
                   "envelope %.4f\n",
                   row.window, row.median_relerr, li_bound);
    }
  }

  // --- 3. byte-identity across thread counts ---------------------------
  // Explicit 1 vs 4 threads (not DefaultThreadCount, which can be 1 on a
  // constrained runner and would make the comparison vacuous).
  PoolOptions serial_options = options;
  serial_options.threads = 1;
  auto serial_pool = SketchPool::Build(data, sparse_params, serial_options);
  PoolOptions wide_options = options;
  wide_options.threads = 4;
  auto wide_pool = SketchPool::Build(data, sparse_params, wide_options);
  if (!serial_pool.ok() || !wide_pool.ok()) {
    std::fprintf(stderr, "thread-identity builds failed\n");
    return 1;
  }
  const bool identical = PoolsAreBitIdentical(*serial_pool, *wide_pool) &&
                         PoolsAreBitIdentical(*serial_pool, *sparse_pool);
  std::printf("sparse pool bytes identical across 1 vs 4 threads: %s\n",
              identical ? "yes" : "NO");
  if (!identical) {
    failed = true;
    std::fprintf(stderr,
                 "FAIL: sparse pool differs across thread counts\n");
  }

  const char* json_path = "BENCH_sparse.json";
  std::FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"micro_sparse\",\n"
               "  \"table\": [%zu, %zu],\n"
               "  \"windows\": [8, 16],\n"
               "  \"sketch_k\": %zu,\n"
               "  \"p\": %.1f,\n"
               "  \"sparsity\": %.2f,\n"
               "  \"min_speedup\": %.1f,\n"
               "  \"build\": {\"dense_seconds\": %.4f, "
               "\"sparse_seconds\": %.4f, \"speedup\": %.3f},\n"
               "  \"li_bound\": %.4f,\n"
               "  \"audit\": [\n",
               data.rows(), data.cols(), kSketchK, sparse_params.p,
               kSparsity, kMinSpeedup, dense_seconds, sparse_seconds,
               speedup, li_bound);
  for (size_t i = 0; i < audits.size(); ++i) {
    std::fprintf(json,
                 "    {\"window\": %zu, \"median_relerr\": %.4f}%s\n",
                 audits[i].window, audits[i].median_relerr,
                 i + 1 < audits.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"identical_across_threads\": %s\n"
               "}\n",
               identical ? "true" : "false");
  std::fclose(json);
  std::printf("results -> %s\n", json_path);
  if (!tabsketch::util::FlushObservability(observability)) return 1;
  return failed ? 1 : 0;
}
