// Figure 4(a) reproduction: clustering time as the number of means k grows
// (4 ... 48), at p = 1, under the three distance routines. The paper's
// observations to reproduce: exact cost rises linearly with k; the gap
// between precomputed and on-demand sketching stays roughly constant (it is
// the one-off sketching cost); and at the smallest k the clustering makes too
// few comparisons to "buy back" the sketch construction cost.

#include <cstdio>

#include "cluster/exact_backend.h"
#include "cluster/kmeans.h"
#include "cluster/sketch_backend.h"
#include "data/call_volume.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/observability.h"
#include "util/timer.h"

namespace {

using tabsketch::cluster::ExactBackend;
using tabsketch::cluster::KMeansOptions;
using tabsketch::cluster::RunKMeans;
using tabsketch::cluster::SketchBackend;
using tabsketch::cluster::SketchMode;

constexpr size_t kSketchEntries = 256;
constexpr double kNorm = 1.0;

}  // namespace

int main(int argc, char** argv) {
  const tabsketch::util::ObservabilityArgs observability =
      tabsketch::util::EnableObservabilityFromArgs(&argc, argv);
  std::printf(
      "=== Figure 4(a): k-means time vs number of clusters, p = 1 ===\n");

  tabsketch::data::CallVolumeOptions options;
  options.num_stations = 1024;
  options.bins_per_day = 144;
  options.num_days = 8;
  auto volume = tabsketch::data::GenerateCallVolume(options);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  auto grid = tabsketch::table::TileGrid::Create(&*volume, 64, 144);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("table: %zux%zu, %zu tiles of %zu values\n\n", volume->rows(),
              volume->cols(), grid->num_tiles(), grid->tile_size());

  std::printf("%6s %16s %16s %12s\n", "k", "precomputed_s",
              "ondemand_total_s", "exact_s");

  for (size_t k : {4u, 8u, 12u, 16u, 20u, 24u, 48u}) {
    const KMeansOptions kmeans{.k = k, .max_iterations = 40, .seed = 2002};

    tabsketch::util::WallTimer prep_timer;
    auto precomputed_backend = SketchBackend::Create(
        &*grid, {.p = kNorm, .k = kSketchEntries, .seed = 9},
        SketchMode::kPrecomputed);
    const double prep_seconds = prep_timer.ElapsedSeconds();
    auto ondemand_backend = SketchBackend::Create(
        &*grid, {.p = kNorm, .k = kSketchEntries, .seed = 9},
        SketchMode::kOnDemand);
    auto exact_backend = ExactBackend::Create(&*grid, kNorm);
    if (!precomputed_backend.ok() || !ondemand_backend.ok() ||
        !exact_backend.ok()) {
      std::fprintf(stderr, "backend setup failed at k=%zu\n", k);
      return 1;
    }

    auto precomputed = RunKMeans(&*precomputed_backend, kmeans);
    auto ondemand = RunKMeans(&*ondemand_backend, kmeans);
    auto exact = RunKMeans(&*exact_backend, kmeans);
    if (!precomputed.ok() || !ondemand.ok() || !exact.ok()) {
      std::fprintf(stderr, "clustering failed at k=%zu\n", k);
      return 1;
    }

    // The paper plots the on-demand scenario as one total (sketching happens
    // inside the run); for the precomputed scenario sketching already
    // happened, so its curve excludes prep. Report prep once per row for
    // reference.
    std::printf("%6zu %16.2f %16.2f %12.2f   (sketch prep %.2fs)\n", k,
                precomputed->seconds, ondemand->seconds, exact->seconds,
                prep_seconds);
  }

  std::printf(
      "\nExpected shape (paper Fig 4a): exact time rises roughly linearly\n"
      "with k; both sketch curves rise much more slowly and their offset is\n"
      "the (k-independent) on-demand sketching cost; for the smallest k the\n"
      "comparisons saved may not buy back that cost.\n");
  return tabsketch::util::FlushObservability(observability) ? 0 : 1;
}
