file(REMOVE_RECURSE
  "CMakeFiles/ip_subnet_profiles.dir/ip_subnet_profiles.cpp.o"
  "CMakeFiles/ip_subnet_profiles.dir/ip_subnet_profiles.cpp.o.d"
  "ip_subnet_profiles"
  "ip_subnet_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_subnet_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
