# Empty compiler generated dependencies file for ip_subnet_profiles.
# This may be replaced when dependencies are built.
