file(REMOVE_RECURSE
  "CMakeFiles/outlier_robustness.dir/outlier_robustness.cpp.o"
  "CMakeFiles/outlier_robustness.dir/outlier_robustness.cpp.o.d"
  "outlier_robustness"
  "outlier_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
