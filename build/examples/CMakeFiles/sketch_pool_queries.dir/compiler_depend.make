# Empty compiler generated dependencies file for sketch_pool_queries.
# This may be replaced when dependencies are built.
