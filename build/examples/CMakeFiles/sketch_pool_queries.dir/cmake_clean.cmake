file(REMOVE_RECURSE
  "CMakeFiles/sketch_pool_queries.dir/sketch_pool_queries.cpp.o"
  "CMakeFiles/sketch_pool_queries.dir/sketch_pool_queries.cpp.o.d"
  "sketch_pool_queries"
  "sketch_pool_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_pool_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
