# Empty compiler generated dependencies file for time_series_trends.
# This may be replaced when dependencies are built.
