file(REMOVE_RECURSE
  "CMakeFiles/time_series_trends.dir/time_series_trends.cpp.o"
  "CMakeFiles/time_series_trends.dir/time_series_trends.cpp.o.d"
  "time_series_trends"
  "time_series_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_series_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
