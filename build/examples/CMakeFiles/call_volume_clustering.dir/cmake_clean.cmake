file(REMOVE_RECURSE
  "CMakeFiles/call_volume_clustering.dir/call_volume_clustering.cpp.o"
  "CMakeFiles/call_volume_clustering.dir/call_volume_clustering.cpp.o.d"
  "call_volume_clustering"
  "call_volume_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_volume_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
