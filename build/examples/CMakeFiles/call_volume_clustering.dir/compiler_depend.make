# Empty compiler generated dependencies file for call_volume_clustering.
# This may be replaced when dependencies are built.
