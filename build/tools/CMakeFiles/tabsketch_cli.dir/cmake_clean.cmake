file(REMOVE_RECURSE
  "CMakeFiles/tabsketch_cli.dir/tabsketch_main.cc.o"
  "CMakeFiles/tabsketch_cli.dir/tabsketch_main.cc.o.d"
  "tabsketch"
  "tabsketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabsketch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
