# Empty compiler generated dependencies file for tabsketch_cli.
# This may be replaced when dependencies are built.
