file(REMOVE_RECURSE
  "CMakeFiles/series_sketch_test.dir/series_sketch_test.cc.o"
  "CMakeFiles/series_sketch_test.dir/series_sketch_test.cc.o.d"
  "series_sketch_test"
  "series_sketch_test.pdb"
  "series_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/series_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
