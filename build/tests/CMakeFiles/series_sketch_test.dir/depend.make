# Empty dependencies file for series_sketch_test.
# This may be replaced when dependencies are built.
