file(REMOVE_RECURSE
  "CMakeFiles/ondemand_test.dir/ondemand_test.cc.o"
  "CMakeFiles/ondemand_test.dir/ondemand_test.cc.o.d"
  "ondemand_test"
  "ondemand_test.pdb"
  "ondemand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ondemand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
