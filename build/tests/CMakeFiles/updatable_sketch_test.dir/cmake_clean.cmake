file(REMOVE_RECURSE
  "CMakeFiles/updatable_sketch_test.dir/updatable_sketch_test.cc.o"
  "CMakeFiles/updatable_sketch_test.dir/updatable_sketch_test.cc.o.d"
  "updatable_sketch_test"
  "updatable_sketch_test.pdb"
  "updatable_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updatable_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
