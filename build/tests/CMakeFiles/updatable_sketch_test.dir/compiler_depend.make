# Empty compiler generated dependencies file for updatable_sketch_test.
# This may be replaced when dependencies are built.
