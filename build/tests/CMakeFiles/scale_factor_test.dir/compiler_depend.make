# Empty compiler generated dependencies file for scale_factor_test.
# This may be replaced when dependencies are built.
