file(REMOVE_RECURSE
  "CMakeFiles/scale_factor_test.dir/scale_factor_test.cc.o"
  "CMakeFiles/scale_factor_test.dir/scale_factor_test.cc.o.d"
  "scale_factor_test"
  "scale_factor_test.pdb"
  "scale_factor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
