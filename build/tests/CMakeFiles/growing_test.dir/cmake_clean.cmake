file(REMOVE_RECURSE
  "CMakeFiles/growing_test.dir/growing_test.cc.o"
  "CMakeFiles/growing_test.dir/growing_test.cc.o.d"
  "growing_test"
  "growing_test.pdb"
  "growing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
