# Empty dependencies file for pool_io_test.
# This may be replaced when dependencies are built.
