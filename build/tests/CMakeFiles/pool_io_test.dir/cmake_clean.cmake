file(REMOVE_RECURSE
  "CMakeFiles/pool_io_test.dir/pool_io_test.cc.o"
  "CMakeFiles/pool_io_test.dir/pool_io_test.cc.o.d"
  "pool_io_test"
  "pool_io_test.pdb"
  "pool_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
