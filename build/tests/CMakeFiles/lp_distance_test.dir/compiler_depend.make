# Empty compiler generated dependencies file for lp_distance_test.
# This may be replaced when dependencies are built.
