file(REMOVE_RECURSE
  "CMakeFiles/lp_distance_test.dir/lp_distance_test.cc.o"
  "CMakeFiles/lp_distance_test.dir/lp_distance_test.cc.o.d"
  "lp_distance_test"
  "lp_distance_test.pdb"
  "lp_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
