file(REMOVE_RECURSE
  "CMakeFiles/guarantees_test.dir/guarantees_test.cc.o"
  "CMakeFiles/guarantees_test.dir/guarantees_test.cc.o.d"
  "guarantees_test"
  "guarantees_test.pdb"
  "guarantees_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarantees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
