file(REMOVE_RECURSE
  "CMakeFiles/ip_traffic_test.dir/ip_traffic_test.cc.o"
  "CMakeFiles/ip_traffic_test.dir/ip_traffic_test.cc.o.d"
  "ip_traffic_test"
  "ip_traffic_test.pdb"
  "ip_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
