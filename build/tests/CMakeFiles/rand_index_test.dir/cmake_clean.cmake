file(REMOVE_RECURSE
  "CMakeFiles/rand_index_test.dir/rand_index_test.cc.o"
  "CMakeFiles/rand_index_test.dir/rand_index_test.cc.o.d"
  "rand_index_test"
  "rand_index_test.pdb"
  "rand_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rand_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
