file(REMOVE_RECURSE
  "CMakeFiles/fig4b_known_clustering.dir/fig4b_known_clustering.cc.o"
  "CMakeFiles/fig4b_known_clustering.dir/fig4b_known_clustering.cc.o.d"
  "fig4b_known_clustering"
  "fig4b_known_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_known_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
