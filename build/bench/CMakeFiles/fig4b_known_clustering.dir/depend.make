# Empty dependencies file for fig4b_known_clustering.
# This may be replaced when dependencies are built.
