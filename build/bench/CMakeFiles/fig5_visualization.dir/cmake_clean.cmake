file(REMOVE_RECURSE
  "CMakeFiles/fig5_visualization.dir/fig5_visualization.cc.o"
  "CMakeFiles/fig5_visualization.dir/fig5_visualization.cc.o.d"
  "fig5_visualization"
  "fig5_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
