# Empty dependencies file for fig4a_kmeans_vary_k.
# This may be replaced when dependencies are built.
