file(REMOVE_RECURSE
  "CMakeFiles/ablation_sketch_size.dir/ablation_sketch_size.cc.o"
  "CMakeFiles/ablation_sketch_size.dir/ablation_sketch_size.cc.o.d"
  "ablation_sketch_size"
  "ablation_sketch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sketch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
