# Empty dependencies file for ablation_sketch_size.
# This may be replaced when dependencies are built.
