# Empty compiler generated dependencies file for fig2_distance_timing.
# This may be replaced when dependencies are built.
