file(REMOVE_RECURSE
  "CMakeFiles/fig2_distance_timing.dir/fig2_distance_timing.cc.o"
  "CMakeFiles/fig2_distance_timing.dir/fig2_distance_timing.cc.o.d"
  "fig2_distance_timing"
  "fig2_distance_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_distance_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
