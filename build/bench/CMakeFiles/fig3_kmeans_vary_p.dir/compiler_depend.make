# Empty compiler generated dependencies file for fig3_kmeans_vary_p.
# This may be replaced when dependencies are built.
