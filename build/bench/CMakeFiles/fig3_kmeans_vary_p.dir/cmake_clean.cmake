file(REMOVE_RECURSE
  "CMakeFiles/fig3_kmeans_vary_p.dir/fig3_kmeans_vary_p.cc.o"
  "CMakeFiles/fig3_kmeans_vary_p.dir/fig3_kmeans_vary_p.cc.o.d"
  "fig3_kmeans_vary_p"
  "fig3_kmeans_vary_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kmeans_vary_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
