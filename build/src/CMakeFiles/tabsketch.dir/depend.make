# Empty dependencies file for tabsketch.
# This may be replaced when dependencies are built.
