file(REMOVE_RECURSE
  "libtabsketch.a"
)
