
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/commands.cc" "src/CMakeFiles/tabsketch.dir/cli/commands.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cli/commands.cc.o.d"
  "/root/repo/src/cli/flags.cc" "src/CMakeFiles/tabsketch.dir/cli/flags.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cli/flags.cc.o.d"
  "/root/repo/src/cluster/backend.cc" "src/CMakeFiles/tabsketch.dir/cluster/backend.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/backend.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/tabsketch.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/exact_backend.cc" "src/CMakeFiles/tabsketch.dir/cluster/exact_backend.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/exact_backend.cc.o.d"
  "/root/repo/src/cluster/hierarchy.cc" "src/CMakeFiles/tabsketch.dir/cluster/hierarchy.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/hierarchy.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/tabsketch.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/kmedoids.cc" "src/CMakeFiles/tabsketch.dir/cluster/kmedoids.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/kmedoids.cc.o.d"
  "/root/repo/src/cluster/seeding.cc" "src/CMakeFiles/tabsketch.dir/cluster/seeding.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/seeding.cc.o.d"
  "/root/repo/src/cluster/sketch_backend.cc" "src/CMakeFiles/tabsketch.dir/cluster/sketch_backend.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/cluster/sketch_backend.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/tabsketch.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/growing.cc" "src/CMakeFiles/tabsketch.dir/core/growing.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/growing.cc.o.d"
  "/root/repo/src/core/knn.cc" "src/CMakeFiles/tabsketch.dir/core/knn.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/knn.cc.o.d"
  "/root/repo/src/core/lp_distance.cc" "src/CMakeFiles/tabsketch.dir/core/lp_distance.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/lp_distance.cc.o.d"
  "/root/repo/src/core/ondemand.cc" "src/CMakeFiles/tabsketch.dir/core/ondemand.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/ondemand.cc.o.d"
  "/root/repo/src/core/pool_io.cc" "src/CMakeFiles/tabsketch.dir/core/pool_io.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/pool_io.cc.o.d"
  "/root/repo/src/core/scale_factor.cc" "src/CMakeFiles/tabsketch.dir/core/scale_factor.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/scale_factor.cc.o.d"
  "/root/repo/src/core/series_sketch.cc" "src/CMakeFiles/tabsketch.dir/core/series_sketch.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/series_sketch.cc.o.d"
  "/root/repo/src/core/sketch_io.cc" "src/CMakeFiles/tabsketch.dir/core/sketch_io.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/sketch_io.cc.o.d"
  "/root/repo/src/core/sketch_pool.cc" "src/CMakeFiles/tabsketch.dir/core/sketch_pool.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/sketch_pool.cc.o.d"
  "/root/repo/src/core/sketcher.cc" "src/CMakeFiles/tabsketch.dir/core/sketcher.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/sketcher.cc.o.d"
  "/root/repo/src/core/stable_matrix.cc" "src/CMakeFiles/tabsketch.dir/core/stable_matrix.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/stable_matrix.cc.o.d"
  "/root/repo/src/core/updatable_sketch.cc" "src/CMakeFiles/tabsketch.dir/core/updatable_sketch.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/core/updatable_sketch.cc.o.d"
  "/root/repo/src/data/call_volume.cc" "src/CMakeFiles/tabsketch.dir/data/call_volume.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/data/call_volume.cc.o.d"
  "/root/repo/src/data/ip_traffic.cc" "src/CMakeFiles/tabsketch.dir/data/ip_traffic.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/data/ip_traffic.cc.o.d"
  "/root/repo/src/data/six_region.cc" "src/CMakeFiles/tabsketch.dir/data/six_region.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/data/six_region.cc.o.d"
  "/root/repo/src/eval/confusion.cc" "src/CMakeFiles/tabsketch.dir/eval/confusion.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/eval/confusion.cc.o.d"
  "/root/repo/src/eval/hungarian.cc" "src/CMakeFiles/tabsketch.dir/eval/hungarian.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/eval/hungarian.cc.o.d"
  "/root/repo/src/eval/measures.cc" "src/CMakeFiles/tabsketch.dir/eval/measures.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/eval/measures.cc.o.d"
  "/root/repo/src/eval/quality.cc" "src/CMakeFiles/tabsketch.dir/eval/quality.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/eval/quality.cc.o.d"
  "/root/repo/src/eval/rand_index.cc" "src/CMakeFiles/tabsketch.dir/eval/rand_index.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/eval/rand_index.cc.o.d"
  "/root/repo/src/fft/complex_fft.cc" "src/CMakeFiles/tabsketch.dir/fft/complex_fft.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/fft/complex_fft.cc.o.d"
  "/root/repo/src/fft/correlate.cc" "src/CMakeFiles/tabsketch.dir/fft/correlate.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/fft/correlate.cc.o.d"
  "/root/repo/src/fft/correlate1d.cc" "src/CMakeFiles/tabsketch.dir/fft/correlate1d.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/fft/correlate1d.cc.o.d"
  "/root/repo/src/fft/fft2d.cc" "src/CMakeFiles/tabsketch.dir/fft/fft2d.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/fft/fft2d.cc.o.d"
  "/root/repo/src/rng/distributions.cc" "src/CMakeFiles/tabsketch.dir/rng/distributions.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/rng/distributions.cc.o.d"
  "/root/repo/src/rng/stable.cc" "src/CMakeFiles/tabsketch.dir/rng/stable.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/rng/stable.cc.o.d"
  "/root/repo/src/table/matrix.cc" "src/CMakeFiles/tabsketch.dir/table/matrix.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/table/matrix.cc.o.d"
  "/root/repo/src/table/table_io.cc" "src/CMakeFiles/tabsketch.dir/table/table_io.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/table/table_io.cc.o.d"
  "/root/repo/src/table/tiling.cc" "src/CMakeFiles/tabsketch.dir/table/tiling.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/table/tiling.cc.o.d"
  "/root/repo/src/table/transforms.cc" "src/CMakeFiles/tabsketch.dir/table/transforms.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/table/transforms.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/tabsketch.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/util/logging.cc.o.d"
  "/root/repo/src/util/median.cc" "src/CMakeFiles/tabsketch.dir/util/median.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/util/median.cc.o.d"
  "/root/repo/src/util/normal.cc" "src/CMakeFiles/tabsketch.dir/util/normal.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/util/normal.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/CMakeFiles/tabsketch.dir/util/parallel.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/util/parallel.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/tabsketch.dir/util/status.cc.o" "gcc" "src/CMakeFiles/tabsketch.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
