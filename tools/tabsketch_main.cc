// The `tabsketch` command-line tool. All logic lives in cli/commands.h so
// it is unit-tested; this is just the process shell.

#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return tabsketch::cli::RunTabsketchCli(argc, argv, std::cout, std::cerr);
}
