#!/usr/bin/env bash
# Builds the asan CMake preset and runs the tests that exercise the FFT
# engine's buffer handling (twiddle tables, reusable workspaces, pair
# packing, pruned passes) and the pool build that drives it, under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
# usage: tools/check_asan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

# The FFT/pool surface; the full suite also runs clean but takes much longer
# under the sanitizer.
ASAN_TESTS='Fft|Dft|Correlat|Twiddle|SketchPool|OddK|Sketcher|Metrics|MetricsSnapshot|MetricsTicker|Golden|EpsilonDelta|DyadicFactor|TraceRecorder|Audit|LruSketchCache|QueryEngine|ParseBatch|Serve|Admission|Snapshot|CodeKernels|CodePool|Quant|Streaming|StreamServe|BuildSuccessor|AppendPiece|Sparse'

ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure \
        -R "${ASAN_TESTS}" "$@"

echo "asan: fft/pool tests clean"
