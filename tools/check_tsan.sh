#!/usr/bin/env bash
# Builds the tsan CMake preset and runs the tests that exercise the parallel
# code paths (pool build, shared CorrelationPlan, threaded k-means, on-demand
# cache, ParallelFor itself) under ThreadSanitizer.
#
# usage: tools/check_tsan.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

# The parallel surface; everything else is single-threaded and only slows
# the (10-20x overhead) sanitizer run down.
TSAN_TESTS='ParallelFor|ParallelSketch|DefaultThreadCount|SketchPool|CorrelationPlan|OnDemand|KMeans|SketchBackend|Metrics|MetricsSnapshot|MetricsTicker|TraceRecorder|Audit|LruSketchCache|QueryEngine|Serve|Admission|Snapshot|CodeKernels|CodePool|Quant|Streaming|StreamServe|BuildSuccessor|Sparse'

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure \
        -R "${TSAN_TESTS}" "$@"

echo "tsan: all parallel tests clean"
