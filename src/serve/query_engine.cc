#include "serve/query_engine.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "core/knn.h"
#include "core/lp_distance.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace tabsketch::serve {
namespace {

/// Strict size_t token parse (no sign, no trailing junk).
bool ParseIndex(const std::string& token, size_t* out) {
  unsigned long long value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = static_cast<size_t>(value);
  return true;
}

util::Status LineError(size_t line_number, const std::string& message) {
  std::ostringstream msg;
  msg << "batch line " << line_number << ": " << message;
  return util::Status::InvalidArgument(msg.str());
}

}  // namespace

util::Result<std::optional<QueryRequest>> ParseBatchLine(std::string line,
                                                         size_t line_number) {
  // std::getline splits on '\n' only, so a CRLF-terminated line arrives with
  // a trailing '\r' glued to the final token; strip it before tokenizing so
  // CRLF batches parse identically to LF ones.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // Strip a trailing comment, then tokenize what is left.
  const size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  std::istringstream tokens(line);
  std::string verb;
  if (!(tokens >> verb)) return std::optional<QueryRequest>();

  QueryRequest request;
  std::string first, second, extra;
  if (!(tokens >> first >> second)) {
    return LineError(line_number, "'" + verb + "' needs two arguments");
  }
  if (tokens >> extra) {
    return LineError(line_number, "trailing token '" + extra + "'");
  }
  if (verb == "distance") {
    request.kind = QueryRequest::Kind::kDistance;
    if (!ParseIndex(first, &request.a) || !ParseIndex(second, &request.b)) {
      return LineError(line_number, "expected 'distance <tileA> <tileB>'");
    }
  } else if (verb == "knn") {
    request.kind = QueryRequest::Kind::kKnn;
    if (!ParseIndex(first, &request.a) || !ParseIndex(second, &request.k)) {
      return LineError(line_number, "expected 'knn <tile> <k>'");
    }
  } else {
    return LineError(line_number,
                     "unknown request '" + verb + "' (distance, knn)");
  }
  return std::optional<QueryRequest>(request);
}

util::Result<std::vector<QueryRequest>> ParseBatch(std::istream& in) {
  std::vector<QueryRequest> requests;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    TABSKETCH_ASSIGN_OR_RETURN(std::optional<QueryRequest> request,
                               ParseBatchLine(std::move(line), line_number));
    if (request.has_value()) requests.push_back(*request);
  }
  return requests;
}

util::Result<std::vector<QueryRequest>> ParseBatchFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open batch file " + path);
  return ParseBatch(in);
}

QueryEngine::QueryEngine(const table::TileGrid* grid,
                         core::TileSketchCache* cache,
                         const core::DistanceEstimator* estimator,
                         const QueryEngineOptions& options,
                         const core::QuantizedCodePool* codes)
    : grid_(grid),
      cache_(cache),
      estimator_(estimator),
      options_(options),
      codes_(codes) {}

std::shared_ptr<const core::Sketch> QueryEngine::GetSketch(
    size_t index, RequestStats* stats) const {
  bool computed = false;
  std::shared_ptr<const core::Sketch> sketch =
      cache_->GetTracked(index, &computed);
  if (stats != nullptr) {
    if (computed) {
      ++stats->cache_misses;
    } else {
      ++stats->cache_hits;
    }
  }
  return sketch;
}

std::string QueryEngine::AnswerDistance(const QueryRequest& request,
                                        Workspace* workspace,
                                        RequestStats* stats) const {
  const std::shared_ptr<const core::Sketch> a = GetSketch(request.a, stats);
  const std::shared_ptr<const core::Sketch> b = GetSketch(request.b, stats);
  const double estimate = estimator_->EstimateWithScratch(
      a->values, b->values, &workspace->scratch);
  std::ostringstream out;
  out.precision(kAnswerPrecision);
  out << "distance " << request.a << " " << request.b << " = " << estimate;
  return out.str();
}

void QueryEngine::QuantFilterCandidates(size_t query, size_t want,
                                        Workspace* workspace,
                                        RequestStats* stats) const {
  const core::QuantizedCodePool& pool = *codes_;
  const size_t n = cache_->num_tiles();
  const bool l2 = estimator_->kind() == core::EstimatorKind::kL2;
  const double inv_scale = 1.0 / estimator_->scale();

  std::vector<core::Neighbor>& codes = workspace->code_neighbors;
  codes.clear();
  {
    TABSKETCH_TRACE_SPAN("quant.scan");
    for (size_t i = 0; i < n; ++i) {
      if (i == query) continue;
      codes.push_back(core::Neighbor{
          i, pool.CodeEstimate(query, i, l2, &workspace->code_scratch) *
                 inv_scale});
    }
  }
  TABSKETCH_METRIC_COUNT_N("quant.scan.tiles", codes.size());
  TABSKETCH_METRIC_COUNT_N(
      "quant.scan.bytes",
      2 * codes.size() * pool.k() * core::QuantCodeBytes(pool.kind()));

  // The safe over-fetch threshold: every tile the full scan could rank in
  // its top `want` has a code distance within 2*slack of the want-th best
  // code distance (each side of the comparison moves by at most slack —
  // DESIGN.md §13). A NaN want-th distance (fewer than `want` usable tiles)
  // or a NaN candidate distance fails the `>` test, so NaN is always kept.
  double threshold = std::numeric_limits<double>::infinity();
  if (codes.size() > want) {
    std::nth_element(codes.begin(),
                     codes.begin() + static_cast<ptrdiff_t>(want - 1),
                     codes.end(), core::NeighborBefore);
    threshold =
        codes[want - 1].distance + 2.0 * pool.Slack(*estimator_);
  }

  // Refine the survivors with full double sketches — from here on the
  // pipeline is exactly the unquantized scan, restricted to indices that
  // can still influence the answer.
  const std::shared_ptr<const core::Sketch> query_sketch =
      GetSketch(query, stats);
  std::vector<core::Neighbor>& out = workspace->neighbors;
  for (const core::Neighbor& candidate : codes) {
    if (candidate.distance > threshold) continue;
    const std::shared_ptr<const core::Sketch> other =
        GetSketch(candidate.index, stats);
    out.push_back(core::Neighbor{
        candidate.index,
        estimator_->EstimateWithScratch(query_sketch->values, other->values,
                                        &workspace->scratch)});
  }
  TABSKETCH_METRIC_COUNT_N("quant.candidates.kept", out.size());
  if (stats != nullptr) {
    stats->quant_scanned += codes.size();
    stats->quant_kept += out.size();
  }
}

std::string QueryEngine::AnswerKnn(const QueryRequest& request,
                                   Workspace* workspace,
                                   RequestStats* stats) const {
  const size_t n = cache_->num_tiles();

  size_t want = request.k;
  if (options_.refine) {
    // Candidate-set sizing mirrors the TopKFilterRefine guidance: modestly
    // above k unless the caller pinned it, clamped to the corpus.
    want = options_.candidates > 0
               ? options_.candidates
               : std::max(3 * request.k, request.k + 8);
    want = std::min(std::max(want, request.k), n - 1);
  }

  std::vector<core::Neighbor>& all = workspace->neighbors;
  all.clear();
  if (options_.quant != core::QuantKind::kOff) {
    QuantFilterCandidates(request.a, want, workspace, stats);
  } else {
    // Filter: estimated distance to every other tile, sketches via the
    // cache.
    const std::shared_ptr<const core::Sketch> query =
        GetSketch(request.a, stats);
    for (size_t i = 0; i < n; ++i) {
      if (i == request.a) continue;
      const std::shared_ptr<const core::Sketch> other = GetSketch(i, stats);
      all.push_back(core::Neighbor{
          i, estimator_->EstimateWithScratch(query->values, other->values,
                                             &workspace->scratch)});
    }
  }
  core::SmallestKNeighborsInPlace(&all, want);

  std::vector<core::Neighbor>* top = &all;
  if (options_.refine) {
    // Refine: exact Lp distances re-rank the candidates, so the reported
    // distances are exact (TopKFilterRefine semantics).
    const table::TableView query_view = grid_->Tile(request.a);
    std::vector<core::Neighbor>& refined = workspace->refined;
    refined.clear();
    for (const core::Neighbor& candidate : all) {
      refined.push_back(core::Neighbor{
          candidate.index,
          core::LpDistance(query_view, grid_->Tile(candidate.index),
                           estimator_->p())});
    }
    core::SmallestKNeighborsInPlace(&refined, request.k);
    top = &refined;
  }

  std::ostringstream out;
  out.precision(kAnswerPrecision);
  out << "knn " << request.a << " " << request.k << " =";
  for (const core::Neighbor& neighbor : *top) {
    out << " " << neighbor.index << ":" << neighbor.distance;
  }
  return out.str();
}

util::Result<std::vector<std::string>> QueryEngine::Run(
    std::span<const QueryRequest> batch, RequestStats* stats) const {
  const size_t n = cache_->num_tiles();
  if (grid_ != nullptr && grid_->num_tiles() != n) {
    return util::Status::InvalidArgument(
        "grid and sketch cache disagree on the tile count");
  }
  if (options_.refine && grid_ == nullptr) {
    return util::Status::InvalidArgument(
        "refined knn needs table data, not just sketches");
  }
  if (options_.quant != core::QuantKind::kOff) {
    if (codes_ == nullptr) {
      return util::Status::InvalidArgument(
          "quantized filtering needs a code pool");
    }
    if (codes_->kind() != options_.quant) {
      return util::Status::InvalidArgument(
          "code pool kind does not match the requested quantization");
    }
    if (codes_->count() != n) {
      return util::Status::InvalidArgument(
          "code pool and sketch cache disagree on the tile count");
    }
  }

  // Validate everything up front so a bad request fails the whole batch
  // before any work (and the parallel loop below can never index out of
  // bounds).
  size_t distance_requests = 0;
  size_t knn_requests = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryRequest& request = batch[i];
    std::ostringstream msg;
    msg << "request " << i + 1 << ": ";
    if (request.kind == QueryRequest::Kind::kDistance) {
      ++distance_requests;
      if (request.a >= n || request.b >= n) {
        msg << "tile out of range (tiles=" << n << ")";
        return util::Status::OutOfRange(msg.str());
      }
    } else {
      ++knn_requests;
      if (request.a >= n) {
        msg << "tile out of range (tiles=" << n << ")";
        return util::Status::OutOfRange(msg.str());
      }
      if (request.k == 0 || request.k > n - 1) {
        msg << "need 1 <= k <= tiles-1, got k=" << request.k
            << " tiles=" << n;
        return util::Status::InvalidArgument(msg.str());
      }
    }
  }
  TABSKETCH_METRIC_COUNT_N("query.requests.distance", distance_requests);
  TABSKETCH_METRIC_COUNT_N("query.requests.knn", knn_requests);

  // Each request owns one pre-sized output slot, so the answer vector is
  // identical for every thread count and every cache policy. Stats get the
  // same treatment: one slot per request, summed in request order after the
  // loop, so the aggregate is deterministic too.
  std::vector<std::string> results(batch.size());
  std::vector<RequestStats> per_request(stats != nullptr ? batch.size() : 0);
  {
    TABSKETCH_TRACE_SPAN("query.batch");
    util::ParallelFor(batch.size(), options_.threads, [&](size_t i) {
      // One workspace per worker thread, warm across requests and batches:
      // candidate vectors and estimator scratch keep their capacity, so
      // steady-state knn serving allocates nothing per line.
      thread_local Workspace workspace;
      const QueryRequest& request = batch[i];
      RequestStats* slot = stats != nullptr ? &per_request[i] : nullptr;
      results[i] = request.kind == QueryRequest::Kind::kDistance
                       ? AnswerDistance(request, &workspace, slot)
                       : AnswerKnn(request, &workspace, slot);
    });
  }
  if (stats != nullptr) {
    for (const RequestStats& slot : per_request) stats->MergeFrom(slot);
  }
  return results;
}

}  // namespace tabsketch::serve
