#include "serve/query_engine.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "core/knn.h"
#include "core/lp_distance.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace tabsketch::serve {
namespace {

/// Strict size_t token parse (no sign, no trailing junk).
bool ParseIndex(const std::string& token, size_t* out) {
  unsigned long long value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = static_cast<size_t>(value);
  return true;
}

util::Status LineError(size_t line_number, const std::string& message) {
  std::ostringstream msg;
  msg << "batch line " << line_number << ": " << message;
  return util::Status::InvalidArgument(msg.str());
}

}  // namespace

util::Result<std::optional<QueryRequest>> ParseBatchLine(std::string line,
                                                         size_t line_number) {
  // std::getline splits on '\n' only, so a CRLF-terminated line arrives with
  // a trailing '\r' glued to the final token; strip it before tokenizing so
  // CRLF batches parse identically to LF ones.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  // Strip a trailing comment, then tokenize what is left.
  const size_t hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  std::istringstream tokens(line);
  std::string verb;
  if (!(tokens >> verb)) return std::optional<QueryRequest>();

  QueryRequest request;
  std::string first, second, extra;
  if (!(tokens >> first >> second)) {
    return LineError(line_number, "'" + verb + "' needs two arguments");
  }
  if (tokens >> extra) {
    return LineError(line_number, "trailing token '" + extra + "'");
  }
  if (verb == "distance") {
    request.kind = QueryRequest::Kind::kDistance;
    if (!ParseIndex(first, &request.a) || !ParseIndex(second, &request.b)) {
      return LineError(line_number, "expected 'distance <tileA> <tileB>'");
    }
  } else if (verb == "knn") {
    request.kind = QueryRequest::Kind::kKnn;
    if (!ParseIndex(first, &request.a) || !ParseIndex(second, &request.k)) {
      return LineError(line_number, "expected 'knn <tile> <k>'");
    }
  } else {
    return LineError(line_number,
                     "unknown request '" + verb + "' (distance, knn)");
  }
  return std::optional<QueryRequest>(request);
}

util::Result<std::vector<QueryRequest>> ParseBatch(std::istream& in) {
  std::vector<QueryRequest> requests;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    TABSKETCH_ASSIGN_OR_RETURN(std::optional<QueryRequest> request,
                               ParseBatchLine(std::move(line), line_number));
    if (request.has_value()) requests.push_back(*request);
  }
  return requests;
}

util::Result<std::vector<QueryRequest>> ParseBatchFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open batch file " + path);
  return ParseBatch(in);
}

QueryEngine::QueryEngine(const table::TileGrid* grid,
                         core::TileSketchCache* cache,
                         const core::DistanceEstimator* estimator,
                         const QueryEngineOptions& options)
    : grid_(grid), cache_(cache), estimator_(estimator), options_(options) {}

std::string QueryEngine::AnswerDistance(const QueryRequest& request,
                                        std::vector<double>* scratch) const {
  const std::shared_ptr<const core::Sketch> a = cache_->Get(request.a);
  const std::shared_ptr<const core::Sketch> b = cache_->Get(request.b);
  const double estimate =
      estimator_->EstimateWithScratch(a->values, b->values, scratch);
  std::ostringstream out;
  out.precision(kAnswerPrecision);
  out << "distance " << request.a << " " << request.b << " = " << estimate;
  return out.str();
}

std::string QueryEngine::AnswerKnn(const QueryRequest& request,
                                   std::vector<double>* scratch) const {
  const size_t n = cache_->num_tiles();
  const std::shared_ptr<const core::Sketch> query = cache_->Get(request.a);

  // Filter: estimated distance to every other tile, sketches via the cache.
  std::vector<core::Neighbor> all;
  all.reserve(n - 1);
  for (size_t i = 0; i < n; ++i) {
    if (i == request.a) continue;
    const std::shared_ptr<const core::Sketch> other = cache_->Get(i);
    all.push_back(core::Neighbor{
        i, estimator_->EstimateWithScratch(query->values, other->values,
                                           scratch)});
  }

  size_t want = request.k;
  if (options_.refine) {
    // Candidate-set sizing mirrors the TopKFilterRefine guidance: modestly
    // above k unless the caller pinned it, clamped to the corpus.
    want = options_.candidates > 0
               ? options_.candidates
               : std::max(3 * request.k, request.k + 8);
    want = std::min(std::max(want, request.k), n - 1);
  }
  std::vector<core::Neighbor> top =
      core::SmallestKNeighbors(std::move(all), want);

  if (options_.refine) {
    // Refine: exact Lp distances re-rank the candidates, so the reported
    // distances are exact (TopKFilterRefine semantics).
    const table::TableView query_view = grid_->Tile(request.a);
    std::vector<core::Neighbor> refined;
    refined.reserve(top.size());
    for (const core::Neighbor& candidate : top) {
      refined.push_back(core::Neighbor{
          candidate.index,
          core::LpDistance(query_view, grid_->Tile(candidate.index),
                           estimator_->p())});
    }
    top = core::SmallestKNeighbors(std::move(refined), request.k);
  }

  std::ostringstream out;
  out.precision(kAnswerPrecision);
  out << "knn " << request.a << " " << request.k << " =";
  for (const core::Neighbor& neighbor : top) {
    out << " " << neighbor.index << ":" << neighbor.distance;
  }
  return out.str();
}

util::Result<std::vector<std::string>> QueryEngine::Run(
    std::span<const QueryRequest> batch) const {
  const size_t n = cache_->num_tiles();
  if (grid_ != nullptr && grid_->num_tiles() != n) {
    return util::Status::InvalidArgument(
        "grid and sketch cache disagree on the tile count");
  }
  if (options_.refine && grid_ == nullptr) {
    return util::Status::InvalidArgument(
        "refined knn needs table data, not just sketches");
  }

  // Validate everything up front so a bad request fails the whole batch
  // before any work (and the parallel loop below can never index out of
  // bounds).
  size_t distance_requests = 0;
  size_t knn_requests = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryRequest& request = batch[i];
    std::ostringstream msg;
    msg << "request " << i + 1 << ": ";
    if (request.kind == QueryRequest::Kind::kDistance) {
      ++distance_requests;
      if (request.a >= n || request.b >= n) {
        msg << "tile out of range (tiles=" << n << ")";
        return util::Status::OutOfRange(msg.str());
      }
    } else {
      ++knn_requests;
      if (request.a >= n) {
        msg << "tile out of range (tiles=" << n << ")";
        return util::Status::OutOfRange(msg.str());
      }
      if (request.k == 0 || request.k > n - 1) {
        msg << "need 1 <= k <= tiles-1, got k=" << request.k
            << " tiles=" << n;
        return util::Status::InvalidArgument(msg.str());
      }
    }
  }
  TABSKETCH_METRIC_COUNT_N("query.requests.distance", distance_requests);
  TABSKETCH_METRIC_COUNT_N("query.requests.knn", knn_requests);

  // Each request owns one pre-sized output slot, so the answer vector is
  // identical for every thread count and every cache policy.
  std::vector<std::string> results(batch.size());
  {
    TABSKETCH_TRACE_SPAN("query.batch");
    util::ParallelFor(batch.size(), options_.threads, [&](size_t i) {
      thread_local std::vector<double> scratch;
      const QueryRequest& request = batch[i];
      results[i] = request.kind == QueryRequest::Kind::kDistance
                       ? AnswerDistance(request, &scratch)
                       : AnswerKnn(request, &scratch);
    });
  }
  return results;
}

}  // namespace tabsketch::serve
