#ifndef TABSKETCH_SERVE_SERVER_H_
#define TABSKETCH_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/stats.h"
#include "util/result.h"

namespace tabsketch::util {
class MetricsTicker;
}  // namespace tabsketch::util

namespace tabsketch::serve {

class StreamingIngest;

/// Bounded-concurrency gate in front of the query engine: at most
/// `max_inflight` requests execute at once, at most `max_queue` more wait
/// for a slot, everything beyond that is shed immediately. Waiters honor a
/// per-request deadline, and Close() turns every current and future Enter()
/// into kClosed so shutdown never strands a waiter.
class AdmissionController {
 public:
  enum class Admission {
    /// A slot was granted; the caller must balance with Leave().
    kAdmitted,
    /// The waiting queue was full; the request was shed without waiting.
    kShed,
    /// The deadline passed before a slot freed up.
    kDeadlineExpired,
    /// The controller is closed (server shutting down).
    kClosed,
  };

  AdmissionController(size_t max_inflight, size_t max_queue);

  /// Tries to take an execution slot, waiting (bounded by `deadline`, when
  /// set) in the admission queue if none is free. Only kAdmitted grants a
  /// slot.
  Admission Enter(
      std::optional<std::chrono::steady_clock::time_point> deadline);

  /// Releases a slot taken by a successful Enter().
  void Leave();

  /// Rejects all current and future Enter() calls with kClosed.
  void Close();

  /// Requests currently waiting for a slot (the serve.queue.depth gauge).
  size_t queue_depth() const;

 private:
  const size_t max_inflight_;
  const size_t max_queue_;
  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
  bool closed_ = false;
};

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back from
  /// Server::port()).
  uint16_t port = 0;
  /// Concurrent executing requests; 0 = util::DefaultThreadCount().
  size_t max_inflight = 0;
  /// Requests allowed to wait for an execution slot before load-shedding.
  size_t max_queue = 64;
  /// Per-request admission deadline in milliseconds; 0 disables. The
  /// deadline bounds time spent waiting for an execution slot, not
  /// execution itself.
  uint32_t deadline_ms = 0;
  /// When false, `reload` returns a failed-precondition error.
  bool enable_reload = true;
  /// Streaming-ingest driver behind the `append` / `retire` / `window`
  /// verbs; null (the default) answers them with a failed-precondition
  /// error. Must outlive the server. Successor snapshots it builds are
  /// published through the same SnapshotHolder the server reads.
  StreamingIngest* ingest = nullptr;
  /// Rolling-snapshot ticker (util/metrics_snapshot.h) backing the `stats`
  /// verb's last-window rates; owned by the caller, must outlive the
  /// server. Null degrades `stats json` to cumulative-only (every window_*
  /// key reads 0).
  util::MetricsTicker* ticker = nullptr;
  /// Slow-query threshold in milliseconds; requests whose handle time
  /// exceeds it are recorded in the slow log (`stats slow`). 0 disables.
  double slow_ms = 0.0;
  /// When non-empty, slow-log entries are also appended here as JSONL.
  std::string slow_log_path;
  /// In-memory slow-log ring size.
  size_t slow_ring_capacity = 128;
  /// Test-only hook, called for query requests after admission and after
  /// the request captured its snapshot, before the engine runs. Lets tests
  /// park a request mid-flight (deadline expiry, swap-mid-batch, drain
  /// determinism). Leave unset in production.
  std::function<void(const QueryRequest&)> pre_request_hook;
};

/// The `tabsketch serve` daemon core: a loopback TCP listener speaking a
/// line protocol over the batch grammar (see docs/FORMATS.md, "Serve wire
/// protocol"). Each connection gets a handler thread; each request line is
/// admitted through an AdmissionController, answered by the QueryEngine of
/// the SnapshotHolder's current snapshot, and the `reload` verb swaps in a
/// new sketch-set snapshot RCU-style without disturbing in-flight requests.
///
/// Lifecycle: Start() binds/listens and returns a running server; Shutdown()
/// (idempotent, also run by the destructor) stops accepting, closes the
/// admission gate, half-closes every connection's read side and joins all
/// handler threads — in-flight requests finish and their responses are
/// delivered before the sockets close (graceful drain).
class Server {
 public:
  /// Binds 127.0.0.1:options.port, starts the accept loop. `snapshots` must
  /// outlive the server and hold a non-null snapshot.
  static util::Result<std::unique_ptr<Server>> Start(
      SnapshotHolder* snapshots, const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves an ephemeral options.port = 0).
  uint16_t port() const { return port_; }

  /// Drains and stops the server. Safe to call repeatedly/concurrently with
  /// itself; blocks until every connection thread has exited.
  void Shutdown();

  /// Connections accepted so far.
  size_t connections_accepted() const;

  /// The slow-query ring (the `stats slow` verb reads the same object).
  const SlowQueryLog& slow_log() const { return slow_log_; }

 private:
  Server(SnapshotHolder* snapshots, const ServerOptions& options,
         int listen_fd, int wake_read_fd, int wake_write_fd, uint16_t port);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Answers one request line; nullopt for blank/comment lines. Sets
  /// `*close_connection` for `quit`.
  std::optional<std::string> ProcessLine(const std::string& line,
                                         bool* close_connection);
  std::string ProcessQuery(const QueryRequest& request, size_t line_bytes);
  std::string ProcessReload(const std::string& path);
  std::string ProcessAppend(const std::string& path);
  std::string ProcessRetire(const std::string& count_token);
  std::string ProcessWindow();
  /// The introspection verbs. Deliberately outside admission control: they
  /// must answer while the query path is saturated or wedged, and they
  /// never touch snapshot data — only metrics, the slow ring and O(1)
  /// server state.
  std::string ProcessStats(const std::vector<std::string>& tokens);
  std::string ProcessHealth();
  StatsInfo BuildStatsInfo();

  SnapshotHolder* snapshots_;
  ServerOptions options_;
  AdmissionController admission_;
  SlowQueryLog slow_log_;
  int listen_fd_;
  int wake_read_fd_;
  int wake_write_fd_;
  uint16_t port_;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::atomic<uint64_t> next_request_id_{0};

  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool shutting_down_ = false;  // guarded by conn_mutex_
  std::atomic<size_t> accepted_{0};
  std::once_flag shutdown_once_;
};

}  // namespace tabsketch::serve

#endif  // TABSKETCH_SERVE_SERVER_H_
