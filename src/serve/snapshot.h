#ifndef TABSKETCH_SERVE_SNAPSHOT_H_
#define TABSKETCH_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "core/estimator.h"
#include "core/sketch_cache.h"
#include "core/sketcher.h"
#include "serve/query_engine.h"
#include "table/matrix.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::serve {

/// What a Snapshot is built from — the same inputs `tabsketch query`
/// accepts, minus the batch itself. At least one of `table_path` /
/// `sketches_path` must be set; with both, the sketch set must match the
/// table's tile grid. Without a table, serving is sketch-only (refine
/// unavailable).
struct SnapshotSpec {
  std::string table_path;
  size_t tile_rows = 0;
  size_t tile_cols = 0;
  std::string sketches_path;
  /// Sketch family; ignored (taken from the file) when `sketches_path` is
  /// set.
  core::SketchParams params;
  /// Total sketch-memory byte budget; 0 keeps every computed sketch
  /// resident (OnDemandSketchCache). Ignored when serving a preloaded
  /// sketch set. When `engine.quant` is on, the pinned code tier's exact
  /// byte footprint (QuantizedCodePool::PoolBytes) is taken off the top and
  /// the LRU sketch cache gets the remainder, so the flag stays a true
  /// total bound.
  size_t cache_bytes = 0;
  QueryEngineOptions engine;
};

/// One immutable serving generation: the table/grid (optional), the sketch
/// source, the estimator and a ready QueryEngine, bundled so the whole
/// pipeline can be published and retired atomically via
/// `shared_ptr<const Snapshot>` (see SnapshotHolder). Everything reachable
/// from a Snapshot is either immutable or internally synchronized
/// (LruSketchCache), so any number of requests may run against one snapshot
/// concurrently while another generation is being built or installed.
class Snapshot {
 public:
  /// Heap-pinned table + grid. Shared (not owned) so a successor snapshot
  /// built by WithSketchSet can reuse the same table data when the new
  /// sketch set matches the grid — the matrix never moves once the grid
  /// points into it.
  struct TableData {
    table::Matrix matrix;
    std::unique_ptr<table::TileGrid> grid;
  };

  /// Builds a snapshot from scratch — the `tabsketch query` composition:
  /// read table (optional), read or compute sketches, pick the cache policy
  /// from `spec.cache_bytes`, create the estimator and engine.
  static util::Result<std::shared_ptr<const Snapshot>> Create(
      const SnapshotSpec& spec);

  /// Builds the reload successor of `base`: same engine options, sketches
  /// replaced by the set at `path`. When `base` has table data and the set
  /// matches its grid (tile shape and count), the table/grid are shared and
  /// refine keeps working; otherwise the successor is sketch-only, which is
  /// FailedPrecondition if `base` serves refined knn.
  static util::Result<std::shared_ptr<const Snapshot>> WithSketchSet(
      const Snapshot& base, const std::string& path);

  const QueryEngine& engine() const { return *engine_; }
  const core::TileSketchCache& cache() const { return *cache_; }
  /// The pinned quantized code tier; null unless the engine options enable
  /// `quant`. Rebuilt (and atomically swapped with everything else) on every
  /// reload, since codes are derived from the generation's sketches.
  const core::QuantizedCodePool* codes() const { return codes_.get(); }
  size_t num_tiles() const { return cache_->num_tiles(); }
  const core::SketchParams& params() const { return params_; }
  /// Human-readable provenance ("table day1.tbl" / "sketches day2.sks"),
  /// for logs and reload acknowledgements.
  const std::string& description() const { return description_; }

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

 private:
  Snapshot() = default;

  /// Builds streaming-ingest successors field by field (serve/ingest.cc),
  /// reusing surviving sketches and codes across generations.
  friend class StreamingIngest;

  std::shared_ptr<const TableData> table_;
  core::SketchParams params_;
  std::unique_ptr<core::Sketcher> sketcher_;
  std::unique_ptr<core::TileSketchCache> cache_;
  /// Shared (not unique) so the streaming-ingest path can keep the previous
  /// generation's pool alive as the base of the next incremental build.
  std::shared_ptr<const core::QuantizedCodePool> codes_;
  std::unique_ptr<core::DistanceEstimator> estimator_;
  QueryEngineOptions engine_options_;
  std::unique_ptr<QueryEngine> engine_;
  std::string description_;
};

/// The RCU-style publication point for the current Snapshot. Readers take a
/// `shared_ptr` copy (Current()) and keep using it for the whole request;
/// Swap() just exchanges the pointer, so in-flight requests finish against
/// the generation they started on while new requests see the new one. No
/// reader is ever invalidated: the old snapshot (and, transitively, any
/// cache entry handed out from it) is freed when its last request drops the
/// reference. A plain mutex guards the pointer — swaps are rare (daily) and
/// the critical section is two shared_ptr ops.
class SnapshotHolder {
 public:
  explicit SnapshotHolder(std::shared_ptr<const Snapshot> initial);

  /// The snapshot new requests should use. Never null.
  std::shared_ptr<const Snapshot> Current() const;

  /// Publishes `next` (must be non-null) and retires the previous
  /// generation. Bumps the serve.snapshot.swaps counter.
  void Swap(std::shared_ptr<const Snapshot> next);

  /// Number of Swap() calls so far.
  size_t swaps() const { return swaps_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Snapshot> current_;
  std::atomic<size_t> swaps_{0};
};

}  // namespace tabsketch::serve

#endif  // TABSKETCH_SERVE_SNAPSHOT_H_
