#ifndef TABSKETCH_SERVE_QUERY_ENGINE_H_
#define TABSKETCH_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/knn.h"
#include "core/quantized_sketch.h"
#include "core/sketch_cache.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::serve {

/// One request of a query batch (see docs/FORMATS.md, "Batch query file").
struct QueryRequest {
  enum class Kind {
    /// Sketch-estimated Lp distance between tiles `a` and `b`.
    kDistance,
    /// The `k` nearest tiles to tile `a` by estimated distance (optionally
    /// refined with exact distances, see QueryEngineOptions::refine).
    kKnn,
  };

  Kind kind = Kind::kDistance;
  size_t a = 0;
  size_t b = 0;  // distance only
  size_t k = 0;  // knn only

  friend bool operator==(const QueryRequest& x, const QueryRequest& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.k == y.k;
  }
};

/// Stream precision every answer line is formatted with: max_digits10, so
/// printed distances round-trip to the exact binary64 estimate (the same
/// full width the metrics JSON and golden fixtures carry). Tests and other
/// producers of expected answer strings must set the same precision.
inline constexpr int kAnswerPrecision =
    std::numeric_limits<double>::max_digits10;

/// Parses one line of the batch grammar (`distance A B` / `knn Q K`).
/// A trailing '\r' (CRLF batch files read with std::getline) is stripped
/// before tokenizing, so Windows-authored batches parse identically to
/// LF ones. Returns nullopt for blank / comment-only lines; malformed lines
/// are InvalidArgument carrying the given 1-based `line_number`. Index
/// bounds are checked later, by QueryEngine::Run, which knows the tile
/// count. This is the shared parse step of ParseBatch and the serve
/// daemon's wire protocol (serve/server.h).
util::Result<std::optional<QueryRequest>> ParseBatchLine(std::string line,
                                                         size_t line_number);

/// Parses a batch-query stream: one request per line (`distance A B` /
/// `knn Q K`), `#` comments and blank lines ignored, CRLF tolerated.
/// Malformed lines are InvalidArgument with the 1-based line number. Index
/// bounds are checked later, by QueryEngine::Run, which knows the tile
/// count.
util::Result<std::vector<QueryRequest>> ParseBatch(std::istream& in);

/// ParseBatch over the contents of `path`.
util::Result<std::vector<QueryRequest>> ParseBatchFile(
    const std::string& path);

/// Per-request work attribution, filled by QueryEngine::Run when the caller
/// asks for it: where each request's sketch lookups landed (cache hits vs
/// computed-on-demand misses) and how hard the quant prefilter worked. The
/// serve daemon threads one of these through every wire request so the
/// slow-query log can say *why* a request was slow (cold cache? weak
/// prefilter?), not just that it was. Pure tallies — collecting them never
/// changes an answer byte.
struct RequestStats {
  /// Sketch lookups served from retained/preloaded entries.
  uint64_t cache_hits = 0;
  /// Sketch lookups that computed (TileSketchCache::GetTracked miss).
  uint64_t cache_misses = 0;
  /// Quantized-code candidates scanned (0 when quant is off).
  uint64_t quant_scanned = 0;
  /// Candidates surviving the code prefilter into the full-sketch refine.
  uint64_t quant_kept = 0;

  void MergeFrom(const RequestStats& other) {
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    quant_scanned += other.quant_scanned;
    quant_kept += other.quant_kept;
  }
};

struct QueryEngineOptions {
  /// Worker threads the batch fans over (util::ParallelFor). Output is
  /// byte-identical for every value.
  size_t threads = 1;

  /// When set, knn requests are answered filter-and-refine (TopKFilterRefine
  /// semantics): sketches select `candidates` promising tiles, exact Lp
  /// distances re-rank them, and the reported distances are exact. Requires
  /// a grid with data (not just sketches).
  bool refine = false;

  /// Candidate-set size for refined knn; 0 picks max(3k, k + 8), clamped to
  /// the corpus size. Ignored without `refine`.
  size_t candidates = 0;

  /// Code-scan prefilter tier for knn requests (`--quant=`). When not kOff,
  /// the engine must be constructed with a matching QuantizedCodePool: each
  /// knn scan first runs over the int8/int16 codes, keeps every tile within
  /// the pool's guaranteed slack of the k-th best code distance, and only
  /// the survivors touch full double sketches — answers stay byte-identical
  /// to kOff (DESIGN.md §13), the scan just moves 8-16x fewer bytes.
  /// Distance requests always use full sketches.
  core::QuantKind quant = core::QuantKind::kOff;
};

/// Answers batches of mixed distance / knn requests over the tiles of a
/// grid, routing every sketch lookup through a TileSketchCache — the
/// serving-path composition of the paper's filter-then-refine pipeline: the
/// cache bounds memory (LruSketchCache) or pins everything
/// (OnDemandSketchCache / FixedSketchSource), and answers are bit-identical
/// whichever policy and thread count is used, because sketches are
/// deterministic and each request's output slot is fixed up front.
class QueryEngine {
 public:
  /// `cache`, `estimator` and `codes` must outlive the engine; `grid` may be
  /// null when options.refine is false (sketch-only serving, e.g. from a
  /// preloaded sketch set). When given, the grid's tile count must match the
  /// cache's. `codes` is required (with matching kind and tile count) iff
  /// options.quant is not kOff.
  QueryEngine(const table::TileGrid* grid, core::TileSketchCache* cache,
              const core::DistanceEstimator* estimator,
              const QueryEngineOptions& options,
              const core::QuantizedCodePool* codes = nullptr);

  /// Answers every request, one deterministic result line per request in
  /// request order. Validates all indices/arguments up front and fails
  /// without partial work; a NaN estimate (NaN in the data) never reorders
  /// results undeterministically (core::NeighborBefore ranks NaN last).
  ///
  /// When `stats` is non-null it receives the batch's aggregated
  /// RequestStats (summed over requests after the parallel loop, so the
  /// result is deterministic). Passing stats never changes an answer byte.
  util::Result<std::vector<std::string>> Run(
      std::span<const QueryRequest> batch,
      RequestStats* stats = nullptr) const;

 private:
  /// Per-thread buffers reused across every request a worker answers —
  /// candidate lists, estimator scratch and the code-kernel scratch all keep
  /// their capacity between batch lines, so steady-state serving does not
  /// allocate per request.
  struct Workspace {
    std::vector<double> scratch;
    std::vector<core::Neighbor> neighbors;
    std::vector<core::Neighbor> code_neighbors;
    std::vector<core::Neighbor> refined;
    core::kernels::CodeScratch code_scratch;
  };

  /// Sketch lookup with per-request attribution: counts the hit/miss into
  /// `stats` (when non-null) and forwards to the cache.
  std::shared_ptr<const core::Sketch> GetSketch(size_t index,
                                                RequestStats* stats) const;

  std::string AnswerDistance(const QueryRequest& request,
                             Workspace* workspace,
                             RequestStats* stats) const;
  std::string AnswerKnn(const QueryRequest& request, Workspace* workspace,
                        RequestStats* stats) const;
  /// The quant filter step: scans codes, keeps every tile within 2*slack of
  /// the `want`-th best code distance, and fills workspace->neighbors with
  /// the survivors' full-sketch estimates.
  void QuantFilterCandidates(size_t query, size_t want, Workspace* workspace,
                             RequestStats* stats) const;

  const table::TileGrid* grid_;
  core::TileSketchCache* cache_;
  const core::DistanceEstimator* estimator_;
  QueryEngineOptions options_;
  const core::QuantizedCodePool* codes_;
};

}  // namespace tabsketch::serve

#endif  // TABSKETCH_SERVE_QUERY_ENGINE_H_
