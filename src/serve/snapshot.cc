#include "serve/snapshot.h"

#include <utility>

#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "core/sketch_io.h"
#include "table/table_io.h"
#include "util/metrics.h"
#include "util/status.h"

namespace tabsketch::serve {
namespace {

/// Loads `path` into a heap-pinned TableData (matrix first, then the grid
/// pointing into it; the shared_ptr guarantees the matrix never moves).
util::Result<std::shared_ptr<const Snapshot::TableData>> LoadTable(
    const std::string& path, size_t tile_rows, size_t tile_cols) {
  auto data = std::make_shared<Snapshot::TableData>();
  TABSKETCH_ASSIGN_OR_RETURN(data->matrix, table::ReadBinary(path));
  TABSKETCH_ASSIGN_OR_RETURN(
      table::TileGrid grid,
      table::TileGrid::Create(&data->matrix, tile_rows, tile_cols));
  data->grid = std::make_unique<table::TileGrid>(std::move(grid));
  return std::shared_ptr<const Snapshot::TableData>(std::move(data));
}

/// True when the sketch set's object shape and count line up with the grid,
/// i.e. the set can serve as that grid's precomputed sketches.
bool SetMatchesGrid(const core::SketchSet& set, const table::TileGrid& grid) {
  return set.object_rows == grid.tile_rows() &&
         set.object_cols == grid.tile_cols() &&
         set.sketches.size() == grid.num_tiles();
}

}  // namespace

util::Result<std::shared_ptr<const Snapshot>> Snapshot::Create(
    const SnapshotSpec& spec) {
  if (spec.table_path.empty() && spec.sketches_path.empty()) {
    return util::Status::InvalidArgument(
        "snapshot needs a table or a sketch set");
  }
  if (spec.engine.refine && spec.table_path.empty()) {
    return util::Status::InvalidArgument(
        "refined knn needs table data, not just sketches");
  }

  // shared_ptr<Snapshot> first, const-qualified on return: the constructor
  // is private, so no make_shared.
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->engine_options_ = spec.engine;

  const table::TileGrid* grid = nullptr;
  if (!spec.table_path.empty()) {
    TABSKETCH_ASSIGN_OR_RETURN(
        snapshot->table_,
        LoadTable(spec.table_path, spec.tile_rows, spec.tile_cols));
    grid = snapshot->table_->grid.get();
  }

  size_t object_rows = 0;
  size_t object_cols = 0;
  if (!spec.sketches_path.empty()) {
    TABSKETCH_ASSIGN_OR_RETURN(core::SketchSet set,
                               core::ReadSketchSet(spec.sketches_path));
    if (grid != nullptr && !SetMatchesGrid(set, *grid)) {
      return util::Status::InvalidArgument(
          "sketch set in " + spec.sketches_path +
          " does not match the tile grid");
    }
    snapshot->params_ = set.params;
    object_rows = set.object_rows;
    object_cols = set.object_cols;
    snapshot->cache_ = std::make_unique<core::FixedSketchSource>(
        std::move(set.sketches));
    snapshot->description_ = "sketches " + spec.sketches_path;
  } else {
    snapshot->params_ = spec.params;
    object_rows = grid->tile_rows();
    object_cols = grid->tile_cols();
    TABSKETCH_ASSIGN_OR_RETURN(core::Sketcher sketcher,
                               core::Sketcher::Create(snapshot->params_));
    snapshot->sketcher_ =
        std::make_unique<core::Sketcher>(std::move(sketcher));
    if (spec.cache_bytes > 0) {
      core::LruSketchCache::Options options;
      // The pinned code tier spends part of the budget; the LRU sketch
      // cache gets what is left (at least one byte — LruSketchCache
      // degrades to compute-and-release under sub-entry budgets), keeping
      // `cache_bytes` a bound on total sketch memory.
      size_t budget = spec.cache_bytes;
      if (spec.engine.quant != core::QuantKind::kOff) {
        const size_t pool_bytes = core::QuantizedCodePool::PoolBytes(
            spec.engine.quant, grid->num_tiles(), snapshot->params_.k);
        budget = budget > pool_bytes ? budget - pool_bytes : 1;
      }
      options.capacity_bytes = budget;
      snapshot->cache_ = std::make_unique<core::LruSketchCache>(
          snapshot->sketcher_.get(), grid, options);
    } else {
      snapshot->cache_ = std::make_unique<core::OnDemandSketchCache>(
          snapshot->sketcher_.get(), grid);
    }
    snapshot->description_ = "table " + spec.table_path;
  }

  if (spec.engine.quant != core::QuantKind::kOff) {
    TABSKETCH_ASSIGN_OR_RETURN(
        core::QuantizedCodePool pool,
        core::QuantizedCodePool::Build(snapshot->cache_.get(),
                                       spec.engine.quant, snapshot->params_,
                                       object_rows, object_cols));
    snapshot->codes_ =
        std::make_shared<const core::QuantizedCodePool>(std::move(pool));
    TABSKETCH_METRIC_GAUGE_SET("quant.pool.bytes",
                               snapshot->codes_->bytes());
  }

  TABSKETCH_ASSIGN_OR_RETURN(
      core::DistanceEstimator estimator,
      core::DistanceEstimator::Create(snapshot->params_));
  snapshot->estimator_ =
      std::make_unique<core::DistanceEstimator>(std::move(estimator));
  snapshot->engine_ = std::make_unique<QueryEngine>(
      grid, snapshot->cache_.get(), snapshot->estimator_.get(),
      snapshot->engine_options_, snapshot->codes_.get());
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

util::Result<std::shared_ptr<const Snapshot>> Snapshot::WithSketchSet(
    const Snapshot& base, const std::string& path) {
  TABSKETCH_ASSIGN_OR_RETURN(core::SketchSet set, core::ReadSketchSet(path));

  // Keep the base's table/grid when the new set still fits it (the daily
  // same-shape table swap); otherwise fall back to sketch-only serving.
  const bool reuse_grid =
      base.table_ != nullptr && SetMatchesGrid(set, *base.table_->grid);
  if (base.engine_options_.refine && !reuse_grid) {
    return util::Status::FailedPrecondition(
        "refined serving needs a sketch set matching the table grid; " +
        path + " does not match");
  }

  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->engine_options_ = base.engine_options_;
  if (reuse_grid) snapshot->table_ = base.table_;
  snapshot->params_ = set.params;
  // The successor's code tier is derived from the *new* sketches (before
  // they move into the fixed source), so a reload swaps sketches and codes
  // as one unit — a request never sees day-2 sketches with day-1 codes.
  if (snapshot->engine_options_.quant != core::QuantKind::kOff) {
    TABSKETCH_ASSIGN_OR_RETURN(
        core::QuantizedCodePool pool,
        core::QuantizedCodePool::BuildFromSketches(
            set.sketches, snapshot->engine_options_.quant, set.params,
            set.object_rows, set.object_cols));
    snapshot->codes_ =
        std::make_shared<const core::QuantizedCodePool>(std::move(pool));
    TABSKETCH_METRIC_GAUGE_SET("quant.pool.bytes",
                               snapshot->codes_->bytes());
  }
  snapshot->cache_ =
      std::make_unique<core::FixedSketchSource>(std::move(set.sketches));
  snapshot->description_ = "sketches " + path;

  TABSKETCH_ASSIGN_OR_RETURN(
      core::DistanceEstimator estimator,
      core::DistanceEstimator::Create(snapshot->params_));
  snapshot->estimator_ =
      std::make_unique<core::DistanceEstimator>(std::move(estimator));
  snapshot->engine_ = std::make_unique<QueryEngine>(
      reuse_grid ? snapshot->table_->grid.get() : nullptr,
      snapshot->cache_.get(), snapshot->estimator_.get(),
      snapshot->engine_options_, snapshot->codes_.get());
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

SnapshotHolder::SnapshotHolder(std::shared_ptr<const Snapshot> initial)
    : current_(std::move(initial)) {}

std::shared_ptr<const Snapshot> SnapshotHolder::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

void SnapshotHolder::Swap(std::shared_ptr<const Snapshot> next) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(next);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  TABSKETCH_METRIC_COUNT("serve.snapshot.swaps");
}

}  // namespace tabsketch::serve
