#ifndef TABSKETCH_SERVE_STATS_H_
#define TABSKETCH_SERVE_STATS_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "serve/query_engine.h"
#include "util/metrics_snapshot.h"

namespace tabsketch::serve {

/// One slow request, as retained in the in-memory ring and mirrored to the
/// --slow-log JSONL file (docs/FORMATS.md, "Slow-query log").
struct SlowQueryEntry {
  /// Monotonic per-daemon request id (1-based, assigned at arrival).
  uint64_t id = 0;
  /// Request verb: "distance" or "knn".
  std::string verb;
  /// Bytes of the request line as received.
  uint64_t bytes = 0;
  /// Time spent waiting for an admission slot.
  double queue_wait_seconds = 0.0;
  /// Total handle time (queue wait + execution), the --slow-ms criterion.
  double handle_seconds = 0.0;
  /// SnapshotHolder::swaps() when the request pinned its snapshot.
  uint64_t generation = 0;
  /// Cache and quant-prefilter attribution for this request.
  RequestStats stats;

  /// The entry as a one-line JSON object (the JSONL mirror line and the
  /// element shape inside `stats slow`).
  std::string ToJson() const;
};

/// Bounded ring of the slowest-by-threshold requests: requests whose handle
/// time exceeds `slow_ms` are appended (oldest dropped beyond
/// `ring_capacity`) and optionally mirrored to a JSONL file, one object per
/// line, flushed per record — slow requests are rare, so durability beats
/// buffering. Thread-safe; recording is off the fast path (only requests
/// already measured slow pay the mutex).
class SlowQueryLog {
 public:
  struct Options {
    /// Threshold in milliseconds; <= 0 disables recording (the `stats slow`
    /// verb still answers, with an empty entry list).
    double slow_ms = 0.0;
    size_t ring_capacity = 128;
    /// When non-empty, every recorded entry is appended here as JSONL.
    std::string jsonl_path;
  };

  explicit SlowQueryLog(const Options& options);

  bool enabled() const { return options_.slow_ms > 0.0; }
  double slow_ms() const { return options_.slow_ms; }

  /// Records `entry` if the log is enabled and entry.handle_seconds exceeds
  /// the threshold. Returns whether it was recorded.
  bool MaybeRecord(const SlowQueryEntry& entry);

  /// Ring contents, oldest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// Slow requests recorded so far (the ring may have dropped older ones).
  uint64_t total() const;

  /// The `stats slow` response: a one-line "tabsketch-slow-v1" JSON document
  /// with the threshold, the running total and the ring's entries.
  std::string ToJson() const;

 private:
  const Options options_;
  mutable std::mutex mutex_;
  std::deque<SlowQueryEntry> ring_;  // guarded by mutex_, newest last
  uint64_t total_ = 0;               // guarded by mutex_
  std::ofstream mirror_;             // guarded by mutex_
};

/// Server-side facts that live outside the metrics registry, assembled by
/// the serve daemon per `stats` / `health` call.
struct StatsInfo {
  double uptime_seconds = 0.0;
  /// SnapshotHolder::swaps(): how many generations this daemon has served.
  uint64_t generation = 0;
  /// Tiles in the currently-served snapshot.
  uint64_t tiles = 0;
  uint64_t connections_accepted = 0;
  uint64_t queue_depth = 0;
  uint64_t slow_total = 0;
  /// Window extent when serving with --ingest; all zero otherwise.
  bool has_window = false;
  uint64_t window_start_col = 0;
  uint64_t window_tile_cols = 0;
  uint64_t window_pending_cols = 0;
};

/// The `stats json` response: the one-line "tabsketch-stats-v1" document —
/// cumulative totals from `current` plus last-window rates and interval
/// percentiles from Diff(*baseline, current). A null `baseline` (no ticker)
/// leaves every window_* key at 0. See docs/FORMATS.md for the key set.
std::string RenderStatsJson(const StatsInfo& info,
                            const util::MetricsSnapshot& current,
                            const util::MetricsSnapshot* baseline);

/// The `health` response: a one-line "tabsketch-health-v1" document.
std::string RenderHealthJson(const StatsInfo& info);

}  // namespace tabsketch::serve

#endif  // TABSKETCH_SERVE_STATS_H_
