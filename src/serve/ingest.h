#ifndef TABSKETCH_SERVE_INGEST_H_
#define TABSKETCH_SERVE_INGEST_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "core/growing.h"
#include "core/quantized_sketch.h"
#include "serve/snapshot.h"
#include "util/result.h"

namespace tabsketch::serve {

/// Sliding-window streaming ingest behind the `append`/`retire`/`window`
/// wire verbs and the `tabsketch ingest` CLI path: a GrowingTableSketcher
/// holds the window, and every append/retire builds the next Snapshot
/// generation *incrementally* from the previous one — all surviving tile
/// sketches are shared (the same heap objects, never recomputed, via
/// FixedSketchSource's aliasing constructor), quantized code rows are
/// copied (never re-encoded) with the affine map re-derived only when the
/// pool's value range grows, and only the newly completed tiles are
/// sketched. Generations are published through the caller's RCU
/// SnapshotHolder, so in-flight queries finish on the generation they
/// started with, and post-swap answers are byte-identical to a cold
/// Snapshot::Create over the equivalent window table (DESIGN.md §14).
///
/// Append/Retire are serialized by an internal mutex (the publish happens
/// inside it, so generations can never swap in out of order); they may run
/// concurrently with any number of queries against published snapshots.
class StreamingIngest {
 public:
  /// Seeds the window from spec.table_path (which may hold zero or more
  /// tile columns; trailing columns stay pending). The spec must be
  /// table-backed with no preloaded sketch set and no cache budget —
  /// streaming generations pin every window sketch. With spec.engine.refine
  /// the initial table must complete at least one tile column (snapshots
  /// need a grid). The initial generation is available via initial().
  static util::Result<std::unique_ptr<StreamingIngest>> Create(
      const SnapshotSpec& spec);

  /// The generation built at Create time (what the daemon serves first).
  std::shared_ptr<const Snapshot> initial() const { return initial_; }

  struct WindowStats {
    size_t grid_rows = 0;
    size_t grid_cols = 0;
    size_t num_tiles = 0;
    size_t pending_cols = 0;
    /// Absolute index of the window's first tile column in the full stream.
    size_t start_tile_col = 0;
    size_t sketches_computed = 0;
  };

  struct AppendResult {
    std::shared_ptr<const Snapshot> snapshot;
    size_t appended_cols = 0;
    /// Tiles sketched by this append (newly completed tile columns).
    size_t new_tiles = 0;
    /// Surviving tile sketches carried into the new generation unchanged.
    size_t reused_tiles = 0;
    /// True when the quantized map had to be re-derived (range growth);
    /// always false with quant off.
    bool codes_rebuilt = false;
    WindowStats window;
  };

  struct RetireResult {
    std::shared_ptr<const Snapshot> snapshot;
    size_t retired_tile_cols = 0;
    size_t reused_tiles = 0;
    WindowStats window;
  };

  /// Appends the TSKT column piece at `path` (same row count as the
  /// window), sketches any tile columns it completes, builds the successor
  /// snapshot and — when `holder` is non-null — publishes it via Swap.
  /// On error nothing is published and the previous generation keeps
  /// serving. Updates the ingest.* metrics.
  util::Result<AppendResult> Append(const std::string& path,
                                    SnapshotHolder* holder);

  /// Drops the oldest `tile_columns` completed tile columns, builds and
  /// (when `holder` is non-null) publishes the successor. Retiring the
  /// whole window is FailedPrecondition under refine (the snapshot would
  /// lose its grid); otherwise the window may go empty and grow again.
  util::Result<RetireResult> Retire(size_t tile_columns,
                                    SnapshotHolder* holder);

  /// Current window extent (the `window` verb).
  WindowStats stats() const;

 private:
  explicit StreamingIngest(core::GrowingTableSketcher store,
                           SnapshotSpec spec);

  WindowStats StatsLocked() const;
  /// Builds the next generation over the store's current window. `base_of`
  /// maps each window tile to its index in `codes_base_` (kNewTile = no
  /// predecessor); empty means "build the code pool from scratch".
  util::Result<std::shared_ptr<const Snapshot>> BuildSnapshotLocked(
      std::vector<size_t> base_of, bool* codes_rebuilt);

  mutable std::mutex mutex_;
  core::GrowingTableSketcher store_;
  SnapshotSpec spec_;
  std::shared_ptr<const Snapshot> initial_;
  /// The last generation's code pool and its grid columns — the base for
  /// the next incremental build. Null (re-derive from scratch) with quant
  /// off or after a failed build left the pairing stale.
  std::shared_ptr<const core::QuantizedCodePool> codes_base_;
};

}  // namespace tabsketch::serve

#endif  // TABSKETCH_SERVE_INGEST_H_
