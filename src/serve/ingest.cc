#include "serve/ingest.h"

#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/sketch_cache.h"
#include "table/table_io.h"
#include "table/tiling.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace tabsketch::serve {
namespace {

void UpdateWindowGauges(const StreamingIngest::WindowStats& window) {
  TABSKETCH_METRIC_GAUGE_SET("ingest.window.tile_cols", window.grid_cols);
  TABSKETCH_METRIC_GAUGE_SET("ingest.window.start_col",
                             window.start_tile_col);
  TABSKETCH_METRIC_GAUGE_SET("ingest.window.pending_cols",
                             window.pending_cols);
}

}  // namespace

StreamingIngest::StreamingIngest(core::GrowingTableSketcher store,
                                 SnapshotSpec spec)
    : store_(std::move(store)), spec_(std::move(spec)) {}

util::Result<std::unique_ptr<StreamingIngest>> StreamingIngest::Create(
    const SnapshotSpec& spec) {
  if (spec.table_path.empty()) {
    return util::Status::InvalidArgument(
        "streaming ingest needs a table to seed the window");
  }
  if (!spec.sketches_path.empty()) {
    return util::Status::InvalidArgument(
        "streaming ingest computes its own sketches; drop the sketch set");
  }
  if (spec.cache_bytes != 0) {
    return util::Status::InvalidArgument(
        "streaming ingest pins every window sketch; a cache budget does not "
        "apply");
  }
  TABSKETCH_ASSIGN_OR_RETURN(const table::Matrix seed,
                             table::ReadBinary(spec.table_path));
  TABSKETCH_ASSIGN_OR_RETURN(
      core::GrowingTableSketcher store,
      core::GrowingTableSketcher::Create(spec.params, seed.rows(),
                                         spec.tile_rows, spec.tile_cols));
  std::unique_ptr<StreamingIngest> ingest(
      new StreamingIngest(std::move(store), spec));
  std::lock_guard<std::mutex> lock(ingest->mutex_);
  TABSKETCH_RETURN_IF_ERROR(
      ingest->store_.AppendColumns(seed, spec.engine.threads));
  if (spec.engine.refine && ingest->store_.num_tiles() == 0) {
    return util::Status::FailedPrecondition(
        "refined streaming serving needs at least one completed tile column "
        "in the seed table");
  }
  bool rebuilt = false;
  TABSKETCH_ASSIGN_OR_RETURN(ingest->initial_,
                             ingest->BuildSnapshotLocked({}, &rebuilt));
  UpdateWindowGauges(ingest->StatsLocked());
  return ingest;
}

StreamingIngest::WindowStats StreamingIngest::StatsLocked() const {
  WindowStats stats;
  stats.grid_rows = store_.grid_rows();
  stats.grid_cols = store_.grid_cols();
  stats.num_tiles = store_.num_tiles();
  stats.pending_cols = store_.pending_cols();
  stats.start_tile_col = store_.retired_tile_cols();
  stats.sketches_computed = store_.sketches_computed();
  return stats;
}

StreamingIngest::WindowStats StreamingIngest::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return StatsLocked();
}

util::Result<std::shared_ptr<const Snapshot>>
StreamingIngest::BuildSnapshotLocked(std::vector<size_t> base_of,
                                     bool* codes_rebuilt) {
  *codes_rebuilt = false;
  std::vector<std::shared_ptr<const core::Sketch>> shares =
      store_.SketchSharesInGridOrder();
  const size_t tiles = shares.size();

  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->engine_options_ = spec_.engine;
  snapshot->params_ = spec_.params;

  // Pin a copy of the window table for exact refine: the store's matrix
  // moves on every append/retire, so each generation owns its bytes (the
  // sketches, by contrast, are shared — they never move or change).
  const table::TileGrid* grid = nullptr;
  if (store_.table().cols() >= store_.tile_cols()) {
    auto data = std::make_shared<Snapshot::TableData>();
    data->matrix = store_.table();
    TABSKETCH_ASSIGN_OR_RETURN(
        table::TileGrid made,
        table::TileGrid::Create(&data->matrix, store_.tile_rows(),
                                store_.tile_cols()));
    data->grid = std::make_unique<table::TileGrid>(std::move(made));
    TABSKETCH_CHECK(data->grid->num_tiles() == tiles)
        << "window grid disagrees with the sketch store";
    snapshot->table_ = std::move(data);
    grid = snapshot->table_->grid.get();
  } else if (spec_.engine.refine) {
    return util::Status::FailedPrecondition(
        "refined streaming serving needs at least one completed tile "
        "column");
  }

  if (spec_.engine.quant != core::QuantKind::kOff) {
    auto sketch_of = [&shares](size_t i) -> std::span<const double> {
      return shares[i]->values;
    };
    const bool incremental = !base_of.empty() && codes_base_ != nullptr;
    util::Result<core::QuantizedCodePool> pool =
        incremental
            ? core::QuantizedCodePool::BuildSuccessor(*codes_base_, sketch_of,
                                                      base_of, codes_rebuilt)
            : core::QuantizedCodePool::BuildFromGetter(
                  sketch_of, tiles, spec_.engine.quant, spec_.params,
                  store_.tile_rows(), store_.tile_cols());
    if (!pool.ok()) {
      // The base/window pairing is now unknown; re-derive from scratch on
      // the next build rather than risk a stale mapping.
      codes_base_.reset();
      return pool.status();
    }
    snapshot->codes_ =
        std::make_shared<const core::QuantizedCodePool>(std::move(*pool));
    codes_base_ = snapshot->codes_;
    TABSKETCH_METRIC_GAUGE_SET("quant.pool.bytes", snapshot->codes_->bytes());
  }

  snapshot->cache_ =
      std::make_unique<core::FixedSketchSource>(std::move(shares));
  TABSKETCH_ASSIGN_OR_RETURN(
      core::DistanceEstimator estimator,
      core::DistanceEstimator::Create(spec_.params));
  snapshot->estimator_ =
      std::make_unique<core::DistanceEstimator>(std::move(estimator));
  snapshot->engine_ = std::make_unique<QueryEngine>(
      grid, snapshot->cache_.get(), snapshot->estimator_.get(),
      snapshot->engine_options_, snapshot->codes_.get());

  std::ostringstream description;
  description << "stream " << spec_.table_path << " tile-cols ["
              << store_.retired_tile_cols() << ", "
              << store_.retired_tile_cols() + store_.grid_cols() << ")";
  snapshot->description_ = description.str();
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

util::Result<StreamingIngest::AppendResult> StreamingIngest::Append(
    const std::string& path, SnapshotHolder* holder) {
  util::WallTimer timer;
  std::lock_guard<std::mutex> lock(mutex_);
  TABSKETCH_ASSIGN_OR_RETURN(const table::Matrix piece,
                             table::ReadBinary(path));
  const size_t prev_cols = store_.grid_cols();
  const size_t prev_tiles = store_.num_tiles();
  TABSKETCH_RETURN_IF_ERROR(
      store_.AppendColumns(piece, spec_.engine.threads));

  // Window tile (gr, gc) survives from the previous generation iff its
  // tile column existed before the append; appends never shift surviving
  // columns, but the row-major tile *indices* do shift when grid_cols
  // grows — base_of re-derives them.
  const size_t cols = store_.grid_cols();
  std::vector<size_t> base_of(store_.num_tiles());
  for (size_t i = 0; i < base_of.size(); ++i) {
    const size_t gr = i / cols;
    const size_t gc = i % cols;
    base_of[i] = gc < prev_cols ? gr * prev_cols + gc
                                : core::QuantizedCodePool::kNewTile;
  }

  AppendResult result;
  bool rebuilt = false;
  TABSKETCH_ASSIGN_OR_RETURN(
      result.snapshot, BuildSnapshotLocked(std::move(base_of), &rebuilt));
  if (holder != nullptr) holder->Swap(result.snapshot);
  result.appended_cols = piece.cols();
  result.new_tiles = store_.num_tiles() - prev_tiles;
  result.reused_tiles = prev_tiles;
  result.codes_rebuilt = rebuilt;
  result.window = StatsLocked();

  TABSKETCH_METRIC_COUNT("ingest.appends");
  TABSKETCH_METRIC_COUNT_N("ingest.columns.appended", result.appended_cols);
  TABSKETCH_METRIC_COUNT_N("ingest.tiles.sketched", result.new_tiles);
  TABSKETCH_METRIC_COUNT_N("ingest.tiles.reused", result.reused_tiles);
  if (rebuilt) TABSKETCH_METRIC_COUNT("ingest.codes.rebuilt");
  UpdateWindowGauges(result.window);
  TABSKETCH_METRIC_OBSERVE("ingest.append.latency.seconds",
                           timer.ElapsedSeconds());
  return result;
}

util::Result<StreamingIngest::RetireResult> StreamingIngest::Retire(
    size_t tile_columns, SnapshotHolder* holder) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spec_.engine.refine && tile_columns == store_.grid_cols()) {
    return util::Status::FailedPrecondition(
        "cannot retire the whole window under refined serving");
  }
  const size_t prev_cols = store_.grid_cols();
  TABSKETCH_RETURN_IF_ERROR(store_.RetireColumns(tile_columns));

  // Every surviving tile had a predecessor, shifted left by the retired
  // tile columns within its (unchanged-width) previous grid row.
  const size_t cols = store_.grid_cols();
  std::vector<size_t> base_of(store_.num_tiles());
  for (size_t i = 0; i < base_of.size(); ++i) {
    const size_t gr = i / cols;
    const size_t gc = i % cols;
    base_of[i] = gr * prev_cols + gc + tile_columns;
  }

  RetireResult result;
  bool rebuilt = false;
  TABSKETCH_ASSIGN_OR_RETURN(
      result.snapshot, BuildSnapshotLocked(std::move(base_of), &rebuilt));
  if (holder != nullptr) holder->Swap(result.snapshot);
  result.retired_tile_cols = tile_columns;
  result.reused_tiles = store_.num_tiles();
  result.window = StatsLocked();

  TABSKETCH_METRIC_COUNT("ingest.retires");
  TABSKETCH_METRIC_COUNT_N("ingest.tiles.reused", result.reused_tiles);
  UpdateWindowGauges(result.window);
  return result;
}

}  // namespace tabsketch::serve
