#include "serve/stats.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace tabsketch::serve {
namespace {

/// %.17g with non-finite mapped to 0 — the same convention as the metrics
/// JSON (util/metrics.cc), so every numeric surface round-trips binary64.
void WriteNumber(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

void WriteKey(std::ostream& os, const char* key, bool* first) {
  os << (*first ? "" : ",") << "\"" << key << "\":";
  *first = false;
}

void WriteUint(std::ostream& os, const char* key, uint64_t value,
               bool* first) {
  WriteKey(os, key, first);
  os << value;
}

void WriteDouble(std::ostream& os, const char* key, double value,
                 bool* first) {
  WriteKey(os, key, first);
  WriteNumber(os, value);
}

double Ratio(uint64_t numerator, uint64_t denominator) {
  return denominator == 0
             ? 0.0
             : static_cast<double>(numerator) /
                   static_cast<double>(denominator);
}

}  // namespace

std::string SlowQueryEntry::ToJson() const {
  std::ostringstream os;
  bool first = true;
  os << "{";
  WriteUint(os, "id", id, &first);
  WriteKey(os, "verb", &first);
  os << "\"" << verb << "\"";  // verb is a fixed token, never needs escaping
  WriteUint(os, "bytes", bytes, &first);
  WriteDouble(os, "queue_wait_seconds", queue_wait_seconds, &first);
  WriteDouble(os, "handle_seconds", handle_seconds, &first);
  WriteUint(os, "generation", generation, &first);
  WriteUint(os, "cache_hits", stats.cache_hits, &first);
  WriteUint(os, "cache_misses", stats.cache_misses, &first);
  WriteUint(os, "quant_scanned", stats.quant_scanned, &first);
  WriteUint(os, "quant_kept", stats.quant_kept, &first);
  os << "}";
  return os.str();
}

SlowQueryLog::SlowQueryLog(const Options& options) : options_(options) {
  if (enabled() && !options_.jsonl_path.empty()) {
    mirror_.open(options_.jsonl_path, std::ios::app);
  }
}

bool SlowQueryLog::MaybeRecord(const SlowQueryEntry& entry) {
  if (!enabled()) return false;
  if (entry.handle_seconds * 1000.0 < options_.slow_ms) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  ring_.push_back(entry);
  const size_t capacity = options_.ring_capacity > 0 ? options_.ring_capacity : 1;
  while (ring_.size() > capacity) ring_.pop_front();
  if (mirror_.is_open()) {
    mirror_ << entry.ToJson() << "\n";
    mirror_.flush();  // slow entries are rare; durability over buffering
  }
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowQueryEntry>(ring_.begin(), ring_.end());
}

uint64_t SlowQueryLog::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::string SlowQueryLog::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"tabsketch-slow-v1\",\"slow_ms\":";
  WriteNumber(os, options_.slow_ms);
  std::vector<SlowQueryEntry> entries = Entries();
  os << ",\"total\":" << total() << ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    os << (i == 0 ? "" : ",") << entries[i].ToJson();
  }
  os << "]}";
  return os.str();
}

std::string RenderStatsJson(const StatsInfo& info,
                            const util::MetricsSnapshot& current,
                            const util::MetricsSnapshot* baseline) {
  std::ostringstream os;
  bool first = true;
  os << "{\"schema\":\"tabsketch-stats-v1\"";
  first = false;

  WriteDouble(os, "uptime_seconds", info.uptime_seconds, &first);
  WriteUint(os, "generation", info.generation, &first);
  WriteUint(os, "tiles", info.tiles, &first);
  WriteUint(os, "connections_accepted", info.connections_accepted, &first);
  WriteDouble(os, "connections_active",
              current.gauge("serve.connections.active"), &first);
  WriteDouble(os, "inflight_distance", current.gauge("serve.inflight.distance"),
              &first);
  WriteDouble(os, "inflight_knn", current.gauge("serve.inflight.knn"), &first);
  WriteUint(os, "queue_depth", info.queue_depth, &first);

  const uint64_t distance = current.counter("serve.requests.distance");
  const uint64_t knn = current.counter("serve.requests.knn");
  WriteUint(os, "requests_distance", distance, &first);
  WriteUint(os, "requests_knn", knn, &first);
  WriteUint(os, "requests_total", distance + knn, &first);
  WriteUint(os, "errors_total", current.counter("serve.requests.errors"),
            &first);
  WriteUint(os, "shed_total", current.counter("serve.requests.shed"), &first);
  WriteUint(os, "deadline_total",
            current.counter("serve.requests.deadline_expired"), &first);
  WriteUint(os, "slow_total", info.slow_total, &first);
  WriteUint(os, "ticker_ticks", current.counter("serve.ticker.ticks"),
            &first);

  const util::HistogramSnapshot* latency =
      current.histogram("serve.request.latency.seconds");
  WriteDouble(os, "latency_p50_ms",
              latency == nullptr ? 0.0 : latency->Percentile(0.5) * 1e3,
              &first);
  WriteDouble(os, "latency_p99_ms",
              latency == nullptr ? 0.0 : latency->Percentile(0.99) * 1e3,
              &first);

  const uint64_t cache_hits = current.counter("lru.cache.hits");
  const uint64_t cache_misses = current.counter("lru.cache.misses");
  WriteUint(os, "cache_hits", cache_hits, &first);
  WriteUint(os, "cache_misses", cache_misses, &first);
  WriteDouble(os, "cache_hit_ratio",
              Ratio(cache_hits, cache_hits + cache_misses), &first);

  const uint64_t quant_scanned = current.counter("quant.scan.tiles");
  const uint64_t quant_kept = current.counter("quant.candidates.kept");
  WriteUint(os, "quant_scanned", quant_scanned, &first);
  WriteUint(os, "quant_kept", quant_kept, &first);
  WriteDouble(os, "quant_keep_ratio", Ratio(quant_kept, quant_scanned),
              &first);

  WriteUint(os, "window_start_col", info.window_start_col, &first);
  WriteUint(os, "window_tile_cols", info.window_tile_cols, &first);
  WriteUint(os, "window_pending_cols", info.window_pending_cols, &first);

  // Last-window view: everything below diffs the freshest capture against
  // the ticker's rolling baseline. Without a ticker the window is empty and
  // every window_* key reads 0 — cumulative keys above are always live.
  double window_seconds = 0.0;
  double window_rps = 0.0;
  double window_p50_ms = 0.0;
  double window_p99_ms = 0.0;
  uint64_t window_shed = 0;
  uint64_t window_deadline = 0;
  double window_cache_hit_ratio = 0.0;
  double window_quant_keep_ratio = 0.0;
  if (baseline != nullptr) {
    const util::MetricsDelta delta = util::Diff(*baseline, current);
    window_seconds = delta.seconds;
    window_rps = delta.Rate("serve.requests.distance") +
                 delta.Rate("serve.requests.knn");
    const util::HistogramSnapshot* interval =
        delta.histogram("serve.request.latency.seconds");
    if (interval != nullptr) {
      window_p50_ms = interval->Percentile(0.5) * 1e3;
      window_p99_ms = interval->Percentile(0.99) * 1e3;
    }
    window_shed = delta.counter("serve.requests.shed");
    window_deadline = delta.counter("serve.requests.deadline_expired");
    const uint64_t hits = delta.counter("lru.cache.hits");
    const uint64_t misses = delta.counter("lru.cache.misses");
    window_cache_hit_ratio = Ratio(hits, hits + misses);
    window_quant_keep_ratio = Ratio(delta.counter("quant.candidates.kept"),
                                    delta.counter("quant.scan.tiles"));
  }
  WriteDouble(os, "window_seconds", window_seconds, &first);
  WriteDouble(os, "window_rps", window_rps, &first);
  WriteDouble(os, "window_p50_ms", window_p50_ms, &first);
  WriteDouble(os, "window_p99_ms", window_p99_ms, &first);
  WriteUint(os, "window_shed", window_shed, &first);
  WriteUint(os, "window_deadline", window_deadline, &first);
  WriteDouble(os, "window_cache_hit_ratio", window_cache_hit_ratio, &first);
  WriteDouble(os, "window_quant_keep_ratio", window_quant_keep_ratio, &first);

  os << "}";
  return os.str();
}

std::string RenderHealthJson(const StatsInfo& info) {
  std::ostringstream os;
  os << "{\"schema\":\"tabsketch-health-v1\",\"status\":\"ok\"";
  bool first = false;
  WriteDouble(os, "uptime_seconds", info.uptime_seconds, &first);
  WriteUint(os, "generation", info.generation, &first);
  WriteUint(os, "tiles", info.tiles, &first);
  os << "}";
  return os.str();
}

}  // namespace tabsketch::serve
