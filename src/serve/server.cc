#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <span>
#include <sstream>
#include <utility>

#include "serve/ingest.h"
#include "util/metrics.h"
#include "util/metrics_snapshot.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/timer.h"

namespace tabsketch::serve {
namespace {

/// Kebab-case wire token for a Status code, the `error <code> <message>`
/// protocol field (docs/FORMATS.md).
const char* ErrorToken(util::StatusCode code) {
  switch (code) {
    case util::StatusCode::kInvalidArgument:
      return "invalid-argument";
    case util::StatusCode::kOutOfRange:
      return "out-of-range";
    case util::StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case util::StatusCode::kNotFound:
      return "not-found";
    case util::StatusCode::kIOError:
      return "io-error";
    default:
      return "internal";
  }
}

/// Status message flattened to one line (the protocol is line-framed).
std::string OneLine(std::string message) {
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return message;
}

std::string ErrorLine(const char* token, const std::string& message) {
  return std::string("error ") + token + " " + OneLine(message);
}

std::string ErrorLine(const util::Status& status) {
  return ErrorLine(ErrorToken(status.code()), status.message());
}

/// Writes all of `data` to `fd`, retrying short writes. MSG_NOSIGNAL turns
/// a peer hang-up into EPIPE instead of killing the process with SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// recv-backed line splitter with std::getline semantics ('\n' framing, the
/// terminator consumed and not returned; trailing '\r' is left for
/// ParseBatchLine to strip).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next line into `*line`. Returns false on EOF / error. A final
  /// unterminated chunk before EOF is returned as a line, like getline.
  bool Next(std::string* line) {
    line->clear();
    while (true) {
      const size_t newline = buffer_.find('\n', scanned_);
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        scanned_ = 0;
        return true;
      }
      scanned_ = buffer_.size();
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) {
        if (buffer_.empty()) return false;
        line->swap(buffer_);
        scanned_ = 0;
        return true;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t scanned_ = 0;
};

/// RAII +1/-1 on a gauge; a null gauge (metrics disabled or compiled out)
/// is a no-op. Construction-to-destruction brackets guarantee the inc/dec
/// stays balanced on every exit path — early returns for shed, expired and
/// closed admissions included.
class ScopedGaugeAdd {
 public:
  explicit ScopedGaugeAdd(util::Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) gauge_->Add(1.0);
  }
  ~ScopedGaugeAdd() {
    if (gauge_ != nullptr) gauge_->Add(-1.0);
  }
  ScopedGaugeAdd(const ScopedGaugeAdd&) = delete;
  ScopedGaugeAdd& operator=(const ScopedGaugeAdd&) = delete;

 private:
  util::Gauge* gauge_;
};

/// Splits `line` into whitespace tokens after stripping a trailing '\r'.
std::vector<std::string> Tokenize(const std::string& line) {
  std::string copy = line;
  if (!copy.empty() && copy.back() == '\r') copy.pop_back();
  std::istringstream in(copy);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

}  // namespace

AdmissionController::AdmissionController(size_t max_inflight,
                                         size_t max_queue)
    : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      max_queue_(max_queue) {}

AdmissionController::Admission AdmissionController::Enter(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return Admission::kClosed;
  if (inflight_ < max_inflight_) {
    ++inflight_;
    return Admission::kAdmitted;
  }
  if (waiting_ >= max_queue_) return Admission::kShed;
  ++waiting_;
  TABSKETCH_METRIC_GAUGE_SET("serve.queue.depth", waiting_);
  Admission verdict = Admission::kAdmitted;
  while (true) {
    if (closed_) {
      verdict = Admission::kClosed;
      break;
    }
    if (inflight_ < max_inflight_) {
      ++inflight_;
      break;
    }
    if (deadline.has_value()) {
      if (slot_free_.wait_until(lock, *deadline) ==
          std::cv_status::timeout &&
          inflight_ >= max_inflight_ && !closed_) {
        verdict = Admission::kDeadlineExpired;
        break;
      }
    } else {
      slot_free_.wait(lock);
    }
  }
  --waiting_;
  TABSKETCH_METRIC_GAUGE_SET("serve.queue.depth", waiting_);
  return verdict;
}

void AdmissionController::Leave() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
  }
  slot_free_.notify_one();
}

void AdmissionController::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  slot_free_.notify_all();
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_;
}

util::Result<std::unique_ptr<Server>> Server::Start(
    SnapshotHolder* snapshots, const ServerOptions& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return util::Status::IOError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const util::Status status = util::Status::IOError(
        std::string("bind 127.0.0.1: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 64) < 0) {
    const util::Status status =
        util::Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    const util::Status status = util::Status::IOError(
        std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }

  int wake[2];
  if (::pipe(wake) < 0) {
    const util::Status status =
        util::Status::IOError(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }

  ServerOptions resolved = options;
  if (resolved.max_inflight == 0) {
    resolved.max_inflight = util::DefaultThreadCount();
  }
  std::unique_ptr<Server> server(new Server(snapshots, resolved, listen_fd,
                                            wake[0], wake[1],
                                            ntohs(bound.sin_port)));
  server->accept_thread_ = std::thread(&Server::AcceptLoop, server.get());
  return server;
}

Server::Server(SnapshotHolder* snapshots, const ServerOptions& options,
               int listen_fd, int wake_read_fd, int wake_write_fd,
               uint16_t port)
    : snapshots_(snapshots),
      options_(options),
      admission_(options.max_inflight, options.max_queue),
      slow_log_(SlowQueryLog::Options{options.slow_ms,
                                      options.slow_ring_capacity,
                                      options.slow_log_path}),
      listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      port_(port) {}

Server::~Server() { Shutdown(); }

size_t Server::connections_accepted() const {
  return accepted_.load(std::memory_order_relaxed);
}

void Server::AcceptLoop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // woken by Shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (shutting_down_) {
        ::close(fd);
        continue;
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back(&Server::HandleConnection, this, fd);
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    TABSKETCH_METRIC_COUNT("serve.connections.accepted");
  }
}

void Server::HandleConnection(int fd) {
  util::Gauge* connections_gauge = nullptr;
#if TABSKETCH_METRICS_ENABLED
  if (util::MetricsRegistry::Enabled()) {
    static util::Gauge* const gauge =
        util::MetricsRegistry::Global().GetGauge("serve.connections.active");
    connections_gauge = gauge;
  }
#endif
  ScopedGaugeAdd active_connection(connections_gauge);
  LineReader reader(fd);
  std::string line;
  bool close_connection = false;
  while (!close_connection && reader.Next(&line)) {
    const std::optional<std::string> response =
        ProcessLine(line, &close_connection);
    if (!response.has_value()) continue;
    if (!SendAll(fd, *response + "\n")) break;
  }
  // Deregister before close so Shutdown never touches a recycled fd number:
  // it only shutdown(2)s fds still present in the registry, under the same
  // mutex.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::optional<std::string> Server::ProcessLine(const std::string& line,
                                               bool* close_connection) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (!tokens.empty()) {
    if (tokens[0] == "ping" && tokens.size() == 1) {
      return std::string("ok ping");
    }
    if (tokens[0] == "quit" && tokens.size() == 1) {
      *close_connection = true;
      return std::string("ok bye");
    }
    if (tokens[0] == "reload") {
      if (tokens.size() != 2) {
        TABSKETCH_METRIC_COUNT("serve.requests.errors");
        return ErrorLine("invalid-argument",
                         "expected 'reload <sketches-path>'");
      }
      return ProcessReload(tokens[1]);
    }
    if (tokens[0] == "append") {
      if (tokens.size() != 2) {
        TABSKETCH_METRIC_COUNT("serve.requests.errors");
        TABSKETCH_METRIC_COUNT("ingest.errors");
        return ErrorLine("invalid-argument",
                         "expected 'append <columns-file>'");
      }
      return ProcessAppend(tokens[1]);
    }
    if (tokens[0] == "retire") {
      if (tokens.size() != 2) {
        TABSKETCH_METRIC_COUNT("serve.requests.errors");
        TABSKETCH_METRIC_COUNT("ingest.errors");
        return ErrorLine("invalid-argument",
                         "expected 'retire <tile-columns>'");
      }
      return ProcessRetire(tokens[1]);
    }
    if (tokens[0] == "window" && tokens.size() == 1) {
      return ProcessWindow();
    }
    if (tokens[0] == "stats") {
      return ProcessStats(tokens);
    }
    if (tokens[0] == "health" && tokens.size() == 1) {
      return ProcessHealth();
    }
  }

  auto parsed = ParseBatchLine(line, /*line_number=*/1);
  if (!parsed.ok()) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    return ErrorLine(parsed.status());
  }
  if (!parsed->has_value()) return std::nullopt;  // blank / comment line
  return ProcessQuery(**parsed, line.size());
}

std::string Server::ProcessQuery(const QueryRequest& request,
                                 size_t line_bytes) {
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  util::WallTimer timer;

  // Per-verb in-flight gauge, held for the whole request (admission wait
  // included) so `stats` can see requests parked in the queue, not just
  // executing ones. Two static caches on purpose — the per-site pattern the
  // counter macros use, resolved once to the right gauge per request.
  util::Gauge* inflight_gauge = nullptr;
#if TABSKETCH_METRICS_ENABLED
  if (util::MetricsRegistry::Enabled()) {
    static util::Gauge* const distance_gauge =
        util::MetricsRegistry::Global().GetGauge("serve.inflight.distance");
    static util::Gauge* const knn_gauge =
        util::MetricsRegistry::Global().GetGauge("serve.inflight.knn");
    inflight_gauge = request.kind == QueryRequest::Kind::kDistance
                         ? distance_gauge
                         : knn_gauge;
  }
#endif
  ScopedGaugeAdd inflight(inflight_gauge);

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (options_.deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(options_.deadline_ms);
  }
  switch (admission_.Enter(deadline)) {
    case AdmissionController::Admission::kShed:
      TABSKETCH_METRIC_COUNT("serve.requests.shed");
      return ErrorLine("overloaded", "server at capacity, retry later");
    case AdmissionController::Admission::kDeadlineExpired:
      TABSKETCH_METRIC_COUNT("serve.requests.deadline_expired");
      return ErrorLine("deadline-exceeded",
                       "no execution slot within the request deadline");
    case AdmissionController::Admission::kClosed:
      return ErrorLine("unavailable", "server shutting down");
    case AdmissionController::Admission::kAdmitted:
      break;
  }
  const double queue_wait_seconds = timer.ElapsedSeconds();
  TABSKETCH_METRIC_OBSERVE("serve.request.queue_wait.seconds",
                           queue_wait_seconds);

  // RCU read side: pin the current generation for the whole request. A
  // concurrent reload swaps the holder's pointer but cannot invalidate this
  // snapshot (or any sketch handed out from its cache) until the last
  // in-flight reference drops.
  const uint64_t generation = snapshots_->swaps();
  const std::shared_ptr<const Snapshot> snapshot = snapshots_->Current();
  if (options_.pre_request_hook) options_.pre_request_hook(request);
  RequestStats request_stats;
  auto result = snapshot->engine().Run(
      std::span<const QueryRequest>(&request, 1), &request_stats);
  admission_.Leave();

  // Two macro instantiations on purpose: the macro caches a static Counter*
  // per call site, so one site with a ternary name would bind whichever
  // counter it saw first.
  if (request.kind == QueryRequest::Kind::kDistance) {
    TABSKETCH_METRIC_COUNT("serve.requests.distance");
  } else {
    TABSKETCH_METRIC_COUNT("serve.requests.knn");
  }
  const double handle_seconds = timer.ElapsedSeconds();
  TABSKETCH_METRIC_OBSERVE("serve.request.latency.seconds", handle_seconds);

  if (slow_log_.enabled()) {
    SlowQueryEntry entry;
    entry.id = request_id;
    entry.verb =
        request.kind == QueryRequest::Kind::kDistance ? "distance" : "knn";
    entry.bytes = line_bytes;
    entry.queue_wait_seconds = queue_wait_seconds;
    entry.handle_seconds = handle_seconds;
    entry.generation = generation;
    entry.stats = request_stats;
    if (slow_log_.MaybeRecord(entry)) {
      TABSKETCH_METRIC_COUNT("serve.requests.slow");
    }
  }

  if (!result.ok()) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    return ErrorLine(result.status());
  }
  return (*result)[0];
}

std::string Server::ProcessReload(const std::string& path) {
  TABSKETCH_METRIC_COUNT("serve.requests.reload");
  if (!options_.enable_reload) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    return ErrorLine("failed-precondition", "reload disabled");
  }
  const std::shared_ptr<const Snapshot> base = snapshots_->Current();
  auto next = Snapshot::WithSketchSet(*base, path);
  if (!next.ok()) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    return ErrorLine(next.status());
  }
  const size_t tiles = (*next)->num_tiles();
  snapshots_->Swap(std::move(*next));
  std::ostringstream out;
  out << "ok reload " << path << " tiles=" << tiles
      << " swaps=" << snapshots_->swaps();
  return out.str();
}

std::string Server::ProcessAppend(const std::string& path) {
  TABSKETCH_METRIC_COUNT("serve.requests.append");
  if (options_.ingest == nullptr) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    TABSKETCH_METRIC_COUNT("ingest.errors");
    return ErrorLine("failed-precondition",
                     "streaming ingest disabled (start serve with --ingest)");
  }
  auto appended = options_.ingest->Append(path, snapshots_);
  if (!appended.ok()) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    TABSKETCH_METRIC_COUNT("ingest.errors");
    return ErrorLine(appended.status());
  }
  std::ostringstream out;
  out << "ok append " << path << " cols=" << appended->appended_cols
      << " tiles=" << appended->window.num_tiles
      << " new=" << appended->new_tiles
      << " reused=" << appended->reused_tiles
      << " pending=" << appended->window.pending_cols
      << " remap=" << (appended->codes_rebuilt ? 1 : 0)
      << " swaps=" << snapshots_->swaps();
  return out.str();
}

std::string Server::ProcessRetire(const std::string& count_token) {
  TABSKETCH_METRIC_COUNT("serve.requests.retire");
  if (options_.ingest == nullptr) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    TABSKETCH_METRIC_COUNT("ingest.errors");
    return ErrorLine("failed-precondition",
                     "streaming ingest disabled (start serve with --ingest)");
  }
  unsigned long long count = 0;
  const char* begin = count_token.data();
  const char* end = begin + count_token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, count);
  if (ec != std::errc() || ptr != end) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    TABSKETCH_METRIC_COUNT("ingest.errors");
    return ErrorLine("invalid-argument",
                     "retire count must be a non-negative integer");
  }
  auto retired =
      options_.ingest->Retire(static_cast<size_t>(count), snapshots_);
  if (!retired.ok()) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    TABSKETCH_METRIC_COUNT("ingest.errors");
    return ErrorLine(retired.status());
  }
  std::ostringstream out;
  out << "ok retire " << retired->retired_tile_cols
      << " tiles=" << retired->window.num_tiles
      << " start=" << retired->window.start_tile_col
      << " swaps=" << snapshots_->swaps();
  return out.str();
}

std::string Server::ProcessWindow() {
  if (options_.ingest == nullptr) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    TABSKETCH_METRIC_COUNT("ingest.errors");
    return ErrorLine("failed-precondition",
                     "streaming ingest disabled (start serve with --ingest)");
  }
  const StreamingIngest::WindowStats window = options_.ingest->stats();
  std::ostringstream out;
  out << "ok window tile-cols=" << window.grid_cols
      << " start=" << window.start_tile_col
      << " pending=" << window.pending_cols << " tiles=" << window.num_tiles;
  return out.str();
}

StatsInfo Server::BuildStatsInfo() {
  StatsInfo info;
  info.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  info.generation = snapshots_->swaps();
  info.tiles = snapshots_->Current()->num_tiles();
  info.connections_accepted = connections_accepted();
  info.queue_depth = admission_.queue_depth();
  info.slow_total = slow_log_.total();
  if (options_.ingest != nullptr) {
    const StreamingIngest::WindowStats window = options_.ingest->stats();
    info.has_window = true;
    info.window_start_col = window.start_tile_col;
    info.window_tile_cols = window.grid_cols;
    info.window_pending_cols = window.pending_cols;
  }
  return info;
}

std::string Server::ProcessStats(const std::vector<std::string>& tokens) {
  TABSKETCH_METRIC_COUNT("serve.requests.stats");
  const std::string mode = tokens.size() >= 2 ? tokens[1] : "json";
  if (tokens.size() > 2 ||
      (mode != "json" && mode != "prom" && mode != "slow")) {
    TABSKETCH_METRIC_COUNT("serve.requests.errors");
    return ErrorLine("invalid-argument", "expected 'stats [json|prom|slow]'");
  }
  if (mode == "slow") {
    return slow_log_.ToJson();
  }
  const util::MetricsSnapshot current =
      util::CaptureSnapshot(util::MetricsRegistry::Global());
  if (mode == "prom") {
    // Multi-line response on a line protocol: the exposition ends with a
    // `# EOF` comment line, so clients read until they see it
    // (docs/FORMATS.md). The trailing newline is stripped here because the
    // connection handler frames every response with one.
    std::ostringstream out;
    WritePrometheusText(current, out);
    std::string text = out.str();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }
  std::optional<util::MetricsSnapshot> baseline;
  if (options_.ticker != nullptr) {
    baseline = options_.ticker->WindowBaseline(current.wall_seconds);
  }
  return RenderStatsJson(BuildStatsInfo(), current,
                         baseline.has_value() ? &*baseline : nullptr);
}

std::string Server::ProcessHealth() {
  TABSKETCH_METRIC_COUNT("serve.requests.stats");
  return RenderHealthJson(BuildStatsInfo());
}

void Server::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Stop taking new work: wake the accept loop, mark the registry so any
    // already-accepted-but-unregistered connection is closed, and reject
    // every queued admission with kClosed.
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      shutting_down_ = true;
    }
    const char byte = 'x';
    while (::write(wake_write_fd_, &byte, 1) < 0 && errno == EINTR) {
    }
    accept_thread_.join();
    ::close(listen_fd_);
    admission_.Close();

    // Drain: half-close each connection's read side so blocked recv()s see
    // EOF; handlers finish their in-flight request, deliver the response on
    // the still-open write side, then exit.
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    }
    for (std::thread& thread : conn_threads_) thread.join();
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
  });
}

}  // namespace tabsketch::serve
