#ifndef TABSKETCH_TABLE_TABLE_IO_H_
#define TABSKETCH_TABLE_TABLE_IO_H_

#include <string>

#include "table/matrix.h"
#include "util/result.h"
#include "util/status.h"

namespace tabsketch::table {

/// Binary table format: a small fixed header (magic "TSKT", version,
/// dimensions) followed by row-major little-endian doubles. This stands in
/// for the proprietary flat-file stores the paper's tables live in.
///
/// Writes `matrix` to `path`, overwriting any existing file.
util::Status WriteBinary(const Matrix& matrix, const std::string& path);

/// Reads a matrix previously written by WriteBinary.
util::Result<Matrix> ReadBinary(const std::string& path);

/// Writes `matrix` as comma-separated values, one row per line.
util::Status WriteCsv(const Matrix& matrix, const std::string& path);

/// Reads a rectangular CSV of doubles. All rows must have the same number of
/// fields; empty trailing lines are ignored.
util::Result<Matrix> ReadCsv(const std::string& path);

}  // namespace tabsketch::table

#endif  // TABSKETCH_TABLE_TABLE_IO_H_
