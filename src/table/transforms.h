#ifndef TABSKETCH_TABLE_TRANSFORMS_H_
#define TABSKETCH_TABLE_TRANSFORMS_H_

#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::table {

/// Per-subtable normalizations applied before distance computation. The
/// paper's introduction notes that "depending on applications, one may
/// consider dilation, scaling and other operations on vectors before
/// computing the L1 or L2 norms"; these are the standard choices for
/// call-volume-like data:
///   - kIdentity:   raw values.
///   - kMeanCenter: subtract the subtable mean (removes the volume offset;
///                  compares shapes of activity).
///   - kZScore:     mean-center then divide by the standard deviation
///                  (dilation + scaling; compares pure shape). Subtables
///                  with zero variance map to all-zero.
///   - kUnitPeak:   divide by the maximum absolute value (scale to [-1, 1];
///                  compares profiles independent of magnitude). All-zero
///                  subtables stay zero.
///   - kUnitMean:   divide by the subtable mean (the natural scaling for
///                  count data such as call volumes or traffic bytes:
///                  compares relative profiles). Zero-mean subtables are
///                  left unchanged.
///   - kLog1p:      sign-preserving log(1 + |x|) compression (damps the
///                  dynamic range of bursty counts).
enum class TileTransform {
  kIdentity,
  kMeanCenter,
  kZScore,
  kUnitPeak,
  kUnitMean,
  kLog1p,
};

/// Human-readable transform name ("identity", "z-score", ...).
const char* TileTransformName(TileTransform transform);

/// Applies `transform` to a copy of `view`.
Matrix ApplyTransform(const TableView& view, TileTransform transform);

/// Applies `transform` independently to every aligned tile_rows x tile_cols
/// tile of `input` (trailing partial tiles are copied unchanged), returning
/// the transformed table. Sketching the result makes sketch distances
/// reflect the transformed objects — transforms compose with everything
/// downstream because they are plain preprocessing.
util::Result<Matrix> TransformTiles(const Matrix& input, size_t tile_rows,
                                    size_t tile_cols,
                                    TileTransform transform);

}  // namespace tabsketch::table

#endif  // TABSKETCH_TABLE_TRANSFORMS_H_
