#include "table/tiling.h"

#include <sstream>

namespace tabsketch::table {

util::Result<TileGrid> TileGrid::Create(const Matrix* parent, size_t tile_rows,
                                        size_t tile_cols) {
  TABSKETCH_CHECK(parent != nullptr);
  if (tile_rows == 0 || tile_cols == 0) {
    return util::Status::InvalidArgument("tile dimensions must be positive");
  }
  if (tile_rows > parent->rows() || tile_cols > parent->cols()) {
    std::ostringstream msg;
    msg << "tile " << tile_rows << "x" << tile_cols
        << " exceeds table " << parent->rows() << "x" << parent->cols();
    return util::Status::InvalidArgument(msg.str());
  }
  return TileGrid(parent, tile_rows, tile_cols);
}

}  // namespace tabsketch::table
