#ifndef TABSKETCH_TABLE_TILING_H_
#define TABSKETCH_TABLE_TILING_H_

#include <cstddef>

#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::table {

/// Partition of a Matrix into a grid of disjoint, equally sized tiles — the
/// "objects" that the mining experiments compare and cluster (e.g. a day of
/// data for a group of neighboring stations).
///
/// Tiles are indexed in row-major order: tile t covers rows
/// [ (t / grid_cols) * tile_rows , ... ) and the analogous column range.
/// Trailing rows/columns that do not fill a whole tile are ignored, matching
/// the paper's practice of dividing data "into tiles of a meaningful size".
class TileGrid {
 public:
  /// Creates a grid of tile_rows x tile_cols tiles over `parent`.
  /// Returns InvalidArgument if a tile dimension is zero or exceeds the
  /// parent's dimensions. `parent` must outlive the grid.
  static util::Result<TileGrid> Create(const Matrix* parent, size_t tile_rows,
                                       size_t tile_cols);

  size_t tile_rows() const { return tile_rows_; }
  size_t tile_cols() const { return tile_cols_; }
  /// Elements per tile.
  size_t tile_size() const { return tile_rows_ * tile_cols_; }
  /// Number of tile rows / cols in the grid.
  size_t grid_rows() const { return grid_rows_; }
  size_t grid_cols() const { return grid_cols_; }
  /// Total number of tiles.
  size_t num_tiles() const { return grid_rows_ * grid_cols_; }

  /// Top-left data coordinates of tile `index`.
  size_t TileOriginRow(size_t index) const {
    TABSKETCH_DCHECK(index < num_tiles());
    return (index / grid_cols_) * tile_rows_;
  }
  size_t TileOriginCol(size_t index) const {
    TABSKETCH_DCHECK(index < num_tiles());
    return (index % grid_cols_) * tile_cols_;
  }

  /// Read-only view of tile `index`.
  TableView Tile(size_t index) const {
    return parent_->Window(TileOriginRow(index), TileOriginCol(index),
                           tile_rows_, tile_cols_);
  }

  const Matrix& parent() const { return *parent_; }

 private:
  TileGrid(const Matrix* parent, size_t tile_rows, size_t tile_cols)
      : parent_(parent),
        tile_rows_(tile_rows),
        tile_cols_(tile_cols),
        grid_rows_(parent->rows() / tile_rows),
        grid_cols_(parent->cols() / tile_cols) {}

  const Matrix* parent_;
  size_t tile_rows_;
  size_t tile_cols_;
  size_t grid_rows_;
  size_t grid_cols_;
};

}  // namespace tabsketch::table

#endif  // TABSKETCH_TABLE_TILING_H_
