#include "table/table_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace tabsketch::table {
namespace {

constexpr char kMagic[4] = {'T', 'S', 'K', 'T'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[4];
  uint32_t version;
  uint64_t rows;
  uint64_t cols;
};

}  // namespace

util::Status WriteBinary(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.rows = matrix.rows();
  header.cols = matrix.cols();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  auto values = matrix.Values();
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!out) {
    return util::Status::IOError("write failed: " + path);
  }
  return util::Status::OK();
}

util::Result<Matrix> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::IOError("not a tabsketch binary table: " + path);
  }
  if (header.version != kVersion) {
    std::ostringstream msg;
    msg << "unsupported table version " << header.version << " in " << path;
    return util::Status::IOError(msg.str());
  }
  // Guard against corrupted dimensions before allocating: the payload must
  // be exactly rows*cols doubles (overflow-safe check).
  in.seekg(0, std::ios::end);
  const uint64_t payload_bytes =
      static_cast<uint64_t>(in.tellg()) - sizeof(header);
  in.seekg(sizeof(header), std::ios::beg);
  const uint64_t max_count = payload_bytes / sizeof(double);
  if (header.rows != 0 && header.cols > max_count / header.rows) {
    return util::Status::IOError("corrupt table dimensions in " + path);
  }
  const uint64_t count = header.rows * header.cols;
  if (count * sizeof(double) != payload_bytes) {
    return util::Status::IOError("corrupt table dimensions in " + path);
  }
  std::vector<double> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) {
    return util::Status::IOError("truncated table file: " + path);
  }
  return Matrix(header.rows, header.cols, std::move(values));
}

util::Status WriteCsv(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  out.precision(17);
  for (size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.Row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  }
  if (!out) {
    return util::Status::IOError("write failed: " + path);
  }
  return util::Status::OK();
}

util::Result<Matrix> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  std::vector<double> values;
  size_t rows = 0;
  size_t cols = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t fields = 0;
    std::istringstream line_stream(line);
    std::string field;
    while (std::getline(line_stream, field, ',')) {
      try {
        values.push_back(std::stod(field));
      } catch (const std::exception&) {
        std::ostringstream msg;
        msg << "bad numeric field '" << field << "' at row " << rows << " in "
            << path;
        return util::Status::IOError(msg.str());
      }
      ++fields;
    }
    if (rows == 0) {
      cols = fields;
    } else if (fields != cols) {
      std::ostringstream msg;
      msg << "ragged CSV: row " << rows << " has " << fields
          << " fields, expected " << cols << " in " << path;
      return util::Status::IOError(msg.str());
    }
    ++rows;
  }
  return Matrix(rows, cols, std::move(values));
}

}  // namespace tabsketch::table
