#ifndef TABSKETCH_TABLE_MATRIX_H_
#define TABSKETCH_TABLE_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/logging.h"

namespace tabsketch::table {

class TableView;

/// Dense row-major matrix of doubles: the in-memory representation of tabular
/// data (e.g. rows = collection stations, columns = time bins).
///
/// This is the owning storage type; non-owning rectangular windows over it are
/// expressed as TableView. Copyable and movable.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  /// Builds from row-major values; `values.size()` must equal rows*cols.
  Matrix(size_t rows, size_t cols, std::vector<double> values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double& At(size_t r, size_t c) {
    TABSKETCH_DCHECK(r < rows_ && c < cols_)
        << "(" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return values_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    TABSKETCH_DCHECK(r < rows_ && c < cols_)
        << "(" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return values_[r * cols_ + c];
  }

  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Row r as a contiguous span of cols() doubles.
  std::span<double> Row(size_t r) {
    TABSKETCH_DCHECK(r < rows_);
    return {values_.data() + r * cols_, cols_};
  }
  std::span<const double> Row(size_t r) const {
    TABSKETCH_DCHECK(r < rows_);
    return {values_.data() + r * cols_, cols_};
  }

  /// All values in row-major order.
  std::span<double> Values() { return values_; }
  std::span<const double> Values() const { return values_; }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// View covering the whole matrix.
  TableView View() const;

  /// View of the rectangle with top-left (row, col) spanning rows x cols
  /// entries. Bounds-checked.
  TableView Window(size_t row, size_t col, size_t rows, size_t cols) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.values_ == b.values_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> values_;
};

/// Non-owning read-only rectangular window into a Matrix (a "subtable" in the
/// paper's terminology). Cheap to copy; the parent Matrix must outlive it.
class TableView {
 public:
  /// Empty view.
  TableView() = default;

  /// View of `rows` x `cols` starting at `origin` with row stride
  /// `row_stride` (the parent's column count).
  TableView(const double* origin, size_t rows, size_t cols, size_t row_stride)
      : origin_(origin), rows_(rows), cols_(cols), row_stride_(row_stride) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double At(size_t r, size_t c) const {
    TABSKETCH_DCHECK(r < rows_ && c < cols_)
        << "(" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return origin_[r * row_stride_ + c];
  }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Row r as a contiguous span (rows of a view are always contiguous).
  std::span<const double> Row(size_t r) const {
    TABSKETCH_DCHECK(r < rows_);
    return {origin_ + r * row_stride_, cols_};
  }

  /// Copies the view into an owning row-major Matrix.
  Matrix ToMatrix() const;

  /// Copies the view into `out` in row-major order ("linearized in some
  /// consistent way", paper Section 3.2). `out` is resized to size().
  void Linearize(std::vector<double>* out) const;

 private:
  const double* origin_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t row_stride_ = 0;
};

}  // namespace tabsketch::table

#endif  // TABSKETCH_TABLE_MATRIX_H_
