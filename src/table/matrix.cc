#include "table/matrix.h"

#include <algorithm>

namespace tabsketch::table {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  TABSKETCH_CHECK(values_.size() == rows * cols)
      << "value count " << values_.size() << " != " << rows << "*" << cols;
}

void Matrix::Fill(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

TableView Matrix::View() const {
  return TableView(values_.data(), rows_, cols_, cols_);
}

TableView Matrix::Window(size_t row, size_t col, size_t rows,
                         size_t cols) const {
  TABSKETCH_CHECK(row + rows <= rows_ && col + cols <= cols_)
      << "window (" << row << "," << col << ")+" << rows << "x" << cols
      << " exceeds " << rows_ << "x" << cols_;
  return TableView(values_.data() + row * cols_ + col, rows, cols, cols_);
}

Matrix TableView::ToMatrix() const {
  Matrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    auto src = Row(r);
    std::copy(src.begin(), src.end(), out.Row(r).begin());
  }
  return out;
}

void TableView::Linearize(std::vector<double>* out) const {
  out->resize(size());
  double* dst = out->data();
  for (size_t r = 0; r < rows_; ++r) {
    auto src = Row(r);
    dst = std::copy(src.begin(), src.end(), dst);
  }
}

}  // namespace tabsketch::table
