#include "table/transforms.h"

#include <algorithm>
#include <cmath>

#include "table/tiling.h"
#include "util/logging.h"

namespace tabsketch::table {
namespace {

void MeanCenterInPlace(Matrix* tile) {
  double mean = 0.0;
  for (double value : tile->Values()) mean += value;
  mean /= static_cast<double>(tile->size());
  for (double& value : tile->Values()) value -= mean;
}

void ZScoreInPlace(Matrix* tile) {
  MeanCenterInPlace(tile);
  double variance = 0.0;
  for (double value : tile->Values()) variance += value * value;
  variance /= static_cast<double>(tile->size());
  if (variance == 0.0) return;  // constant tile: already all-zero
  const double inv_stddev = 1.0 / std::sqrt(variance);
  for (double& value : tile->Values()) value *= inv_stddev;
}

void UnitPeakInPlace(Matrix* tile) {
  double peak = 0.0;
  for (double value : tile->Values()) {
    peak = std::max(peak, std::fabs(value));
  }
  if (peak == 0.0) return;
  const double inv_peak = 1.0 / peak;
  for (double& value : tile->Values()) value *= inv_peak;
}

void UnitMeanInPlace(Matrix* tile) {
  double mean = 0.0;
  for (double value : tile->Values()) mean += value;
  mean /= static_cast<double>(tile->size());
  if (mean == 0.0) return;
  const double inv_mean = 1.0 / mean;
  for (double& value : tile->Values()) value *= inv_mean;
}

void Log1pInPlace(Matrix* tile) {
  for (double& value : tile->Values()) {
    value = value >= 0.0 ? std::log1p(value) : -std::log1p(-value);
  }
}

void ApplyInPlace(Matrix* tile, TileTransform transform) {
  switch (transform) {
    case TileTransform::kIdentity:
      return;
    case TileTransform::kMeanCenter:
      MeanCenterInPlace(tile);
      return;
    case TileTransform::kZScore:
      ZScoreInPlace(tile);
      return;
    case TileTransform::kUnitPeak:
      UnitPeakInPlace(tile);
      return;
    case TileTransform::kUnitMean:
      UnitMeanInPlace(tile);
      return;
    case TileTransform::kLog1p:
      Log1pInPlace(tile);
      return;
  }
  TABSKETCH_CHECK(false) << "unknown transform";
}

}  // namespace

const char* TileTransformName(TileTransform transform) {
  switch (transform) {
    case TileTransform::kIdentity:
      return "identity";
    case TileTransform::kMeanCenter:
      return "mean-center";
    case TileTransform::kZScore:
      return "z-score";
    case TileTransform::kUnitPeak:
      return "unit-peak";
    case TileTransform::kUnitMean:
      return "unit-mean";
    case TileTransform::kLog1p:
      return "log1p";
  }
  return "?";
}

Matrix ApplyTransform(const TableView& view, TileTransform transform) {
  Matrix out = view.ToMatrix();
  ApplyInPlace(&out, transform);
  return out;
}

util::Result<Matrix> TransformTiles(const Matrix& input, size_t tile_rows,
                                    size_t tile_cols,
                                    TileTransform transform) {
  TABSKETCH_ASSIGN_OR_RETURN(TileGrid grid,
                             TileGrid::Create(&input, tile_rows, tile_cols));
  Matrix out = input;  // trailing partial tiles keep their raw values
  for (size_t t = 0; t < grid.num_tiles(); ++t) {
    const Matrix transformed = ApplyTransform(grid.Tile(t), transform);
    const size_t origin_row = grid.TileOriginRow(t);
    const size_t origin_col = grid.TileOriginCol(t);
    for (size_t r = 0; r < tile_rows; ++r) {
      auto src = transformed.Row(r);
      for (size_t c = 0; c < tile_cols; ++c) {
        out(origin_row + r, origin_col + c) = src[c];
      }
    }
  }
  return out;
}

}  // namespace tabsketch::table
