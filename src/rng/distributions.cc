#include "rng/distributions.h"

#include <cmath>
#include <numbers>

namespace tabsketch::rng {

double GaussianSampler::Sample(Xoshiro256& gen) {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  const double u1 = gen.NextDoubleOpen();
  const double u2 = gen.NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_ = radius * std::sin(angle);
  has_spare_ = true;
  return radius * std::cos(angle);
}

double CauchySampler::Sample(Xoshiro256& gen) {
  const double u = gen.NextDoubleOpen();
  return std::tan(std::numbers::pi * (u - 0.5));
}

double ExponentialSampler::Sample(Xoshiro256& gen) {
  return -std::log(gen.NextDoubleOpen());
}

}  // namespace tabsketch::rng
