#ifndef TABSKETCH_RNG_SPLITMIX64_H_
#define TABSKETCH_RNG_SPLITMIX64_H_

#include <cstdint>

namespace tabsketch::rng {

/// SplitMix64 step function (Steele, Lea & Flood). Used both as a standalone
/// mixer for deriving independent stream seeds and as the seeding procedure
/// for Xoshiro256. Passes through all 2^64 states; any 64-bit value is a
/// valid state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output and advances the state.
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless mix of a single 64-bit value; a cheap strong hash used to derive
/// substream seeds, e.g. the seed of random matrix i at canonical size (a, b)
/// from a master seed.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one well-mixed value (order-sensitive).
inline uint64_t MixSeeds(uint64_t a, uint64_t b) {
  return Mix64(a ^ (Mix64(b) + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace tabsketch::rng

#endif  // TABSKETCH_RNG_SPLITMIX64_H_
