#include "rng/stable.h"

#include <cmath>
#include <numbers>
#include <sstream>

#include "util/logging.h"

namespace tabsketch::rng {

util::Result<StableSampler> StableSampler::Create(double alpha) {
  if (!(alpha > 0.0) || alpha > 2.0) {
    std::ostringstream msg;
    msg << "stable index alpha must be in (0, 2], got " << alpha;
    return util::Status::InvalidArgument(msg.str());
  }
  return StableSampler(alpha);
}

StableSampler::StableSampler(double alpha)
    : alpha_(alpha),
      inv_alpha_(1.0 / alpha),
      one_minus_alpha_over_alpha_((1.0 - alpha) / alpha) {
  if (alpha == 1.0) {
    kind_ = Kind::kCauchy;
  } else if (alpha == 2.0) {
    kind_ = Kind::kGaussian;
  } else {
    kind_ = Kind::kGeneral;
  }
}

double StableSampler::Sample(Xoshiro256& gen) {
  switch (kind_) {
    case Kind::kCauchy:
      return cauchy_.Sample(gen);
    case Kind::kGaussian:
      return gaussian_.Sample(gen);
    case Kind::kGeneral:
      break;
  }
  // Chambers-Mallows-Stuck for symmetric stable, alpha != 1.
  const double theta =
      std::numbers::pi * (gen.NextDoubleOpen() - 0.5);  // (-pi/2, pi/2)
  const double w = exponential_.Sample(gen);
  const double cos_theta = std::cos(theta);
  const double x =
      std::sin(alpha_ * theta) / std::pow(cos_theta, inv_alpha_) *
      std::pow(std::cos((1.0 - alpha_) * theta) / w,
               one_minus_alpha_over_alpha_);
  return x;
}

double SampleStableAt(double alpha, uint64_t seed) {
  TABSKETCH_CHECK(alpha > 0.0 && alpha <= 2.0)
      << "stable index alpha must be in (0, 2], got " << alpha;
  Xoshiro256 gen(seed);
  if (alpha == 1.0) {
    return std::tan(std::numbers::pi * (gen.NextDoubleOpen() - 0.5));
  }
  if (alpha == 2.0) {
    // Single Box-Muller draw (no spare caching: statelessness first).
    const double u1 = gen.NextDoubleOpen();
    const double u2 = gen.NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }
  const double theta = std::numbers::pi * (gen.NextDoubleOpen() - 0.5);
  const double w = -std::log(gen.NextDoubleOpen());
  return std::sin(alpha * theta) /
         std::pow(std::cos(theta), 1.0 / alpha) *
         std::pow(std::cos((1.0 - alpha) * theta) / w,
                  (1.0 - alpha) / alpha);
}

}  // namespace tabsketch::rng
