#include "rng/stable.h"

#include <cmath>
#include <numbers>
#include <sstream>

#include "rng/splitmix64.h"
#include "util/logging.h"

namespace tabsketch::rng {

util::Result<StableSampler> StableSampler::Create(double alpha) {
  if (!(alpha > 0.0) || alpha > 2.0) {
    std::ostringstream msg;
    msg << "stable index alpha must be in (0, 2], got " << alpha;
    return util::Status::InvalidArgument(msg.str());
  }
  return StableSampler(alpha);
}

StableSampler::StableSampler(double alpha)
    : alpha_(alpha),
      inv_alpha_(1.0 / alpha),
      one_minus_alpha_over_alpha_((1.0 - alpha) / alpha) {
  if (alpha == 1.0) {
    kind_ = Kind::kCauchy;
  } else if (alpha == 2.0) {
    kind_ = Kind::kGaussian;
  } else {
    kind_ = Kind::kGeneral;
  }
}

double StableSampler::Sample(Xoshiro256& gen) {
  switch (kind_) {
    case Kind::kCauchy:
      return cauchy_.Sample(gen);
    case Kind::kGaussian:
      return gaussian_.Sample(gen);
    case Kind::kGeneral:
      break;
  }
  // Chambers-Mallows-Stuck for symmetric stable, alpha != 1.
  const double theta =
      std::numbers::pi * (gen.NextDoubleOpen() - 0.5);  // (-pi/2, pi/2)
  const double w = exponential_.Sample(gen);
  const double cos_theta = std::cos(theta);
  const double x =
      std::sin(alpha_ * theta) / std::pow(cos_theta, inv_alpha_) *
      std::pow(std::cos((1.0 - alpha_) * theta) / w,
               one_minus_alpha_over_alpha_);
  return x;
}

namespace {

// Domain tag separating the support-gate stream from the value stream: the
// gate word must not be correlated with the Xoshiro256 state SampleStableAt
// seeds from the same entry seed.
constexpr uint64_t kSparseGateTag = 0x5ba4593a7e9c0d1fULL;

}  // namespace

double SampleStableAt(double alpha, uint64_t seed) {
  TABSKETCH_CHECK(alpha > 0.0 && alpha <= 2.0)
      << "stable index alpha must be in (0, 2], got " << alpha;
  Xoshiro256 gen(seed);
  if (alpha == 1.0) {
    return std::tan(std::numbers::pi * (gen.NextDoubleOpen() - 0.5));
  }
  if (alpha == 2.0) {
    // Single Box-Muller draw (no spare caching: statelessness first).
    const double u1 = gen.NextDoubleOpen();
    const double u2 = gen.NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }
  const double theta = std::numbers::pi * (gen.NextDoubleOpen() - 0.5);
  const double w = -std::log(gen.NextDoubleOpen());
  return std::sin(alpha * theta) /
         std::pow(std::cos(theta), 1.0 / alpha) *
         std::pow(std::cos((1.0 - alpha) * theta) / w,
                  (1.0 - alpha) / alpha);
}

double SampleSparseStableAt(double alpha, double sparsity, uint64_t seed) {
  TABSKETCH_CHECK(sparsity > 0.0) << "sparsity must be positive, got "
                                  << sparsity;
  if (sparsity >= 1.0) return SampleStableAt(alpha, seed);
  // 53-bit uniform in [0, 1) from a tagged mix of the entry seed; the entry
  // is in the support iff the gate lands below `sparsity`. Strictly-below
  // keeps the gate exact for dyadic sparsities (e.g. 0.5, 0.25).
  const double gate =
      static_cast<double>(Mix64(seed ^ kSparseGateTag) >> 11) * 0x1.0p-53;
  if (gate >= sparsity) return 0.0;
  return SampleStableAt(alpha, seed) * std::pow(sparsity, -1.0 / alpha);
}

}  // namespace tabsketch::rng
