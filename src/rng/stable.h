#ifndef TABSKETCH_RNG_STABLE_H_
#define TABSKETCH_RNG_STABLE_H_

#include "rng/distributions.h"
#include "rng/xoshiro256.h"
#include "util/result.h"

namespace tabsketch::rng {

/// Sampler for the standard symmetric alpha-stable distribution SaS(alpha)
/// (skewness beta = 0, unit scale, zero location), for alpha in (0, 2].
///
/// Stability property (the foundation of Lp sketching, paper Section 3.2):
/// if X_1..X_n ~ SaS(alpha) iid, then sum a_i X_i is distributed as
/// ||a||_alpha * X with X ~ SaS(alpha).
///
/// Sampling uses the Chambers-Mallows-Stuck (CMS) transform:
///   theta ~ Uniform(-pi/2, pi/2),  W ~ Exponential(1)
///   X = sin(alpha*theta) / cos(theta)^(1/alpha)
///       * (cos((1-alpha)*theta) / W)^((1-alpha)/alpha)
/// with the special cases alpha = 1 (Cauchy, X = tan(theta)) and alpha = 2
/// (Gaussian N(0,1) by our convention; see below) handled directly for speed
/// and exactness.
///
/// Normalization convention: at alpha = 2 the CMS transform produces N(0, 2);
/// we instead return N(0, 1) so that sum a_i X_i ~ ||a||_2 * N(0,1), matching
/// the Johnson-Lindenstrauss estimator used for L2 sketches. At alpha = 1 the
/// standard Cauchy already satisfies sum a_i X_i ~ ||a||_1 * Cauchy. For other
/// alpha the SaS(alpha) scale convention is the CMS one; the resulting
/// distance estimates are corrected by the B(p) factor of
/// core/scale_factor.h (paper Theorem 2).
class StableSampler {
 public:
  /// Creates a sampler for SaS(alpha). Returns InvalidArgument unless
  /// 0 < alpha <= 2.
  static util::Result<StableSampler> Create(double alpha);

  double alpha() const { return alpha_; }

  /// Draws one variate using `gen`.
  double Sample(Xoshiro256& gen);

 private:
  explicit StableSampler(double alpha);

  enum class Kind { kCauchy, kGaussian, kGeneral };

  double alpha_;
  Kind kind_;
  // Precomputed exponents for the general CMS branch.
  double inv_alpha_;
  double one_minus_alpha_over_alpha_;
  GaussianSampler gaussian_;
  CauchySampler cauchy_;
  ExponentialSampler exponential_;
};

/// Draws a single SaS(alpha) variate from a dedicated generator seeded with
/// `seed`, statelessly: the same (alpha, seed) always yields the same value.
///
/// This is the counter-based primitive behind random access into the sketch
/// family's random matrices: entry (r, c) of matrix i is derived from a
/// per-entry seed, so a single entry can be regenerated in O(1) without
/// materializing the matrix — which is what makes O(k) streaming point
/// updates to sketches possible (core/updatable_sketch.h). `alpha` must be
/// in (0, 2].
double SampleStableAt(double alpha, uint64_t seed);

/// Very sparse stable variant (Ping Li): zero with probability 1 - sparsity,
/// otherwise SampleStableAt(alpha, seed) rescaled by sparsity^(-1/alpha) so
/// that sum a_i X_i still concentrates around ||a||_alpha at a variance cost
/// that shrinks as the support of `a` grows (DESIGN.md Section 16).
///
/// The support gate and the value draw are derived from independent mixes of
/// the same seed, so membership and magnitude are uncorrelated, and the same
/// (alpha, sparsity, seed) always yields the same value — the counter-based
/// random-access invariant carries over unchanged. sparsity >= 1 returns the
/// dense draw bit-identically (legacy families are the sparsity = 1 case).
/// `sparsity` must be in (0, 1].
double SampleSparseStableAt(double alpha, double sparsity, uint64_t seed);

}  // namespace tabsketch::rng

#endif  // TABSKETCH_RNG_STABLE_H_
