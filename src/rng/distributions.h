#ifndef TABSKETCH_RNG_DISTRIBUTIONS_H_
#define TABSKETCH_RNG_DISTRIBUTIONS_H_

#include "rng/xoshiro256.h"

namespace tabsketch::rng {

/// Standard normal N(0, 1) sampler using the Box-Muller transform with a
/// cached spare, so each pair of uniforms yields two normals.
///
/// The Gaussian is the 2-stable distribution: if X_i ~ N(0,1) iid then
/// sum a_i X_i ~ N(0, ||a||_2^2), i.e. ||a||_2 * N(0,1).
class GaussianSampler {
 public:
  GaussianSampler() = default;

  double Sample(Xoshiro256& gen);

 private:
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Standard Cauchy sampler (location 0, scale 1) via inverse CDF:
/// tan(pi * (u - 1/2)). The Cauchy is the 1-stable distribution.
class CauchySampler {
 public:
  double Sample(Xoshiro256& gen);
};

/// Exponential(1) sampler via inverse CDF: -log(u).
class ExponentialSampler {
 public:
  double Sample(Xoshiro256& gen);
};

}  // namespace tabsketch::rng

#endif  // TABSKETCH_RNG_DISTRIBUTIONS_H_
