#ifndef TABSKETCH_RNG_XOSHIRO256_H_
#define TABSKETCH_RNG_XOSHIRO256_H_

#include <cstdint>
#include <limits>

#include "rng/splitmix64.h"

namespace tabsketch::rng {

/// xoshiro256++ 1.0 (Blackman & Vigna): fast, high-quality 64-bit PRNG with a
/// 2^256-1 period. Satisfies std::uniform_random_bit_generator so it can also
/// drive standard-library distributions where convenient.
///
/// All randomness in the library flows through explicitly seeded instances of
/// this engine, which makes every sketch, dataset and clustering run
/// reproducible from a single 64-bit seed.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words from SplitMix64(seed), per the authors'
  /// recommendation (avoids the all-zero state for every seed).
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): the top 53 bits scaled by 2^-53.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in the open interval (0, 1); never returns 0, which the
  /// Box-Muller and Chambers-Mallows-Stuck transforms require (log(0) and
  /// division by zero otherwise).
  double NextDoubleOpen() {
    // (n + 0.5) * 2^-53 for n in [0, 2^53) lies strictly inside (0, 1).
    return (static_cast<double>(Next() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to rejection-free multiply-shift with widening).
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply keeps the distribution unbiased to within 2^-64,
    // which is far below any statistical effect observable here.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) *
        static_cast<unsigned __int128>(bound);
    return static_cast<uint64_t>(product >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace tabsketch::rng

#endif  // TABSKETCH_RNG_XOSHIRO256_H_
