#include "eval/measures.h"

#include <cmath>

#include "util/logging.h"

namespace tabsketch::eval {

double CumulativeCorrectness(std::span<const double> exact,
                             std::span<const double> approx) {
  TABSKETCH_CHECK(exact.size() == approx.size() && !exact.empty());
  double exact_sum = 0.0;
  double approx_sum = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    exact_sum += exact[i];
    approx_sum += approx[i];
  }
  TABSKETCH_CHECK(exact_sum > 0.0) << "exact distances sum to zero";
  return approx_sum / exact_sum;
}

double AverageCorrectness(std::span<const double> exact,
                          std::span<const double> approx) {
  TABSKETCH_CHECK(exact.size() == approx.size() && !exact.empty());
  double error = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] == 0.0) {
      error += (approx[i] == 0.0) ? 0.0 : 1.0;
    } else {
      error += std::fabs(1.0 - approx[i] / exact[i]);
    }
  }
  return 1.0 - error / static_cast<double>(exact.size());
}

double PairwiseComparisonCorrectness(std::span<const double> exact_xy,
                                     std::span<const double> exact_xz,
                                     std::span<const double> approx_xy,
                                     std::span<const double> approx_xz) {
  const size_t n = exact_xy.size();
  TABSKETCH_CHECK(n > 0 && exact_xz.size() == n && approx_xy.size() == n &&
                  approx_xz.size() == n);
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool exact_says_y = exact_xy[i] < exact_xz[i];
    const bool approx_says_y = approx_xy[i] < approx_xz[i];
    if (exact_says_y == approx_says_y) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace tabsketch::eval
