#include "eval/quality.h"

#include "core/lp_distance.h"
#include "table/matrix.h"
#include "util/logging.h"

namespace tabsketch::eval {

double ClusteringSpread(const table::TileGrid& grid,
                        const std::vector<int>& assignment, size_t k,
                        double p) {
  TABSKETCH_CHECK(assignment.size() == grid.num_tiles())
      << "assignment covers " << assignment.size() << " of "
      << grid.num_tiles() << " tiles";
  TABSKETCH_CHECK(k > 0);

  // Exact centroids: mean of member tiles.
  std::vector<table::Matrix> centroids(
      k, table::Matrix(grid.tile_rows(), grid.tile_cols()));
  std::vector<size_t> counts(k, 0);
  for (size_t tile = 0; tile < assignment.size(); ++tile) {
    const int cluster = assignment[tile];
    if (cluster < 0) continue;
    TABSKETCH_CHECK(static_cast<size_t>(cluster) < k);
    table::TableView view = grid.Tile(tile);
    table::Matrix& centroid = centroids[cluster];
    for (size_t r = 0; r < view.rows(); ++r) {
      auto src = view.Row(r);
      auto dst = centroid.Row(r);
      for (size_t c = 0; c < src.size(); ++c) dst[c] += src[c];
    }
    ++counts[cluster];
  }
  for (size_t cluster = 0; cluster < k; ++cluster) {
    if (counts[cluster] == 0) continue;
    const double inv = 1.0 / static_cast<double>(counts[cluster]);
    for (double& value : centroids[cluster].Values()) value *= inv;
  }

  double spread = 0.0;
  for (size_t tile = 0; tile < assignment.size(); ++tile) {
    const int cluster = assignment[tile];
    if (cluster < 0) continue;
    spread += core::LpDistance(grid.Tile(tile),
                               centroids[cluster].View(), p);
  }
  return spread;
}

double QualityOfSketchedClusteringPercent(double spread_exact,
                                          double spread_sketch) {
  TABSKETCH_CHECK(spread_sketch > 0.0) << "sketched spread must be positive";
  return 100.0 * spread_exact / spread_sketch;
}

}  // namespace tabsketch::eval
