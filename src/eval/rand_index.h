#ifndef TABSKETCH_EVAL_RAND_INDEX_H_
#define TABSKETCH_EVAL_RAND_INDEX_H_

#include <cstddef>
#include <vector>

namespace tabsketch::eval {

/// Rand index between two clusterings of the same objects: the fraction of
/// object pairs on which the clusterings agree (both together or both
/// apart). In [0, 1]; label-permutation invariant, so no Hungarian matching
/// is needed. Assignments must be equal-length; labels may be any
/// non-negative ints (negative = unassigned, such pairs are skipped).
double RandIndex(const std::vector<int>& a, const std::vector<int>& b);

/// Hubert-Arabie adjusted Rand index: the Rand index corrected for chance
/// agreement, so that independent random clusterings score ~0 and identical
/// clusterings score 1 (can be negative for worse-than-chance agreement).
/// The standard yardstick for comparing a clustering against ground truth.
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace tabsketch::eval

#endif  // TABSKETCH_EVAL_RAND_INDEX_H_
