#include "eval/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "rng/splitmix64.h"

namespace tabsketch::eval {

double AuditEpsilon(double p, size_t k, double sparsity) {
  // Same empirical constants as the offline guarantee sweep
  // (tests/guarantees_test.cc): the median estimator's tail widens for
  // small p, where the stable distribution is heavier-tailed. A very sparse
  // family (DESIGN.md §16) carries ~1/s the per-component variance, so its
  // envelope widens by s^(−1/2); s = 1 is the classic dense bound.
  const double c = (p < 0.75) ? 6.0 : 4.0;
  const double s = std::clamp(sparsity, 1e-12, 1.0);
  return c / std::sqrt(static_cast<double>(std::max<size_t>(k, 1))) /
         std::sqrt(s);
}

std::string AuditKeyForP(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "p%g", p);
  return buf;
}

void SketchAuditor::Channel::Record(double exact, double estimate) {
  if (!(exact > 0.0) || !std::isfinite(exact) || !std::isfinite(estimate)) {
    skipped_zero_->Increment();
    return;
  }
  const double relerr = std::fabs(estimate / exact - 1.0);
  relerr_->Observe(relerr);
  samples_->Increment();
  total_samples_->Increment();
  worst_->Max(relerr);
  if (relerr > epsilon_) {
    violations_->Increment();
    total_violations_->Increment();
  }
}

SketchAuditor& SketchAuditor::Global() {
  static SketchAuditor* const auditor = new SketchAuditor();  // leaked, like
  // MetricsRegistry::Global(): backends cache Channel pointers.
  return *auditor;
}

void SketchAuditor::Enable(double rate, util::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) registry = &util::MetricsRegistry::Global();
  if (registry != registry_) {
    // Channels hold raw metric pointers into the old registry; they cannot be
    // retargeted, so drop them (documented contract on ChannelFor).
    channels_.clear();
    registry_ = registry;
  }
  for (auto& [key, channel] : channels_) {
    channel->relerr_->Reset();
    channel->samples_->Reset();
    channel->violations_->Reset();
    channel->skipped_zero_->Reset();
    channel->worst_->Reset();
  }
  rate_.store(std::clamp(rate, 0.0, 1.0), std::memory_order_relaxed);
}

bool SketchAuditor::ShouldSample() {
  const double rate = rate_.load(std::memory_order_relaxed);
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Per-thread deterministic stream, seeded once per thread from a fixed
  // constant. Never touches any sketch/centroid RNG, so auditing cannot
  // change clustering results.
  static thread_local rng::SplitMix64 stream(0x7ab5ce7c4a0d17ULL);
  const double u =
      static_cast<double>(stream.Next() >> 11) * 0x1.0p-53;  // [0, 1)
  return u < rate;
}

SketchAuditor::Channel* SketchAuditor::ChannelFor(double p, size_t k,
                                                  double sparsity) {
  const std::string key = AuditKeyForP(p);
  std::lock_guard<std::mutex> lock(mutex_);
  util::MetricsRegistry* registry =
      registry_ != nullptr ? registry_ : &util::MetricsRegistry::Global();
  auto& slot = channels_[key];
  if (slot == nullptr) {
    slot.reset(new Channel());
    slot->relerr_ = registry->GetHistogram("audit.relerr." + key);
    slot->samples_ = registry->GetCounter("audit.samples." + key);
    slot->violations_ = registry->GetCounter("audit.violations." + key);
    slot->skipped_zero_ = registry->GetCounter("audit.skipped_zero." + key);
    slot->worst_ = registry->GetGauge("audit.worst_relerr." + key);
    slot->total_samples_ = registry->GetCounter("audit.samples");
    slot->total_violations_ = registry->GetCounter("audit.violations");
  }
  // p is fixed per key; k and sparsity (and with them ε) follow the most
  // recent caller, which in practice is constant within a run (mixed-sparsity
  // families are rejected at load anyway).
  slot->p_ = p;
  slot->k_ = k;
  slot->sparsity_ = sparsity;
  slot->epsilon_ = AuditEpsilon(p, k, sparsity);
  return slot.get();
}

std::vector<SketchAuditor::ChannelSummary> SketchAuditor::Summaries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChannelSummary> out;
  for (const auto& [key, channel] : channels_) {
    ChannelSummary summary;
    summary.p = channel->p_;
    summary.k = channel->k_;
    summary.sparsity = channel->sparsity_;
    summary.epsilon = channel->epsilon_;
    summary.samples = channel->samples();
    summary.violations = channel->violations();
    summary.skipped = channel->skipped();
    summary.median_relerr = channel->median_relerr();
    summary.worst_relerr = channel->worst_relerr();
    if (summary.samples == 0 && summary.skipped == 0) continue;
    out.push_back(summary);
  }
  return out;
}

}  // namespace tabsketch::eval
