#ifndef TABSKETCH_EVAL_MEASURES_H_
#define TABSKETCH_EVAL_MEASURES_H_

#include <span>

namespace tabsketch::eval {

/// Definition 7: cumulative correctness of a batch of distance estimates,
///   sum_i approx_i / sum_i exact_i.
/// Close to 1 means the estimator is unbiased in aggregate. Inputs must be
/// equal-length and non-empty; exact distances must not sum to zero.
double CumulativeCorrectness(std::span<const double> exact,
                             std::span<const double> approx);

/// Definition 8: average correctness,
///   1 - (1/n) * sum_i | 1 - approx_i / exact_i |.
/// Pairs with exact_i == 0 are counted as fully correct when approx_i == 0
/// and fully incorrect otherwise.
double AverageCorrectness(std::span<const double> exact,
                          std::span<const double> approx);

/// Definition 9: pairwise comparison correctness. Experiment i asks "is X_i
/// closer to Y_i or to Z_i?"; the answer from the estimates is correct when
/// it matches the answer from the exact distances. Arguments are the exact
/// and estimated distances d(X_i, Y_i) and d(X_i, Z_i); returns the fraction
/// of experiments answered correctly.
double PairwiseComparisonCorrectness(std::span<const double> exact_xy,
                                     std::span<const double> exact_xz,
                                     std::span<const double> approx_xy,
                                     std::span<const double> approx_xz);

}  // namespace tabsketch::eval

#endif  // TABSKETCH_EVAL_MEASURES_H_
