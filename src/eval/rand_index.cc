#include "eval/rand_index.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace tabsketch::eval {
namespace {

double Choose2(double n) { return n * (n - 1.0) / 2.0; }

/// Contingency counts over objects assigned in both clusterings.
struct Contingency {
  std::map<std::pair<int, int>, double> cells;
  std::map<int, double> row_sums;
  std::map<int, double> col_sums;
  double total = 0.0;
};

Contingency BuildContingency(const std::vector<int>& a,
                             const std::vector<int>& b) {
  TABSKETCH_CHECK(a.size() == b.size())
      << "clusterings cover different object counts";
  Contingency table;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    table.cells[{a[i], b[i]}] += 1.0;
    table.row_sums[a[i]] += 1.0;
    table.col_sums[b[i]] += 1.0;
    table.total += 1.0;
  }
  return table;
}

}  // namespace

double RandIndex(const std::vector<int>& a, const std::vector<int>& b) {
  const Contingency table = BuildContingency(a, b);
  TABSKETCH_CHECK(table.total >= 2.0) << "need at least two assigned objects";
  double same_same = 0.0;  // pairs together in both
  for (const auto& [cell, count] : table.cells) same_same += Choose2(count);
  double pairs_a = 0.0;
  for (const auto& [label, count] : table.row_sums) pairs_a += Choose2(count);
  double pairs_b = 0.0;
  for (const auto& [label, count] : table.col_sums) pairs_b += Choose2(count);
  const double all_pairs = Choose2(table.total);
  // Agreements = together-in-both + apart-in-both.
  const double agreements =
      same_same + (all_pairs - pairs_a - pairs_b + same_same);
  return agreements / all_pairs;
}

double AdjustedRandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  const Contingency table = BuildContingency(a, b);
  TABSKETCH_CHECK(table.total >= 2.0) << "need at least two assigned objects";
  double index = 0.0;
  for (const auto& [cell, count] : table.cells) index += Choose2(count);
  double pairs_a = 0.0;
  for (const auto& [label, count] : table.row_sums) pairs_a += Choose2(count);
  double pairs_b = 0.0;
  for (const auto& [label, count] : table.col_sums) pairs_b += Choose2(count);
  const double all_pairs = Choose2(table.total);
  const double expected = pairs_a * pairs_b / all_pairs;
  const double maximum = 0.5 * (pairs_a + pairs_b);
  if (maximum == expected) {
    // Degenerate (e.g. both clusterings trivial): identical -> 1 by
    // convention, since the index equals expected too.
    return index == expected ? 1.0 : 0.0;
  }
  return (index - expected) / (maximum - expected);
}

}  // namespace tabsketch::eval
