#include "eval/hungarian.h"

#include <limits>

#include "util/logging.h"

namespace tabsketch::eval {

std::vector<int> MinCostAssignment(const table::Matrix& cost) {
  TABSKETCH_CHECK(cost.rows() == cost.cols() && cost.rows() > 0)
      << "assignment needs a non-empty square matrix, got " << cost.rows()
      << "x" << cost.cols();
  const size_t n = cost.rows();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Hungarian algorithm with row/column potentials, 1-based internally:
  // p[j] = row matched to column j (0 = none yet).
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);
  std::vector<size_t> way(n + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> min_slack(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double reduced = cost.At(i0 - 1, j - 1) - u[i0] - v[j];
        if (reduced < min_slack[j]) {
          min_slack[j] = reduced;
          way[j] = j0;
        }
        if (min_slack[j] < delta) {
          delta = min_slack[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          min_slack[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path back to the artificial column 0.
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> match(n, -1);
  for (size_t j = 1; j <= n; ++j) {
    match[p[j] - 1] = static_cast<int>(j - 1);
  }
  return match;
}

std::vector<int> MaxWeightAssignment(const table::Matrix& weight) {
  table::Matrix negated(weight.rows(), weight.cols());
  for (size_t r = 0; r < weight.rows(); ++r) {
    for (size_t c = 0; c < weight.cols(); ++c) {
      negated(r, c) = -weight.At(r, c);
    }
  }
  return MinCostAssignment(negated);
}

}  // namespace tabsketch::eval
