#ifndef TABSKETCH_EVAL_AUDIT_H_
#define TABSKETCH_EVAL_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace tabsketch::eval {

/// The ε envelope audited against for a (p, k, sparsity) sketch family:
/// ε = C(p)/√k · sparsity^(−1/2) with the empirical constants validated
/// offline by the guarantees sweeps (tests/guarantees_test.cc and the sparse
/// grid in tests/sparse_test.cc) — C = 4 for p ≥ 0.75 and C = 6 for the
/// heavier-tailed small-p estimators, and the s^(−1/2) factor the Li
/// very-sparse-projection envelope of DESIGN.md §16 (sparsity 1, the dense
/// default, leaves the classic bound untouched). A sampled estimate whose
/// relative error exceeds this ε counts as a violation; Theorems 1–2 bound
/// the *rate* of such violations, not their existence, so a small violation
/// count on a healthy run is expected.
double AuditEpsilon(double p, size_t k, double sparsity = 1.0);

/// Metric-key suffix for a given p: 1.0 -> "p1", 0.5 -> "p0.5" (shortest %g
/// spelling, so keys are stable across call sites).
std::string AuditKeyForP(double p);

/// Online sketch-accuracy auditor. When enabled at rate R, distance call
/// sites (SketchBackend, the `distance` CLI command) shadow-compute the exact
/// Lp distance for a sampled R-fraction of estimates and record the relative
/// error |est/exact − 1| into the metrics registry:
///
///   audit.relerr.p<p>        histogram of sampled relative errors
///   audit.samples.p<p>       counter of audited estimates
///   audit.violations.p<p>    counter of samples with relerr > C(p)/√k
///   audit.worst_relerr.p<p>  gauge, running max of sampled relerr
///   audit.skipped_zero.p<p>  counter of samples skipped (exact distance 0)
///   audit.samples / audit.violations   cross-p totals
///
/// These land in --metrics-json dumps like any other metric, and `cluster`
/// runs print a one-line summary per audited (p, k) family.
///
/// Cost contract: when disabled (the default) the only per-call cost at an
/// audited site is one relaxed atomic load (typically hoisted to a cached
/// null Channel pointer at backend construction); when compiled out
/// (TABSKETCH_METRICS=OFF) Enabled() is constant false. Auditing never
/// perturbs results: the sampler draws from its own per-thread RNG stream,
/// and the estimate returned to the caller is bit-identical with auditing on
/// or off.
class SketchAuditor {
 public:
  /// Accuracy channel for one (p, k) family. Pointers returned by
  /// ChannelFor() stay valid until Enable() is next called with a *different*
  /// registry (re-enabling against the same registry only resets values).
  class Channel {
   public:
    /// Records one shadow comparison. `exact` must be the true Lp distance;
    /// non-positive or non-finite pairs are counted as skipped, not errors
    /// (relative error is undefined at exact == 0).
    void Record(double exact, double estimate);

    double p() const { return p_; }
    size_t k() const { return k_; }
    double sparsity() const { return sparsity_; }
    double epsilon() const { return epsilon_; }
    uint64_t samples() const { return samples_->value(); }
    uint64_t violations() const { return violations_->value(); }
    uint64_t skipped() const { return skipped_zero_->value(); }
    double worst_relerr() const { return worst_->value(); }
    double median_relerr() const { return relerr_->Percentile(0.5); }

   private:
    friend class SketchAuditor;
    Channel() = default;

    double p_ = 0.0;
    size_t k_ = 0;
    double sparsity_ = 1.0;
    double epsilon_ = 0.0;
    util::Histogram* relerr_ = nullptr;
    util::Counter* samples_ = nullptr;
    util::Counter* violations_ = nullptr;
    util::Counter* skipped_zero_ = nullptr;
    util::Gauge* worst_ = nullptr;
    util::Counter* total_samples_ = nullptr;
    util::Counter* total_violations_ = nullptr;
  };

  /// Snapshot of one channel for end-of-run reporting.
  struct ChannelSummary {
    double p = 0.0;
    size_t k = 0;
    double sparsity = 1.0;
    double epsilon = 0.0;
    uint64_t samples = 0;
    uint64_t violations = 0;
    uint64_t skipped = 0;
    double median_relerr = 0.0;
    double worst_relerr = 0.0;
  };

  SketchAuditor() = default;
  SketchAuditor(const SketchAuditor&) = delete;
  SketchAuditor& operator=(const SketchAuditor&) = delete;

  /// The process-wide auditor behind --audit-rate.
  static SketchAuditor& Global();

  /// True when the global auditor is on (and the build has observability
  /// compiled in). One relaxed load.
  static bool Enabled() {
#if TABSKETCH_METRICS_ENABLED
    return Global().rate_.load(std::memory_order_relaxed) > 0.0;
#else
    return false;
#endif
  }

  /// Turns auditing on at `rate` (clamped to [0, 1]; 0 disables). Metrics go
  /// to `registry`, defaulting to MetricsRegistry::Global(). Existing channel
  /// values are reset so each run starts clean; switching registries drops
  /// previously handed-out Channel pointers (see Channel).
  void Enable(double rate, util::MetricsRegistry* registry = nullptr);
  void Disable() { rate_.store(0.0, std::memory_order_relaxed); }

  double rate() const { return rate_.load(std::memory_order_relaxed); }

  /// Per-call sampling decision: true for an R-fraction of calls,
  /// deterministically always-true at rate 1 (so rate-1 test fixtures audit
  /// every comparison). Thread-safe; each thread draws from its own
  /// deterministic SplitMix64 stream, independent of every sketch RNG.
  bool ShouldSample();

  /// Finds or creates the channel for a (p, k, sparsity) family; the
  /// envelope widens by sparsity^(−1/2) so sparse-tier runs are judged
  /// against the Li bound they actually guarantee. Thread-safe; the pointer
  /// may be cached by the caller (backends cache it at construction).
  Channel* ChannelFor(double p, size_t k, double sparsity = 1.0);

  /// Summaries of all channels with at least one sample or skip, ordered by
  /// metric key.
  std::vector<ChannelSummary> Summaries() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Channel>> channels_;
  util::MetricsRegistry* registry_ = nullptr;  // nullptr -> Global()
  std::atomic<double> rate_{0.0};
};

}  // namespace tabsketch::eval

#endif  // TABSKETCH_EVAL_AUDIT_H_
