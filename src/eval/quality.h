#ifndef TABSKETCH_EVAL_QUALITY_H_
#define TABSKETCH_EVAL_QUALITY_H_

#include <cstddef>
#include <vector>

#include "table/tiling.h"

namespace tabsketch::eval {

/// Total spread of a clustering: for each cluster, the exact centroid (mean
/// of member tiles) is computed and the exact Lp distances of the members to
/// it are summed; clusters' spreads are then added up. Lower is better. This
/// is always evaluated with exact distances, regardless of how the clustering
/// was produced, so clusterings from different distance routines are judged
/// on common ground (paper Definition 11's `spread`).
double ClusteringSpread(const table::TileGrid& grid,
                        const std::vector<int>& assignment, size_t k,
                        double p);

/// Definition 11, reported the way the paper's text reads it: the quality of
/// the sketched clustering as a percentage of the exact one,
///   100 * spread_exact / spread_sketch,
/// so that > 100% means the sketched clustering has *smaller* spread (is
/// better) than the exact clustering. (The formula as literally printed in
/// Definition 11 is the inverse ratio, but the paper's discussion — "quality
/// rating greater than 100%" for better-than-exact clusterings — pins down
/// this orientation; see EXPERIMENTS.md.)
double QualityOfSketchedClusteringPercent(double spread_exact,
                                          double spread_sketch);

}  // namespace tabsketch::eval

#endif  // TABSKETCH_EVAL_QUALITY_H_
