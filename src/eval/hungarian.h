#ifndef TABSKETCH_EVAL_HUNGARIAN_H_
#define TABSKETCH_EVAL_HUNGARIAN_H_

#include <vector>

#include "table/matrix.h"

namespace tabsketch::eval {

/// Solves the square assignment problem minimizing total cost: returns
/// `match` with match[row] = the column assigned to that row, one-to-one.
/// O(n^3) Hungarian algorithm with potentials. `cost` must be square and
/// non-empty.
///
/// Used to align the cluster labels of two independent clusterings before
/// computing confusion-matrix agreement (labels are arbitrary, so agreement
/// is measured under the best label permutation).
std::vector<int> MinCostAssignment(const table::Matrix& cost);

/// Maximum-total-weight variant of MinCostAssignment.
std::vector<int> MaxWeightAssignment(const table::Matrix& weight);

}  // namespace tabsketch::eval

#endif  // TABSKETCH_EVAL_HUNGARIAN_H_
