#ifndef TABSKETCH_EVAL_CONFUSION_H_
#define TABSKETCH_EVAL_CONFUSION_H_

#include <cstddef>
#include <vector>

#include "table/matrix.h"

namespace tabsketch::eval {

/// Builds the k x k confusion matrix between two clusterings of the same
/// objects: entry (i, j) counts objects placed in cluster i by `a` and in
/// cluster j by `b`. Assignments must be equal-length with labels in [0, k);
/// negative labels (unassigned) are skipped.
table::Matrix ConfusionMatrix(const std::vector<int>& a,
                              const std::vector<int>& b, size_t k);

/// Definition 10 with labels taken literally: trace / total. Meaningful only
/// when the two clusterings use aligned label ids (e.g. ground truth vs a
/// prediction already matched to it).
double Agreement(const table::Matrix& confusion);

/// Definition 10 as the experiments need it: agreement under the best
/// one-to-one relabeling of `b`'s clusters (Hungarian max matching on the
/// confusion matrix). This is what "percentage of tiles classified as being
/// in the same cluster by both methods" means when label ids are arbitrary.
double BestMatchAgreement(const table::Matrix& confusion);

/// Convenience: BestMatchAgreement of ConfusionMatrix(a, b, k).
double BestMatchAgreement(const std::vector<int>& a, const std::vector<int>& b,
                          size_t k);

}  // namespace tabsketch::eval

#endif  // TABSKETCH_EVAL_CONFUSION_H_
