#include "eval/confusion.h"

#include "eval/hungarian.h"
#include "util/logging.h"

namespace tabsketch::eval {

table::Matrix ConfusionMatrix(const std::vector<int>& a,
                              const std::vector<int>& b, size_t k) {
  TABSKETCH_CHECK(a.size() == b.size())
      << "clusterings cover different object counts";
  TABSKETCH_CHECK(k > 0);
  table::Matrix confusion(k, k);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    TABSKETCH_CHECK(static_cast<size_t>(a[i]) < k &&
                    static_cast<size_t>(b[i]) < k)
        << "label out of range at object " << i;
    confusion(static_cast<size_t>(a[i]), static_cast<size_t>(b[i])) += 1.0;
  }
  return confusion;
}

namespace {

double Total(const table::Matrix& confusion) {
  double total = 0.0;
  for (double value : confusion.Values()) total += value;
  return total;
}

}  // namespace

double Agreement(const table::Matrix& confusion) {
  TABSKETCH_CHECK(confusion.rows() == confusion.cols() &&
                  confusion.rows() > 0);
  const double total = Total(confusion);
  if (total == 0.0) return 0.0;
  double diagonal = 0.0;
  for (size_t i = 0; i < confusion.rows(); ++i) diagonal += confusion(i, i);
  return diagonal / total;
}

double BestMatchAgreement(const table::Matrix& confusion) {
  TABSKETCH_CHECK(confusion.rows() == confusion.cols() &&
                  confusion.rows() > 0);
  const double total = Total(confusion);
  if (total == 0.0) return 0.0;
  const std::vector<int> match = MaxWeightAssignment(confusion);
  double matched = 0.0;
  for (size_t i = 0; i < confusion.rows(); ++i) {
    matched += confusion(i, static_cast<size_t>(match[i]));
  }
  return matched / total;
}

double BestMatchAgreement(const std::vector<int>& a, const std::vector<int>& b,
                          size_t k) {
  return BestMatchAgreement(ConfusionMatrix(a, b, k));
}

}  // namespace tabsketch::eval
