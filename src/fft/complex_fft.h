#ifndef TABSKETCH_FFT_COMPLEX_FFT_H_
#define TABSKETCH_FFT_COMPLEX_FFT_H_

#include <complex>
#include <cstddef>
#include <span>

namespace tabsketch::fft {

/// True if n is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT over `data`. The length must
/// be a power of two. `inverse` selects the inverse transform, which includes
/// the 1/n normalization (so Forward then Inverse is the identity).
///
/// Twiddle factors and the bit-reversal permutation come from the
/// process-wide per-length table cache (fft/twiddle.h), so steady-state calls
/// do no trigonometry and allocate nothing.
///
/// This is the workhorse behind the O(k N log M) all-subtables sketching of
/// paper Theorem 3.
void Transform(std::span<std::complex<double>> data, bool inverse);

inline void Forward(std::span<std::complex<double>> data) {
  Transform(data, /*inverse=*/false);
}
inline void Inverse(std::span<std::complex<double>> data) {
  Transform(data, /*inverse=*/true);
}

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_COMPLEX_FFT_H_
