#ifndef TABSKETCH_FFT_FFT2D_H_
#define TABSKETCH_FFT_FFT2D_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace tabsketch::fft {

/// Dense row-major grid of complex values used as the frequency-domain
/// workspace for 2-D transforms. Both dimensions must be powers of two when
/// transformed.
class ComplexGrid {
 public:
  ComplexGrid() = default;
  ComplexGrid(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  std::complex<double>& At(size_t r, size_t c) {
    return values_[r * cols_ + c];
  }
  const std::complex<double>& At(size_t r, size_t c) const {
    return values_[r * cols_ + c];
  }

  std::vector<std::complex<double>>& values() { return values_; }
  const std::vector<std::complex<double>>& values() const { return values_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<std::complex<double>> values_;
};

/// In-place 2-D FFT of `grid` (row transforms followed by column transforms).
/// Both dimensions must be powers of two. `inverse` includes the full 1/(R*C)
/// normalization.
void Transform2D(ComplexGrid* grid, bool inverse);

inline void Forward2D(ComplexGrid* grid) { Transform2D(grid, false); }
inline void Inverse2D(ComplexGrid* grid) { Transform2D(grid, true); }

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_FFT2D_H_
