#ifndef TABSKETCH_FFT_FFT2D_H_
#define TABSKETCH_FFT_FFT2D_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace tabsketch::fft {

/// Dense row-major grid of complex values used as the frequency-domain
/// workspace for 2-D transforms. Both dimensions must be powers of two when
/// transformed.
class ComplexGrid {
 public:
  ComplexGrid() = default;
  ComplexGrid(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  std::complex<double>& At(size_t r, size_t c) {
    return values_[r * cols_ + c];
  }
  const std::complex<double>& At(size_t r, size_t c) const {
    return values_[r * cols_ + c];
  }

  std::vector<std::complex<double>>& values() { return values_; }
  const std::vector<std::complex<double>>& values() const { return values_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<std::complex<double>> values_;
};

/// Cache-blocked out-of-place transpose: `dst` (cols x rows, row-major)
/// receives the transpose of `src` (rows x cols, row-major). Tiled so both
/// the source reads and destination writes stay within a few cache lines per
/// tile; this is what turns the 2-D column pass into contiguous row
/// transforms. `src` and `dst` must not alias.
void TransposeInto(const std::complex<double>* src, size_t rows, size_t cols,
                   std::complex<double>* dst);

/// In-place 2-D FFT of `grid`. Both dimensions must be powers of two.
/// `inverse` includes the full 1/(R*C) normalization.
///
/// The column pass is computed as blocked transpose -> contiguous row
/// transforms -> blocked transpose back, using `scratch` (resized to
/// rows*cols) as the transposed workspace, so no strided element-at-a-time
/// gathers touch the grid.
void Transform2D(ComplexGrid* grid, bool inverse,
                 std::vector<std::complex<double>>* scratch);

/// Convenience overload using a thread-local scratch buffer: safe to call
/// concurrently on different grids, allocation-free in steady state.
void Transform2D(ComplexGrid* grid, bool inverse);

inline void Forward2D(ComplexGrid* grid) { Transform2D(grid, false); }
inline void Inverse2D(ComplexGrid* grid) { Transform2D(grid, true); }

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_FFT2D_H_
