#include "fft/correlate1d.h"

#include "fft/complex_fft.h"
#include "util/logging.h"

namespace tabsketch::fft {

std::vector<double> CrossCorrelateNaive1D(std::span<const double> series,
                                          std::span<const double> kernel) {
  TABSKETCH_CHECK(!kernel.empty() && kernel.size() <= series.size())
      << "kernel length " << kernel.size() << " does not fit series length "
      << series.size();
  const size_t out_length = series.size() - kernel.size() + 1;
  std::vector<double> out(out_length);
  for (size_t i = 0; i < out_length; ++i) {
    double acc = 0.0;
    for (size_t u = 0; u < kernel.size(); ++u) {
      acc += series[i + u] * kernel[u];
    }
    out[i] = acc;
  }
  return out;
}

CorrelationPlan1D::CorrelationPlan1D(std::span<const double> series)
    : series_length_(series.size()),
      padded_length_(NextPowerOfTwo(series.size())),
      series_freq_(padded_length_) {
  TABSKETCH_CHECK(!series.empty()) << "cannot plan over an empty series";
  for (size_t i = 0; i < series_length_; ++i) {
    series_freq_[i] = series[i];
  }
  Forward(series_freq_);
}

std::vector<double> CorrelationPlan1D::Correlate(
    std::span<const double> kernel) const {
  TABSKETCH_CHECK(!kernel.empty() && kernel.size() <= series_length_)
      << "kernel length " << kernel.size() << " does not fit series length "
      << series_length_;
  // Thread-local scratch: Correlate stays const and concurrency-safe while
  // steady-state calls at a stable padded length allocate nothing.
  thread_local std::vector<std::complex<double>> work;
  work.assign(padded_length_, {0.0, 0.0});
  for (size_t i = 0; i < kernel.size(); ++i) work[i] = kernel[i];
  Forward(work);
  for (size_t i = 0; i < padded_length_; ++i) {
    work[i] = series_freq_[i] * std::conj(work[i]);
  }
  Inverse(work);

  const size_t out_length = series_length_ - kernel.size() + 1;
  std::vector<double> out(out_length);
  for (size_t i = 0; i < out_length; ++i) out[i] = work[i].real();
  return out;
}

}  // namespace tabsketch::fft
