#ifndef TABSKETCH_FFT_TWIDDLE_H_
#define TABSKETCH_FFT_TWIDDLE_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tabsketch::fft {

/// Precomputed tables for one radix-2 transform length: forward twiddle
/// factors and the bit-reversal permutation. Built lazily, once per length,
/// and cached process-wide, so the transform kernel does table lookups
/// instead of cos/sin calls or error-accumulating repeated multiplication.
struct FftTables {
  /// Transform length (a power of two).
  size_t n = 0;

  /// twiddles[j] = exp(-2*pi*i*j / n) for j in [0, n/2), each entry computed
  /// directly from cos/sin (no recurrence, so per-entry error is 1 ulp-ish).
  /// The butterfly stage of length `len` reads w_j = twiddles[j * (n / len)];
  /// the inverse transform conjugates, which is exact (it only flips the sign
  /// of the imaginary part).
  std::vector<std::complex<double>> twiddles;

  /// bit_reverse[i] = i with its log2(n) low bits reversed. The permutation
  /// pass swaps data[i] with data[bit_reverse[i]] once per pair.
  std::vector<uint32_t> bit_reverse;
};

/// Returns the tables for length `n` (must be a power of two, n >= 1).
/// Thread-safe; the returned reference stays valid for the process lifetime
/// (tables are never evicted — the dyadic ladder only uses a handful of
/// lengths, so the cache stays small).
const FftTables& TablesFor(size_t n);

/// Number of distinct lengths cached so far (introspection / test hook).
size_t CachedTableLengths();

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_TWIDDLE_H_
