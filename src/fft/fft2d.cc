#include "fft/fft2d.h"

#include <algorithm>
#include <span>

#include "fft/complex_fft.h"
#include "util/logging.h"

namespace tabsketch::fft {
namespace {

// 32x32 complex<double> tiles are 16 KB for the source plus 16 KB for the
// destination — comfortably inside L1/L2 — while amortizing the strided side
// of the copy over a full cache line.
constexpr size_t kTransposeBlock = 32;

}  // namespace

void TransposeInto(const std::complex<double>* src, size_t rows, size_t cols,
                   std::complex<double>* dst) {
  for (size_t rb = 0; rb < rows; rb += kTransposeBlock) {
    const size_t rend = std::min(rows, rb + kTransposeBlock);
    for (size_t cb = 0; cb < cols; cb += kTransposeBlock) {
      const size_t cend = std::min(cols, cb + kTransposeBlock);
      for (size_t r = rb; r < rend; ++r) {
        const std::complex<double>* src_row = src + r * cols;
        for (size_t c = cb; c < cend; ++c) {
          dst[c * rows + r] = src_row[c];
        }
      }
    }
  }
}

void Transform2D(ComplexGrid* grid, bool inverse,
                 std::vector<std::complex<double>>* scratch) {
  TABSKETCH_CHECK(grid != nullptr && scratch != nullptr);
  const size_t rows = grid->rows();
  const size_t cols = grid->cols();
  if (rows == 0 || cols == 0) return;
  TABSKETCH_CHECK(IsPowerOfTwo(rows) && IsPowerOfTwo(cols))
      << "2-D FFT dims must be powers of two, got " << rows << "x" << cols;

  auto& values = grid->values();

  // Row passes: rows are contiguous.
  for (size_t r = 0; r < rows; ++r) {
    Transform(std::span(values.data() + r * cols, cols), inverse);
  }

  // Column passes as blocked transpose -> contiguous row transforms ->
  // blocked transpose back. The tiled copies replace the per-column
  // element-at-a-time gather, whose (cols * 16)-byte stride missed cache and
  // TLB on every access at the grid sizes the pool build uses.
  scratch->resize(rows * cols);
  TransposeInto(values.data(), rows, cols, scratch->data());
  for (size_t c = 0; c < cols; ++c) {
    Transform(std::span(scratch->data() + c * rows, rows), inverse);
  }
  TransposeInto(scratch->data(), cols, rows, values.data());
}

void Transform2D(ComplexGrid* grid, bool inverse) {
  // One scratch per thread: concurrent Transform2D calls on different grids
  // stay safe, and steady-state calls at a stable size allocate nothing.
  thread_local std::vector<std::complex<double>> scratch;
  Transform2D(grid, inverse, &scratch);
}

}  // namespace tabsketch::fft
