#include "fft/fft2d.h"

#include <span>

#include "fft/complex_fft.h"
#include "util/logging.h"

namespace tabsketch::fft {

void Transform2D(ComplexGrid* grid, bool inverse) {
  TABSKETCH_CHECK(grid != nullptr);
  const size_t rows = grid->rows();
  const size_t cols = grid->cols();
  if (rows == 0 || cols == 0) return;
  TABSKETCH_CHECK(IsPowerOfTwo(rows) && IsPowerOfTwo(cols))
      << "2-D FFT dims must be powers of two, got " << rows << "x" << cols;

  auto& values = grid->values();

  // Row passes: rows are contiguous.
  for (size_t r = 0; r < rows; ++r) {
    Transform(std::span(values.data() + r * cols, cols), inverse);
  }

  // Column passes: gather each column into a contiguous scratch buffer. This
  // keeps the 1-D kernel simple; the copy cost is dominated by the butterfly
  // cost for the sizes the sketcher uses.
  std::vector<std::complex<double>> column(rows);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) column[r] = values[r * cols + c];
    Transform(std::span(column.data(), rows), inverse);
    for (size_t r = 0; r < rows; ++r) values[r * cols + c] = column[r];
  }
}

}  // namespace tabsketch::fft
