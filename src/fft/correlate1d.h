#ifndef TABSKETCH_FFT_CORRELATE1D_H_
#define TABSKETCH_FFT_CORRELATE1D_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tabsketch::fft {

/// Valid-mode 1-D cross-correlation computed directly in O(N * M):
///   out[i] = sum_{u < m} series[i + u] * kernel[u],
/// for all positions where the kernel fits. Output length is
/// series.size() - kernel.size() + 1. Kernel must fit in the series.
std::vector<double> CrossCorrelateNaive1D(std::span<const double> series,
                                          std::span<const double> kernel);

/// Reusable FFT plan for cross-correlating one series against many kernels
/// (the k random stable vectors of a time-series sketch): the series is
/// transformed once, each Correlate costs one kernel FFT, a pointwise
/// multiply and one inverse FFT — O(N log N) total per kernel.
///
/// The 1-D analog of CorrelationPlan (correlate.h); same wrap-around
/// argument: at padded size >= series length the valid region never wraps.
class CorrelationPlan1D {
 public:
  explicit CorrelationPlan1D(std::span<const double> series);

  CorrelationPlan1D(const CorrelationPlan1D&) = delete;
  CorrelationPlan1D& operator=(const CorrelationPlan1D&) = delete;
  CorrelationPlan1D(CorrelationPlan1D&&) = default;
  CorrelationPlan1D& operator=(CorrelationPlan1D&&) = default;

  size_t series_length() const { return series_length_; }

  /// Valid-mode cross-correlation of the planned series with `kernel`.
  std::vector<double> Correlate(std::span<const double> kernel) const;

 private:
  size_t series_length_;
  size_t padded_length_;
  std::vector<std::complex<double>> series_freq_;
};

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_CORRELATE1D_H_
