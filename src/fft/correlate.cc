#include "fft/correlate.h"

#include <atomic>

#include "fft/complex_fft.h"
#include "util/logging.h"

namespace tabsketch::fft {
namespace {

std::atomic<size_t> plan_constructions{0};

}  // namespace

size_t CorrelationPlan::plans_constructed() {
  return plan_constructions.load(std::memory_order_relaxed);
}

table::Matrix CrossCorrelateNaive(const table::Matrix& data,
                                  const table::Matrix& kernel) {
  TABSKETCH_CHECK(kernel.rows() <= data.rows() &&
                  kernel.cols() <= data.cols())
      << "kernel " << kernel.rows() << "x" << kernel.cols()
      << " exceeds data " << data.rows() << "x" << data.cols();
  const size_t out_rows = data.rows() - kernel.rows() + 1;
  const size_t out_cols = data.cols() - kernel.cols() + 1;
  table::Matrix out(out_rows, out_cols);
  for (size_t i = 0; i < out_rows; ++i) {
    for (size_t j = 0; j < out_cols; ++j) {
      double acc = 0.0;
      for (size_t u = 0; u < kernel.rows(); ++u) {
        const double* data_row = data.Row(i + u).data() + j;
        const double* kernel_row = kernel.Row(u).data();
        for (size_t v = 0; v < kernel.cols(); ++v) {
          acc += data_row[v] * kernel_row[v];
        }
      }
      out(i, j) = acc;
    }
  }
  return out;
}

CorrelationPlan::CorrelationPlan(const table::Matrix& data)
    : data_rows_(data.rows()),
      data_cols_(data.cols()),
      padded_rows_(NextPowerOfTwo(data.rows())),
      padded_cols_(NextPowerOfTwo(data.cols())),
      data_freq_(padded_rows_, padded_cols_) {
  TABSKETCH_CHECK(!data.empty()) << "cannot plan over an empty table";
  plan_constructions.fetch_add(1, std::memory_order_relaxed);
  for (size_t r = 0; r < data_rows_; ++r) {
    auto row = data.Row(r);
    for (size_t c = 0; c < data_cols_; ++c) {
      data_freq_.At(r, c) = row[c];
    }
  }
  Forward2D(&data_freq_);
}

table::Matrix CorrelationPlan::Correlate(const table::Matrix& kernel) const {
  TABSKETCH_CHECK(kernel.rows() <= data_rows_ && kernel.cols() <= data_cols_)
      << "kernel " << kernel.rows() << "x" << kernel.cols()
      << " exceeds data " << data_rows_ << "x" << data_cols_;

  ComplexGrid work(padded_rows_, padded_cols_);
  for (size_t r = 0; r < kernel.rows(); ++r) {
    auto row = kernel.Row(r);
    for (size_t c = 0; c < kernel.cols(); ++c) {
      work.At(r, c) = row[c];
    }
  }
  Forward2D(&work);

  // Cross-correlation theorem: R = IFFT( FFT(data) .* conj(FFT(kernel)) ).
  auto& values = work.values();
  const auto& data_values = data_freq_.values();
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = data_values[i] * std::conj(values[i]);
  }
  Inverse2D(&work);

  const size_t out_rows = data_rows_ - kernel.rows() + 1;
  const size_t out_cols = data_cols_ - kernel.cols() + 1;
  table::Matrix out(out_rows, out_cols);
  for (size_t i = 0; i < out_rows; ++i) {
    for (size_t j = 0; j < out_cols; ++j) {
      out(i, j) = work.At(i, j).real();
    }
  }
  return out;
}

}  // namespace tabsketch::fft
