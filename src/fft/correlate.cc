#include "fft/correlate.h"

#include <algorithm>
#include <atomic>
#include <span>

#include "fft/complex_fft.h"
#include "fft/fft2d.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tabsketch::fft {
namespace {

std::atomic<size_t> plan_constructions{0};

/// Per-thread scratch for the correlation engine. Reused across calls, so a
/// pool build's steady state allocates nothing per correlation: `time` holds
/// the R x C spatial grid, `freq_t` the C x R transposed spectrum.
struct CorrelateWorkspace {
  std::vector<std::complex<double>> time;
  std::vector<std::complex<double>> freq_t;
};

CorrelateWorkspace& ThreadWorkspace() {
  thread_local CorrelateWorkspace workspace;
  return workspace;
}

/// Forward 2-D transform of `time` (R x C, rows >= active_rows all zero) into
/// the transposed spectrum layout `freq_t` (C x R). The row pass is pruned to
/// the nonzero rows; zero rows transform to zero, so skipping them is exact.
void ForwardIntoTransposed(size_t padded_rows, size_t padded_cols,
                           size_t active_rows,
                           std::vector<std::complex<double>>* time,
                           std::vector<std::complex<double>>* freq_t) {
  for (size_t r = 0; r < active_rows; ++r) {
    Transform(std::span(time->data() + r * padded_cols, padded_cols),
              /*inverse=*/false);
  }
  freq_t->resize(padded_rows * padded_cols);
  TransposeInto(time->data(), padded_rows, padded_cols, freq_t->data());
  for (size_t c = 0; c < padded_cols; ++c) {
    Transform(std::span(freq_t->data() + c * padded_rows, padded_rows),
              /*inverse=*/false);
  }
}

/// Inverse of ForwardIntoTransposed: back-transforms the transposed spectrum
/// in `freq_t` (C x R) into `time` (R x C), running the final row pass only
/// over the `needed_rows` rows the caller will read. The two prunings
/// together (kernel rows forward, valid rows inverse) cost about one full
/// row pass per correlation instead of two.
void InverseFromTransposed(size_t padded_rows, size_t padded_cols,
                           size_t needed_rows,
                           std::vector<std::complex<double>>* freq_t,
                           std::vector<std::complex<double>>* time) {
  for (size_t c = 0; c < padded_cols; ++c) {
    Transform(std::span(freq_t->data() + c * padded_rows, padded_rows),
              /*inverse=*/true);
  }
  time->resize(padded_rows * padded_cols);
  TransposeInto(freq_t->data(), padded_cols, padded_rows, time->data());
  for (size_t r = 0; r < needed_rows; ++r) {
    Transform(std::span(time->data() + r * padded_cols, padded_cols),
              /*inverse=*/true);
  }
}

/// Zeroes the spatial grid and copies `kernel` into the real (imag == false)
/// or imaginary (imag == true) components of its top-left corner.
void PackKernel(const table::Matrix& kernel, size_t padded_cols, bool imag,
                std::vector<std::complex<double>>* time) {
  for (size_t r = 0; r < kernel.rows(); ++r) {
    auto row = kernel.Row(r);
    std::complex<double>* out = time->data() + r * padded_cols;
    if (imag) {
      for (size_t c = 0; c < kernel.cols(); ++c) {
        out[c] = {out[c].real(), row[c]};
      }
    } else {
      for (size_t c = 0; c < kernel.cols(); ++c) {
        out[c] = {row[c], out[c].imag()};
      }
    }
  }
}

}  // namespace

size_t CorrelationPlan::plans_constructed() {
  return plan_constructions.load(std::memory_order_relaxed);
}

table::Matrix CrossCorrelateNaive(const table::Matrix& data,
                                  const table::Matrix& kernel) {
  TABSKETCH_CHECK(kernel.rows() <= data.rows() &&
                  kernel.cols() <= data.cols())
      << "kernel " << kernel.rows() << "x" << kernel.cols()
      << " exceeds data " << data.rows() << "x" << data.cols();
  const size_t out_rows = data.rows() - kernel.rows() + 1;
  const size_t out_cols = data.cols() - kernel.cols() + 1;
  table::Matrix out(out_rows, out_cols);
  for (size_t i = 0; i < out_rows; ++i) {
    for (size_t j = 0; j < out_cols; ++j) {
      double acc = 0.0;
      for (size_t u = 0; u < kernel.rows(); ++u) {
        const double* data_row = data.Row(i + u).data() + j;
        const double* kernel_row = kernel.Row(u).data();
        for (size_t v = 0; v < kernel.cols(); ++v) {
          acc += data_row[v] * kernel_row[v];
        }
      }
      out(i, j) = acc;
    }
  }
  return out;
}

CorrelationPlan::CorrelationPlan(const table::Matrix& data)
    : data_rows_(data.rows()),
      data_cols_(data.cols()),
      padded_rows_(NextPowerOfTwo(data.rows())),
      padded_cols_(NextPowerOfTwo(data.cols())) {
  TABSKETCH_CHECK(!data.empty()) << "cannot plan over an empty table";
  plan_constructions.fetch_add(1, std::memory_order_relaxed);
  TABSKETCH_METRIC_COUNT("fft.plan.constructions");
  TABSKETCH_TRACE_SPAN("fft.plan");
  std::vector<std::complex<double>> time(padded_rows_ * padded_cols_);
  for (size_t r = 0; r < data_rows_; ++r) {
    auto row = data.Row(r);
    std::complex<double>* out = time.data() + r * padded_cols_;
    for (size_t c = 0; c < data_cols_; ++c) out[c] = row[c];
  }
  ForwardIntoTransposed(padded_rows_, padded_cols_, data_rows_, &time,
                        &data_freq_t_);
}

table::Matrix CorrelationPlan::Correlate(const table::Matrix& kernel) const {
  TABSKETCH_CHECK(kernel.rows() <= data_rows_ && kernel.cols() <= data_cols_)
      << "kernel " << kernel.rows() << "x" << kernel.cols()
      << " exceeds data " << data_rows_ << "x" << data_cols_;
  TABSKETCH_METRIC_COUNT("fft.correlate.calls");
  TABSKETCH_TRACE_SPAN("fft.correlate");

  CorrelateWorkspace& workspace = ThreadWorkspace();
  workspace.time.assign(padded_rows_ * padded_cols_, {0.0, 0.0});
  PackKernel(kernel, padded_cols_, /*imag=*/false, &workspace.time);
  ForwardIntoTransposed(padded_rows_, padded_cols_, kernel.rows(),
                        &workspace.time, &workspace.freq_t);

  // Cross-correlation theorem: R = IFFT( FFT(data) .* conj(FFT(kernel)) ),
  // elementwise in the shared transposed layout.
  std::complex<double>* freq = workspace.freq_t.data();
  const std::complex<double>* data_freq = data_freq_t_.data();
  const size_t total = padded_rows_ * padded_cols_;
  for (size_t i = 0; i < total; ++i) {
    const double dr = data_freq[i].real();
    const double di = data_freq[i].imag();
    const double kr = freq[i].real();
    const double ki = freq[i].imag();
    // d * conj(f)
    freq[i] = {dr * kr + di * ki, di * kr - dr * ki};
  }

  const size_t out_rows = data_rows_ - kernel.rows() + 1;
  const size_t out_cols = data_cols_ - kernel.cols() + 1;
  InverseFromTransposed(padded_rows_, padded_cols_, out_rows,
                        &workspace.freq_t, &workspace.time);

  table::Matrix out(out_rows, out_cols);
  for (size_t i = 0; i < out_rows; ++i) {
    const std::complex<double>* row = workspace.time.data() + i * padded_cols_;
    for (size_t j = 0; j < out_cols; ++j) {
      out(i, j) = row[j].real();
    }
  }
  return out;
}

std::pair<table::Matrix, table::Matrix> CorrelationPlan::CorrelatePair(
    const table::Matrix& kernel_a, const table::Matrix& kernel_b) const {
  TABSKETCH_CHECK(kernel_a.rows() <= data_rows_ &&
                  kernel_a.cols() <= data_cols_ &&
                  kernel_b.rows() <= data_rows_ &&
                  kernel_b.cols() <= data_cols_)
      << "kernel pair " << kernel_a.rows() << "x" << kernel_a.cols() << " / "
      << kernel_b.rows() << "x" << kernel_b.cols() << " exceeds data "
      << data_rows_ << "x" << data_cols_;
  TABSKETCH_METRIC_COUNT("fft.correlate_pair.calls");
  TABSKETCH_TRACE_SPAN("fft.correlate");

  CorrelateWorkspace& workspace = ThreadWorkspace();
  workspace.time.assign(padded_rows_ * padded_cols_, {0.0, 0.0});
  PackKernel(kernel_a, padded_cols_, /*imag=*/false, &workspace.time);
  PackKernel(kernel_b, padded_cols_, /*imag=*/true, &workspace.time);
  const size_t packed_rows = std::max(kernel_a.rows(), kernel_b.rows());
  ForwardIntoTransposed(padded_rows_, padded_cols_, packed_rows,
                        &workspace.time, &workspace.freq_t);

  // With x = a + i*b packed into one grid, conjugate symmetry of the real
  // transforms recovers both spectra from F = FFT(x):
  //   A(k) = (F(k) + conj(F(-k))) / 2
  //   B(k) = (F(k) - conj(F(-k))) / (2i)
  // and the two correlations travel back through ONE inverse transform as
  //   Z(k) = D(k) * (conj(A(k)) + i * conj(B(k)))
  // whose inverse FFT is y_a + i*y_b (both y are real, so the real half is
  // a's correlation and the imaginary half is b's). Indices are paired once:
  // each iteration handles (u, v) and its negated partner (-u, -v).
  std::complex<double>* freq = workspace.freq_t.data();
  const std::complex<double>* data_freq = data_freq_t_.data();
  const size_t grid_rows = padded_cols_;  // transposed layout
  const size_t grid_cols = padded_rows_;
  for (size_t u = 0; u < grid_rows; ++u) {
    const size_t u_bar = (grid_rows - u) & (grid_rows - 1);
    if (u > u_bar) continue;  // handled as the partner of an earlier row
    const bool self_row = (u == u_bar);
    for (size_t v = 0; v < grid_cols; ++v) {
      const size_t v_bar = (grid_cols - v) & (grid_cols - 1);
      if (self_row && v > v_bar) continue;
      const size_t k = u * grid_cols + v;
      const size_t k_bar = u_bar * grid_cols + v_bar;
      const double fr = freq[k].real(), fi = freq[k].imag();
      const double gr = freq[k_bar].real(), gi = freq[k_bar].imag();
      // A(k) and B(k) via the split above (G = F(-k)).
      const double ar = 0.5 * (fr + gr), ai = 0.5 * (fi - gi);
      const double br = 0.5 * (fi + gi), bi = 0.5 * (gr - fr);
      // M(k) = conj(A) + i*conj(B) = (Ar + Bi) + i(Br - Ai).
      const double mr = ar + bi, mi = br - ai;
      const double dr = data_freq[k].real(), di = data_freq[k].imag();
      freq[k] = {dr * mr - di * mi, dr * mi + di * mr};
      if (!self_row || v != v_bar) {
        // Partner frequency: A(-k) = conj(A(k)) and B(-k) = conj(B(k)), so
        // M(-k) = A(k) + i*B(k) = (Ar - Bi) + i(Ai + Br).
        const double mr2 = ar - bi, mi2 = ai + br;
        const double dr2 = data_freq[k_bar].real();
        const double di2 = data_freq[k_bar].imag();
        freq[k_bar] = {dr2 * mr2 - di2 * mi2, dr2 * mi2 + di2 * mr2};
      }
    }
  }

  const size_t out_rows_a = data_rows_ - kernel_a.rows() + 1;
  const size_t out_cols_a = data_cols_ - kernel_a.cols() + 1;
  const size_t out_rows_b = data_rows_ - kernel_b.rows() + 1;
  const size_t out_cols_b = data_cols_ - kernel_b.cols() + 1;
  InverseFromTransposed(padded_rows_, padded_cols_,
                        std::max(out_rows_a, out_rows_b), &workspace.freq_t,
                        &workspace.time);

  table::Matrix out_a(out_rows_a, out_cols_a);
  for (size_t i = 0; i < out_rows_a; ++i) {
    const std::complex<double>* row = workspace.time.data() + i * padded_cols_;
    for (size_t j = 0; j < out_cols_a; ++j) out_a(i, j) = row[j].real();
  }
  table::Matrix out_b(out_rows_b, out_cols_b);
  for (size_t i = 0; i < out_rows_b; ++i) {
    const std::complex<double>* row = workspace.time.data() + i * padded_cols_;
    for (size_t j = 0; j < out_cols_b; ++j) out_b(i, j) = row[j].imag();
  }
  return {std::move(out_a), std::move(out_b)};
}

}  // namespace tabsketch::fft
