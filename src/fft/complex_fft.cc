#include "fft/complex_fft.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace tabsketch::fft {

size_t NextPowerOfTwo(size_t n) {
  TABSKETCH_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) {
    TABSKETCH_CHECK(p <= (static_cast<size_t>(1) << 62)) << "size overflow";
    p <<= 1;
  }
  return p;
}

void Transform(std::span<std::complex<double>> data, bool inverse) {
  const size_t n = data.size();
  TABSKETCH_CHECK(IsPowerOfTwo(n)) << "FFT length " << n
                                   << " is not a power of two";
  if (n == 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies. Twiddle factors are generated per stage by repeated
  // multiplication from a trigonometrically exact stage root; the error
  // growth over the <= 2^26 sizes used here stays far below the estimator
  // noise floor (and is covered by round-trip tests).
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> root(std::cos(angle), std::sin(angle));
    for (size_t start = 0; start < n; start += len) {
      std::complex<double> w(1.0, 0.0);
      const size_t half = len / 2;
      for (size_t i = 0; i < half; ++i) {
        const std::complex<double> even = data[start + i];
        const std::complex<double> odd = data[start + i + half] * w;
        data[start + i] = even + odd;
        data[start + i + half] = even - odd;
        w *= root;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : data) value *= scale;
  }
}

}  // namespace tabsketch::fft
