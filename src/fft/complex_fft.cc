#include "fft/complex_fft.h"

#include <utility>

#include "fft/twiddle.h"
#include "util/logging.h"

namespace tabsketch::fft {
namespace {

/// Butterfly passes over bit-reversed data, twiddles from the shared table.
/// Templated on the direction so the conjugation of the inverse twiddles is
/// resolved at compile time, and written in explicit real arithmetic so the
/// complex products compile to plain mul/add (std::complex operator* carries
/// NaN-recovery branches that dominate this loop otherwise).
template <bool kInverse>
void Butterflies(std::complex<double>* data, size_t n, const FftTables& tables) {
  // First stage (len == 2): the twiddle is 1, so it is a pure add/sub pass.
  for (size_t start = 0; start < n; start += 2) {
    const std::complex<double> even = data[start];
    const std::complex<double> odd = data[start + 1];
    data[start] = even + odd;
    data[start + 1] = even - odd;
  }
  const std::complex<double>* twiddles = tables.twiddles.data();
  for (size_t len = 4; len <= n; len <<= 1) {
    const size_t half = len >> 1;
    const size_t stride = n / len;
    for (size_t start = 0; start < n; start += len) {
      std::complex<double>* lo = data + start;
      std::complex<double>* hi = lo + half;
      for (size_t j = 0; j < half; ++j) {
        const std::complex<double> w = twiddles[j * stride];
        const double wr = w.real();
        const double wi = kInverse ? -w.imag() : w.imag();
        const double xr = hi[j].real();
        const double xi = hi[j].imag();
        const double tr = xr * wr - xi * wi;
        const double ti = xr * wi + xi * wr;
        const double er = lo[j].real();
        const double ei = lo[j].imag();
        lo[j] = {er + tr, ei + ti};
        hi[j] = {er - tr, ei - ti};
      }
    }
  }
}

}  // namespace

size_t NextPowerOfTwo(size_t n) {
  TABSKETCH_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) {
    TABSKETCH_CHECK(p <= (static_cast<size_t>(1) << 62)) << "size overflow";
    p <<= 1;
  }
  return p;
}

void Transform(std::span<std::complex<double>> data, bool inverse) {
  const size_t n = data.size();
  TABSKETCH_CHECK(IsPowerOfTwo(n)) << "FFT length " << n
                                   << " is not a power of two";
  if (n == 1) return;

  const FftTables& tables = TablesFor(n);

  // Bit-reversal permutation via the cached index table.
  const uint32_t* reverse = tables.bit_reverse.data();
  for (size_t i = 1; i < n; ++i) {
    const size_t j = reverse[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  if (inverse) {
    Butterflies<true>(data.data(), n, tables);
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : data) value *= scale;
  } else {
    Butterflies<false>(data.data(), n, tables);
  }
}

}  // namespace tabsketch::fft
