#include "fft/twiddle.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <shared_mutex>

#include "fft/complex_fft.h"
#include "util/logging.h"

namespace tabsketch::fft {
namespace {

struct TableCache {
  std::shared_mutex mutex;
  // unique_ptr values keep FftTables addresses stable across rehashing, so
  // returned references outlive any later insertions.
  std::map<size_t, std::unique_ptr<FftTables>> by_length;
};

TableCache& Cache() {
  static TableCache* cache = new TableCache();  // never destroyed
  return *cache;
}

std::unique_ptr<FftTables> BuildTables(size_t n) {
  auto tables = std::make_unique<FftTables>();
  tables->n = n;

  tables->bit_reverse.resize(n);
  tables->bit_reverse[0] = 0;
  for (size_t i = 1; i < n; ++i) {
    // rev(i) from rev(i >> 1): shift right, bring in the dropped low bit as
    // the new high bit.
    tables->bit_reverse[i] = static_cast<uint32_t>(
        (tables->bit_reverse[i >> 1] >> 1) | ((i & 1) ? (n >> 1) : 0));
  }

  tables->twiddles.resize(n / 2);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (size_t j = 0; j < n / 2; ++j) {
    const double angle = step * static_cast<double>(j);
    tables->twiddles[j] = {std::cos(angle), std::sin(angle)};
  }
  return tables;
}

}  // namespace

const FftTables& TablesFor(size_t n) {
  TABSKETCH_CHECK(IsPowerOfTwo(n))
      << "FFT tables requested for non-power-of-two length " << n;
  TABSKETCH_CHECK(n <= (static_cast<size_t>(1) << 31))
      << "FFT length " << n << " exceeds the 32-bit bit-reversal table";
  TableCache& cache = Cache();
  {
    std::shared_lock lock(cache.mutex);
    auto it = cache.by_length.find(n);
    if (it != cache.by_length.end()) return *it->second;
  }
  // Build outside any lock (cold path); on a race the first insert wins and
  // the losing build is discarded.
  auto built = BuildTables(n);
  std::unique_lock lock(cache.mutex);
  auto [it, inserted] = cache.by_length.emplace(n, std::move(built));
  return *it->second;
}

size_t CachedTableLengths() {
  TableCache& cache = Cache();
  std::shared_lock lock(cache.mutex);
  return cache.by_length.size();
}

}  // namespace tabsketch::fft
