#ifndef TABSKETCH_FFT_CORRELATE_H_
#define TABSKETCH_FFT_CORRELATE_H_

#include <cstddef>

#include "fft/fft2d.h"
#include "table/matrix.h"

namespace tabsketch::fft {

/// Valid-mode 2-D cross-correlation computed directly in O(N * M):
///   out(i, j) = sum_{u < kr, v < kc} data(i+u, j+v) * kernel(u, v)
/// for all positions where the kernel fits inside the data. Output size is
/// (data.rows - kernel.rows + 1) x (data.cols - kernel.cols + 1).
///
/// This is the O(k N M) baseline of paper Section 3.3; the FFT plan below is
/// the O(k N log M) improvement of Theorem 3. Kernel must fit in data.
table::Matrix CrossCorrelateNaive(const table::Matrix& data,
                                  const table::Matrix& kernel);

/// Reusable FFT plan for cross-correlating one data table against many
/// kernels of varying sizes (the k random stable matrices of a sketch).
///
/// The forward transform of the zero-padded data is computed once at
/// construction; each Correlate() call then costs one forward transform of
/// the kernel, a pointwise multiply, and one inverse transform.
///
/// Thread safety: Correlate() is const and works on a per-call workspace, so
/// any number of threads may correlate different kernels against one shared
/// plan concurrently. This is what lets a whole dyadic pool build (all
/// canonical sizes, all k kernels) share a single forward FFT of the data.
///
/// Wrap-around correctness: positions are only read from the valid region
/// i <= rows-kr, j <= cols-kc, where the circular convolution at padded size
/// >= data size never wraps, so the result equals the naive computation up to
/// floating-point rounding.
class CorrelationPlan {
 public:
  /// Builds the plan; transforms `data` padded to the next powers of two.
  explicit CorrelationPlan(const table::Matrix& data);

  CorrelationPlan(const CorrelationPlan&) = delete;
  CorrelationPlan& operator=(const CorrelationPlan&) = delete;
  CorrelationPlan(CorrelationPlan&&) = default;
  CorrelationPlan& operator=(CorrelationPlan&&) = default;

  size_t data_rows() const { return data_rows_; }
  size_t data_cols() const { return data_cols_; }

  /// Valid-mode cross-correlation of the planned data with `kernel`.
  /// `kernel` must fit inside the data. Safe to call concurrently.
  table::Matrix Correlate(const table::Matrix& kernel) const;

  /// Process-wide count of plans constructed so far (moves excluded). Test
  /// hook: a pool build over one table must raise this by exactly one, i.e.
  /// the data's forward FFT is computed once and shared.
  static size_t plans_constructed();

 private:
  size_t data_rows_;
  size_t data_cols_;
  size_t padded_rows_;
  size_t padded_cols_;
  ComplexGrid data_freq_;
};

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_CORRELATE_H_
