#ifndef TABSKETCH_FFT_CORRELATE_H_
#define TABSKETCH_FFT_CORRELATE_H_

#include <complex>
#include <cstddef>
#include <utility>
#include <vector>

#include "table/matrix.h"

namespace tabsketch::fft {

/// Valid-mode 2-D cross-correlation computed directly in O(N * M):
///   out(i, j) = sum_{u < kr, v < kc} data(i+u, j+v) * kernel(u, v)
/// for all positions where the kernel fits inside the data. Output size is
/// (data.rows - kernel.rows + 1) x (data.cols - kernel.cols + 1).
///
/// This is the O(k N M) baseline of paper Section 3.3; the FFT plan below is
/// the O(k N log M) improvement of Theorem 3. Kernel must fit in data.
table::Matrix CrossCorrelateNaive(const table::Matrix& data,
                                  const table::Matrix& kernel);

/// Reusable FFT plan for cross-correlating one data table against many
/// kernels of varying sizes (the k random stable matrices of a sketch).
///
/// The forward transform of the zero-padded data is computed once at
/// construction (and stored in transposed layout, which is what the engine
/// multiplies against); each Correlate() call then costs one forward
/// transform of the kernel, a pointwise multiply, and one inverse transform.
/// CorrelatePair() halves that again: two real kernels ride in the real and
/// imaginary halves of ONE complex grid, their spectra are separated by
/// conjugate symmetry, and both correlations come back through one inverse
/// transform — two kernels per forward/inverse pair.
///
/// The engine prunes the row passes: the forward transform only runs over
/// the kernel's nonzero rows and the inverse only over the valid output
/// rows, which together cost one full row pass instead of two. Column passes
/// run as blocked transposes + contiguous transforms (fft2d.h).
///
/// Thread safety: Correlate()/CorrelatePair() are const and use thread-local
/// workspaces (allocation-free after each thread's first call at a given
/// padded size), so any number of threads may correlate different kernels
/// against one shared plan concurrently. This is what lets a whole dyadic
/// pool build (all canonical sizes, all k kernels) share a single forward
/// FFT of the data. Results depend only on the kernel arguments, never on
/// which thread runs the call, keeping pool builds bit-identical across
/// thread counts.
///
/// Wrap-around correctness: positions are only read from the valid region
/// i <= rows-kr, j <= cols-kc, where the circular convolution at padded size
/// >= data size never wraps, so the result equals the naive computation up to
/// floating-point rounding.
class CorrelationPlan {
 public:
  /// Builds the plan; transforms `data` padded to the next powers of two.
  explicit CorrelationPlan(const table::Matrix& data);

  CorrelationPlan(const CorrelationPlan&) = delete;
  CorrelationPlan& operator=(const CorrelationPlan&) = delete;
  CorrelationPlan(CorrelationPlan&&) = default;
  CorrelationPlan& operator=(CorrelationPlan&&) = default;

  size_t data_rows() const { return data_rows_; }
  size_t data_cols() const { return data_cols_; }

  /// Valid-mode cross-correlation of the planned data with `kernel`.
  /// `kernel` must fit inside the data. Safe to call concurrently.
  table::Matrix Correlate(const table::Matrix& kernel) const;

  /// Valid-mode cross-correlations of the planned data with `kernel_a` and
  /// `kernel_b`, computed with ONE forward and ONE inverse 2-D transform via
  /// real-pair packing (a in the real half, b in the imaginary half; spectra
  /// split by conjugate symmetry). Equivalent to
  /// {Correlate(kernel_a), Correlate(kernel_b)} up to floating-point
  /// rounding, at about half the FFT cost. The kernels may have different
  /// shapes; each output has its own valid size. Safe to call concurrently.
  std::pair<table::Matrix, table::Matrix> CorrelatePair(
      const table::Matrix& kernel_a, const table::Matrix& kernel_b) const;

  /// Process-wide count of plans constructed so far (moves excluded). Test
  /// hook: a pool build over one table must raise this by exactly one, i.e.
  /// the data's forward FFT is computed once and shared.
  static size_t plans_constructed();

 private:
  size_t data_rows_;
  size_t data_cols_;
  size_t padded_rows_;
  size_t padded_cols_;
  /// Forward spectrum of the zero-padded data in TRANSPOSED (padded_cols x
  /// padded_rows) row-major layout — the layout the pointwise multiply and
  /// the inverse column pass consume, saving two transposes per Correlate.
  std::vector<std::complex<double>> data_freq_t_;
};

}  // namespace tabsketch::fft

#endif  // TABSKETCH_FFT_CORRELATE_H_
