#include "cluster/dbscan.h"

#include <deque>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace tabsketch::cluster {
namespace {

/// Indices of all objects within epsilon of `center` (including itself).
std::vector<size_t> RangeQuery(ClusteringBackend* backend, size_t center,
                               double epsilon) {
  TABSKETCH_TRACE_SPAN("cluster.assign");
  std::vector<size_t> neighbors;
  const size_t n = backend->num_objects();
  for (size_t other = 0; other < n; ++other) {
    if (other == center) {
      neighbors.push_back(other);
      continue;
    }
    if (backend->ObjectDistance(center, other) <= epsilon) {
      neighbors.push_back(other);
    }
  }
  return neighbors;
}

}  // namespace

util::Result<DbscanResult> RunDbscan(ClusteringBackend* backend,
                                     const DbscanOptions& options) {
  TABSKETCH_CHECK(backend != nullptr);
  if (options.epsilon <= 0.0) {
    return util::Status::InvalidArgument("epsilon must be positive");
  }
  if (options.min_points == 0) {
    return util::Status::InvalidArgument("min_points must be positive");
  }

  util::WallTimer timer;
  const size_t evals_before = backend->distance_evaluations();
  const size_t n = backend->num_objects();

  constexpr int kUnvisited = -2;
  DbscanResult result;
  result.assignment.assign(n, kUnvisited);

  for (size_t seed = 0; seed < n; ++seed) {
    if (result.assignment[seed] != kUnvisited) continue;
    std::vector<size_t> neighbors =
        RangeQuery(backend, seed, options.epsilon);
    if (neighbors.size() < options.min_points) {
      result.assignment[seed] = kNoiseLabel;
      continue;
    }
    // New cluster: expand from the seed's neighborhood.
    const int cluster = static_cast<int>(result.num_clusters++);
    TABSKETCH_TRACE_INSTANT("cluster.dbscan.new_cluster", cluster);
    result.assignment[seed] = cluster;
    std::deque<size_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const size_t object = frontier.front();
      frontier.pop_front();
      if (result.assignment[object] == kNoiseLabel) {
        result.assignment[object] = cluster;  // border point
      }
      if (result.assignment[object] != kUnvisited) continue;
      result.assignment[object] = cluster;
      std::vector<size_t> expansion =
          RangeQuery(backend, object, options.epsilon);
      if (expansion.size() >= options.min_points) {
        frontier.insert(frontier.end(), expansion.begin(), expansion.end());
      }
    }
  }

  for (int label : result.assignment) {
    if (label == kNoiseLabel) ++result.num_noise;
  }
  result.seconds = timer.ElapsedSeconds();
  result.distance_evaluations =
      backend->distance_evaluations() - evals_before;
  TABSKETCH_METRIC_GAUGE_SET("cluster.dbscan.clusters", result.num_clusters);
  RecordDistanceEvaluations(*backend, result.distance_evaluations);
  return result;
}

}  // namespace tabsketch::cluster
