#include "cluster/kmedoids.h"

#include <limits>
#include <sstream>

#include "cluster/seeding.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace tabsketch::cluster {
namespace {

/// Assigns each object to its nearest medoid; returns how many changed and
/// accumulates the objective.
size_t AssignToMedoids(ClusteringBackend* backend,
                       const std::vector<size_t>& medoids,
                       std::vector<int>* assignment, double* objective) {
  const size_t n = backend->num_objects();
  size_t changed = 0;
  *objective = 0.0;
  for (size_t object = 0; object < n; ++object) {
    int best = -1;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t m = 0; m < medoids.size(); ++m) {
      const double d = backend->ObjectDistance(object, medoids[m]);
      if (d < best_distance) {
        best_distance = d;
        best = static_cast<int>(m);
      }
    }
    *objective += best_distance;
    if ((*assignment)[object] != best) {
      (*assignment)[object] = best;
      ++changed;
    }
  }
  return changed;
}

/// Re-centers each cluster on its best member; returns true on any change.
bool UpdateMedoids(ClusteringBackend* backend,
                   const std::vector<int>& assignment,
                   std::vector<size_t>* medoids) {
  const size_t n = backend->num_objects();
  bool moved = false;
  for (size_t m = 0; m < medoids->size(); ++m) {
    // Gather members.
    std::vector<size_t> members;
    for (size_t object = 0; object < n; ++object) {
      if (assignment[object] == static_cast<int>(m)) {
        members.push_back(object);
      }
    }
    if (members.empty()) continue;  // keep previous medoid
    size_t best_member = (*medoids)[m];
    double best_total = std::numeric_limits<double>::infinity();
    for (size_t candidate : members) {
      double total = 0.0;
      for (size_t other : members) {
        total += backend->ObjectDistance(candidate, other);
        if (total >= best_total) break;  // early abandon
      }
      if (total < best_total) {
        best_total = total;
        best_member = candidate;
      }
    }
    if (best_member != (*medoids)[m]) {
      (*medoids)[m] = best_member;
      moved = true;
    }
  }
  return moved;
}

}  // namespace

util::Result<KMedoidsResult> RunKMedoids(ClusteringBackend* backend,
                                         const KMedoidsOptions& options) {
  TABSKETCH_CHECK(backend != nullptr);
  const size_t n = backend->num_objects();
  if (options.k == 0 || options.k > n) {
    std::ostringstream msg;
    msg << "k = " << options.k << " must be in [1, " << n << "]";
    return util::Status::InvalidArgument(msg.str());
  }

  util::WallTimer timer;
  const size_t evals_before = backend->distance_evaluations();

  KMedoidsResult result;
  result.medoids = RandomDistinctIndices(n, options.k, options.seed);
  result.assignment.assign(n, -1);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    size_t changed;
    {
      TABSKETCH_TRACE_SPAN("cluster.assign");
      changed = AssignToMedoids(backend, result.medoids, &result.assignment,
                                &result.objective);
    }
    TABSKETCH_TRACE_INSTANT("cluster.kmedoids.changed", changed);
    bool moved;
    {
      TABSKETCH_TRACE_SPAN("cluster.update");
      moved = UpdateMedoids(backend, result.assignment, &result.medoids);
    }
    if (changed == 0 && !moved) {
      result.converged = true;
      break;
    }
  }
  // Final objective against the final medoids.
  AssignToMedoids(backend, result.medoids, &result.assignment,
                  &result.objective);

  result.seconds = timer.ElapsedSeconds();
  result.distance_evaluations =
      backend->distance_evaluations() - evals_before;
  TABSKETCH_METRIC_GAUGE_SET("cluster.kmedoids.iterations",
                             result.iterations);
  TABSKETCH_METRIC_GAUGE_SET("cluster.kmedoids.converged",
                             result.converged ? 1 : 0);
  RecordDistanceEvaluations(*backend, result.distance_evaluations);
  return result;
}

}  // namespace tabsketch::cluster
