#include "cluster/seeding.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "rng/xoshiro256.h"
#include "util/logging.h"

namespace tabsketch::cluster {

std::vector<size_t> RandomDistinctIndices(size_t n, size_t k, uint64_t seed) {
  TABSKETCH_CHECK(k <= n) << "cannot draw " << k << " distinct from " << n;
  rng::Xoshiro256 gen(seed);
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher-Yates: after i swaps the first i entries are a uniform
  // random k-subset prefix.
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + gen.NextBounded(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<size_t> KMeansPlusPlusIndices(ClusteringBackend* backend,
                                          size_t k, uint64_t seed) {
  TABSKETCH_CHECK(backend != nullptr);
  const size_t n = backend->num_objects();
  TABSKETCH_CHECK(k <= n) << "cannot seed " << k << " centers from " << n;
  rng::Xoshiro256 gen(seed);

  std::vector<size_t> centers;
  centers.reserve(k);
  centers.push_back(gen.NextBounded(n));

  std::vector<double> best_sq(n, std::numeric_limits<double>::infinity());
  for (size_t round = 1; round < k; ++round) {
    const size_t latest = centers.back();
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = backend->ObjectDistance(i, latest);
      best_sq[i] = std::min(best_sq[i], d * d);
      total += best_sq[i];
    }
    size_t chosen;
    if (total <= 0.0) {
      // All remaining objects coincide with a center; fall back to uniform.
      chosen = gen.NextBounded(n);
    } else {
      double target = gen.NextDouble() * total;
      chosen = n - 1;
      for (size_t i = 0; i < n; ++i) {
        target -= best_sq[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centers.push_back(chosen);
  }
  return centers;
}

}  // namespace tabsketch::cluster
