#include "cluster/sketch_backend.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/lp_distance.h"
#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace tabsketch::cluster {

util::Result<SketchBackend> SketchBackend::Create(
    const table::TileGrid* grid, const core::SketchParams& params,
    SketchMode mode, core::EstimatorKind estimator_kind, size_t threads,
    size_t cache_bytes, core::QuantKind quant) {
  TABSKETCH_CHECK(grid != nullptr);
  TABSKETCH_ASSIGN_OR_RETURN(core::Sketcher sketcher,
                             core::Sketcher::Create(params));
  TABSKETCH_ASSIGN_OR_RETURN(
      core::DistanceEstimator estimator,
      core::DistanceEstimator::Create(params, estimator_kind));
  auto shared_sketcher = std::make_shared<core::Sketcher>(std::move(sketcher));
  SketchBackend backend(grid, std::move(shared_sketcher),
                        std::move(estimator), mode);
  if (mode == SketchMode::kPrecomputed) {
    backend.cache_ = std::make_unique<core::FixedSketchSource>(
        core::SketchAllTilesParallel(*backend.sketcher_, *grid, threads));
  } else if (cache_bytes > 0) {
    core::LruSketchCache::Options options;
    options.capacity_bytes = cache_bytes;
    backend.cache_ = std::make_unique<core::LruSketchCache>(
        backend.sketcher_.get(), grid, options);
    backend.bounded_cache_ = true;
  } else {
    backend.cache_ = std::make_unique<core::OnDemandSketchCache>(
        backend.sketcher_.get(), grid);
  }
  if (quant != core::QuantKind::kOff) {
    // Built through the cache so peak memory stays bounded even when the
    // backend itself runs under an LRU budget (sketches recomputed during
    // the passes are the one-time build cost).
    TABSKETCH_ASSIGN_OR_RETURN(
        core::QuantizedCodePool pool,
        core::QuantizedCodePool::Build(backend.cache_.get(), quant, params,
                                       grid->tile_rows(),
                                       grid->tile_cols()));
    backend.code_pool_ =
        std::make_unique<const core::QuantizedCodePool>(std::move(pool));
    TABSKETCH_METRIC_GAUGE_SET("quant.pool.bytes",
                               backend.code_pool_->bytes());
  }
  if (eval::SketchAuditor::Enabled()) {
    backend.audit_ = eval::SketchAuditor::Global().ChannelFor(
        params.p, params.k, params.sparsity);
  }
  return backend;
}

SketchBackend::SketchBackend(const table::TileGrid* grid,
                             std::shared_ptr<core::Sketcher> sketcher,
                             core::DistanceEstimator estimator,
                             SketchMode mode)
    : grid_(grid),
      sketcher_(std::move(sketcher)),
      estimator_(estimator),
      mode_(mode) {}

std::shared_ptr<const core::Sketch> SketchBackend::TileSketch(size_t index) {
  return cache_->Get(index);
}

void SketchBackend::InitCentroidsFromObjects(
    const std::vector<size_t>& object_indices) {
  centroids_.clear();
  centroids_.reserve(object_indices.size());
  for (size_t index : object_indices) {
    centroids_.push_back(*TileSketch(index));
  }
  if (audit_ != nullptr) {
    audit_centroids_.clear();
    audit_centroids_.reserve(object_indices.size());
    for (size_t index : object_indices) {
      audit_centroids_.push_back(grid_->Tile(index).ToMatrix());
    }
  }
  RefreshCentroidCodes();
}

namespace {

/// Median-estimator workspace, one per thread so concurrent Distance calls
/// never share mutable state (a per-backend scratch would race).
std::vector<double>* ThreadScratch() {
  static thread_local std::vector<double> scratch;
  return &scratch;
}

}  // namespace

double SketchBackend::Distance(size_t object, size_t centroid) {
  ++distance_evaluations_;
  TABSKETCH_CHECK(centroid < centroids_.size());
  const double estimate = estimator_.EstimateWithScratch(
      TileSketch(object)->values, centroids_[centroid].values,
      ThreadScratch());
  if (audit_ != nullptr && centroid < audit_centroids_.size() &&
      eval::SketchAuditor::Global().ShouldSample()) {
    audit_->Record(core::LpDistance(grid_->Tile(object),
                                    audit_centroids_[centroid].View(),
                                    sketcher_->params().p),
                   estimate);
  }
  return estimate;
}

double SketchBackend::ObjectDistance(size_t a, size_t b) {
  ++distance_evaluations_;
  // Shared ownership keeps both sketches alive across the estimate even if a
  // bounded cache evicts their entries in between.
  const std::shared_ptr<const core::Sketch> sketch_a = TileSketch(a);
  const std::shared_ptr<const core::Sketch> sketch_b = TileSketch(b);
  const double estimate = estimator_.EstimateWithScratch(
      sketch_a->values, sketch_b->values, ThreadScratch());
  if (audit_ != nullptr && eval::SketchAuditor::Global().ShouldSample()) {
    audit_->Record(
        core::LpDistance(grid_->Tile(a), grid_->Tile(b),
                         sketcher_->params().p),
        estimate);
  }
  return estimate;
}

void SketchBackend::UpdateCentroids(const std::vector<int>& assignment) {
  TABSKETCH_CHECK(assignment.size() == num_objects());
  const size_t k = centroids_.size();
  const size_t sketch_size = sketcher_->params().k;
  std::vector<core::Sketch> sums(k);
  for (auto& sum : sums) sum.values.assign(sketch_size, 0.0);
  std::vector<size_t> counts(k, 0);
  for (size_t object = 0; object < assignment.size(); ++object) {
    const int cluster = assignment[object];
    if (cluster < 0) continue;
    TABSKETCH_CHECK(static_cast<size_t>(cluster) < k);
    sums[cluster].Add(*TileSketch(object));
    ++counts[cluster];
  }
  for (size_t cluster = 0; cluster < k; ++cluster) {
    if (counts[cluster] == 0) continue;  // keep previous centroid
    sums[cluster].Scale(1.0 / static_cast<double>(counts[cluster]));
    centroids_[cluster] = std::move(sums[cluster]);
  }
  if (audit_ != nullptr) UpdateAuditCentroids(assignment);
  RefreshCentroidCodes();
}

/// Shadow mirror of ExactBackend::UpdateCentroids: the mean member tile per
/// cluster, in data space. By sketch linearity the sketch centroid above *is*
/// the sketch of this matrix, which is exactly what makes the audited
/// object-to-centroid comparison meaningful.
void SketchBackend::UpdateAuditCentroids(const std::vector<int>& assignment) {
  const size_t k = centroids_.size();
  std::vector<table::Matrix> sums(
      k, table::Matrix(grid_->tile_rows(), grid_->tile_cols()));
  std::vector<size_t> counts(k, 0);
  for (size_t object = 0; object < assignment.size(); ++object) {
    const int cluster = assignment[object];
    if (cluster < 0) continue;
    table::TableView tile = grid_->Tile(object);
    table::Matrix& sum = sums[cluster];
    for (size_t r = 0; r < tile.rows(); ++r) {
      auto src = tile.Row(r);
      auto dst = sum.Row(r);
      for (size_t c = 0; c < src.size(); ++c) dst[c] += src[c];
    }
    ++counts[cluster];
  }
  if (audit_centroids_.size() != k) {
    audit_centroids_.assign(
        k, table::Matrix(grid_->tile_rows(), grid_->tile_cols()));
  }
  for (size_t cluster = 0; cluster < k; ++cluster) {
    if (counts[cluster] == 0) continue;  // keep previous centroid
    const double inv = 1.0 / static_cast<double>(counts[cluster]);
    for (double& value : sums[cluster].Values()) value *= inv;
    audit_centroids_[cluster] = std::move(sums[cluster]);
  }
}

void SketchBackend::ResetCentroidToObject(size_t centroid, size_t object) {
  TABSKETCH_CHECK(centroid < centroids_.size());
  centroids_[centroid] = *TileSketch(object);
  if (audit_ != nullptr && centroid < audit_centroids_.size()) {
    audit_centroids_[centroid] = grid_->Tile(object).ToMatrix();
  }
  RefreshCentroidCodes();
}

void SketchBackend::RefreshCentroidCodes() {
  if (code_pool_ == nullptr) return;
  centroid_codes_.resize(centroids_.size());
  for (size_t c = 0; c < centroids_.size(); ++c) {
    centroid_codes_[c] = code_pool_->Quantize(centroids_[c].values);
  }
}

int SketchBackend::NearestCentroid(size_t object) {
  if (code_pool_ == nullptr) return ClusteringBackend::NearestCentroid(object);

  // Code-scan prefilter. With per-comparison error bounded by `slack`
  // (DESIGN.md §13), any centroid whose code distance exceeds
  // min_c(code_c + slack) by more than slack has a true estimate strictly
  // above some other centroid's — it can never win the NaN-skipping,
  // lowest-index-tie argmin, so skipping its full estimate cannot change
  // the assignment. NaN code distances (unusable tile or centroid) always
  // stay candidates.
  static thread_local core::kernels::CodeScratch code_scratch;
  static thread_local std::vector<double> code_distances;
  const bool l2 = estimator_.kind() == core::EstimatorKind::kL2;
  const double inv_scale = 1.0 / estimator_.scale();
  const double slack = code_pool_->Slack(estimator_);
  const size_t k = centroids_.size();
  code_distances.resize(k);
  double best_bound = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < k; ++c) {
    const double d = code_pool_->CodeEstimateAgainst(
                         object, centroid_codes_[c], l2, &code_scratch) *
                     inv_scale;
    code_distances[c] = d;
    if (d + slack < best_bound) best_bound = d + slack;
  }
  TABSKETCH_METRIC_COUNT_N("quant.scan.tiles", k);
  TABSKETCH_METRIC_COUNT_N(
      "quant.scan.bytes",
      2 * k * code_pool_->k() * core::QuantCodeBytes(code_pool_->kind()));

  int best = -1;
  double best_distance = std::numeric_limits<double>::infinity();
  size_t kept = 0;
  for (size_t c = 0; c < k; ++c) {
    if (code_distances[c] - slack > best_bound) continue;  // NaN-safe: kept
    ++kept;
    const double d = Distance(object, c);
    if (std::isnan(d)) continue;
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(c);
    }
  }
  TABSKETCH_METRIC_COUNT_N("quant.candidates.kept", kept);
  return best;
}

std::string SketchBackend::name() const {
  if (mode_ == SketchMode::kPrecomputed) return "sketch-precomputed";
  return bounded_cache_ ? "sketch-lru" : "sketch-on-demand";
}

size_t SketchBackend::sketches_computed() const {
  // Precomputed sketches were all built at Create() (FixedSketchSource
  // itself never computes, so report the eager count directly).
  if (mode_ == SketchMode::kPrecomputed) return num_objects();
  return cache_->computed();
}

}  // namespace tabsketch::cluster
