#include "cluster/hierarchy.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace tabsketch::cluster {

util::Result<std::vector<int>> Dendrogram::CutAtK(size_t k) const {
  if (k == 0 || k > num_objects) {
    std::ostringstream msg;
    msg << "cut k = " << k << " must be in [1, " << num_objects << "]";
    return util::Status::InvalidArgument(msg.str());
  }
  // Union-find replay of the first n - k merges.
  std::vector<size_t> parent(num_objects + merges.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const size_t steps = num_objects - k;
  TABSKETCH_CHECK(steps <= merges.size());
  for (size_t step = 0; step < steps; ++step) {
    const size_t merged_id = num_objects + step;
    parent[find(merges[step].left)] = merged_id;
    parent[find(merges[step].right)] = merged_id;
  }
  // Relabel roots to [0, k) in order of first appearance.
  std::vector<int> labels(num_objects, -1);
  std::vector<size_t> root_of_label;
  for (size_t object = 0; object < num_objects; ++object) {
    const size_t root = find(object);
    int label = -1;
    for (size_t existing = 0; existing < root_of_label.size(); ++existing) {
      if (root_of_label[existing] == root) {
        label = static_cast<int>(existing);
        break;
      }
    }
    if (label < 0) {
      label = static_cast<int>(root_of_label.size());
      root_of_label.push_back(root);
    }
    labels[object] = label;
  }
  TABSKETCH_CHECK(root_of_label.size() == k)
      << "expected " << k << " clusters, found " << root_of_label.size();
  return labels;
}

util::Result<Dendrogram> AgglomerativeCluster(ClusteringBackend* backend,
                                              Linkage linkage) {
  TABSKETCH_CHECK(backend != nullptr);
  const size_t n = backend->num_objects();
  if (n == 0) {
    return util::Status::InvalidArgument("nothing to cluster");
  }
  Dendrogram dendrogram;
  dendrogram.num_objects = n;
  if (n == 1) return dendrogram;

  // Full pairwise distances (the n(n-1)/2 comparisons sketches accelerate).
  std::vector<double> dist(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = backend->ObjectDistance(i, j);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<size_t> cluster_id(n);   // dendrogram id held by each slot
  std::vector<double> sizes(n, 1.0);
  std::iota(cluster_id.begin(), cluster_id.end(), 0);

  dendrogram.merges.reserve(n - 1);
  for (size_t step = 0; step < n - 1; ++step) {
    // Closest active pair.
    size_t best_a = 0, best_b = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < n; ++a) {
      if (!active[a]) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!active[b]) continue;
        if (dist[a * n + b] < best) {
          best = dist[a * n + b];
          best_a = a;
          best_b = b;
        }
      }
    }

    dendrogram.merges.push_back(
        Merge{cluster_id[best_a], cluster_id[best_b], best});

    // Lance-Williams update into slot best_a; deactivate best_b.
    for (size_t j = 0; j < n; ++j) {
      if (!active[j] || j == best_a || j == best_b) continue;
      const double da = dist[best_a * n + j];
      const double db = dist[best_b * n + j];
      double merged;
      switch (linkage) {
        case Linkage::kSingle:
          merged = std::min(da, db);
          break;
        case Linkage::kComplete:
          merged = std::max(da, db);
          break;
        case Linkage::kAverage:
          merged = (sizes[best_a] * da + sizes[best_b] * db) /
                   (sizes[best_a] + sizes[best_b]);
          break;
        default:
          TABSKETCH_CHECK(false) << "unknown linkage";
          merged = 0.0;
      }
      dist[best_a * n + j] = merged;
      dist[j * n + best_a] = merged;
    }
    sizes[best_a] += sizes[best_b];
    cluster_id[best_a] = n + step;
    active[best_b] = false;
  }
  return dendrogram;
}

}  // namespace tabsketch::cluster
