#ifndef TABSKETCH_CLUSTER_SKETCH_BACKEND_H_
#define TABSKETCH_CLUSTER_SKETCH_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "core/estimator.h"
#include "core/quantized_sketch.h"
#include "core/sketch_cache.h"
#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "eval/audit.h"
#include "table/matrix.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::cluster {

/// When tile sketches are materialized.
enum class SketchMode {
  /// All tile sketches are computed at backend construction (the paper's
  /// scenario (1); construction time is the separately-reported
  /// "preprocessing for sketches" cost).
  kPrecomputed,
  /// Tile sketches are computed at first use and cached (scenario (2),
  /// "sketching on demand").
  kOnDemand,
};

/// Sketch-estimated-distance backend. Every comparison costs O(k) regardless
/// of tile size. Centroids are maintained directly in sketch space: by
/// linearity of the dot product, the mean of the member sketches *is* the
/// sketch of the mean tile, so centroid updates never touch the data.
///
/// Distance()/ObjectDistance() are safe to call concurrently in both modes:
/// estimator scratch is per-thread, precomputed sketches are read-only, and
/// the on-demand caches (unbounded or byte-budgeted LRU, see Create) are
/// internally synchronized.
///
/// When the global SketchAuditor is enabled at Create() time, a sampled
/// fraction of estimates is shadow-checked against the exact Lp distance.
/// Because sketch-space centroids have no data-space representation, the
/// backend then also maintains exact shadow centroids (mean member tiles,
/// mirroring ExactBackend) — pure bookkeeping that never feeds back into any
/// estimate, so clustering output is identical with auditing on or off.
class SketchBackend : public ClusteringBackend {
 public:
  /// `grid` must outlive the backend. In kPrecomputed mode this sketches
  /// every tile eagerly before returning, fanning the tiles over `threads`
  /// workers (bit-identical output for any thread count; ignored in
  /// kOnDemand mode). `cache_bytes` bounds the kOnDemand sketch cache: 0
  /// keeps every computed sketch resident (the classic unbounded
  /// OnDemandSketchCache), a positive budget swaps in the sharded
  /// LruSketchCache so long runs over huge grids stay under a memory cap —
  /// the clustering output is bit-identical either way, eviction only costs
  /// recompute time. Ignored in kPrecomputed mode.
  ///
  /// `quant` (not kOff) builds a QuantizedCodePool over the tile sketches
  /// and routes the k-means assignment scan (NearestCentroid) through a
  /// code-space prefilter: centroids whose code distance provably exceeds
  /// the best centroid's upper bound are skipped without a full estimate.
  /// Assignments are byte-identical to kOff — the slack bound guarantees no
  /// winning centroid is ever pruned — only distance_evaluations() shrinks.
  static util::Result<SketchBackend> Create(
      const table::TileGrid* grid, const core::SketchParams& params,
      SketchMode mode,
      core::EstimatorKind estimator = core::EstimatorKind::kAuto,
      size_t threads = 1, size_t cache_bytes = 0,
      core::QuantKind quant = core::QuantKind::kOff);

  size_t num_objects() const override { return grid_->num_tiles(); }
  void InitCentroidsFromObjects(
      const std::vector<size_t>& object_indices) override;
  size_t num_centroids() const override { return centroids_.size(); }
  double Distance(size_t object, size_t centroid) override;
  double ObjectDistance(size_t a, size_t b) override;
  int NearestCentroid(size_t object) override;
  void UpdateCentroids(const std::vector<int>& assignment) override;
  void ResetCentroidToObject(size_t centroid, size_t object) override;
  std::string name() const override;

  SketchMode mode() const { return mode_; }
  /// Sketches computed so far (== num_objects() in precomputed mode).
  size_t sketches_computed() const;
  const core::Sketch& centroid(size_t i) const { return centroids_[i]; }

 private:
  SketchBackend(const table::TileGrid* grid,
                std::shared_ptr<core::Sketcher> sketcher,
                core::DistanceEstimator estimator, SketchMode mode);

  /// The (possibly lazily computed) sketch of a tile. Shared ownership so a
  /// bounded cache can evict the entry while a caller still holds it.
  std::shared_ptr<const core::Sketch> TileSketch(size_t index);

  /// Recomputes audit_centroids_ as mean member tiles (audit-mode only).
  void UpdateAuditCentroids(const std::vector<int>& assignment);

  /// Re-encodes every centroid against the code pool's affine map (quant
  /// mode only). Called after each centroid mutation, so the read-only
  /// assignment phase always sees codes of the current centroids. A
  /// centroid that cannot be encoded within the error bound (NaN component
  /// or out-of-range value) stays unusable and is simply never pruned.
  void RefreshCentroidCodes();

  const table::TileGrid* grid_;
  // Behind a shared_ptr so its address survives moves of the backend (the
  // on-demand cache keeps a pointer to it).
  std::shared_ptr<core::Sketcher> sketcher_;
  core::DistanceEstimator estimator_;
  SketchMode mode_;
  /// True when a kOnDemand backend runs behind a byte-budgeted LRU cache
  /// instead of the unbounded grow-only one (only affects name()).
  bool bounded_cache_ = false;
  /// Tile-sketch source: FixedSketchSource (kPrecomputed),
  /// OnDemandSketchCache (kOnDemand, unbounded) or LruSketchCache
  /// (kOnDemand with a byte budget).
  std::unique_ptr<core::TileSketchCache> cache_;
  /// Quantized code tier over the tile sketches; non-null only when Create
  /// was given a quant kind. Immutable after construction.
  std::unique_ptr<const core::QuantizedCodePool> code_pool_;
  /// Codes of the current centroids under the pool's map; refreshed by
  /// RefreshCentroidCodes on every centroid mutation.
  std::vector<core::QuantizedVector> centroid_codes_;
  std::vector<core::Sketch> centroids_;
  /// Non-null only while auditing; cached at Create() so the per-call cost
  /// when auditing is off is a single null-pointer check.
  eval::SketchAuditor::Channel* audit_ = nullptr;
  /// Exact data-space mirrors of centroids_, maintained only while auditing.
  std::vector<table::Matrix> audit_centroids_;
};

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_SKETCH_BACKEND_H_
