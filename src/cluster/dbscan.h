#ifndef TABSKETCH_CLUSTER_DBSCAN_H_
#define TABSKETCH_CLUSTER_DBSCAN_H_

#include <cstddef>
#include <vector>

#include "cluster/backend.h"
#include "util/result.h"

namespace tabsketch::cluster {

struct DbscanOptions {
  /// Neighborhood radius in the backend's distance units.
  double epsilon = 1.0;
  /// Minimum neighborhood size (including the point itself) for a core
  /// point.
  size_t min_points = 4;
};

/// Objects DBSCAN could not attach to any cluster keep this label.
inline constexpr int kNoiseLabel = -1;

struct DbscanResult {
  /// Cluster id in [0, num_clusters) per object, or kNoiseLabel for noise.
  std::vector<int> assignment;
  size_t num_clusters = 0;
  size_t num_noise = 0;
  size_t distance_evaluations = 0;
  double seconds = 0.0;
};

/// Density-based clustering (Ester et al., cited by the paper as one of the
/// mining algorithms whose comparisons sketches can serve). This is the
/// textbook DBSCAN over the backend's object-object distances: neighborhood
/// queries are linear scans, so the run costs O(n^2) comparisons — which is
/// precisely the regime where replacing full-tile comparisons with O(k)
/// sketch comparisons pays.
///
/// Note on approximate distances: sketch noise can flip borderline
/// neighborhood memberships; as with k-means, the structure DBSCAN finds is
/// robust when clusters are separated at scale epsilon (tested).
util::Result<DbscanResult> RunDbscan(ClusteringBackend* backend,
                                     const DbscanOptions& options);

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_DBSCAN_H_
