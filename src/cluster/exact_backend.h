#ifndef TABSKETCH_CLUSTER_EXACT_BACKEND_H_
#define TABSKETCH_CLUSTER_EXACT_BACKEND_H_

#include <string>
#include <vector>

#include "cluster/backend.h"
#include "table/matrix.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::cluster {

/// Exact-distance backend: every comparison reads the full tile and computes
/// the exact Lp distance (the paper's scenario (3), the baseline whose cost
/// grows linearly with tile size). Centroids are dense matrices maintained as
/// the mean of member tiles.
class ExactBackend : public ClusteringBackend {
 public:
  /// `grid` must outlive the backend. Requires p in (0, 2] to match the
  /// sketchable range (exact Lp itself would accept any p > 0).
  static util::Result<ExactBackend> Create(const table::TileGrid* grid,
                                           double p);

  size_t num_objects() const override { return grid_->num_tiles(); }
  void InitCentroidsFromObjects(
      const std::vector<size_t>& object_indices) override;
  size_t num_centroids() const override { return centroids_.size(); }
  double Distance(size_t object, size_t centroid) override;
  double ObjectDistance(size_t a, size_t b) override;
  void UpdateCentroids(const std::vector<int>& assignment) override;
  void ResetCentroidToObject(size_t centroid, size_t object) override;
  std::string name() const override { return "exact"; }

  const table::Matrix& centroid(size_t i) const { return centroids_[i]; }

 private:
  ExactBackend(const table::TileGrid* grid, double p)
      : grid_(grid), p_(p) {}

  const table::TileGrid* grid_;
  double p_;
  std::vector<table::Matrix> centroids_;
};

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_EXACT_BACKEND_H_
