#include "cluster/backend.h"

#include "util/metrics.h"

namespace tabsketch::cluster {

void RecordDistanceEvaluations(const ClusteringBackend& backend,
                               size_t delta) {
  if (!util::MetricsRegistry::Enabled() || delta == 0) return;
  const char* key = backend.name() == "exact"
                        ? "cluster.distance_evals.exact"
                        : "cluster.distance_evals.sketch";
  util::MetricsRegistry::Global().GetCounter(key)->Increment(delta);
}

}  // namespace tabsketch::cluster
