#include "cluster/backend.h"

#include <cmath>
#include <limits>

#include "util/metrics.h"

namespace tabsketch::cluster {

int ClusteringBackend::NearestCentroid(size_t object) {
  int best = -1;
  double best_distance = std::numeric_limits<double>::infinity();
  const size_t k = num_centroids();
  for (size_t centroid = 0; centroid < k; ++centroid) {
    const double d = Distance(object, centroid);
    // NaN fails every comparison, so `d < best_distance` already skips it;
    // the explicit test documents the contract and guards reordering.
    if (std::isnan(d)) continue;
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(centroid);
    }
  }
  return best;
}

void RecordDistanceEvaluations(const ClusteringBackend& backend,
                               size_t delta) {
  if (!util::MetricsRegistry::Enabled() || delta == 0) return;
  const char* key = backend.name() == "exact"
                        ? "cluster.distance_evals.exact"
                        : "cluster.distance_evals.sketch";
  util::MetricsRegistry::Global().GetCounter(key)->Increment(delta);
}

}  // namespace tabsketch::cluster
