#include "cluster/backend.h"

// The interface is header-only; this translation unit anchors the vtable.
namespace tabsketch::cluster {}  // namespace tabsketch::cluster
