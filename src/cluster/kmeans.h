#ifndef TABSKETCH_CLUSTER_KMEANS_H_
#define TABSKETCH_CLUSTER_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/backend.h"
#include "util/result.h"

namespace tabsketch::cluster {

/// How initial centroids are chosen.
enum class SeedingMethod {
  /// k distinct objects uniformly at random (the paper's k-means).
  kRandom,
  /// k-means++ (D^2 weighting) — an ablation beyond the paper.
  kPlusPlus,
};

struct KMeansOptions {
  /// Number of clusters.
  size_t k = 20;
  /// Hard iteration cap; the loop also stops when no assignment changes.
  size_t max_iterations = 50;
  /// Seed for centroid initialization (and ++ seeding).
  uint64_t seed = 1;
  SeedingMethod seeding = SeedingMethod::kRandom;
  /// Worker threads for the assignment and objective passes (the hot loop's
  /// distance evaluations). Relies on the backend's thread-safety contract
  /// (see ClusteringBackend); assignments and the objective are bit-identical
  /// for every thread count.
  size_t threads = 1;
};

struct KMeansResult {
  /// Cluster id in [0, k) for every object.
  std::vector<int> assignment;
  /// Lloyd iterations executed.
  size_t iterations = 0;
  /// True if the loop stopped because assignments stabilized.
  bool converged = false;
  /// Wall-clock time of the clustering loop (excludes backend construction,
  /// so precomputed-sketch preprocessing is not counted — matching how the
  /// paper reports scenario (1)).
  double seconds = 0.0;
  /// Distance evaluations performed by the backend during the run.
  size_t distance_evaluations = 0;
  /// Final within-cluster objective: sum over objects of the backend's
  /// distance to their assigned centroid. Comparable across runs on the
  /// same backend; used to pick the best of several restarts.
  double objective = 0.0;
};

/// Lloyd's k-means over the objects of `backend` (paper Section 4.4). The
/// loop is identical for every backend; only the distance routine differs,
/// mirroring the paper's controlled comparison. Empty clusters are revived by
/// re-seeding them to the object currently farthest from its centroid.
///
/// Returns InvalidArgument if k is zero or exceeds the object count.
util::Result<KMeansResult> RunKMeans(ClusteringBackend* backend,
                                     const KMeansOptions& options);

/// Runs k-means `restarts` times with seeds derived from options.seed and
/// returns the run with the smallest objective. Lloyd's converges to a local
/// minimum that depends on the initial centroids; restarting is the standard
/// defense and is cheap when distances come from sketches. The returned
/// result's timing covers only the winning run; `distance_evaluations`
/// accumulates across all restarts.
util::Result<KMeansResult> RunKMeansBestOfRestarts(ClusteringBackend* backend,
                                                   const KMeansOptions& options,
                                                   size_t restarts);

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_KMEANS_H_
