#include "cluster/exact_backend.h"

#include <sstream>

#include "core/lp_distance.h"
#include "util/logging.h"
#include "util/trace.h"

namespace tabsketch::cluster {

util::Result<ExactBackend> ExactBackend::Create(const table::TileGrid* grid,
                                                double p) {
  TABSKETCH_CHECK(grid != nullptr);
  if (!(p > 0.0) || p > 2.0) {
    std::ostringstream msg;
    msg << "p must be in (0, 2], got " << p;
    return util::Status::InvalidArgument(msg.str());
  }
  return ExactBackend(grid, p);
}

void ExactBackend::InitCentroidsFromObjects(
    const std::vector<size_t>& object_indices) {
  centroids_.clear();
  centroids_.reserve(object_indices.size());
  for (size_t index : object_indices) {
    centroids_.push_back(grid_->Tile(index).ToMatrix());
  }
}

double ExactBackend::Distance(size_t object, size_t centroid) {
  ++distance_evaluations_;
  return core::LpDistance(grid_->Tile(object), centroids_[centroid].View(),
                          p_);
}

double ExactBackend::ObjectDistance(size_t a, size_t b) {
  ++distance_evaluations_;
  return core::LpDistance(grid_->Tile(a), grid_->Tile(b), p_);
}

void ExactBackend::UpdateCentroids(const std::vector<int>& assignment) {
  TABSKETCH_TRACE_SPAN("cluster.exact_update");
  TABSKETCH_CHECK(assignment.size() == num_objects());
  const size_t k = centroids_.size();
  std::vector<table::Matrix> sums(
      k, table::Matrix(grid_->tile_rows(), grid_->tile_cols()));
  std::vector<size_t> counts(k, 0);
  for (size_t object = 0; object < assignment.size(); ++object) {
    const int cluster = assignment[object];
    if (cluster < 0) continue;
    TABSKETCH_CHECK(static_cast<size_t>(cluster) < k);
    table::TableView tile = grid_->Tile(object);
    table::Matrix& sum = sums[cluster];
    for (size_t r = 0; r < tile.rows(); ++r) {
      auto src = tile.Row(r);
      auto dst = sum.Row(r);
      for (size_t c = 0; c < src.size(); ++c) dst[c] += src[c];
    }
    ++counts[cluster];
  }
  for (size_t cluster = 0; cluster < k; ++cluster) {
    if (counts[cluster] == 0) continue;  // keep previous centroid
    const double inv = 1.0 / static_cast<double>(counts[cluster]);
    for (double& value : sums[cluster].Values()) value *= inv;
    centroids_[cluster] = std::move(sums[cluster]);
  }
}

void ExactBackend::ResetCentroidToObject(size_t centroid, size_t object) {
  TABSKETCH_CHECK(centroid < centroids_.size());
  centroids_[centroid] = grid_->Tile(object).ToMatrix();
}

}  // namespace tabsketch::cluster
