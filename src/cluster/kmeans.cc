#include "cluster/kmeans.h"

#include <limits>
#include <sstream>

#include "cluster/seeding.h"
#include "rng/splitmix64.h"
#include "util/logging.h"
#include "util/timer.h"

namespace tabsketch::cluster {
namespace {

/// Assigns every object to its nearest centroid; returns how many
/// assignments changed.
size_t AssignAll(ClusteringBackend* backend, std::vector<int>* assignment) {
  const size_t n = backend->num_objects();
  const size_t k = backend->num_centroids();
  size_t changed = 0;
  for (size_t object = 0; object < n; ++object) {
    int best = -1;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t centroid = 0; centroid < k; ++centroid) {
      const double d = backend->Distance(object, centroid);
      if (d < best_distance) {
        best_distance = d;
        best = static_cast<int>(centroid);
      }
    }
    if ((*assignment)[object] != best) {
      (*assignment)[object] = best;
      ++changed;
    }
  }
  return changed;
}

/// Revives clusters with no members by moving their centroid onto the object
/// farthest from its current centroid; returns true if anything changed.
bool ReviveEmptyClusters(ClusteringBackend* backend,
                         std::vector<int>* assignment) {
  const size_t n = backend->num_objects();
  const size_t k = backend->num_centroids();
  std::vector<size_t> counts(k, 0);
  for (int cluster : *assignment) {
    if (cluster >= 0) ++counts[cluster];
  }
  bool revived = false;
  for (size_t cluster = 0; cluster < k; ++cluster) {
    if (counts[cluster] != 0) continue;
    // Farthest object from its own centroid, among clusters that can spare
    // a member.
    double worst = -1.0;
    size_t victim = 0;
    for (size_t object = 0; object < n; ++object) {
      const int home = (*assignment)[object];
      if (home < 0 || counts[home] <= 1) continue;
      const double d = backend->Distance(object, static_cast<size_t>(home));
      if (d > worst) {
        worst = d;
        victim = object;
      }
    }
    if (worst < 0.0) break;  // nothing can be moved
    --counts[(*assignment)[victim]];
    (*assignment)[victim] = static_cast<int>(cluster);
    ++counts[cluster];
    backend->ResetCentroidToObject(cluster, victim);
    revived = true;
  }
  return revived;
}

}  // namespace

util::Result<KMeansResult> RunKMeans(ClusteringBackend* backend,
                                     const KMeansOptions& options) {
  TABSKETCH_CHECK(backend != nullptr);
  const size_t n = backend->num_objects();
  if (options.k == 0 || options.k > n) {
    std::ostringstream msg;
    msg << "k = " << options.k << " must be in [1, " << n << "]";
    return util::Status::InvalidArgument(msg.str());
  }

  util::WallTimer timer;
  const size_t evals_before = backend->distance_evaluations();

  std::vector<size_t> seeds;
  if (options.seeding == SeedingMethod::kPlusPlus) {
    seeds = KMeansPlusPlusIndices(backend, options.k, options.seed);
  } else {
    seeds = RandomDistinctIndices(n, options.k, options.seed);
  }
  backend->InitCentroidsFromObjects(seeds);

  KMeansResult result;
  result.assignment.assign(n, -1);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const size_t changed = AssignAll(backend, &result.assignment);
    const bool revived = ReviveEmptyClusters(backend, &result.assignment);
    if (changed == 0 && !revived) {
      result.converged = true;
      break;
    }
    backend->UpdateCentroids(result.assignment);
  }

  // Final objective for restart selection, on the final centroids.
  double objective = 0.0;
  for (size_t object = 0; object < n; ++object) {
    objective += backend->Distance(
        object, static_cast<size_t>(result.assignment[object]));
  }
  result.objective = objective;

  result.seconds = timer.ElapsedSeconds();
  result.distance_evaluations =
      backend->distance_evaluations() - evals_before;
  return result;
}

util::Result<KMeansResult> RunKMeansBestOfRestarts(
    ClusteringBackend* backend, const KMeansOptions& options,
    size_t restarts) {
  if (restarts == 0) {
    return util::Status::InvalidArgument("restarts must be >= 1");
  }
  KMeansResult best;
  size_t total_evals = 0;
  bool have_best = false;
  for (size_t attempt = 0; attempt < restarts; ++attempt) {
    KMeansOptions run_options = options;
    run_options.seed = rng::MixSeeds(options.seed, attempt);
    TABSKETCH_ASSIGN_OR_RETURN(KMeansResult result,
                               RunKMeans(backend, run_options));
    total_evals += result.distance_evaluations;
    if (!have_best || result.objective < best.objective) {
      best = std::move(result);
      have_best = true;
    }
  }
  best.distance_evaluations = total_evals;
  return best;
}

}  // namespace tabsketch::cluster
