#include "cluster/kmeans.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>

#include "cluster/seeding.h"
#include "rng/splitmix64.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace tabsketch::cluster {
namespace {

/// Assigns every object to its nearest centroid, fanning objects over
/// `threads` workers (each object's scan is independent, so the result is
/// bit-identical for any thread count); returns how many assignments
/// changed. NaN distances are treated as +infinity: a NaN never wins the
/// argmin, and an object whose every distance is NaN stays at -1
/// (unassigned) rather than poisoning the assignment — downstream passes
/// guard against -1.
size_t AssignAll(ClusteringBackend* backend, size_t threads,
                 std::vector<int>* assignment) {
  const size_t n = backend->num_objects();
  std::atomic<size_t> changed{0};
  util::ParallelFor(n, threads, [&](size_t object) {
    // The backend owns the centroid scan (ClusteringBackend::NearestCentroid
    // documents the NaN-as-+inf / lowest-index-tie contract), so backends
    // with a quantized lower-bound tier can prune without changing any
    // assignment.
    const int best = backend->NearestCentroid(object);
    if ((*assignment)[object] != best) {
      (*assignment)[object] = best;
      changed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return changed.load();
}

/// Revives clusters with no members by moving their centroid onto the object
/// farthest from its current centroid; returns true if anything changed.
bool ReviveEmptyClusters(ClusteringBackend* backend,
                         std::vector<int>* assignment) {
  const size_t n = backend->num_objects();
  const size_t k = backend->num_centroids();
  std::vector<size_t> counts(k, 0);
  for (int cluster : *assignment) {
    if (cluster >= 0) ++counts[cluster];
  }
  bool revived = false;
  for (size_t cluster = 0; cluster < k; ++cluster) {
    if (counts[cluster] != 0) continue;
    // Farthest object from its own centroid, among clusters that can spare
    // a member.
    double worst = -1.0;
    size_t victim = 0;
    for (size_t object = 0; object < n; ++object) {
      const int home = (*assignment)[object];
      if (home < 0 || counts[home] <= 1) continue;
      const double d = backend->Distance(object, static_cast<size_t>(home));
      if (d > worst) {
        worst = d;
        victim = object;
      }
    }
    if (worst < 0.0) break;  // nothing can be moved
    --counts[(*assignment)[victim]];
    (*assignment)[victim] = static_cast<int>(cluster);
    ++counts[cluster];
    backend->ResetCentroidToObject(cluster, victim);
    revived = true;
  }
  return revived;
}

}  // namespace

util::Result<KMeansResult> RunKMeans(ClusteringBackend* backend,
                                     const KMeansOptions& options) {
  TABSKETCH_CHECK(backend != nullptr);
  const size_t n = backend->num_objects();
  if (options.k == 0 || options.k > n) {
    std::ostringstream msg;
    msg << "k = " << options.k << " must be in [1, " << n << "]";
    return util::Status::InvalidArgument(msg.str());
  }

  util::WallTimer timer;
  const size_t evals_before = backend->distance_evaluations();

  std::vector<size_t> seeds;
  if (options.seeding == SeedingMethod::kPlusPlus) {
    seeds = KMeansPlusPlusIndices(backend, options.k, options.seed);
  } else {
    seeds = RandomDistinctIndices(n, options.k, options.seed);
  }
  backend->InitCentroidsFromObjects(seeds);

  KMeansResult result;
  result.assignment.assign(n, -1);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    size_t changed;
    {
      TABSKETCH_TRACE_SPAN("cluster.assign");
      changed = AssignAll(backend, options.threads, &result.assignment);
    }
    TABSKETCH_TRACE_INSTANT("cluster.kmeans.changed", changed);
    const bool revived = ReviveEmptyClusters(backend, &result.assignment);
    if (changed == 0 && !revived) {
      result.converged = true;
      break;
    }
    TABSKETCH_TRACE_SPAN("cluster.update");
    backend->UpdateCentroids(result.assignment);
  }

  // Final objective for restart selection, on the final centroids. The
  // distances are gathered in parallel but summed sequentially so the
  // floating-point result does not depend on the thread count. Objects left
  // unassigned (every distance NaN) are skipped rather than indexed with
  // assignment -1, which used to cast to SIZE_MAX and read out of bounds.
  std::vector<double> per_object(n, 0.0);
  util::ParallelFor(n, options.threads, [&](size_t object) {
    const int cluster = result.assignment[object];
    if (cluster < 0) return;
    per_object[object] =
        backend->Distance(object, static_cast<size_t>(cluster));
  });
  double objective = 0.0;
  for (double d : per_object) {
    if (!std::isnan(d)) objective += d;
  }
  result.objective = objective;

  result.seconds = timer.ElapsedSeconds();
  result.distance_evaluations =
      backend->distance_evaluations() - evals_before;
  TABSKETCH_METRIC_GAUGE_SET("cluster.kmeans.iterations", result.iterations);
  TABSKETCH_METRIC_GAUGE_SET("cluster.kmeans.converged",
                             result.converged ? 1 : 0);
  RecordDistanceEvaluations(*backend, result.distance_evaluations);
  return result;
}

util::Result<KMeansResult> RunKMeansBestOfRestarts(
    ClusteringBackend* backend, const KMeansOptions& options,
    size_t restarts) {
  if (restarts == 0) {
    return util::Status::InvalidArgument("restarts must be >= 1");
  }
  KMeansResult best;
  size_t total_evals = 0;
  bool have_best = false;
  for (size_t attempt = 0; attempt < restarts; ++attempt) {
    KMeansOptions run_options = options;
    run_options.seed = rng::MixSeeds(options.seed, attempt);
    TABSKETCH_ASSIGN_OR_RETURN(KMeansResult result,
                               RunKMeans(backend, run_options));
    total_evals += result.distance_evaluations;
    if (!have_best || result.objective < best.objective) {
      best = std::move(result);
      have_best = true;
    }
  }
  best.distance_evaluations = total_evals;
  return best;
}

}  // namespace tabsketch::cluster
