#ifndef TABSKETCH_CLUSTER_KMEDOIDS_H_
#define TABSKETCH_CLUSTER_KMEDOIDS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/backend.h"
#include "util/result.h"

namespace tabsketch::cluster {

struct KMedoidsOptions {
  size_t k = 8;
  size_t max_iterations = 30;
  uint64_t seed = 1;
};

struct KMedoidsResult {
  /// Object indices of the final medoids (size k).
  std::vector<size_t> medoids;
  /// Cluster id in [0, k) per object.
  std::vector<int> assignment;
  size_t iterations = 0;
  bool converged = false;
  double seconds = 0.0;
  /// Sum over objects of the backend distance to their medoid.
  double objective = 0.0;
  size_t distance_evaluations = 0;
};

/// Voronoi-iteration k-medoids (the PAM relaxation used by CLARANS-family
/// algorithms the paper cites): alternate (1) assign each object to its
/// nearest medoid, (2) re-center each cluster on the member minimizing the
/// within-cluster distance sum.
///
/// Unlike k-means this needs only object-object distances — no centroids in
/// data space — so it runs unmodified on exact or sketched backends via
/// ObjectDistance, and medoids are always real tiles (often preferable for
/// reporting "representative" regions). Step (2) is O(sum |C|^2) distance
/// evaluations per iteration, which is exactly where O(k)-per-comparison
/// sketches pay off most.
util::Result<KMedoidsResult> RunKMedoids(ClusteringBackend* backend,
                                         const KMedoidsOptions& options);

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_KMEDOIDS_H_
