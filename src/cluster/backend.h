#ifndef TABSKETCH_CLUSTER_BACKEND_H_
#define TABSKETCH_CLUSTER_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace tabsketch::cluster {

/// The distance-computation strategy plugged into k-means. The paper's
/// experimental design holds the clustering loop fixed and swaps only "the
/// routines to calculate the distance between tiles" (Section 4.4); this
/// interface is that swap point. Implementations:
///   - ExactBackend:   exact Lp distances over full tiles (scenario 3),
///   - SketchBackend:  sketch-estimated distances, with sketches either
///                     precomputed (scenario 1) or computed on demand and
///                     cached (scenario 2).
///
/// Objects are the tiles of a grid, identified by index. Centroids live in
/// whatever space the backend uses (data space for exact, sketch space for
/// sketches — sketch linearity makes the mean of member sketches exactly the
/// sketch of the mean tile).
///
/// Thread-safety contract (what the parallel k-means assignment loop relies
/// on): between centroid mutations, Distance() and ObjectDistance() must be
/// safe to call concurrently from multiple threads. Centroid-mutating calls
/// (InitCentroidsFromObjects, UpdateCentroids, ResetCentroidToObject) require
/// exclusive access — the clustering loops alternate a concurrent assignment
/// phase with a sequential update phase, never overlapping the two. Every
/// in-tree backend satisfies this: exact and precomputed-sketch distances are
/// read-only, and the on-demand sketch cache fills its slots under per-slot
/// std::once_flag.
class ClusteringBackend {
 public:
  virtual ~ClusteringBackend() = default;

  /// Number of objects being clustered.
  virtual size_t num_objects() const = 0;

  /// Replaces all centroids with copies of the given objects.
  virtual void InitCentroidsFromObjects(
      const std::vector<size_t>& object_indices) = 0;

  /// Number of centroids currently held.
  virtual size_t num_centroids() const = 0;

  /// Distance (exact or estimated) from object to centroid. Non-const
  /// because on-demand backends may lazily sketch the object.
  virtual double Distance(size_t object, size_t centroid) = 0;

  /// Distance between two objects (used by k-means++ seeding).
  virtual double ObjectDistance(size_t a, size_t b) = 0;

  /// Index of the centroid nearest to `object`, or -1 when every distance is
  /// NaN (the k-means assignment step). The default scans all centroids with
  /// Distance(), skipping NaNs, ties broken by lowest centroid index.
  /// Backends with a cheap lower-bound tier (SketchBackend's quantized
  /// codes) override this to prune centroids that provably cannot win —
  /// overrides must return exactly what the default scan would, so
  /// clustering output never depends on the backend's pruning. Same
  /// thread-safety contract as Distance(): safe to call concurrently
  /// between centroid mutations.
  virtual int NearestCentroid(size_t object);

  /// Recomputes every centroid as the mean of its assigned objects.
  /// `assignment[i]` in [0, k) or -1 for unassigned; clusters with no
  /// members keep their previous centroid.
  virtual void UpdateCentroids(const std::vector<int>& assignment) = 0;

  /// Resets the centroid of cluster `centroid` to a copy of `object` (used
  /// to revive empty clusters).
  virtual void ResetCentroidToObject(size_t centroid, size_t object) = 0;

  /// Human-readable backend name for reports.
  virtual std::string name() const = 0;

  /// Total Distance()/ObjectDistance() evaluations so far; the comparison
  /// count whose unit cost the paper's approach shrinks.
  size_t distance_evaluations() const {
    return distance_evaluations_.load(std::memory_order_relaxed);
  }

 protected:
  // Atomic so concurrent Distance() calls can tally without a data race;
  // backends increment with ++distance_evaluations_. Atomics are neither
  // copyable nor movable, so the value is carried across copies/moves by
  // hand (backends are moved out of util::Result on construction).
  ClusteringBackend() = default;
  ClusteringBackend(const ClusteringBackend& other)
      : distance_evaluations_(other.distance_evaluations()) {}
  ClusteringBackend(ClusteringBackend&& other) noexcept
      : distance_evaluations_(other.distance_evaluations()) {}
  ClusteringBackend& operator=(const ClusteringBackend& other) {
    distance_evaluations_.store(other.distance_evaluations(),
                                std::memory_order_relaxed);
    return *this;
  }
  ClusteringBackend& operator=(ClusteringBackend&& other) noexcept {
    distance_evaluations_.store(other.distance_evaluations(),
                                std::memory_order_relaxed);
    return *this;
  }

  std::atomic<size_t> distance_evaluations_{0};
};

/// Adds `delta` distance evaluations to the global metrics registry, split
/// into cluster.distance_evals.exact vs .sketch by the backend's name().
/// No-op while metrics are disabled; called once per clustering run with the
/// run's evaluation delta, so it is never on a hot path.
void RecordDistanceEvaluations(const ClusteringBackend& backend, size_t delta);

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_BACKEND_H_
