#ifndef TABSKETCH_CLUSTER_HIERARCHY_H_
#define TABSKETCH_CLUSTER_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "cluster/backend.h"
#include "util/result.h"

namespace tabsketch::cluster {

/// How the distance between two clusters is derived from member distances.
enum class Linkage {
  kSingle,    // min over cross pairs
  kComplete,  // max over cross pairs
  kAverage,   // unweighted mean over cross pairs (UPGMA)
};

/// One agglomeration step: clusters `left` and `right` merge into a new
/// cluster with id `n + step` (leaves are 0..n-1, as in scipy/R dendrogram
/// conventions).
struct Merge {
  size_t left;
  size_t right;
  double distance;
};

/// The full agglomeration history over n objects (n - 1 merges).
struct Dendrogram {
  size_t num_objects = 0;
  std::vector<Merge> merges;

  /// Flat clustering with exactly `k` clusters: the state after n - k
  /// merges, with cluster ids relabeled to [0, k) in order of first member.
  /// Requires 1 <= k <= num_objects.
  util::Result<std::vector<int>> CutAtK(size_t k) const;
};

/// Agglomerative hierarchical clustering over the objects of `backend`,
/// starting from the full pairwise distance matrix (obtained once via
/// ObjectDistance — n(n-1)/2 evaluations, which is where sketches'
/// O(k)-per-comparison matters most) and merging via Lance-Williams
/// updates. O(n^2) memory, O(n^3) worst-case time; fine for the tile counts
/// the experiments use.
util::Result<Dendrogram> AgglomerativeCluster(ClusteringBackend* backend,
                                              Linkage linkage);

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_HIERARCHY_H_
