#ifndef TABSKETCH_CLUSTER_SEEDING_H_
#define TABSKETCH_CLUSTER_SEEDING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/backend.h"

namespace tabsketch::cluster {

/// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
/// Requires k <= n.
std::vector<size_t> RandomDistinctIndices(size_t n, size_t k, uint64_t seed);

/// k-means++ seeding: the first center is uniform, each next center is drawn
/// with probability proportional to D(x)^2, the squared distance to the
/// nearest already-chosen center (distances supplied by the backend, so
/// seeding is sketch-accelerated too). Requires k <= num_objects.
std::vector<size_t> KMeansPlusPlusIndices(ClusteringBackend* backend,
                                          size_t k, uint64_t seed);

}  // namespace tabsketch::cluster

#endif  // TABSKETCH_CLUSTER_SEEDING_H_
