#include "data/ip_traffic.h"

#include <cmath>
#include <numbers>

#include "rng/distributions.h"
#include "rng/xoshiro256.h"
#include "util/logging.h"

namespace tabsketch::data {

util::Status IpTrafficOptions::Validate() const {
  if (num_hosts == 0 || num_bins == 0) {
    return util::Status::InvalidArgument(
        "hosts and bins must be positive");
  }
  if (hosts_per_subnet == 0 || hosts_per_subnet > num_hosts) {
    return util::Status::InvalidArgument(
        "hosts_per_subnet must be in [1, num_hosts]");
  }
  if (pareto_alpha <= 0.0) {
    return util::Status::InvalidArgument("pareto_alpha must be positive");
  }
  if (flash_events < 0.0 || noise_sigma < 0.0) {
    return util::Status::InvalidArgument(
        "flash_events and noise_sigma must be >= 0");
  }
  return util::Status::OK();
}

util::Result<IpTrafficData> GenerateIpTraffic(
    const IpTrafficOptions& options) {
  TABSKETCH_RETURN_IF_ERROR(options.Validate());
  rng::Xoshiro256 gen(options.seed);
  rng::GaussianSampler gaussian;

  IpTrafficData data;
  data.table = table::Matrix(options.num_hosts, options.num_bins);
  data.subnet_of_host.resize(options.num_hosts);

  const size_t num_subnets =
      (options.num_hosts + options.hosts_per_subnet - 1) /
      options.hosts_per_subnet;
  data.profile_of_subnet.resize(num_subnets);

  // Per-subnet behavior: profile class, phase, and a subnet-level rate
  // multiplier (subnets share fate — that is what makes them clusterable).
  std::vector<double> subnet_rate(num_subnets);
  std::vector<double> subnet_phase(num_subnets);
  for (size_t s = 0; s < num_subnets; ++s) {
    const double u = gen.NextDouble();
    data.profile_of_subnet[s] = u < 0.4   ? SubnetProfile::kSteady
                                : u < 0.8 ? SubnetProfile::kDiurnal
                                          : SubnetProfile::kBursty;
    subnet_rate[s] = 0.5 + 2.0 * gen.NextDouble();
    // Phases are class-coherent: diurnal traffic follows the shared day
    // (small jitter), bursty traffic models synchronized batch jobs. This
    // is what makes behavior classes discoverable by shape clustering.
    subnet_phase[s] = 0.08 * gen.NextDouble();
  }

  // Flash events: (subnet, start bin, duration, magnitude).
  struct Flash {
    size_t subnet, start, duration;
    double magnitude;
  };
  std::vector<Flash> flashes;
  const size_t flash_count = static_cast<size_t>(options.flash_events);
  for (size_t f = 0; f < flash_count; ++f) {
    flashes.push_back(Flash{
        gen.NextBounded(num_subnets), gen.NextBounded(options.num_bins),
        1 + gen.NextBounded(options.num_bins / 24 + 1),
        5.0 + 20.0 * gen.NextDouble()});
  }

  for (size_t host = 0; host < options.num_hosts; ++host) {
    const size_t subnet = host / options.hosts_per_subnet;
    data.subnet_of_host[host] = static_cast<int>(subnet);

    // Pareto(alpha) base rate: x = x_min * u^(-1/alpha).
    const double base_rate =
        100.0 * std::pow(gen.NextDoubleOpen(), -1.0 / options.pareto_alpha) *
        subnet_rate[subnet];

    auto row = data.table.Row(host);
    for (size_t bin = 0; bin < options.num_bins; ++bin) {
      const double t =
          static_cast<double>(bin) / static_cast<double>(options.num_bins);
      double shape = 1.0;
      switch (data.profile_of_subnet[subnet]) {
        case SubnetProfile::kSteady:
          shape = 1.0;
          break;
        case SubnetProfile::kDiurnal:
          shape = 0.55 + 0.45 * std::sin(2.0 * std::numbers::pi *
                                         (t + subnet_phase[subnet]));
          break;
        case SubnetProfile::kBursty: {
          // Square-wave bursts with subnet-specific phase.
          const double cycle =
              std::fmod(t * 8.0 + subnet_phase[subnet], 1.0);
          shape = cycle < 0.25 ? 2.5 : 0.3;
          break;
        }
      }
      double value = base_rate * shape;
      for (const Flash& flash : flashes) {
        if (flash.subnet == subnet && bin >= flash.start &&
            bin < flash.start + flash.duration) {
          value *= flash.magnitude;
        }
      }
      if (options.noise_sigma > 0.0) {
        value *= std::exp(options.noise_sigma * gaussian.Sample(gen));
      }
      row[bin] = value;
    }
  }
  return data;
}

}  // namespace tabsketch::data
