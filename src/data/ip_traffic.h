#ifndef TABSKETCH_DATA_IP_TRAFFIC_H_
#define TABSKETCH_DATA_IP_TRAFFIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::data {

/// Synthetic router traffic table — the paper's second motivating
/// application: "a table indexed by destination IP host and discretized
/// time representing the number of bytes of data forwarded at a router".
///
/// Structural features (what distance-based mining finds in such data):
///   - heavy-tailed per-destination base rates (a few hosts dominate,
///     Pareto-distributed), grouped into /24-like subnets whose hosts share
///     behavior — the "which IP subnet traffic distributions are similar"
///     question;
///   - per-subnet temporal profiles: steady, diurnal, or bursty;
///   - occasional flash events: short multiplicative spikes on one subnet
///     (the outliers that make fractional p attractive here too);
///   - multiplicative log-normal noise.
struct IpTrafficOptions {
  /// Destination hosts (rows), grouped into consecutive subnets.
  size_t num_hosts = 1024;
  size_t hosts_per_subnet = 32;
  /// Time bins (columns).
  size_t num_bins = 288;
  /// Pareto tail index for per-host base rates (smaller = heavier tail).
  double pareto_alpha = 1.2;
  /// Expected number of flash events over the whole table.
  double flash_events = 8.0;
  /// Log-normal noise sigma.
  double noise_sigma = 0.3;
  uint64_t seed = 0x1b7aff1cULL;

  util::Status Validate() const;
};

/// Per-subnet temporal behavior classes.
enum class SubnetProfile { kSteady, kDiurnal, kBursty };

struct IpTrafficData {
  table::Matrix table;
  /// Subnet id of every host row.
  std::vector<int> subnet_of_host;
  /// Behavior class per subnet.
  std::vector<SubnetProfile> profile_of_subnet;
};

/// Generates the traffic table with ground-truth subnet structure.
util::Result<IpTrafficData> GenerateIpTraffic(const IpTrafficOptions& options);

}  // namespace tabsketch::data

#endif  // TABSKETCH_DATA_IP_TRAFFIC_H_
