#include "data/six_region.h"

#include <cmath>

#include "rng/xoshiro256.h"
#include "util/logging.h"

namespace tabsketch::data {

util::Status SixRegionOptions::Validate() const {
  if (rows < kNumRegions || cols == 0) {
    return util::Status::InvalidArgument(
        "table must have at least one row per region and a positive width");
  }
  if (outlier_fraction < 0.0 || outlier_fraction > 1.0) {
    return util::Status::InvalidArgument(
        "outlier_fraction must be in [0, 1]");
  }
  if (uniform_half_width < 0.0) {
    return util::Status::InvalidArgument("uniform_half_width must be >= 0");
  }
  return util::Status::OK();
}

util::Result<SixRegionData> GenerateSixRegion(
    const SixRegionOptions& options) {
  TABSKETCH_RETURN_IF_ERROR(options.Validate());
  rng::Xoshiro256 gen(options.seed);

  SixRegionData data;
  data.table = table::Matrix(options.rows, options.cols);
  data.region_of_row.assign(options.rows, 0);

  // Band boundaries by cumulative fraction; the last band absorbs rounding.
  std::array<size_t, kNumRegions + 1> band_start{};
  double cumulative = 0.0;
  for (size_t region = 0; region < kNumRegions; ++region) {
    band_start[region] =
        static_cast<size_t>(std::llround(cumulative *
                                         static_cast<double>(options.rows)));
    cumulative += kRegionFractions[region];
  }
  band_start[kNumRegions] = options.rows;

  for (size_t region = 0; region < kNumRegions; ++region) {
    const double mean = kRegionMeans[region];
    for (size_t r = band_start[region]; r < band_start[region + 1]; ++r) {
      data.region_of_row[r] = static_cast<int>(region);
      auto row = data.table.Row(r);
      for (double& value : row) {
        value = mean + options.uniform_half_width *
                           (2.0 * gen.NextDouble() - 1.0);
      }
    }
  }

  // Outlier injection: plausible but extreme values. High outliers land in
  // [60k, 90k] (2-3x every band mean — a believable burst of call volume);
  // low ones in [50, 800] (a near-outage, far below every band but
  // positive). Their squared magnitudes dwarf the 4k inter-band separation,
  // which is exactly what defeats L2 in the paper's Figure 4(b).
  if (options.outlier_fraction > 0.0) {
    for (double& value : data.table.Values()) {
      if (gen.NextDouble() >= options.outlier_fraction) continue;
      if (gen.NextDouble() < 0.5) {
        value = 60000.0 + 30000.0 * gen.NextDouble();
      } else {
        value = 50.0 + 750.0 * gen.NextDouble();
      }
    }
  }
  return data;
}

std::vector<int> GroundTruthForTiles(const SixRegionData& data,
                                     const table::TileGrid& grid) {
  std::vector<int> truth(grid.num_tiles());
  for (size_t tile = 0; tile < grid.num_tiles(); ++tile) {
    const size_t center_row =
        grid.TileOriginRow(tile) + grid.tile_rows() / 2;
    TABSKETCH_CHECK(center_row < data.region_of_row.size());
    truth[tile] = data.region_of_row[center_row];
  }
  return truth;
}

}  // namespace tabsketch::data
