#ifndef TABSKETCH_DATA_SIX_REGION_H_
#define TABSKETCH_DATA_SIX_REGION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "table/matrix.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::data {

/// The paper's synthetic dataset with a known ground-truth clustering
/// (Section 4.2): the table is split into six horizontal bands covering
/// fractions 1/4, 1/4, 1/4, 1/8, 1/16, 1/16 of the rows. Each band is filled
/// from a uniform distribution with a band-specific mean in [10,000, 30,000];
/// about `outlier_fraction` of all values are then replaced by "relatively
/// large or small values that are still plausible" (so a pre-filter would not
/// remove them).
///
/// Under any sensible clustering, tiles from the same band belong together —
/// unless outliers dominate the distance, which is exactly what large p makes
/// happen (Figure 4(b)).
struct SixRegionOptions {
  size_t rows = 512;
  size_t cols = 1024;
  /// Fraction of values turned into outliers (paper: ~1%).
  double outlier_fraction = 0.01;
  /// Half-width of each band's uniform distribution around its mean.
  double uniform_half_width = 1000.0;
  uint64_t seed = 0x51bce6e9ULL;

  util::Status Validate() const;
};

/// Number of bands (fixed by the paper's construction).
inline constexpr size_t kNumRegions = 6;
/// Row fractions of the six bands.
inline constexpr std::array<double, kNumRegions> kRegionFractions = {
    0.25, 0.25, 0.25, 0.125, 0.0625, 0.0625};
/// Band means, distinct and spread over the paper's 10k-30k range.
inline constexpr std::array<double, kNumRegions> kRegionMeans = {
    10000.0, 14000.0, 18000.0, 22000.0, 26000.0, 30000.0};

struct SixRegionData {
  table::Matrix table;
  /// Ground-truth region id of every row.
  std::vector<int> region_of_row;
};

/// Generates the table and its ground truth.
util::Result<SixRegionData> GenerateSixRegion(const SixRegionOptions& options);

/// Ground-truth region of each tile of `grid` over a six-region table: the
/// region of the tile's center row. With tile heights that divide the band
/// heights every row of a tile is in the same region anyway.
std::vector<int> GroundTruthForTiles(const SixRegionData& data,
                                     const table::TileGrid& grid);

}  // namespace tabsketch::data

#endif  // TABSKETCH_DATA_SIX_REGION_H_
