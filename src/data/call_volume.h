#ifndef TABSKETCH_DATA_CALL_VOLUME_H_
#define TABSKETCH_DATA_CALL_VOLUME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::data {

/// Parameters of the synthetic national call-volume table.
///
/// This generator stands in for the proprietary AT&T dataset (paper
/// Section 4.2: ~20,000 collection stations ordered by zip code on the
/// y-axis, 10-minute call-volume bins over a day on the x-axis). It
/// reproduces the structural features the paper's experiments detect:
///   - spatially coherent population zones (metro cores with dense traffic,
///     flanked by suburbs, over a rural background) — the "clusters of
///     darker colors flanked by lighter colors" of Figure 5;
///   - a strong diurnal curve: negligible volume before ~6am, a business-
///     hours plateau, gradual decay toward midnight;
///   - a mixture of business-like (9am-6pm) and residential-like (9am-9pm)
///     daily profiles per station;
///   - a 3-hour East-to-West phase shift across the station axis (the
///     coast-to-coast time-zone effect the paper observes);
///   - multiplicative log-normal noise.
struct CallVolumeOptions {
  /// Stations, ordered geographically East (row 0) to West (last row).
  size_t num_stations = 1024;
  /// Bins per day; 144 = 10-minute bins as in the paper.
  size_t bins_per_day = 144;
  /// Days of data; columns are day-major (day 0's bins, then day 1's, ...),
  /// the paper's "stitching consecutive days".
  size_t num_days = 1;
  /// Metro cores placed along the station axis.
  size_t num_metros = 8;
  /// Westward diurnal phase shift across the whole axis, in hours.
  double coast_shift_hours = 3.0;
  /// Standard deviation of the log-normal noise (0 disables noise).
  double noise_sigma = 0.15;
  /// Base call volume of a rural station at peak, in calls per bin.
  double rural_peak = 40.0;
  /// Peak multiplier at the center of a metro core.
  double metro_boost = 60.0;
  uint64_t seed = 0xca11f01dULL;

  util::Status Validate() const;
};

/// Generates the table: num_stations rows x (bins_per_day * num_days) cols.
util::Result<table::Matrix> GenerateCallVolume(const CallVolumeOptions& options);

/// Concatenates matrices along the time (column) axis; all inputs must have
/// the same number of rows. Used to stitch independently generated days into
/// the multi-day datasets of the clustering experiments.
util::Result<table::Matrix> StitchColumns(
    std::span<const table::Matrix> pieces);

}  // namespace tabsketch::data

#endif  // TABSKETCH_DATA_CALL_VOLUME_H_
