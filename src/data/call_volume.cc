#include "data/call_volume.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "rng/distributions.h"
#include "rng/splitmix64.h"
#include "rng/xoshiro256.h"
#include "util/logging.h"

namespace tabsketch::data {
namespace {

/// Smooth bump rising from 0 at `start` to 1 at `start + ramp` and falling
/// back to 0 between `end - ramp` and `end` (hours on a 24h clock, no wrap).
double Plateau(double hour, double start, double end, double ramp) {
  if (hour <= start || hour >= end) return 0.0;
  if (hour < start + ramp) {
    const double t = (hour - start) / ramp;
    return 0.5 - 0.5 * std::cos(std::numbers::pi * t);
  }
  if (hour > end - ramp) {
    const double t = (end - hour) / ramp;
    return 0.5 - 0.5 * std::cos(std::numbers::pi * t);
  }
  return 1.0;
}

/// Business profile: sharp 9am-6pm plateau.
double BusinessProfile(double hour) { return Plateau(hour, 8.0, 18.5, 1.5); }

/// Residential profile: wider 8am-9pm activity with a gentle evening decay
/// toward midnight.
double ResidentialProfile(double hour) {
  const double day = Plateau(hour, 7.0, 21.5, 2.5);
  const double evening = 0.35 * Plateau(hour, 18.0, 24.0, 2.0);
  return std::min(1.0, day + evening);
}

}  // namespace

util::Status CallVolumeOptions::Validate() const {
  if (num_stations == 0 || bins_per_day == 0 || num_days == 0) {
    return util::Status::InvalidArgument(
        "stations, bins_per_day and num_days must be positive");
  }
  if (noise_sigma < 0.0) {
    return util::Status::InvalidArgument("noise_sigma must be >= 0");
  }
  if (coast_shift_hours < 0.0 || coast_shift_hours >= 24.0) {
    return util::Status::InvalidArgument(
        "coast_shift_hours must be in [0, 24)");
  }
  return util::Status::OK();
}

util::Result<table::Matrix> GenerateCallVolume(
    const CallVolumeOptions& options) {
  TABSKETCH_RETURN_IF_ERROR(options.Validate());
  rng::Xoshiro256 gen(options.seed);
  rng::GaussianSampler gaussian;

  const size_t stations = options.num_stations;

  // Per-station population weight: rural background plus Gaussian-profile
  // metro cores at random positions along the axis. Width varies per metro.
  std::vector<double> population(stations, 1.0);
  for (size_t m = 0; m < options.num_metros; ++m) {
    const double center =
        gen.NextDouble() * static_cast<double>(stations);
    const double width =
        (0.6 + 1.8 * gen.NextDouble()) * static_cast<double>(stations) /
        (8.0 * static_cast<double>(std::max<size_t>(options.num_metros, 1)));
    const double boost = options.metro_boost * (0.5 + gen.NextDouble());
    for (size_t s = 0; s < stations; ++s) {
      const double d = (static_cast<double>(s) - center) / width;
      population[s] += boost * std::exp(-0.5 * d * d);
    }
  }

  // Per-station business/residential mix: metro cores skew business-heavy,
  // with per-station jitter.
  std::vector<double> business_fraction(stations);
  for (size_t s = 0; s < stations; ++s) {
    const double urbanness =
        std::min(1.0, (population[s] - 1.0) / options.metro_boost);
    double mix = 0.25 + 0.55 * urbanness + 0.15 * gaussian.Sample(gen);
    business_fraction[s] = std::clamp(mix, 0.0, 1.0);
  }

  // Per-station time-zone shift: East at row 0, West at the last row.
  std::vector<double> shift_hours(stations);
  for (size_t s = 0; s < stations; ++s) {
    const double west_fraction =
        stations == 1 ? 0.0
                      : static_cast<double>(s) /
                            static_cast<double>(stations - 1);
    // Quantize to whole hours: time zones, not a continuous gradient.
    shift_hours[s] =
        std::floor(west_fraction * options.coast_shift_hours + 0.5);
  }

  const size_t total_bins = options.bins_per_day * options.num_days;
  table::Matrix out(stations, total_bins);
  const double bins_per_hour =
      static_cast<double>(options.bins_per_day) / 24.0;

  for (size_t s = 0; s < stations; ++s) {
    auto row = out.Row(s);
    // Day-to-day per-station level wobble, drawn once per day.
    for (size_t day = 0; day < options.num_days; ++day) {
      const double day_level =
          1.0 + 0.1 * gaussian.Sample(gen);
      for (size_t bin = 0; bin < options.bins_per_day; ++bin) {
        const double local_hour =
            static_cast<double>(bin) / bins_per_hour - shift_hours[s];
        const double hour = local_hour < 0.0 ? local_hour + 24.0 : local_hour;
        const double shape =
            business_fraction[s] * BusinessProfile(hour) +
            (1.0 - business_fraction[s]) * ResidentialProfile(hour);
        double value =
            options.rural_peak * population[s] * shape * day_level;
        // Small additive floor so off-hours are low but not identically 0.
        value += 0.02 * options.rural_peak * population[s];
        if (options.noise_sigma > 0.0) {
          value *= std::exp(options.noise_sigma * gaussian.Sample(gen));
        }
        row[day * options.bins_per_day + bin] = value;
      }
    }
  }
  return out;
}

util::Result<table::Matrix> StitchColumns(
    std::span<const table::Matrix> pieces) {
  if (pieces.empty()) {
    return util::Status::InvalidArgument("nothing to stitch");
  }
  const size_t rows = pieces.front().rows();
  size_t total_cols = 0;
  for (const auto& piece : pieces) {
    if (piece.rows() != rows) {
      return util::Status::InvalidArgument(
          "all stitched pieces must have the same number of rows");
    }
    total_cols += piece.cols();
  }
  table::Matrix out(rows, total_cols);
  size_t col_offset = 0;
  for (const auto& piece : pieces) {
    for (size_t r = 0; r < rows; ++r) {
      auto src = piece.Row(r);
      std::copy(src.begin(), src.end(),
                out.Row(r).begin() + static_cast<std::ptrdiff_t>(col_offset));
    }
    col_offset += piece.cols();
  }
  return out;
}

}  // namespace tabsketch::data
