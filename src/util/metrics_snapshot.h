#ifndef TABSKETCH_UTIL_METRICS_SNAPSHOT_H_
#define TABSKETCH_UTIL_METRICS_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>

#include "util/metrics.h"

namespace tabsketch::util {

/// Point-in-time copy of one histogram: the raw log2 buckets plus the
/// count/sum/min/max scalars. Values are read with relaxed loads, so the
/// copy is "consistent enough" for reporting (a concurrent Observe() may be
/// half-visible) but never torn within a field.
struct HistogramSnapshot {
  std::array<uint64_t, Histogram::kBuckets> buckets{};
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// True when min/max were captured from a live histogram (count > 0 at
  /// capture time); false for diffed interval histograms, whose extremes are
  /// unknowable from buckets alone.
  bool has_extremes = false;

  /// Approximate q-quantile over the snapshot's buckets, resolved to the
  /// containing bucket's upper edge (clamped to [min, max] when extremes
  /// were captured — same contract as Histogram::Percentile). 0 when empty.
  double Percentile(double q) const;

  /// Total observations according to the buckets themselves. Preferred over
  /// `count` for cumulative-bucket math (Prometheus `_bucket` lines): the
  /// count scalar and the bucket array are captured at slightly different
  /// instants under concurrent mutation.
  uint64_t BucketTotal() const;
};

/// A cheap consistent read of a whole MetricsRegistry: every counter, gauge
/// and histogram by name, stamped with a monotonic capture time. Snapshots
/// of the same registry can be diffed for windowed rates (Diff below) and
/// rendered as a Prometheus exposition (WritePrometheusText).
struct MetricsSnapshot {
  /// Monotonic capture time (steady-clock seconds; comparable only to other
  /// wall_seconds values in this process).
  double wall_seconds = 0.0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value lookups that treat missing names as empty metrics, so callers
  /// can read documented keys without carrying registration state around.
  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// Captures a snapshot of `registry`. Safe to call from any thread at any
/// time: the registry mutex is held only to walk the name maps; metric
/// values are relaxed-atomic reads that never block mutators.
MetricsSnapshot CaptureSnapshot(const MetricsRegistry& registry);

/// The window between two snapshots of the same registry: counter deltas
/// and interval histograms (bucket-wise subtraction), from which windowed
/// rates and interval percentiles fall out. `prev` must be the older
/// snapshot; concurrent-mutation skew that would make a monotonic counter
/// appear to decrease is clamped to 0.
struct MetricsDelta {
  double seconds = 0.0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t counter(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
  /// counter(name) / seconds; 0 when the window is empty or instantaneous.
  double Rate(const std::string& name) const;
};

MetricsDelta Diff(const MetricsSnapshot& prev, const MetricsSnapshot& cur);

/// Renders `snapshot` in the Prometheus text exposition format v0.0.4:
/// every name is prefixed `tabsketch_` and sanitized ([^a-zA-Z0-9_] -> '_'),
/// counters and gauges are one sample each, histograms expand to cumulative
/// `_bucket{le="..."}` samples on the log2 bucket edges (empty buckets are
/// skipped; `+Inf` always present) plus `_sum` and `_count`. A final
/// `# EOF` comment line marks the end so line-protocol clients know the
/// multi-line response is complete (see docs/FORMATS.md).
void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os);

/// The `le` label text used for bucket `i` in the exposition (also the
/// boundary table documented in docs/FORMATS.md).
std::string PrometheusBucketEdge(size_t i);

/// Background rolling-snapshot thread for the serve daemon: every
/// `interval_seconds` it captures the registry into a bounded ring (newest
/// last) and, when `metrics_json_path` is set, atomically rewrites that file
/// (temp + rename) so a crash or SIGKILL never loses more than one interval
/// of metrics. One snapshot is taken synchronously at construction, so a
/// baseline for "since the last window" rates always exists.
class MetricsTicker {
 public:
  struct Options {
    double interval_seconds = 1.0;
    size_t ring_capacity = 8;
    /// When non-empty, rewritten atomically on every tick.
    std::string metrics_json_path;
    /// Defaults to MetricsRegistry::Global() when null.
    MetricsRegistry* registry = nullptr;
  };

  explicit MetricsTicker(const Options& options);
  ~MetricsTicker();
  MetricsTicker(const MetricsTicker&) = delete;
  MetricsTicker& operator=(const MetricsTicker&) = delete;

  /// Stops the thread (idempotent; also run by the destructor). A final
  /// tick runs before the thread exits so the metrics file is fresh.
  void Stop();

  /// Ticks completed so far (including the constructor's baseline tick).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// The newest ring snapshot.
  std::optional<MetricsSnapshot> Latest() const;

  /// The baseline to diff a fresh capture against for "last window" rates:
  /// the newest ring snapshot at least half an interval older than
  /// `now_wall_seconds` (so the window is never degenerately short), else
  /// the oldest ring entry.
  std::optional<MetricsSnapshot> WindowBaseline(double now_wall_seconds)
      const;

 private:
  void Run();
  void TickOnce();

  const Options options_;
  MetricsRegistry* const registry_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;             // guarded by mutex_
  std::deque<MetricsSnapshot> ring_;  // guarded by mutex_, newest last
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
};

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_METRICS_SNAPSHOT_H_
