#ifndef TABSKETCH_UTIL_TIMER_H_
#define TABSKETCH_UTIL_TIMER_H_

#include <chrono>

namespace tabsketch::util {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_TIMER_H_
