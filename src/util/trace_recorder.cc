#include "util/trace_recorder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/metrics.h"

namespace tabsketch::util {

namespace {

/// Process-wide recording-generation counter. Generations must be unique
/// across *instances*, not just within one: the thread-local ring cache is
/// keyed on (owner pointer, generation), and a test's stack-allocated
/// recorder can be destroyed and a new one constructed at the same address —
/// per-instance numbering would let the stale cache entry match and dangle.
std::atomic<uint64_t> next_generation{0};

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CopyName(const char* name, char (&dst)[TraceRecorder::kMaxNameLength + 1]) {
  size_t i = 0;
  for (; i < TraceRecorder::kMaxNameLength && name[i] != '\0'; ++i) {
    dst[i] = name[i];
  }
  dst[i] = '\0';
}

void WriteJsonEscaped(std::ostream& os, const char* text) {
  os << '"';
  for (const char* c = text; *c != '\0'; ++c) {
    switch (*c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(*c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", *c);
          os << buf;
        } else {
          os << *c;
        }
    }
  }
  os << '"';
}

/// Microseconds with ns resolution — the trace-event format's `ts`/`dur`
/// unit is µs, but fractional values are allowed and Perfetto honors them.
void WriteMicros(std::ostream& os, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder = new TraceRecorder();  // leaked, like
  // MetricsRegistry::Global(): cached thread-local ring pointers must never
  // dangle during static destruction.
  return *recorder;
}

void TraceRecorder::Start(size_t capacity_per_thread) {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  capacity_ = std::max(capacity_per_thread, kMinCapacity);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  generation_.store(next_generation.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  started_.store(true, std::memory_order_release);
  if (this == &Global()) MetricsRegistry::SetTraceActive(true);
}

void TraceRecorder::Stop() {
  uint64_t lost = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_.load(std::memory_order_relaxed)) return;
    started_.store(false, std::memory_order_release);
    if (this == &Global()) MetricsRegistry::SetTraceActive(false);
    for (const auto& ring : rings_) {
      const uint64_t written = ring->next.load(std::memory_order_acquire);
      if (written > ring->events.size()) lost += written - ring->events.size();
    }
  }
  // Mirror the loss into the metrics registry (outside our lock) so a
  // combined --trace-json/--metrics-json run reports it in both artifacts.
  if (lost > 0 && MetricsRegistry::Enabled()) {
    MetricsRegistry::Global().GetCounter("trace.dropped")->Increment(lost);
  }
}

uint64_t TraceRecorder::NowNs() const {
  const int64_t delta =
      SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
  return delta > 0 ? static_cast<uint64_t>(delta) : 0;
}

TraceRecorder::ThreadRing* TraceRecorder::RingForThisThread() {
  struct Cached {
    const TraceRecorder* owner = nullptr;
    uint64_t generation = 0;
    ThreadRing* ring = nullptr;
  };
  static thread_local Cached cached;
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  if (cached.owner == this && cached.generation == generation) {
    return cached.ring;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!started_.load(std::memory_order_relaxed)) return nullptr;
  auto ring = std::make_unique<ThreadRing>();
  ring->tid = static_cast<uint32_t>(rings_.size() + 1);
  ring->events.resize(capacity_);
  ThreadRing* raw = ring.get();
  rings_.push_back(std::move(ring));
  cached = {this, generation_.load(std::memory_order_relaxed), raw};
  return raw;
}

void TraceRecorder::RecordComplete(const char* name, uint64_t ts_ns,
                                   uint64_t dur_ns) {
  if (!started_.load(std::memory_order_acquire)) return;
  ThreadRing* ring = RingForThisThread();
  if (ring == nullptr) return;
  const uint64_t index = ring->next.load(std::memory_order_relaxed);
  Event& event = ring->events[index % ring->events.size()];
  CopyName(name, event.name);
  event.phase = 'X';
  event.has_arg = false;
  event.arg = 0.0;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  ring->next.store(index + 1, std::memory_order_release);
}

void TraceRecorder::RecordInstant(const char* name, bool has_value,
                                  double value) {
  if (!started_.load(std::memory_order_acquire)) return;
  ThreadRing* ring = RingForThisThread();
  if (ring == nullptr) return;
  const uint64_t index = ring->next.load(std::memory_order_relaxed);
  Event& event = ring->events[index % ring->events.size()];
  CopyName(name, event.name);
  event.phase = 'i';
  event.has_arg = has_value;
  event.arg = value;
  event.ts_ns = NowNs();
  event.dur_ns = 0;
  ring->next.store(index + 1, std::memory_order_release);
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t lost = 0;
  for (const auto& ring : rings_) {
    const uint64_t written = ring->next.load(std::memory_order_acquire);
    if (written > ring->events.size()) lost += written - ring->events.size();
  }
  return lost;
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t kept = 0;
  for (const auto& ring : rings_) {
    kept += std::min<uint64_t>(ring->next.load(std::memory_order_acquire),
                               ring->events.size());
  }
  return kept;
}

std::vector<std::pair<uint32_t, TraceRecorder::Event>> TraceRecorder::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<uint32_t, Event>> out;
  for (const auto& ring : rings_) {
    const uint64_t written = ring->next.load(std::memory_order_acquire);
    const uint64_t capacity = ring->events.size();
    const uint64_t first = written > capacity ? written - capacity : 0;
    for (uint64_t i = first; i < written; ++i) {
      out.emplace_back(ring->tid, ring->events[i % capacity]);
    }
  }
  return out;
}

void TraceRecorder::WriteChromeJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t lost = 0;
  for (const auto& ring : rings_) {
    const uint64_t written = ring->next.load(std::memory_order_acquire);
    if (written > ring->events.size()) lost += written - ring->events.size();
  }

  os << "{\n  \"schema\": \"tabsketch-trace-v1\",\n"
     << "  \"displayTimeUnit\": \"ms\",\n"
     << "  \"dropped\": " << lost << ",\n"
     << "  \"traceEvents\": [";
  bool first = true;
  const auto separator = [&os, &first]() {
    os << (first ? "\n    " : ",\n    ");
    first = false;
  };

  separator();
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"tabsketch\"}}";
  for (const auto& ring : rings_) {
    separator();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << ring->tid << ", \"args\": {\"name\": \"worker-" << ring->tid
       << "\"}}";
  }

  for (const auto& ring : rings_) {
    const uint64_t written = ring->next.load(std::memory_order_acquire);
    const uint64_t capacity = ring->events.size();
    const uint64_t begin = written > capacity ? written - capacity : 0;
    for (uint64_t i = begin; i < written; ++i) {
      const Event& event = ring->events[i % capacity];
      separator();
      os << "{\"name\": ";
      WriteJsonEscaped(os, event.name);
      os << ", \"cat\": \"tabsketch\", \"ph\": \"" << event.phase
         << "\", \"pid\": 1, \"tid\": " << ring->tid << ", \"ts\": ";
      WriteMicros(os, event.ts_ns);
      if (event.phase == 'X') {
        os << ", \"dur\": ";
        WriteMicros(os, event.dur_ns);
      } else {
        os << ", \"s\": \"t\"";  // thread-scoped instant
      }
      if (event.has_arg) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g",
                      std::isfinite(event.arg) ? event.arg : 0.0);
        os << ", \"args\": {\"value\": " << buf << "}";
      }
      os << "}";
    }
  }
  os << (first ? "]\n" : "\n  ]\n") << "}\n";
}

Status TraceRecorder::WriteChromeJsonFile(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  WriteChromeJson(os);
  os.flush();
  if (!os) {
    return Status::IOError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace tabsketch::util
