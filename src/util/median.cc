#include "util/median.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tabsketch::util {

double MedianInPlace(std::span<double> values) {
  TABSKETCH_CHECK(!values.empty()) << "median of empty range";
  const size_t n = values.size();
  const size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (n % 2 == 1) return upper;
  // Even length: the lower middle element is the max of the left partition.
  const double lower = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double Median(std::span<const double> values) {
  std::vector<double> scratch(values.begin(), values.end());
  return MedianInPlace(scratch);
}

double MedianAbsDifference(std::span<const double> a,
                           std::span<const double> b,
                           std::vector<double>* scratch) {
  TABSKETCH_CHECK(a.size() == b.size()) << "size mismatch in sketch compare";
  TABSKETCH_CHECK(!a.empty()) << "empty sketches";
  scratch->resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    (*scratch)[i] = std::fabs(a[i] - b[i]);
  }
  return MedianInPlace(*scratch);
}

}  // namespace tabsketch::util
