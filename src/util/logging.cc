#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tabsketch::util {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel MinLogLevel() { return g_min_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace tabsketch::util
