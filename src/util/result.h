#ifndef TABSKETCH_UTIL_RESULT_H_
#define TABSKETCH_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace tabsketch::util {

/// Value-or-error wrapper, modeled on absl::StatusOr / arrow::Result.
///
/// A `Result<T>` holds either a `T` (success) or a non-OK `Status`. Accessing
/// the value of an errored result aborts with a diagnostic, so callers must
/// check `ok()` (or use `ValueOrDie()` only where failure is a programming
/// error).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT: implicit by design
      : state_(std::move(status)) {
    TABSKETCH_CHECK(!std::get<Status>(state_).ok())
        << "Result constructed from OK status without a value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns the error status, or OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Returns the held value; aborts if this result is an error.
  const T& value() const& {
    CheckOk();
    return std::get<T>(state_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(state_);
  }
  T&& value() && {
    CheckOk();
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    TABSKETCH_CHECK(ok()) << "Accessing value of errored Result: "
                          << std::get<Status>(state_).ToString();
  }

  std::variant<T, Status> state_;
};

}  // namespace tabsketch::util

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define TABSKETCH_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  TABSKETCH_ASSIGN_OR_RETURN_IMPL_(                             \
      TABSKETCH_CONCAT_(_tabsketch_result, __LINE__), lhs, rexpr)

#define TABSKETCH_CONCAT_INNER_(a, b) a##b
#define TABSKETCH_CONCAT_(a, b) TABSKETCH_CONCAT_INNER_(a, b)
#define TABSKETCH_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                     \
  if (!result.ok()) return result.status();                  \
  lhs = std::move(result).value()

#endif  // TABSKETCH_UTIL_RESULT_H_
