#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace tabsketch::util {

size_t DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& body) {
  TABSKETCH_CHECK(body != nullptr);
  if (count == 0) return;
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  // An exception escaping a worker would call std::terminate; capture the
  // first one and rethrow it on the calling thread after the join instead.
  std::exception_ptr first_error;
  std::atomic<bool> have_error{false};
  std::mutex error_mutex;
  // Contiguous chunks: iteration i belongs to thread i * threads / count's
  // inverse mapping; compute explicit [begin, end) per worker instead.
  const size_t base = count / threads;
  const size_t remainder = count % threads;
  size_t begin = 0;
  for (size_t worker = 0; worker < threads; ++worker) {
    const size_t size = base + (worker < remainder ? 1 : 0);
    const size_t end = begin + size;
    workers.emplace_back(
        [begin, end, &body, &first_error, &have_error, &error_mutex] {
          try {
            for (size_t i = begin; i < end; ++i) {
              if (have_error.load(std::memory_order_relaxed)) return;
              body(i);
            }
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!have_error.load(std::memory_order_relaxed)) {
              first_error = std::current_exception();
              have_error.store(true, std::memory_order_relaxed);
            }
          }
        });
    begin = end;
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tabsketch::util
