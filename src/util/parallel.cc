#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace tabsketch::util {

size_t DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& body) {
  TABSKETCH_CHECK(body != nullptr);
  if (count == 0) return;
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  // Contiguous chunks: iteration i belongs to thread i * threads / count's
  // inverse mapping; compute explicit [begin, end) per worker instead.
  const size_t base = count / threads;
  const size_t remainder = count % threads;
  size_t begin = 0;
  for (size_t worker = 0; worker < threads; ++worker) {
    const size_t size = base + (worker < remainder ? 1 : 0);
    const size_t end = begin + size;
    workers.emplace_back([begin, end, &body] {
      for (size_t i = begin; i < end; ++i) body(i);
    });
    begin = end;
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace tabsketch::util
