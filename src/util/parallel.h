#ifndef TABSKETCH_UTIL_PARALLEL_H_
#define TABSKETCH_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace tabsketch::util {

/// Number of hardware threads (>= 1).
size_t DefaultThreadCount();

/// Runs body(i) for every i in [0, count), distributing contiguous chunks
/// over `threads` worker threads and blocking until all complete. With
/// threads <= 1 (or count small) everything runs inline on the caller's
/// thread. `body` must be safe to invoke concurrently for distinct i.
///
/// If a body invocation throws, the first exception (by completion order) is
/// captured and rethrown on the calling thread after every worker has
/// joined; remaining iterations may be skipped. Which iterations ran besides
/// the throwing one is unspecified.
///
/// Sketch construction is embarrassingly parallel across tiles and across
/// the k random matrices; this is the minimal primitive those loops need.
void ParallelFor(size_t count, size_t threads,
                 const std::function<void(size_t)>& body);

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_PARALLEL_H_
