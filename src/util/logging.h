#ifndef TABSKETCH_UTIL_LOGGING_H_
#define TABSKETCH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tabsketch::util {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is emitted to stderr. Defaults to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

/// Stream-style message collector; emits on destruction. A kFatal message
/// aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards all streamed values; used when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace tabsketch::util

#define TABSKETCH_LOG(level)                                      \
  ::tabsketch::util::internal_logging::LogMessage(                \
      ::tabsketch::util::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a diagnostic when `condition` is false. Active in all build
/// modes: these guard internal invariants whose violation would otherwise
/// silently corrupt results.
#define TABSKETCH_CHECK(condition)                                      \
  (condition) ? static_cast<void>(0)                                    \
              : ::tabsketch::util::internal_logging::Voidify() &        \
                    TABSKETCH_LOG(Fatal) << "Check failed: " #condition \
                                         << " "

#define TABSKETCH_DCHECK(condition) TABSKETCH_CHECK(condition)

namespace tabsketch::util::internal_logging {

/// Helper that gives TABSKETCH_CHECK a common void type on both branches of
/// its ternary while keeping `<<` chaining on the failure branch.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace tabsketch::util::internal_logging

#endif  // TABSKETCH_UTIL_LOGGING_H_
