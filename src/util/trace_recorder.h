#ifndef TABSKETCH_UTIL_TRACE_RECORDER_H_
#define TABSKETCH_UTIL_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tabsketch::util {

/// Flight recorder: per-thread fixed-capacity ring buffers of timestamped
/// events, exported as Chrome trace-event JSON ("tabsketch-trace-v1") that
/// loads directly in Perfetto / chrome://tracing.
///
/// Design constraints (see DESIGN.md §10):
///  - Recording is wait-free for the owning thread: each thread writes only
///    its own ring (one relaxed index load, one slot write, one release index
///    store). Ring creation — once per thread per recording — takes a mutex.
///  - Memory is bounded up front: `capacity` events per thread, never grown.
///    When a ring wraps, the oldest events are overwritten; the loss is
///    counted (dropped()), mirrored into the "trace.dropped" metrics counter
///    at Stop(), and stamped into the exported JSON — never silent.
///  - Spans are exported as 'X' (complete) events rather than B/E pairs so a
///    wrapped ring can never orphan half of a pair.
///
/// The global instance (Global()) is fed by ScopedSpan /
/// TABSKETCH_TRACE_SPAN / TABSKETCH_TRACE_INSTANT whenever
/// MetricsRegistry::TraceActive() is set; Start()/Stop() on the global
/// instance toggle that bit. Independent instances can be constructed for
/// tests; their Record*() methods work the same but nothing routes macro
/// traffic to them.
///
/// Thread contract: Start() and Stop() must not race with Record*() calls on
/// the same instance — callers start recording before spawning workers and
/// stop after joining them (the CLI and bench flows do exactly this; a late
/// Record*() after Stop() is tolerated and ignored, it just must not overlap
/// the Stop() itself).
class TraceRecorder {
 public:
  /// Hard floor on ring capacity; tiny rings make drop accounting
  /// meaningless.
  static constexpr size_t kMinCapacity = 4;
  /// Default events per thread (64 Ki events ≈ 5 MiB/thread).
  static constexpr size_t kDefaultCapacity = 1u << 16;
  static constexpr size_t kMaxNameLength = 47;

  /// One recorded event. `name` is a truncating copy (kMaxNameLength chars),
  /// so events never own heap memory and ring slots can be overwritten
  /// without destructor traffic.
  struct Event {
    char name[kMaxNameLength + 1];
    char phase;        // 'X' (complete) or 'i' (instant)
    bool has_arg;
    double arg;        // instant-event counter payload when has_arg
    uint64_t ts_ns;    // monotonic, relative to Start()
    uint64_t dur_ns;   // complete events only
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder behind --trace-json and the span macros.
  static TraceRecorder& Global();

  /// Begins a recording: clears all rings from any previous recording, resets
  /// the time origin, and (for the global instance) raises
  /// MetricsRegistry::kTraceBit so span macros start emitting.
  void Start(size_t capacity_per_thread = kDefaultCapacity);

  /// Ends the recording (idempotent). For the global instance this clears the
  /// trace bit and, when metrics are enabled, adds this recording's drop
  /// count to the "trace.dropped" counter so it lands in --metrics-json.
  void Stop();

  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Nanoseconds since Start() on the monotonic clock.
  uint64_t NowNs() const;

  /// Records a completed span: [ts_ns, ts_ns + dur_ns). No-op when stopped.
  void RecordComplete(const char* name, uint64_t ts_ns, uint64_t dur_ns);

  /// Records an instant event at NowNs(), optionally carrying a counter
  /// value. No-op when stopped.
  void RecordInstant(const char* name, bool has_value = false,
                     double value = 0.0);

  /// Events lost to ring wraparound across all threads.
  uint64_t dropped() const;
  /// Events currently retained across all threads.
  uint64_t recorded() const;

  /// Retained events oldest-first per thread, paired with the thread's
  /// 1-based tid (assigned in ring-creation order). Test/export helper; call
  /// only when no thread is concurrently recording.
  std::vector<std::pair<uint32_t, Event>> Snapshot() const;

  /// Writes the "tabsketch-trace-v1" document (docs/FORMATS.md): a Chrome
  /// trace-event JSON object with top-level "schema", "displayTimeUnit",
  /// "dropped" and "traceEvents" keys. Safe to call after Stop().
  void WriteChromeJson(std::ostream& os) const;
  Status WriteChromeJsonFile(const std::string& path) const;

 private:
  struct ThreadRing {
    uint32_t tid = 0;
    std::vector<Event> events;
    /// Total events ever written this recording; slot = next % capacity.
    /// Release store pairs with the exporter's acquire read.
    std::atomic<uint64_t> next{0};
  };

  ThreadRing* RingForThisThread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  size_t capacity_ = kDefaultCapacity;
  /// Set by Start() from a process-wide counter so threads' cached ring
  /// pointers from any previous recording — on this instance or another one
  /// reusing the same address — are invalidated.
  std::atomic<uint64_t> generation_{0};
  std::atomic<bool> started_{false};
  /// steady_clock time-since-epoch at Start(), in ns (atomic so hot-path
  /// NowNs() reads race-free with a later Start()).
  std::atomic<int64_t> epoch_ns_{0};
};

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_TRACE_RECORDER_H_
