#ifndef TABSKETCH_UTIL_MEDIAN_H_
#define TABSKETCH_UTIL_MEDIAN_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tabsketch::util {

/// Returns the median of `values`, destroying their order (the span is
/// partially sorted in place). For even-length input, returns the mean of the
/// two middle elements. `values` must be non-empty.
///
/// Uses nth_element selection: O(n) expected time. The sketch distance
/// estimator calls this in its inner loop, so no allocation happens here.
double MedianInPlace(std::span<double> values);

/// Returns the median of `values` without modifying them (copies into an
/// internal scratch vector). `values` must be non-empty.
double Median(std::span<const double> values);

/// Returns the median of |a[i] - b[i]| over i, using `scratch` as workspace
/// (resized as needed). `a` and `b` must be the same non-zero length. This is
/// the kernel of the p-stable sketch distance estimator.
double MedianAbsDifference(std::span<const double> a,
                           std::span<const double> b,
                           std::vector<double>* scratch);

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_MEDIAN_H_
