#ifndef TABSKETCH_UTIL_ATOMIC_FILE_H_
#define TABSKETCH_UTIL_ATOMIC_FILE_H_

#include <string>

#include "util/status.h"

namespace tabsketch::util {

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// `path + ".tmp"` first and are renamed into place only on success, so a
/// crash mid-write can never leave a truncated file at `path` — readers see
/// either the previous complete file or the new complete file. This is the
/// shared form of the temp-and-rename discipline the on-disk writers
/// (pools, sketch sets, code pools) follow; periodic writers (the serve
/// daemon's metrics ticker, --port-file) route through here.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_ATOMIC_FILE_H_
