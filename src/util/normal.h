#ifndef TABSKETCH_UTIL_NORMAL_H_
#define TABSKETCH_UTIL_NORMAL_H_

namespace tabsketch::util {

/// Inverse standard normal CDF (the probit function) via Acklam's rational
/// approximation: relative error below 1.2e-9 over (0, 1), far tighter than
/// any statistical use here requires. `q` must be in (0, 1).
double InverseNormalCdf(double q);

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_NORMAL_H_
