#include "util/atomic_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace tabsketch::util {

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open for writing: " + tmp_path);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IOError("write failed: " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path +
                           ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace tabsketch::util
