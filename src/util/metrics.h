#ifndef TABSKETCH_UTIL_METRICS_H_
#define TABSKETCH_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

/// Compile-time switch for the whole observability layer. Defaults to on;
/// building with -DTABSKETCH_METRICS_ENABLED=0 (CMake option
/// TABSKETCH_METRICS=OFF) compiles every TABSKETCH_METRIC_* macro and every
/// trace span to nothing, so instrumented hot paths carry zero cost.
#ifndef TABSKETCH_METRICS_ENABLED
#define TABSKETCH_METRICS_ENABLED 1
#endif

namespace tabsketch::util {

/// Monotonically increasing event count. All operations are relaxed atomics:
/// counters are tallies, not synchronization points, so concurrent
/// Increment() calls from the parallel k-means assignment loop never race and
/// never order other memory.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (iteration counts, sizes, 0/1 switches).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  /// Raises the gauge to `value` if it is larger than the current value
  /// (running-maximum semantics, e.g. worst observed audit error).
  void Max(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe log-bucketed histogram for positive values (durations in
/// seconds, mostly). Exact count/sum/min/max; percentiles are approximate,
/// resolved to the upper edge of the containing power-of-two bucket (factor-2
/// resolution, which is plenty for "where did the time go").
///
/// Buckets: bucket 0 holds values < kBucketBase (1 ns); bucket i holds
/// [kBucketBase * 2^(i-1), kBucketBase * 2^i); the last bucket holds the
/// overflow. Every member is a relaxed atomic, so concurrent Observe() calls
/// are race-free and reads give a consistent-enough snapshot for reporting.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;
  static constexpr double kBucketBase = 1e-9;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double min() const;
  double max() const;
  /// Approximate q-quantile (q in [0, 1]); 0 when empty.
  double Percentile(double q) const;

  /// Observations in bucket `i` (i < kBuckets). The snapshot layer
  /// (util/metrics_snapshot.h) reads buckets to build windowed percentiles
  /// and Prometheus cumulative `_bucket` series.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper edge of bucket `i`: kBucketBase * 2^i for i >= 1,
  /// kBucketBase for bucket 0. Bucket i holds (BucketUpperEdge(i-1),
  /// BucketUpperEdge(i)], which is exactly Prometheus `le` semantics.
  static double BucketUpperEdge(size_t i);

  void Reset();

 private:
  static size_t BucketFor(double value);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Named registry of counters, gauges and histograms. One process-wide
/// singleton (Global()) backs the TABSKETCH_METRIC_* macros and the CLI's
/// --metrics-json dump; independent instances can be constructed for tests.
///
/// Metric objects are created on first lookup and never destroyed or moved
/// for the registry's lifetime, so call sites may cache the returned pointers
/// (the macros do, in a function-local static) and increment them lock-free.
/// ResetValues() zeroes every metric in place without invalidating pointers.
///
/// The runtime enable flag gates the hot paths: when disabled (the default),
/// every macro reduces to one relaxed atomic load and instrumented code is
/// numerically bit-identical to uninstrumented code (instrumentation only
/// ever reads clocks and bumps tallies — it never touches data values).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the macros and the CLI.
  static MetricsRegistry& Global();

  /// Bits of the combined observability gate. Metrics (counter/gauge/
  /// histogram macros) and the trace recorder are toggled independently, but
  /// both live in a single atomic word so an instrumented call site that
  /// feeds both (ScopedSpan) still pays exactly one relaxed load when
  /// everything is off.
  static constexpr uint32_t kMetricsBit = 1u << 0;
  static constexpr uint32_t kTraceBit = 1u << 1;

  /// The raw gate word; 0 means "all observability off".
  static uint32_t ObservabilityBits() {
#if TABSKETCH_METRICS_ENABLED
    return bits_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  /// Runtime on/off switch for the global registry's hot-path macros.
  static bool Enabled() { return (ObservabilityBits() & kMetricsBit) != 0; }
  static void SetEnabled(bool enabled) { SetBit(kMetricsBit, enabled); }

  /// Runtime switch for event emission into TraceRecorder::Global().
  /// Flipped by TraceRecorder::Start()/Stop(); call sites should not toggle
  /// it directly.
  static bool TraceActive() { return (ObservabilityBits() & kTraceBit) != 0; }
  static void SetTraceActive(bool active) { SetBit(kTraceBit, active); }

  /// Finds or creates the named metric. The returned pointer stays valid for
  /// the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every registered metric; registered names (and cached pointers)
  /// survive.
  void ResetValues();

  /// Calls `fn(name, metric)` for every registered metric of that family, in
  /// lexicographic name order, under the registry mutex. The callbacks must
  /// not call back into the registry (self-deadlock); reading metric values
  /// is safe — values are relaxed atomics and concurrent mutators never take
  /// the mutex. This is the read side the snapshot layer
  /// (util/metrics_snapshot.h) is built on.
  void VisitCounters(
      const std::function<void(const std::string&, const Counter&)>& fn)
      const;
  void VisitGauges(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void VisitHistograms(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// Writes the registry as the stable JSON document described in
  /// docs/FORMATS.md ("tabsketch-metrics-v1"): three sections (counters,
  /// gauges, histograms), keys sorted lexicographically within each.
  void WriteJson(std::ostream& os) const;

 private:
  static void SetBit(uint32_t bit, bool on) {
    if (on) {
      bits_.fetch_or(bit, std::memory_order_relaxed);
    } else {
      bits_.fetch_and(~bit, std::memory_order_relaxed);
    }
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  static std::atomic<uint32_t> bits_;
};

/// Registers every metric name documented in docs/FORMATS.md (values zero),
/// so a dump always carries the full documented key set even when a run
/// never touched some subsystem (e.g. `cluster` runs that never build a
/// pool still report span.pool.build.seconds with count 0).
void PreregisterCoreMetrics(MetricsRegistry* registry);

/// Dumps `registry` as JSON to `path` (see WriteJson).
Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path);

// The bench-binary setup/flush helpers (--metrics-json plus the PR 4
// --trace-json / --audit-rate flags) live in util/observability.h.

}  // namespace tabsketch::util

/// Hot-path instrumentation macros. Cost when the registry is disabled: one
/// relaxed atomic load. Cost when compiled out: nothing. `name` must be a
/// string constant (it seeds a function-local static pointer cache).
#if TABSKETCH_METRICS_ENABLED

#define TABSKETCH_METRIC_COUNT_N(name, n)                                 \
  do {                                                                    \
    if (::tabsketch::util::MetricsRegistry::Enabled()) {                  \
      static ::tabsketch::util::Counter* const _tabsketch_counter =       \
          ::tabsketch::util::MetricsRegistry::Global().GetCounter(name);  \
      _tabsketch_counter->Increment(                                      \
          static_cast<uint64_t>(n));                                      \
    }                                                                     \
  } while (false)

#define TABSKETCH_METRIC_GAUGE_SET(name, value)                           \
  do {                                                                    \
    if (::tabsketch::util::MetricsRegistry::Enabled()) {                  \
      static ::tabsketch::util::Gauge* const _tabsketch_gauge =           \
          ::tabsketch::util::MetricsRegistry::Global().GetGauge(name);    \
      _tabsketch_gauge->Set(static_cast<double>(value));                  \
    }                                                                     \
  } while (false)

#define TABSKETCH_METRIC_OBSERVE(name, value)                              \
  do {                                                                     \
    if (::tabsketch::util::MetricsRegistry::Enabled()) {                   \
      static ::tabsketch::util::Histogram* const _tabsketch_histogram =    \
          ::tabsketch::util::MetricsRegistry::Global().GetHistogram(name); \
      _tabsketch_histogram->Observe(static_cast<double>(value));           \
    }                                                                      \
  } while (false)

#define TABSKETCH_METRIC_GAUGE_ADD(name, delta)                            \
  do {                                                                     \
    if (::tabsketch::util::MetricsRegistry::Enabled()) {                   \
      static ::tabsketch::util::Gauge* const _tabsketch_gauge =            \
          ::tabsketch::util::MetricsRegistry::Global().GetGauge(name);     \
      _tabsketch_gauge->Add(static_cast<double>(delta));                   \
    }                                                                      \
  } while (false)

#else  // !TABSKETCH_METRICS_ENABLED

// The arguments are consumed in unevaluated sizeof contexts: no code is
// generated and no side effects run, but a variable used only inside a
// metric macro still counts as used (-Wunused-parameter stays quiet).
#define TABSKETCH_METRIC_COUNT_N(name, n) \
  do {                                    \
    (void)sizeof(name);                   \
    (void)sizeof(n);                      \
  } while (false)
#define TABSKETCH_METRIC_GAUGE_SET(name, value) \
  do {                                          \
    (void)sizeof(name);                         \
    (void)sizeof(value);                        \
  } while (false)
#define TABSKETCH_METRIC_OBSERVE(name, value) \
  do {                                        \
    (void)sizeof(name);                       \
    (void)sizeof(value);                      \
  } while (false)
#define TABSKETCH_METRIC_GAUGE_ADD(name, delta) \
  do {                                          \
    (void)sizeof(name);                         \
    (void)sizeof(delta);                        \
  } while (false)

#endif  // TABSKETCH_METRICS_ENABLED

#define TABSKETCH_METRIC_COUNT(name) TABSKETCH_METRIC_COUNT_N(name, 1)

#endif  // TABSKETCH_UTIL_METRICS_H_
