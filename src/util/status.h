#ifndef TABSKETCH_UTIL_STATUS_H_
#define TABSKETCH_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tabsketch::util {

/// Canonical error codes, modeled on the RocksDB/Arrow status idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kIOError = 5,
  kInternal = 6,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight success/error result carried across fallible public API
/// boundaries. The library never throws across its public API; operations
/// that can fail return a `Status` (or a `Result<T>`, see result.h).
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories below.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tabsketch::util

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define TABSKETCH_RETURN_IF_ERROR(expr)                    \
  do {                                                     \
    ::tabsketch::util::Status _tabsketch_status = (expr);  \
    if (!_tabsketch_status.ok()) return _tabsketch_status; \
  } while (false)

#endif  // TABSKETCH_UTIL_STATUS_H_
