#include "util/trace.h"

namespace tabsketch::util {

ScopedSpan::ScopedSpan(const std::string& name, MetricsRegistry* registry) {
  // An explicit registry records unconditionally — even in metrics-disabled
  // builds — so tests can exercise spans without the global flag.
  if (registry != nullptr) {
    seconds_ = registry->GetHistogram("span." + name + ".seconds");
  }
#if TABSKETCH_METRICS_ENABLED
  else if (MetricsRegistry::Enabled()) {
    seconds_ = MetricsRegistry::Global().GetHistogram("span." + name +
                                                      ".seconds");
  }
#endif
  if (seconds_ != nullptr) timer_.Restart();
}

double ScopedSpan::Stop() {
  if (seconds_ == nullptr) return 0.0;
  const double elapsed = timer_.ElapsedSeconds();
  seconds_->Observe(elapsed);
  seconds_ = nullptr;
  return elapsed;
}

}  // namespace tabsketch::util
