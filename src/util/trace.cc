#include "util/trace.h"

namespace tabsketch::util {

ScopedSpan::ScopedSpan(const std::string& name, MetricsRegistry* registry) {
  // An explicit registry records unconditionally — even in metrics-disabled
  // builds — so tests can exercise spans without the global flag.
  if (registry != nullptr) {
    seconds_ = registry->GetHistogram("span." + name + ".seconds");
    if (seconds_ != nullptr) timer_.Restart();
    return;
  }
#if TABSKETCH_METRICS_ENABLED
  const uint32_t bits = MetricsRegistry::ObservabilityBits();
  if (bits != 0) Open(name.c_str(), bits);
#endif
}

void ScopedSpan::Open(const char* name, uint32_t bits) {
#if TABSKETCH_METRICS_ENABLED
  if ((bits & MetricsRegistry::kMetricsBit) != 0) {
    seconds_ = MetricsRegistry::Global().GetHistogram(
        "span." + std::string(name) + ".seconds");
  }
  if ((bits & MetricsRegistry::kTraceBit) != 0) {
    size_t i = 0;
    for (; i < TraceRecorder::kMaxNameLength && name[i] != '\0'; ++i) {
      trace_name_[i] = name[i];
    }
    trace_name_[i] = '\0';
    trace_start_ns_ = TraceRecorder::Global().NowNs();
    tracing_ = true;
  }
  timer_.Restart();
#else
  (void)name;
  (void)bits;
#endif
}

double ScopedSpan::Stop() {
#if TABSKETCH_METRICS_ENABLED
  if (seconds_ == nullptr && !tracing_) return 0.0;
  const double elapsed = timer_.ElapsedSeconds();
  if (tracing_) {
    tracing_ = false;
    TraceRecorder::Global().RecordComplete(
        trace_name_, trace_start_ns_,
        static_cast<uint64_t>(elapsed * 1e9));
  }
#else
  if (seconds_ == nullptr) return 0.0;
  const double elapsed = timer_.ElapsedSeconds();
#endif
  if (seconds_ != nullptr) {
    seconds_->Observe(elapsed);
    seconds_ = nullptr;
  }
  return elapsed;
}

}  // namespace tabsketch::util
