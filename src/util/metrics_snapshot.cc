#include "util/metrics_snapshot.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace tabsketch::util {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// `tabsketch_` + name with every non-[a-zA-Z0-9_] byte replaced by '_'
/// (Prometheus metric-name charset; our dotted names become underscored).
std::string PrometheusName(const std::string& name) {
  std::string out = "tabsketch_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void WritePrometheusNumber(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
}

}  // namespace

uint64_t HistogramSnapshot::BucketTotal() const {
  uint64_t total = 0;
  for (const uint64_t b : buckets) total += b;
  return total;
}

double HistogramSnapshot::Percentile(double q) const {
  const uint64_t total = BucketTotal();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      std::min<uint64_t>(total, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank && cumulative > 0) {
      const double edge = Histogram::BucketUpperEdge(i);
      return has_extremes ? std::clamp(edge, min, max) : edge;
    }
  }
  return has_extremes ? max : Histogram::BucketUpperEdge(Histogram::kBuckets - 1);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

MetricsSnapshot CaptureSnapshot(const MetricsRegistry& registry) {
  MetricsSnapshot snapshot;
  snapshot.wall_seconds = MonotonicSeconds();
  registry.VisitCounters(
      [&snapshot](const std::string& name, const Counter& counter) {
        snapshot.counters.emplace(name, counter.value());
      });
  registry.VisitGauges(
      [&snapshot](const std::string& name, const Gauge& gauge) {
        snapshot.gauges.emplace(name, gauge.value());
      });
  registry.VisitHistograms(
      [&snapshot](const std::string& name, const Histogram& histogram) {
        HistogramSnapshot h;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          h.buckets[i] = histogram.bucket_count(i);
        }
        h.count = histogram.count();
        h.sum = histogram.sum();
        h.min = histogram.min();
        h.max = histogram.max();
        h.has_extremes = h.count > 0;
        snapshot.histograms.emplace(name, h);
      });
  return snapshot;
}

uint64_t MetricsDelta::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

const HistogramSnapshot* MetricsDelta::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

double MetricsDelta::Rate(const std::string& name) const {
  if (!(seconds > 0.0)) return 0.0;
  return static_cast<double>(counter(name)) / seconds;
}

MetricsDelta Diff(const MetricsSnapshot& prev, const MetricsSnapshot& cur) {
  MetricsDelta delta;
  delta.seconds = cur.wall_seconds - prev.wall_seconds;
  for (const auto& [name, value] : cur.counters) {
    const uint64_t before = prev.counter(name);
    delta.counters.emplace(name, value >= before ? value - before : 0);
  }
  for (const auto& [name, histogram] : cur.histograms) {
    HistogramSnapshot interval;
    const HistogramSnapshot* before = prev.histogram(name);
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t b = before == nullptr ? 0 : before->buckets[i];
      interval.buckets[i] =
          histogram.buckets[i] >= b ? histogram.buckets[i] - b : 0;
    }
    const uint64_t count_before = before == nullptr ? 0 : before->count;
    interval.count =
        histogram.count >= count_before ? histogram.count - count_before : 0;
    const double sum_before = before == nullptr ? 0.0 : before->sum;
    interval.sum = histogram.sum - sum_before;
    interval.has_extremes = false;  // interval extremes are unknowable
    delta.histograms.emplace(name, interval);
  }
  return delta;
}

std::string PrometheusBucketEdge(size_t i) {
  // %.9g: the edges are 1e-9 * 2^i, a factor of 2 apart, so 9 significant
  // digits are collision-free and stable across scrapes.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", Histogram::BucketUpperEdge(i));
  return buf;
}

void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " ";
    WritePrometheusNumber(os, value);
    os << "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    // Cumulative counts on the log2 edges. Bucket i holds observations in
    // (edge(i-1), edge(i)], which is exactly `le` semantics; empty buckets
    // are skipped (the cumulative value is unchanged there), +Inf always
    // closes the series. BucketTotal() backs both +Inf and _count so the
    // exposition is internally consistent even under concurrent Observe().
    const uint64_t total = histogram.BucketTotal();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram.buckets[i] == 0) continue;
      cumulative += histogram.buckets[i];
      os << prom << "_bucket{le=\"" << PrometheusBucketEdge(i) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << total << "\n";
    os << prom << "_sum ";
    WritePrometheusNumber(os, histogram.sum);
    os << "\n" << prom << "_count " << total << "\n";
  }
  os << "# EOF\n";
}

MetricsTicker::MetricsTicker(const Options& options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &MetricsRegistry::Global()) {
  TickOnce();  // baseline, so WindowBaseline() always has something to offer
  thread_ = std::thread(&MetricsTicker::Run, this);
}

MetricsTicker::~MetricsTicker() { Stop(); }

void MetricsTicker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  TickOnce();  // final tick: the metrics file reflects shutdown-time values
}

void MetricsTicker::Run() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds > 0.0 ? options_.interval_seconds : 1.0);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (wake_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    TickOnce();
    lock.lock();
  }
}

void MetricsTicker::TickOnce() {
  MetricsSnapshot snapshot = CaptureSnapshot(*registry_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(snapshot));
    const size_t capacity = options_.ring_capacity > 0 ? options_.ring_capacity : 1;
    while (ring_.size() > capacity) ring_.pop_front();
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  registry_->GetCounter("serve.ticker.ticks")->Increment();
  if (!options_.metrics_json_path.empty()) {
    // Best-effort: a transient IO failure (disk full) must not take the
    // ticker down; the next interval retries.
    const Status status =
        WriteMetricsJsonFile(*registry_, options_.metrics_json_path);
    (void)status;
  }
}

std::optional<MetricsSnapshot> MetricsTicker::Latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::optional<MetricsSnapshot> MetricsTicker::WindowBaseline(
    double now_wall_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  const double min_age = options_.interval_seconds * 0.5;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (now_wall_seconds - it->wall_seconds >= min_age) return *it;
  }
  return ring_.front();
}

}  // namespace tabsketch::util
