#include "util/observability.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "eval/audit.h"
#include "util/metrics.h"
#include "util/trace_recorder.h"

namespace tabsketch::util {

namespace {

/// If `arg` is "<prefix>VALUE", returns VALUE, else nullptr.
const char* MatchFlag(const char* arg, const char* prefix) {
  const size_t len = std::strlen(prefix);
  return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
}

}  // namespace

ObservabilityArgs EnableObservabilityFromArgs(int* argc, char** argv) {
  ObservabilityArgs args;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    if (const char* value = MatchFlag(argv[read], "--metrics-json=")) {
      args.metrics_path.assign(value);
      continue;
    }
    if (const char* value = MatchFlag(argv[read], "--trace-json=")) {
      args.trace_path.assign(value);
      continue;
    }
    if (const char* value = MatchFlag(argv[read], "--audit-rate=")) {
      char* end = nullptr;
      const double rate = std::strtod(value, &end);
      if (end == value || *end != '\0' || !(rate >= 0.0) || rate > 1.0) {
        std::fprintf(stderr,
                     "audit: --audit-rate must be in [0, 1], got \"%s\"; "
                     "auditing disabled\n",
                     value);
      } else {
        args.audit_rate = rate;
      }
      continue;
    }
    argv[write++] = argv[read];
  }
  *argc = write;
  SetupObservability(args);
  return args;
}

void SetupObservability(const ObservabilityArgs& args) {
  if (!args.metrics_path.empty()) {
    PreregisterCoreMetrics(&MetricsRegistry::Global());
    MetricsRegistry::Global().ResetValues();
    MetricsRegistry::SetEnabled(true);
  }
  if (args.audit_rate > 0.0) {
    eval::SketchAuditor::Global().Enable(args.audit_rate);
  }
  if (!args.trace_path.empty()) {
    TraceRecorder::Global().Start();
  }
}

bool FlushObservability(const ObservabilityArgs& args, std::ostream* out,
                        std::ostream* err) {
  std::ostream& sink = out != nullptr ? *out : std::cout;
  std::ostream& diag = err != nullptr ? *err : std::cerr;
  bool ok = true;
  // Order matters: stopping the recorder mirrors its drop count into the
  // "trace.dropped" counter, which must happen while metrics are still
  // enabled so the count appears in the metrics dump below.
  if (!args.trace_path.empty()) {
    TraceRecorder& recorder = TraceRecorder::Global();
    recorder.Stop();
    const Status status = recorder.WriteChromeJsonFile(args.trace_path);
    if (status.ok()) {
      sink << "trace written to " << args.trace_path << "\n";
    } else {
      diag << "error: " << status.ToString() << "\n";
      ok = false;
    }
  }
  if (args.audit_rate > 0.0) {
    eval::SketchAuditor::Global().Disable();
  }
  if (!args.metrics_path.empty()) {
    MetricsRegistry::SetEnabled(false);
    const Status status =
        WriteMetricsJsonFile(MetricsRegistry::Global(), args.metrics_path);
    if (status.ok()) {
      sink << "metrics written to " << args.metrics_path << "\n";
    } else {
      diag << "error: " << status.ToString() << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace tabsketch::util
