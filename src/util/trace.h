#ifndef TABSKETCH_UTIL_TRACE_H_
#define TABSKETCH_UTIL_TRACE_H_

#include <string>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace_recorder.h"

namespace tabsketch::util {

/// RAII wall-time span with two independent sinks sharing one gate word:
///  - metrics: elapsed seconds observed into the histogram
///    "span.<name>.seconds" (when MetricsRegistry::Enabled());
///  - flight recorder: a complete ('X') event emitted into
///    TraceRecorder::Global() (when MetricsRegistry::TraceActive()).
///
/// When both sinks are off at construction time, the constructor is a single
/// relaxed load of the combined gate plus a branch — cheap enough to leave in
/// hot paths unconditionally (and nothing at all when compiled out, via the
/// macro below). Dynamic names (e.g. per-canonical-size pool spans) are
/// supported because sinks are resolved once per span, not per call site.
class ScopedSpan {
 public:
  /// Literal-name fast path used by the macros: no std::string is
  /// constructed when the gate word is zero.
  explicit ScopedSpan(const char* name) {
#if TABSKETCH_METRICS_ENABLED
    const uint32_t bits = MetricsRegistry::ObservabilityBits();
    if (bits == 0) return;
    Open(name, bits);
#else
    (void)name;
#endif
  }

  /// `registry` defaults to the global registry; spans against an explicit
  /// registry record regardless of the global enable flag (useful in tests).
  explicit ScopedSpan(const std::string& name,
                      MetricsRegistry* registry = nullptr);
  ~ScopedSpan() { Stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now (idempotent). Returns the elapsed seconds recorded,
  /// or 0.0 when the span was disabled or already stopped.
  double Stop();

 private:
  /// Slow path: resolves the active sinks and snapshots the clock(s).
  void Open(const char* name, uint32_t bits);

  Histogram* seconds_ = nullptr;
  WallTimer timer_;
#if TABSKETCH_METRICS_ENABLED
  bool tracing_ = false;
  uint64_t trace_start_ns_ = 0;
  char trace_name_[TraceRecorder::kMaxNameLength + 1] = {0};
#endif
};

}  // namespace tabsketch::util

/// Statement macro: times the enclosing scope into "span.<name>.seconds" of
/// the global registry and/or the global flight recorder. `name` is any
/// string expression; evaluation is skipped entirely while both sinks are
/// disabled (literal names never even construct a std::string).
#define TABSKETCH_TRACE_CONCAT_INNER_(a, b) a##b
#define TABSKETCH_TRACE_CONCAT_(a, b) TABSKETCH_TRACE_CONCAT_INNER_(a, b)
#if TABSKETCH_METRICS_ENABLED
#define TABSKETCH_TRACE_SPAN(name)                                     \
  ::tabsketch::util::ScopedSpan TABSKETCH_TRACE_CONCAT_(               \
      _tabsketch_span_, __LINE__)(name)
/// Expression macro: drops a thread-scoped instant event carrying `value`
/// into the global flight recorder (e.g. per-iteration reassignment counts).
/// Cost when tracing is off: one relaxed load. `name` must be a string
/// constant.
#define TABSKETCH_TRACE_INSTANT(name, value)                           \
  do {                                                                 \
    if (::tabsketch::util::MetricsRegistry::TraceActive()) {           \
      ::tabsketch::util::TraceRecorder::Global().RecordInstant(        \
          name, /*has_value=*/true, static_cast<double>(value));       \
    }                                                                  \
  } while (false)
#else
// Compiles away entirely (the name/value expressions are never evaluated).
#define TABSKETCH_TRACE_SPAN(name) ((void)0)
#define TABSKETCH_TRACE_INSTANT(name, value) \
  do {                                       \
  } while (false)
#endif

#endif  // TABSKETCH_UTIL_TRACE_H_
