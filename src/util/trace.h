#ifndef TABSKETCH_UTIL_TRACE_H_
#define TABSKETCH_UTIL_TRACE_H_

#include <string>

#include "util/metrics.h"
#include "util/timer.h"

namespace tabsketch::util {

/// RAII wall-time span. Construction snapshots the clock; destruction (or an
/// explicit Stop()) observes the elapsed seconds into the histogram
/// "span.<name>.seconds" of the target registry.
///
/// When metrics are disabled at construction time the span holds a null
/// histogram and both the constructor and destructor are a relaxed load plus
/// a branch — cheap enough to leave in hot paths unconditionally. Dynamic
/// names (e.g. per-canonical-size pool spans) are supported because the
/// histogram is resolved once per span, not per call site.
class ScopedSpan {
 public:
  /// `registry` defaults to the global registry; spans against an explicit
  /// registry record regardless of the global enable flag (useful in tests).
  explicit ScopedSpan(const std::string& name,
                      MetricsRegistry* registry = nullptr);
  ~ScopedSpan() { Stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now (idempotent). Returns the elapsed seconds recorded,
  /// or 0.0 when the span was disabled or already stopped.
  double Stop();

 private:
  Histogram* seconds_ = nullptr;
  WallTimer timer_;
};

}  // namespace tabsketch::util

/// Statement macro: times the enclosing scope into "span.<name>.seconds" of
/// the global registry. `name` is any string expression; evaluation is
/// skipped entirely while metrics are disabled.
#define TABSKETCH_TRACE_CONCAT_INNER_(a, b) a##b
#define TABSKETCH_TRACE_CONCAT_(a, b) TABSKETCH_TRACE_CONCAT_INNER_(a, b)
#if TABSKETCH_METRICS_ENABLED
#define TABSKETCH_TRACE_SPAN(name)                                     \
  ::tabsketch::util::ScopedSpan TABSKETCH_TRACE_CONCAT_(               \
      _tabsketch_span_, __LINE__)(name)
#else
// Compiles away entirely (the name expression is never evaluated).
#define TABSKETCH_TRACE_SPAN(name) ((void)0)
#endif

#endif  // TABSKETCH_UTIL_TRACE_H_
