#ifndef TABSKETCH_UTIL_OBSERVABILITY_H_
#define TABSKETCH_UTIL_OBSERVABILITY_H_

#include <ostream>
#include <string>

namespace tabsketch::util {

/// Parsed observability flags shared by the CLI and every bench binary:
///   --metrics-json=PATH   dump the metrics registry as tabsketch-metrics-v1
///   --trace-json=PATH     record a flight-recorder trace, export as
///                         tabsketch-trace-v1 (Chrome trace-event JSON)
///   --audit-rate=R        shadow-audit an R-fraction of sketch distance
///                         estimates against the exact Lp distance
struct ObservabilityArgs {
  std::string metrics_path;
  std::string trace_path;
  double audit_rate = 0.0;
};

/// Bench-binary setup helper (the CLI parses the same flags through its own
/// flag machinery and then calls the Setup/Flush pair below): scans
/// argv[1..argc) for the three flags, removes each one found (compacting
/// argv and decrementing *argc), and enables the requested subsystems via
/// SetupObservability(). A malformed --audit-rate (unparsable or outside
/// [0, 1]) prints a diagnostic to stderr and is treated as 0.
ObservabilityArgs EnableObservabilityFromArgs(int* argc, char** argv);

/// Enables each subsystem requested by `args`: preregisters + enables the
/// global metrics registry (values reset), starts the global TraceRecorder,
/// and/or enables the global SketchAuditor.
void SetupObservability(const ObservabilityArgs& args);

/// Tears down and writes everything `args` requested, in the required order
/// (recorder stopped first so trace.dropped lands in the metrics dump, then
/// metrics disabled and dumped). Prints one line per artifact to stdout —
/// "metrics written to PATH" / "trace written to PATH" — and diagnostics to
/// stderr on failure. Returns true when every requested artifact was
/// written (vacuously true when none was requested). `out`/`err` override
/// the streams the per-artifact and diagnostic lines go to (the CLI passes
/// its captured streams; benches leave them null for stdout/stderr).
bool FlushObservability(const ObservabilityArgs& args,
                        std::ostream* out = nullptr,
                        std::ostream* err = nullptr);

}  // namespace tabsketch::util

#endif  // TABSKETCH_UTIL_OBSERVABILITY_H_
