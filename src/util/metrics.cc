#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"

namespace tabsketch::util {

std::atomic<uint32_t> MetricsRegistry::bits_{0};

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::Max(double value) {
  double seen = value_.load(std::memory_order_relaxed);
  while (value > seen && !value_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

size_t Histogram::BucketFor(double value) {
  if (!(value >= kBucketBase)) return 0;  // also catches NaN
  const int exponent =
      static_cast<int>(std::ceil(std::log2(value / kBucketBase)));
  if (exponent < 1) return 1;
  if (exponent >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<size_t>(exponent);
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);

  // sum/min/max via CAS loops: atomic<double> has no fetch_add pre-C++20 on
  // all targets, and min/max need it regardless.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  // First observation initializes min/max; count_ going 0->1 publishes them
  // only for reporting purposes, which tolerates a transient where another
  // thread reads count()==1 before min/max settle.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen && !min_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::BucketUpperEdge(size_t i) {
  return i == 0 ? kBucketBase
                : kBucketBase * std::ldexp(1.0, static_cast<int>(i));
}

double Histogram::Percentile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      std::min<uint64_t>(total, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank && cumulative > 0) {
      // Report the bucket's upper edge, clamped to the observed extremes so
      // a single-sample histogram reports the sample itself.
      return std::clamp(BucketUpperEdge(i), min(), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();  // leaked:
  // outlives every static-destruction-order hazard from cached pointers.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) fn(name, *counter);
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, gauge] : gauges_) fn(name, *gauge);
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, histogram] : histograms_) fn(name, *histogram);
}

namespace {

void WriteJsonString(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void WriteJsonNumber(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << buf;
  // %.17g never emits a bare integer-looking token with exponent/point for
  // whole numbers like "3" — that is still valid JSON, so no fixup needed.
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"schema\": \"tabsketch-metrics-v1\",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": " << counter->value();
  }
  os << (first ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": ";
    WriteJsonNumber(os, gauge->value());
  }
  os << (first ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": {\"count\": " << histogram->count() << ", \"sum\": ";
    WriteJsonNumber(os, histogram->sum());
    os << ", \"min\": ";
    WriteJsonNumber(os, histogram->min());
    os << ", \"max\": ";
    WriteJsonNumber(os, histogram->max());
    os << ", \"p50\": ";
    WriteJsonNumber(os, histogram->Percentile(0.5));
    os << ", \"p90\": ";
    WriteJsonNumber(os, histogram->Percentile(0.9));
    os << ", \"p99\": ";
    WriteJsonNumber(os, histogram->Percentile(0.99));
    os << "}";
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
}

void PreregisterCoreMetrics(MetricsRegistry* registry) {
  static const char* const kCounters[] = {
      "fft.plan.constructions",
      "fft.correlate.calls",
      "fft.correlate_pair.calls",
      "sketcher.sketch_of.calls",
      "estimator.estimate.calls",
      "ondemand.cache.hits",
      "ondemand.cache.misses",
      "ondemand.cache.evictions",
      "lru.cache.hits",
      "lru.cache.misses",
      "lru.cache.evictions",
      "lru.cache.races",
      "query.requests.distance",
      "query.requests.knn",
      "serve.connections.accepted",
      "serve.requests.distance",
      "serve.requests.knn",
      "serve.requests.reload",
      "serve.requests.append",
      "serve.requests.retire",
      "serve.requests.errors",
      "serve.requests.shed",
      "serve.requests.deadline_expired",
      "serve.requests.stats",
      "serve.requests.slow",
      "serve.snapshot.swaps",
      "serve.ticker.ticks",
      "cluster.distance_evals.exact",
      "cluster.distance_evals.sketch",
      "quant.scan.tiles",
      "quant.scan.bytes",
      "quant.candidates.kept",
      "ingest.appends",
      "ingest.retires",
      "ingest.errors",
      "ingest.columns.appended",
      "ingest.tiles.sketched",
      "ingest.tiles.reused",
      "ingest.codes.rebuilt",
      "trace.dropped",
      "audit.samples",
      "audit.violations",
  };
  static const char* const kGauges[] = {
      "pool.build.canonical_sizes",
      "cluster.kmeans.iterations",
      "cluster.kmeans.converged",
      "cluster.kmedoids.iterations",
      "cluster.kmedoids.converged",
      "cluster.dbscan.clusters",
      "lru.cache.capacity_bytes",
      "lru.cache.peak_bytes",
      "quant.pool.bytes",
      "serve.queue.depth",
      "serve.connections.active",
      "serve.inflight.distance",
      "serve.inflight.knn",
      "ingest.window.tile_cols",
      "ingest.window.start_col",
      "ingest.window.pending_cols",
  };
  static const char* const kHistograms[] = {
      "span.fft.plan.seconds",
      "span.fft.correlate.seconds",
      "span.pool.build.seconds",
      "span.sketcher.all_positions.seconds",
      "span.sketcher.sketch_tiles.seconds",
      "span.cluster.assign.seconds",
      "span.cluster.update.seconds",
      "span.cluster.exact_update.seconds",
      "span.lru.cache.compute.seconds",
      "span.query.batch.seconds",
      "span.quant.scan.seconds",
      "serve.request.latency.seconds",
      "serve.request.queue_wait.seconds",
      "ingest.append.latency.seconds",
  };
  for (const char* name : kCounters) registry->GetCounter(name);
  for (const char* name : kGauges) registry->GetGauge(name);
  for (const char* name : kHistograms) registry->GetHistogram(name);
}

Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path) {
  // Temp-and-rename so a reader (or a crash) mid-rewrite never sees a
  // truncated document — the serve daemon's ticker rewrites this file every
  // interval while scrapers may be reading it.
  std::ostringstream os;
  registry.WriteJson(os);
  return WriteFileAtomic(path, os.str());
}

}  // namespace tabsketch::util
