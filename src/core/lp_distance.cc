#include "core/lp_distance.h"

#include <cmath>

#include "util/logging.h"

namespace tabsketch::core {
namespace {

double SumAbsPow(std::span<const double> a, std::span<const double> b,
                 double p) {
  TABSKETCH_CHECK(a.size() == b.size())
      << "Lp distance between objects of different sizes: " << a.size()
      << " vs " << b.size();
  TABSKETCH_CHECK(p > 0.0) << "Lp distance requires p > 0, got " << p;
  double acc = 0.0;
  if (p == 1.0) {
    for (size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  } else if (p == 2.0) {
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
  } else {
    for (size_t i = 0; i < a.size(); ++i) {
      acc += std::pow(std::fabs(a[i] - b[i]), p);
    }
  }
  return acc;
}

}  // namespace

double LpDistancePow(std::span<const double> a, std::span<const double> b,
                     double p) {
  return SumAbsPow(a, b, p);
}

double LpDistance(std::span<const double> a, std::span<const double> b,
                  double p) {
  const double acc = SumAbsPow(a, b, p);
  if (p == 1.0) return acc;
  if (p == 2.0) return std::sqrt(acc);
  return std::pow(acc, 1.0 / p);
}

double LpDistance(const table::TableView& a, const table::TableView& b,
                  double p) {
  TABSKETCH_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "Lp distance between subtables of different shapes: " << a.rows()
      << "x" << a.cols() << " vs " << b.rows() << "x" << b.cols();
  TABSKETCH_CHECK(p > 0.0) << "Lp distance requires p > 0, got " << p;
  double acc = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    acc += SumAbsPow(a.Row(r), b.Row(r), p);
  }
  if (p == 1.0) return acc;
  if (p == 2.0) return std::sqrt(acc);
  return std::pow(acc, 1.0 / p);
}

}  // namespace tabsketch::core
