#ifndef TABSKETCH_CORE_SKETCH_PARAMS_H_
#define TABSKETCH_CORE_SKETCH_PARAMS_H_

#include <cstddef>
#include <cstdint>
#include <sstream>

#include "util/status.h"

namespace tabsketch::core {

/// Configuration of an Lp sketch family (paper Section 3.2).
///
/// Two sketches are comparable only if they were produced with identical
/// parameters (same p, same k, same seed) over objects of identical
/// dimensions: the seed pins down the random stable matrices, so equal
/// parameters guarantee the same matrices are regenerated everywhere.
struct SketchParams {
  /// The norm index, 0 < p <= 2. Fractional values are first-class citizens:
  /// p < 1 de-emphasizes outliers (paper Section 4.5).
  double p = 1.0;

  /// Sketch length: the number of random stable vectors dotted with the
  /// object. Theory: k = O(log(1/delta) / eps^2) gives a (1 +- eps)
  /// approximation with probability 1 - delta (paper Theorem 2). The paper's
  /// clustering experiments use k = 256.
  size_t k = 64;

  /// Master seed for all random matrices in this family.
  uint64_t seed = 0x7ab5ce7c0ffee123ULL;

  /// Kernel sparsity s in (0, 1] (Ping Li's very sparse stable random
  /// projections): each random-matrix entry is zero with probability 1 - s
  /// and an SaS(p) draw rescaled by s^(-1/p) otherwise, preserving the
  /// estimator's expectation at a variance cost that vanishes as s -> 1
  /// (DESIGN.md Section 16). s = 1 is the paper's dense family and
  /// regenerates bit-identical matrices to pre-sparsity builds, so legacy
  /// sketches stay comparable. Sparsity is part of the family identity:
  /// sketches with different s are never comparable.
  double sparsity = 1.0;

  /// Returns OK iff the parameters are usable.
  util::Status Validate() const {
    if (!(p > 0.0) || p > 2.0) {
      std::ostringstream msg;
      msg << "sketch p must be in (0, 2], got " << p;
      return util::Status::InvalidArgument(msg.str());
    }
    if (k == 0) {
      return util::Status::InvalidArgument("sketch size k must be positive");
    }
    if (!(sparsity > 0.0) || sparsity > 1.0) {
      std::ostringstream msg;
      msg << "sketch sparsity must be in (0, 1], got " << sparsity;
      return util::Status::InvalidArgument(msg.str());
    }
    return util::Status::OK();
  }

  friend bool operator==(const SketchParams& a, const SketchParams& b) {
    return a.p == b.p && a.k == b.k && a.seed == b.seed &&
           a.sparsity == b.sparsity;
  }
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SKETCH_PARAMS_H_
