#ifndef TABSKETCH_CORE_SCALE_FACTOR_H_
#define TABSKETCH_CORE_SCALE_FACTOR_H_

#include <cstddef>

namespace tabsketch::core {

/// B(p): the median of |X| for X ~ SaS(p), the scale factor of paper
/// Theorem 2. The sketch estimator divides median(|s(x) - s(y)|) by B(p) to
/// turn the raw median into an Lp distance estimate.
///
/// Closed forms exist only at the classic indices:
///   B(1) = 1            (standard Cauchy: median |X| = tan(pi/4))
///   B(2) = 0.67448975…  (median |N(0,1)|, by our alpha = 2 convention)
/// For other p the value is computed once by deterministic Monte-Carlo
/// (`samples` draws with a fixed internal seed; the default gives ~1e-3
/// relative accuracy) and cached process-wide. As the paper notes, clustering
/// uses only relative distances, so B(p)'s accuracy is not load-bearing; it
/// matters when sketch estimates are read as absolute distances (our accuracy
/// experiments, Fig 2).
///
/// Normalization note: B(p) follows the sampler's convention at every p
/// (see rng/stable.h), so B has a benign step at p = 2 exactly — our
/// alpha = 2 sampler is N(0,1) while CMS at alpha -> 2 tends to N(0,2),
/// hence lim_{p->2-} B(p) = sqrt(2) * B(2). Estimates are correct on both
/// sides because the sampler and the scale factor always share conventions.
///
/// Thread-safe. Requires 0 < p <= 2.
double MedianAbsStable(double p, size_t samples = 2'000'000);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SCALE_FACTOR_H_
