#include "core/sketch_cache.h"

#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace tabsketch::core {

std::shared_ptr<const Sketch> UncachedSketchSource::Get(size_t index) {
  TABSKETCH_CHECK(index < grid_->num_tiles())
      << "tile " << index << " out of " << grid_->num_tiles();
  computed_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const Sketch>(sketcher_->SketchOf(grid_->Tile(index)));
}

FixedSketchSource::FixedSketchSource(std::vector<Sketch> sketches) {
  sketches_.reserve(sketches.size());
  for (Sketch& sketch : sketches) {
    sketches_.push_back(std::make_shared<const Sketch>(std::move(sketch)));
  }
}

FixedSketchSource::FixedSketchSource(
    std::vector<std::shared_ptr<const Sketch>> sketches)
    : sketches_(std::move(sketches)) {
  for (const auto& sketch : sketches_) {
    TABSKETCH_CHECK(sketch != nullptr) << "null sketch in fixed source";
  }
}

std::shared_ptr<const Sketch> FixedSketchSource::Get(size_t index) {
  TABSKETCH_CHECK(index < sketches_.size())
      << "tile " << index << " out of " << sketches_.size();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return sketches_[index];
}

}  // namespace tabsketch::core
