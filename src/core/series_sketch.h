#ifndef TABSKETCH_CORE_SERIES_SKETCH_H_
#define TABSKETCH_CORE_SERIES_SKETCH_H_

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "util/result.h"

namespace tabsketch::core {

/// All-positions sketches of one window length over a 1-D series: entry
/// (i, pos) is the dot product of random vector R[i] with
/// series[pos .. pos + window). The 1-D analog of SketchField.
class SeriesSketchField {
 public:
  SeriesSketchField(size_t window, std::vector<std::vector<double>> planes);

  size_t window() const { return window_; }
  size_t positions() const { return planes_.front().size(); }
  size_t k() const { return planes_.size(); }

  /// The sketch of the window starting at `pos`.
  Sketch SketchAt(size_t pos) const;

  /// Adds the window sketch at `pos` into `sum` component-wise (`sum` must
  /// have size k). Allocation-free path for compound sketches.
  void AccumulateAt(size_t pos, Sketch* sum) const;

 private:
  size_t window_;
  std::vector<std::vector<double>> planes_;
};

/// Lp sketches for windows of a 1-D time series — the machinery of the
/// paper's predecessor [Indyk, Koudas, Muthukrishnan, VLDB 2000]
/// ("identifying representative trends"), which the tabular paper extends
/// to two dimensions.
///
/// Family compatibility: a length-n window uses the same random values as a
/// 1 x n subtable in the 2-D Sketcher with equal parameters, so series
/// sketches and single-row table sketches are mutually comparable (tested
/// invariant).
class SeriesSketcher {
 public:
  static util::Result<SeriesSketcher> Create(const SketchParams& params);

  const SketchParams& params() const { return params_; }

  /// Sketch of one window: O(k * window) dense dot products, or O(k * nnz)
  /// sparse walks when the family's sparsity < 1 (bit-identical to dense).
  Sketch SketchOf(std::span<const double> window) const;

  /// Sketches of every window position over `series` (1-D Theorem 3):
  /// O(k N log N) with the FFT algorithm, O(k N M) naive, and per-kernel
  /// cost-routed FFT vs O(nnz N) sparse-direct under kAuto. Returns
  /// InvalidArgument if the window is empty or longer than the series.
  util::Result<SeriesSketchField> SketchAllPositions(
      std::span<const double> series, size_t window,
      SketchAlgorithm algorithm) const;

  /// The k random stable vectors for a window length (cached; identical to
  /// the 2-D family's 1 x window matrices).
  const std::vector<std::vector<double>>& VectorsFor(size_t window) const;

  /// The same kernels in sparse form (cached; 1 x window shape).
  const std::vector<SparseKernel>& SparseKernelsFor(size_t window) const;

 private:
  explicit SeriesSketcher(const SketchParams& params);

  struct VectorCache;

  SketchParams params_;
  std::shared_ptr<VectorCache> cache_;
};

/// Canonical dyadic window lengths over one series, answering sketch
/// queries for arbitrary-length windows in O(k) via the 1-D compound
/// construction: a window of length L with canonical length a
/// (a <= L < 2a) is covered by the two canonical windows anchored at its
/// ends, summed component-wise — the 1-D analog of Definition 4, with an
/// up-to-2x (instead of 4x) inflation band.
class SeriesSketchPool {
 public:
  struct Options {
    size_t log2_min = 3;   // smallest canonical length 8
    size_t log2_max = 63;  // effectively "up to the series length"
    SketchAlgorithm algorithm = SketchAlgorithm::kFft;
  };

  static util::Result<SeriesSketchPool> Build(std::span<const double> series,
                                              const SketchParams& params,
                                              const Options& options);

  const SketchParams& params() const { return params_; }
  size_t series_length() const { return series_length_; }
  std::vector<size_t> CanonicalLengths() const;

  /// True if windows of this length can be answered.
  bool Covers(size_t length) const;

  /// Compound sketch of series[start .. start + length): the two-anchor
  /// sum. Returns OutOfRange / NotFound analogous to SketchPool::Query.
  util::Result<Sketch> Query(size_t start, size_t length) const;

  /// Direct canonical sketch for an exactly-canonical window length.
  util::Result<Sketch> CanonicalSketchAt(size_t start, size_t length) const;

 private:
  SeriesSketchPool(const SketchParams& params, size_t series_length);

  SketchParams params_;
  size_t series_length_;
  std::map<size_t, SeriesSketchField> fields_;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SERIES_SKETCH_H_
