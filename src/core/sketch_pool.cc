#include "core/sketch_pool.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "fft/correlate.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace tabsketch::core {

SketchPool::SketchPool(const SketchParams& params, size_t data_rows,
                       size_t data_cols)
    : params_(params), data_rows_(data_rows), data_cols_(data_cols) {}

size_t SketchPool::LargestPowerOfTwoAtMost(size_t n) {
  TABSKETCH_CHECK(n >= 1);
  size_t p = 1;
  while ((p << 1) <= n) p <<= 1;
  return p;
}

util::Result<SketchPool> SketchPool::Build(const table::Matrix& data,
                                           const SketchParams& params,
                                           const PoolOptions& options) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  if (data.empty()) {
    return util::Status::InvalidArgument("cannot build a pool over an empty "
                                         "table");
  }
  TABSKETCH_ASSIGN_OR_RETURN(Sketcher sketcher, Sketcher::Create(params));

  // Enumerate the canonical sizes up front so the per-kernel correlations of
  // *all* sizes form one flat work list.
  std::vector<std::pair<size_t, size_t>> sizes;
  for (size_t i = options.log2_min_rows;
       i <= options.log2_max_rows && (static_cast<size_t>(1) << i) <= data.rows();
       ++i) {
    const size_t window_rows = static_cast<size_t>(1) << i;
    for (size_t j = options.log2_min_cols;
         j <= options.log2_max_cols &&
         (static_cast<size_t>(1) << j) <= data.cols();
         ++j) {
      sizes.emplace_back(window_rows, static_cast<size_t>(1) << j);
    }
  }
  if (sizes.empty()) {
    return util::Status::InvalidArgument(
        "no canonical dyadic size fits the table under the given options");
  }
  TABSKETCH_TRACE_SPAN("pool.build");
  TABSKETCH_METRIC_GAUGE_SET("pool.build.canonical_sizes", sizes.size());

  // Per-canonical-size busy-time histograms, resolved before the fan-out so
  // workers record through cached pointers instead of the registry lock. One
  // observation per work item (a kernel pair), so `sum` is the size's total
  // correlation time across threads and `count` its number of work items.
  std::vector<util::Histogram*> size_histograms;
  if (util::MetricsRegistry::Enabled()) {
    size_histograms.reserve(sizes.size());
    for (const auto& [window_rows, window_cols] : sizes) {
      std::ostringstream name;
      name << "span.pool.build.size_" << window_rows << "x" << window_cols
           << ".seconds";
      size_histograms.push_back(
          util::MetricsRegistry::Global().GetHistogram(name.str()));
    }
  }

  // Per-kernel path routing for sparse families under kAuto: kernel i of
  // size s goes sparse-direct iff its predicted direct cost undercuts the
  // FFT's (DESIGN.md Section 16). The decision depends only on sizes and
  // each kernel's nnz — never on threads — so the pool stays bit-identical
  // across thread counts. Dense families fall through with an empty map
  // (kAuto is exactly kFft for them).
  const bool sparse_auto =
      options.algorithm == SketchAlgorithm::kAuto && params.sparsity < 1.0;
  std::vector<std::vector<bool>> direct;
  bool any_fft_kernel = !sparse_auto;
  if (sparse_auto) {
    direct.resize(sizes.size());
    size_t direct_kernels = 0;
    size_t fft_kernels = 0;
    for (size_t s = 0; s < sizes.size(); ++s) {
      const auto [window_rows, window_cols] = sizes[s];
      const auto& kernels = sketcher.SparseKernelsFor(window_rows, window_cols);
      const size_t positions = (data.rows() - window_rows + 1) *
                               (data.cols() - window_cols + 1);
      direct[s].resize(params.k);
      for (size_t i = 0; i < params.k; ++i) {
        direct[s][i] = PreferSparsePath(kernels[i].nnz(), positions,
                                        data.rows(), data.cols());
        ++(direct[s][i] ? direct_kernels : fft_kernels);
      }
    }
    TABSKETCH_METRIC_COUNT_N("sparse.pool.direct_kernels", direct_kernels);
    TABSKETCH_METRIC_COUNT_N("sparse.pool.fft_kernels", fft_kernels);
    any_fft_kernel = fft_kernels > 0;
  }

  // Materialize every size's random matrices (dense form only where some
  // kernel rides the FFT) before fanning out, so workers only read the
  // sketcher's cache (generation is deterministic per shape, but pre-filling
  // avoids duplicated generation racing on the cache lock).
  for (size_t s = 0; s < sizes.size(); ++s) {
    const auto [window_rows, window_cols] = sizes[s];
    if (!sparse_auto ||
        std::find(direct[s].begin(), direct[s].end(), false) !=
            direct[s].end()) {
      sketcher.MatricesFor(window_rows, window_cols);
    }
  }

  // One forward FFT of the data, shared by all canonical sizes and kernels
  // (Correlate is const and concurrency-safe). The naive path has no shared
  // state at all, and an all-sparse-direct build skips the transform
  // entirely.
  std::unique_ptr<const fft::CorrelationPlan> plan;
  if (options.algorithm != SketchAlgorithm::kNaive && any_fft_kernel) {
    plan = std::make_unique<const fft::CorrelationPlan>(data);
  }

  // Flat fan-out over (canonical size x kernel pair): work item w computes
  // planes 2j and 2j+1 of size w / pairs, where j = w % pairs. Pairing lets
  // the FFT path push two kernels through one forward/inverse transform
  // (CorrelatePair real-pair packing); an odd k leaves one unpaired kernel
  // per size on the single-kernel path. The pairing is fixed by index, and
  // every item writes distinct slots, so the result is bit-identical for any
  // thread count.
  const size_t k = params.k;
  const size_t pairs = (k + 1) / 2;
  std::vector<std::vector<table::Matrix>> planes(sizes.size());
  for (auto& size_planes : planes) size_planes.resize(k);
  util::ParallelFor(sizes.size() * pairs, options.threads, [&](size_t w) {
    const size_t size_index = w / pairs;
    const size_t first = 2 * (w % pairs);
    const size_t second = first + 1;
    const util::WallTimer item_timer;
    const auto [window_rows, window_cols] = sizes[size_index];
    if (sparse_auto) {
      // Routed pair: both-FFT kernels still share one transform pair; a
      // mixed or all-direct pair walks each kernel individually.
      const auto& sparse = sketcher.SparseKernelsFor(window_rows, window_cols);
      const bool second_valid = second < k;
      if (!direct[size_index][first] && second_valid &&
          !direct[size_index][second]) {
        const auto& kernels = sketcher.MatricesFor(window_rows, window_cols);
        auto [plane_a, plane_b] =
            plan->CorrelatePair(kernels[first], kernels[second]);
        planes[size_index][first] = std::move(plane_a);
        planes[size_index][second] = std::move(plane_b);
      } else {
        for (size_t i = first; i <= second && i < k; ++i) {
          planes[size_index][i] =
              direct[size_index][i]
                  ? CrossCorrelateSparse(data, sparse[i])
                  : plan->Correlate(
                        sketcher.MatricesFor(window_rows, window_cols)[i]);
        }
      }
      if (!size_histograms.empty()) {
        size_histograms[size_index]->Observe(item_timer.ElapsedSeconds());
      }
      return;
    }
    const auto& kernels = sketcher.MatricesFor(window_rows, window_cols);
    if (plan) {
      if (second < k) {
        auto [plane_a, plane_b] =
            plan->CorrelatePair(kernels[first], kernels[second]);
        planes[size_index][first] = std::move(plane_a);
        planes[size_index][second] = std::move(plane_b);
      } else {
        planes[size_index][first] = plan->Correlate(kernels[first]);
      }
    } else {
      planes[size_index][first] = fft::CrossCorrelateNaive(data, kernels[first]);
      if (second < k) {
        planes[size_index][second] =
            fft::CrossCorrelateNaive(data, kernels[second]);
      }
    }
    if (!size_histograms.empty()) {
      size_histograms[size_index]->Observe(item_timer.ElapsedSeconds());
    }
  });

  SketchPool pool(params, data.rows(), data.cols());
  for (size_t s = 0; s < sizes.size(); ++s) {
    pool.fields_.emplace(
        sizes[s], SketchField(sizes[s].first, sizes[s].second,
                              std::move(planes[s])));
  }
  return pool;
}

util::Result<SketchPool> SketchPool::FromParts(
    const SketchParams& params, size_t data_rows, size_t data_cols,
    std::map<std::pair<size_t, size_t>, SketchField> fields) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  if (fields.empty()) {
    return util::Status::InvalidArgument("a pool needs at least one field");
  }
  SketchPool pool(params, data_rows, data_cols);
  pool.fields_ = std::move(fields);
  return pool;
}

std::vector<std::pair<size_t, size_t>> SketchPool::CanonicalSizes() const {
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(fields_.size());
  for (const auto& entry : fields_) out.push_back(entry.first);
  return out;
}

bool SketchPool::Covers(size_t rows, size_t cols) const {
  if (rows == 0 || cols == 0) return false;
  const size_t a = LargestPowerOfTwoAtMost(rows);
  const size_t b = LargestPowerOfTwoAtMost(cols);
  return fields_.count({a, b}) > 0;
}

util::Result<Sketch> SketchPool::Query(size_t row, size_t col, size_t rows,
                                       size_t cols) const {
  if (rows == 0 || cols == 0) {
    return util::Status::InvalidArgument("query rectangle must be non-empty");
  }
  if (row + rows > data_rows_ || col + cols > data_cols_) {
    std::ostringstream msg;
    msg << "query (" << row << "," << col << ")+" << rows << "x" << cols
        << " exceeds table " << data_rows_ << "x" << data_cols_;
    return util::Status::OutOfRange(msg.str());
  }
  const size_t a = LargestPowerOfTwoAtMost(rows);
  const size_t b = LargestPowerOfTwoAtMost(cols);
  auto it = fields_.find({a, b});
  if (it == fields_.end()) {
    std::ostringstream msg;
    msg << "canonical size " << a << "x" << b << " not in pool";
    return util::Status::NotFound(msg.str());
  }
  const SketchField& field = it->second;

  // Four-corner compound sketch (Definition 4). With c = rows, d = cols the
  // anchors are (row, col), (row + c - a, col), (row, col + d - b) and the
  // diagonal corner; a <= c < 2a guarantees the shifted windows still overlap
  // the rectangle and tile it completely.
  Sketch sum;
  sum.values.assign(params_.k, 0.0);
  const size_t row2 = row + rows - a;
  const size_t col2 = col + cols - b;
  field.AccumulateAt(row, col, &sum);
  field.AccumulateAt(row2, col, &sum);
  field.AccumulateAt(row, col2, &sum);
  field.AccumulateAt(row2, col2, &sum);
  return sum;
}

util::Result<Sketch> SketchPool::CanonicalSketchAt(size_t row, size_t col,
                                                   size_t rows,
                                                   size_t cols) const {
  auto it = fields_.find({rows, cols});
  if (it == fields_.end()) {
    std::ostringstream msg;
    msg << rows << "x" << cols << " is not a stored canonical size";
    return util::Status::NotFound(msg.str());
  }
  if (row + rows > data_rows_ || col + cols > data_cols_) {
    return util::Status::OutOfRange("canonical window exceeds the table");
  }
  return it->second.SketchAt(row, col);
}

}  // namespace tabsketch::core
