#include "core/sketcher.h"

#include <sstream>
#include <utility>

#include "core/stable_matrix.h"
#include "fft/correlate.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace tabsketch::core {
namespace {

/// The satellite-crash fix: window-fit problems surface as InvalidArgument
/// with 1-based sizes (a "1x1 window" is the smallest, matching how users
/// write --tile-rows/--min-log2), instead of dying on a CHECK.
util::Status WindowFitError(size_t window_rows, size_t window_cols,
                            size_t data_rows, size_t data_cols) {
  std::ostringstream msg;
  msg << "window " << window_rows << "x" << window_cols
      << " does not fit the " << data_rows << "x" << data_cols
      << " table: window sides must be between 1 and the table's sides";
  return util::Status::InvalidArgument(msg.str());
}

}  // namespace

void Sketch::Add(const Sketch& other) {
  TABSKETCH_CHECK(values.size() == other.values.size())
      << "adding sketches of different sizes";
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] += other.values[i];
  }
}

void Sketch::Scale(double factor) {
  for (double& value : values) value *= factor;
}

SketchField::SketchField(size_t window_rows, size_t window_cols,
                         std::vector<table::Matrix> planes)
    : window_rows_(window_rows),
      window_cols_(window_cols),
      planes_(std::move(planes)) {
  TABSKETCH_CHECK(!planes_.empty()) << "sketch field needs at least one plane";
  for (const auto& plane : planes_) {
    TABSKETCH_CHECK(plane.rows() == planes_.front().rows() &&
                    plane.cols() == planes_.front().cols())
        << "sketch field planes must share dimensions";
  }
}

Sketch SketchField::SketchAt(size_t row, size_t col) const {
  Sketch out;
  out.values.resize(planes_.size());
  for (size_t i = 0; i < planes_.size(); ++i) {
    out.values[i] = planes_[i].At(row, col);
  }
  return out;
}

void SketchField::AccumulateAt(size_t row, size_t col, Sketch* sum) const {
  TABSKETCH_CHECK(sum->values.size() == planes_.size())
      << "accumulator size " << sum->values.size() << " != k "
      << planes_.size();
  for (size_t i = 0; i < planes_.size(); ++i) {
    sum->values[i] += planes_[i].At(row, col);
  }
}

util::Result<Sketcher> Sketcher::Create(const SketchParams& params) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  return Sketcher(params);
}

Sketcher::Sketcher(const SketchParams& params)
    : params_(params), cache_(std::make_shared<MatrixCache>()) {}

const std::vector<table::Matrix>& Sketcher::MatricesFor(size_t rows,
                                                        size_t cols) const {
  const auto key = std::make_pair(rows, cols);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->entries.find(key);
    if (it != cache_->entries.end()) return *it->second;
  }
  // Generate outside the lock; on a race the first insert wins.
  auto generated = std::make_shared<const std::vector<table::Matrix>>(
      StableRandomMatrices(params_, rows, cols));
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->entries.emplace(key, std::move(generated)).first;
  return *it->second;
}

const std::vector<SparseKernel>& Sketcher::SparseKernelsFor(
    size_t rows, size_t cols) const {
  const auto key = std::make_pair(rows, cols);
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->sparse_entries.find(key);
    if (it != cache_->sparse_entries.end()) return *it->second;
  }
  auto generated = std::make_shared<const std::vector<SparseKernel>>(
      SparseStableKernels(params_, rows, cols));
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->sparse_entries.emplace(key, std::move(generated)).first;
  return *it->second;
}

Sketch Sketcher::SketchOf(const table::TableView& view) const {
  TABSKETCH_CHECK(!view.empty()) << "cannot sketch an empty subtable";
  TABSKETCH_METRIC_COUNT("sketcher.sketch_of.calls");
  Sketch out;
  out.values.resize(params_.k);
  if (params_.sparsity < 1.0) {
    // O(nnz) walk over the kernels' support in storage (row-major) order —
    // bit-identical to the dense walk below, which only adds exact-zero
    // products on top of the same accumulation sequence.
    TABSKETCH_METRIC_COUNT("sparse.sketch_of.calls");
    const auto& kernels = SparseKernelsFor(view.rows(), view.cols());
    for (size_t i = 0; i < params_.k; ++i) {
      const SparseKernel& kernel = kernels[i];
      double acc = 0.0;
      for (size_t e = 0; e < kernel.nnz(); ++e) {
        acc += view.At(kernel.entry_rows[e], kernel.entry_cols[e]) *
               kernel.values[e];
      }
      out.values[i] = acc;
    }
    return out;
  }
  const auto& matrices = MatricesFor(view.rows(), view.cols());
  for (size_t i = 0; i < params_.k; ++i) {
    const table::Matrix& random = matrices[i];
    double acc = 0.0;
    for (size_t r = 0; r < view.rows(); ++r) {
      auto data_row = view.Row(r);
      auto random_row = random.Row(r);
      for (size_t c = 0; c < view.cols(); ++c) {
        acc += data_row[c] * random_row[c];
      }
    }
    out.values[i] = acc;
  }
  return out;
}

util::Result<SketchField> Sketcher::SketchAllPositions(
    const table::Matrix& data, size_t window_rows, size_t window_cols,
    SketchAlgorithm algorithm, size_t threads) const {
  if (window_rows < 1 || window_cols < 1 || window_rows > data.rows() ||
      window_cols > data.cols()) {
    return WindowFitError(window_rows, window_cols, data.rows(), data.cols());
  }

  if (algorithm == SketchAlgorithm::kAuto && params_.sparsity < 1.0) {
    // Per-kernel predicted-cost routing (DESIGN.md Section 16). Kernels that
    // stay on the FFT path still ride CorrelatePair two at a time; a pair
    // whose other half went sparse-direct falls back to single-kernel
    // Correlate. The routing depends only on each kernel's nnz and the
    // sizes, so the planes are bit-identical for every thread count.
    const auto& kernels = SparseKernelsFor(window_rows, window_cols);
    const size_t positions = (data.rows() - window_rows + 1) *
                             (data.cols() - window_cols + 1);
    std::vector<bool> direct(params_.k);
    size_t fft_kernels = 0;
    for (size_t i = 0; i < params_.k; ++i) {
      direct[i] = PreferSparsePath(kernels[i].nnz(), positions, data.rows(),
                                   data.cols());
      if (!direct[i]) ++fft_kernels;
    }
    TABSKETCH_METRIC_COUNT_N("sparse.pool.direct_kernels",
                             params_.k - fft_kernels);
    TABSKETCH_METRIC_COUNT_N("sparse.pool.fft_kernels", fft_kernels);
    std::unique_ptr<const fft::CorrelationPlan> plan;
    if (fft_kernels > 0) {
      plan = std::make_unique<const fft::CorrelationPlan>(data);
      MatricesFor(window_rows, window_cols);
    }
    std::vector<table::Matrix> planes(params_.k);
    const size_t pairs = (params_.k + 1) / 2;
    util::ParallelFor(pairs, threads, [&](size_t j) {
      const size_t first = 2 * j;
      const size_t second = first + 1;
      const bool second_valid = second < params_.k;
      if (!direct[first] && second_valid && !direct[second]) {
        const auto& matrices = MatricesFor(window_rows, window_cols);
        auto [plane_a, plane_b] =
            plan->CorrelatePair(matrices[first], matrices[second]);
        planes[first] = std::move(plane_a);
        planes[second] = std::move(plane_b);
        return;
      }
      for (size_t i = first; i <= second && i < params_.k; ++i) {
        planes[i] = direct[i]
                        ? CrossCorrelateSparse(data, kernels[i])
                        : plan->Correlate(
                              MatricesFor(window_rows, window_cols)[i]);
      }
    });
    return SketchField(window_rows, window_cols, std::move(planes));
  }
  if (algorithm != SketchAlgorithm::kNaive) {
    // kFft, and kAuto over a dense family (where auto is exactly kFft).
    const fft::CorrelationPlan plan(data);
    return SketchAllPositions(plan, window_rows, window_cols, threads);
  }
  const auto& matrices = MatricesFor(window_rows, window_cols);
  std::vector<table::Matrix> planes(params_.k);
  util::ParallelFor(params_.k, threads, [&](size_t i) {
    planes[i] = fft::CrossCorrelateNaive(data, matrices[i]);
  });
  return SketchField(window_rows, window_cols, std::move(planes));
}

util::Result<SketchField> Sketcher::SketchAllPositions(
    const fft::CorrelationPlan& plan, size_t window_rows, size_t window_cols,
    size_t threads) const {
  if (window_rows < 1 || window_cols < 1 ||
      window_rows > plan.data_rows() || window_cols > plan.data_cols()) {
    return WindowFitError(window_rows, window_cols, plan.data_rows(),
                          plan.data_cols());
  }
  TABSKETCH_TRACE_SPAN("sketcher.all_positions");

  // Kernels ride the FFT two at a time (CorrelatePair real-pair packing);
  // index-fixed pairing keeps the planes bit-identical across thread counts.
  const auto& matrices = MatricesFor(window_rows, window_cols);
  std::vector<table::Matrix> planes(params_.k);
  const size_t pairs = (params_.k + 1) / 2;
  util::ParallelFor(pairs, threads, [&](size_t j) {
    const size_t first = 2 * j;
    const size_t second = first + 1;
    if (second < params_.k) {
      auto [plane_a, plane_b] =
          plan.CorrelatePair(matrices[first], matrices[second]);
      planes[first] = std::move(plane_a);
      planes[second] = std::move(plane_b);
    } else {
      planes[first] = plan.Correlate(matrices[first]);
    }
  });
  return SketchField(window_rows, window_cols, std::move(planes));
}

}  // namespace tabsketch::core
