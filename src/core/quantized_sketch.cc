#include "core/quantized_sketch.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace tabsketch::core {
namespace {

constexpr char kMagic[4] = {'T', 'S', 'K', 'Q'};
constexpr uint32_t kVersion = 2;

/// On-disk header of the TSKQ code-pool format (docs/FORMATS.md). Field
/// order keeps every member naturally aligned with no padding on any
/// supported ABI. v2 appends the family sparsity; v1 files end at `offset`
/// and imply a dense family (sparsity 1.0).
struct Header {
  char magic[4];
  uint32_t version;
  uint32_t kind;      // QuantKind: 1 = int8, 2 = int16
  uint32_t reserved;  // zero
  double p;
  uint64_t k;
  uint64_t seed;
  uint64_t object_rows;
  uint64_t object_cols;
  uint64_t count;
  double scale;
  double offset;
  double sparsity;
};
constexpr size_t kHeaderBytesV1 = sizeof(Header) - sizeof(double);
static_assert(sizeof(Header) == 88, "TSKQ header must pack without padding");

/// Relative padding applied to the quantization error bound; dominates every
/// floating-point rounding term in the threshold comparisons (see
/// QuantizedCodePool::Slack and DESIGN.md §13).
constexpr double kSlackSafety = 1.0 + 1e-6;

bool AllFinite(std::span<const double> values) {
  for (double value : values) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

}  // namespace

util::Result<QuantKind> ParseQuantKind(const std::string& text) {
  if (text == "off") return QuantKind::kOff;
  if (text == "int8") return QuantKind::kInt8;
  if (text == "int16") return QuantKind::kInt16;
  return util::Status::InvalidArgument(
      "unknown quantization kind '" + text + "' (off, int8, int16)");
}

const char* QuantKindName(QuantKind kind) {
  switch (kind) {
    case QuantKind::kOff:
      return "off";
    case QuantKind::kInt8:
      return "int8";
    case QuantKind::kInt16:
      return "int16";
  }
  return "?";
}

size_t QuantCodeBytes(QuantKind kind) {
  switch (kind) {
    case QuantKind::kOff:
      return 0;
    case QuantKind::kInt8:
      return 1;
    case QuantKind::kInt16:
      return 2;
  }
  return 0;
}

// The getter may recompute or fault sketches in (LRU sources); both passes
// see identical values because sketches are deterministic.
util::Result<QuantizedCodePool> QuantizedCodePool::BuildImpl(
    const std::function<std::span<const double>(size_t)>& sketch_of,
    size_t count, QuantKind kind, const SketchParams& params,
    size_t object_rows, size_t object_cols) {
  if (kind == QuantKind::kOff) {
    return util::Status::InvalidArgument(
        "cannot build a code pool with quantization off");
  }
  TABSKETCH_RETURN_IF_ERROR(params.Validate());

  QuantizedCodePool pool;
  pool.kind_ = kind;
  pool.count_ = count;
  pool.k_ = params.k;
  pool.params_ = params;
  pool.object_rows_ = object_rows;
  pool.object_cols_ = object_cols;
  pool.usable_.assign(count, 1);

  // Pass 1: the finite value range and per-tile usability flags.
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  bool any_finite = false;
  for (size_t i = 0; i < count; ++i) {
    std::span<const double> values = sketch_of(i);
    if (values.size() != params.k) {
      return util::Status::InvalidArgument(
          "sketch length disagrees with params.k");
    }
    for (double value : values) {
      if (!std::isfinite(value)) {
        pool.usable_[i] = 0;
        continue;
      }
      any_finite = true;
      if (value < min) min = value;
      if (value > max) max = value;
    }
  }

  const uint32_t max_code = pool.MaxCode();
  if (any_finite && max > min) {
    pool.offset_ = min;
    pool.scale_ = (max - min) / static_cast<double>(max_code);
  } else {
    // Degenerate pool (empty, constant, or all non-finite): every code is 0
    // and the quantization error — hence the slack — is exactly 0.
    pool.offset_ = any_finite ? min : 0.0;
    pool.scale_ = 0.0;
  }

  // Pass 2: encode. Unusable tiles keep all-zero rows so the bytes are
  // deterministic regardless of what the NaNs were.
  const size_t code_bytes = QuantCodeBytes(kind);
  pool.codes_.assign(count * params.k * code_bytes, 0);
  for (size_t i = 0; i < count; ++i) {
    if (pool.usable_[i] == 0) continue;
    std::span<const double> values = sketch_of(i);
    unsigned char* row = pool.codes_.data() + i * params.k * code_bytes;
    for (size_t j = 0; j < params.k; ++j) {
      const uint32_t code = pool.EncodeValue(values[j]);
      if (kind == QuantKind::kInt8) {
        row[j] = static_cast<unsigned char>(code);
      } else {
        const uint16_t code16 = static_cast<uint16_t>(code);
        std::memcpy(row + 2 * j, &code16, sizeof(code16));
      }
    }
  }
  return pool;
}

util::Result<QuantizedCodePool> QuantizedCodePool::Build(
    TileSketchCache* cache, QuantKind kind, const SketchParams& params,
    size_t object_rows, size_t object_cols) {
  TABSKETCH_CHECK(cache != nullptr);
  // The holder keeps the most recent sketch alive while BuildImpl reads it
  // (a bounded cache may evict the entry as soon as the next Get lands).
  std::shared_ptr<const Sketch> holder;
  auto sketch_of = [&](size_t i) -> std::span<const double> {
    holder = cache->Get(i);
    return holder->values;
  };
  return BuildImpl(sketch_of, cache->num_tiles(), kind, params, object_rows,
                   object_cols);
}

util::Result<QuantizedCodePool> QuantizedCodePool::BuildFromSketches(
    std::span<const Sketch> sketches, QuantKind kind,
    const SketchParams& params, size_t object_rows, size_t object_cols) {
  auto sketch_of = [&](size_t i) -> std::span<const double> {
    return sketches[i].values;
  };
  return BuildImpl(sketch_of, sketches.size(), kind, params, object_rows,
                   object_cols);
}

util::Result<QuantizedCodePool> QuantizedCodePool::BuildFromGetter(
    const std::function<std::span<const double>(size_t)>& sketch_of,
    size_t count, QuantKind kind, const SketchParams& params,
    size_t object_rows, size_t object_cols) {
  return BuildImpl(sketch_of, count, kind, params, object_rows, object_cols);
}

util::Result<QuantizedCodePool> QuantizedCodePool::BuildSuccessor(
    const QuantizedCodePool& base,
    const std::function<std::span<const double>(size_t)>& sketch_of,
    std::span<const size_t> base_of, bool* rebuilt_map) {
  TABSKETCH_CHECK(rebuilt_map != nullptr);
  if (base.kind_ == QuantKind::kOff) {
    return util::Status::InvalidArgument(
        "cannot build a successor of a code pool with quantization off");
  }
  const size_t count = base_of.size();
  for (const size_t from : base_of) {
    if (from != kNewTile && from >= base.count_) {
      return util::Status::InvalidArgument(
          "successor base_of index out of the base pool's range");
    }
  }

  // A new tile fits the base map iff all its finite components land inside
  // the representable range padded by half a quantization step — a clamped
  // encode of such a value still satisfies the <= scale/2 per-component
  // error bound (the same acceptance window Quantize uses). Anything
  // further out means the pool range grew and the map must be re-derived.
  const double lo = base.offset_ - 0.5 * base.scale_;
  const double hi = base.offset_ +
                    base.scale_ * static_cast<double>(base.MaxCode()) +
                    0.5 * base.scale_;
  bool fits = true;
  for (size_t i = 0; i < count && fits; ++i) {
    if (base_of[i] != kNewTile) continue;
    std::span<const double> values = sketch_of(i);
    if (values.size() != base.params_.k) {
      return util::Status::InvalidArgument(
          "sketch length disagrees with params.k");
    }
    if (!AllFinite(values)) continue;  // unusable tile; map-independent
    for (const double value : values) {
      if (value < lo || value > hi) {
        fits = false;
        break;
      }
    }
  }
  if (!fits) {
    *rebuilt_map = true;
    return BuildImpl(sketch_of, count, base.kind_, base.params_,
                     base.object_rows_, base.object_cols_);
  }
  *rebuilt_map = false;

  QuantizedCodePool pool;
  pool.kind_ = base.kind_;
  pool.count_ = count;
  pool.k_ = base.k_;
  pool.scale_ = base.scale_;
  pool.offset_ = base.offset_;
  pool.params_ = base.params_;
  pool.object_rows_ = base.object_rows_;
  pool.object_cols_ = base.object_cols_;
  pool.usable_.assign(count, 1);
  const size_t code_bytes = QuantCodeBytes(pool.kind_);
  const size_t row_bytes = pool.k_ * code_bytes;
  pool.codes_.assign(count * row_bytes, 0);
  for (size_t i = 0; i < count; ++i) {
    unsigned char* row = pool.codes_.data() + i * row_bytes;
    if (base_of[i] != kNewTile) {
      // Surviving tile: the exact bytes it had in the base pool.
      pool.usable_[i] = base.usable_[base_of[i]];
      std::memcpy(row, base.codes_.data() + base_of[i] * row_bytes,
                  row_bytes);
      continue;
    }
    std::span<const double> values = sketch_of(i);
    if (!AllFinite(values)) {
      pool.usable_[i] = 0;  // all-zero row, like BuildImpl
      continue;
    }
    for (size_t j = 0; j < pool.k_; ++j) {
      const uint32_t code = pool.EncodeValue(values[j]);
      if (pool.kind_ == QuantKind::kInt8) {
        row[j] = static_cast<unsigned char>(code);
      } else {
        const uint16_t code16 = static_cast<uint16_t>(code);
        std::memcpy(row + 2 * j, &code16, sizeof(code16));
      }
    }
  }
  return pool;
}

uint32_t QuantizedCodePool::EncodeValue(double value) const {
  if (scale_ == 0.0) return 0;
  const double q = (value - offset_) / scale_;
  if (!(q > 0.0)) return 0;
  const double max_code = static_cast<double>(MaxCode());
  if (q >= max_code) return MaxCode();
  return static_cast<uint32_t>(std::llround(q));
}

double QuantizedCodePool::CodeDistance(const unsigned char* a,
                                       const unsigned char* b, bool l2,
                                       kernels::CodeScratch* scratch) const {
  if (l2) {
    const uint64_t ssd =
        kind_ == QuantKind::kInt8
            ? kernels::SumSquaredDiff(reinterpret_cast<const uint8_t*>(a),
                                      reinterpret_cast<const uint8_t*>(b), k_)
            : kernels::SumSquaredDiff(reinterpret_cast<const uint16_t*>(a),
                                      reinterpret_cast<const uint16_t*>(b),
                                      k_);
    return scale_ * std::sqrt(static_cast<double>(ssd) /
                              static_cast<double>(k_));
  }
  const double median =
      kind_ == QuantKind::kInt8
          ? kernels::MedianAbsDiff(reinterpret_cast<const uint8_t*>(a),
                                   reinterpret_cast<const uint8_t*>(b), k_,
                                   scratch)
          : kernels::MedianAbsDiff(reinterpret_cast<const uint16_t*>(a),
                                   reinterpret_cast<const uint16_t*>(b), k_,
                                   scratch);
  return scale_ * median;
}

double QuantizedCodePool::CodeEstimate(size_t a, size_t b, bool l2,
                                       kernels::CodeScratch* scratch) const {
  TABSKETCH_CHECK(a < count_ && b < count_);
  if (usable_[a] == 0 || usable_[b] == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const size_t code_bytes = QuantCodeBytes(kind_);
  return CodeDistance(codes_.data() + a * k_ * code_bytes,
                      codes_.data() + b * k_ * code_bytes, l2, scratch);
}

double QuantizedCodePool::CodeEstimateAgainst(
    size_t a, const QuantizedVector& other, bool l2,
    kernels::CodeScratch* scratch) const {
  TABSKETCH_CHECK(a < count_);
  if (usable_[a] == 0 || !other.usable) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  TABSKETCH_CHECK(other.codes.size() == k_ * QuantCodeBytes(kind_));
  return CodeDistance(codes_.data() + a * k_ * QuantCodeBytes(kind_),
                      other.codes.data(), l2, scratch);
}

QuantizedVector QuantizedCodePool::Quantize(
    std::span<const double> values) const {
  QuantizedVector result;
  if (values.size() != k_ || !AllFinite(values)) return result;
  // Accept only values inside the pool's range, padded by half a step: a
  // clamped encode of such a value still satisfies the <= scale/2 error
  // bound. Sketch-space centroids are convex combinations of pool values,
  // so they land inside the range up to mean-rounding noise; anything
  // further out (a reloaded pool, pathological rounding) stays unusable and
  // therefore an unconditional candidate.
  const double lo = offset_ - 0.5 * scale_;
  const double hi =
      offset_ + scale_ * static_cast<double>(MaxCode()) + 0.5 * scale_;
  for (double value : values) {
    if (value < lo || value > hi) return result;
  }
  const size_t code_bytes = QuantCodeBytes(kind_);
  result.codes.assign(k_ * code_bytes, 0);
  for (size_t j = 0; j < k_; ++j) {
    const uint32_t code = EncodeValue(values[j]);
    if (kind_ == QuantKind::kInt8) {
      result.codes[j] = static_cast<unsigned char>(code);
    } else {
      const uint16_t code16 = static_cast<uint16_t>(code);
      std::memcpy(result.codes.data() + 2 * j, &code16, sizeof(code16));
    }
  }
  result.usable = true;
  return result;
}

double QuantizedCodePool::Slack(const DistanceEstimator& estimator) const {
  return scale_ / estimator.scale() * kSlackSafety;
}

util::Status WriteCodePool(const QuantizedCodePool& pool,
                           const std::string& path) {
  if (pool.kind() == QuantKind::kOff) {
    return util::Status::InvalidArgument(
        "cannot serialize a code pool with quantization off");
  }
  const std::string tmp_path = path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open for writing: " + tmp_path);
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.kind = static_cast<uint32_t>(pool.kind());
  header.reserved = 0;
  header.p = pool.params().p;
  header.k = pool.params().k;
  header.seed = pool.params().seed;
  header.object_rows = pool.object_rows();
  header.object_cols = pool.object_cols();
  header.count = pool.count();
  header.scale = pool.scale();
  header.offset = pool.offset();
  header.sparsity = pool.params().sparsity;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(pool.usable_flags().data()),
            static_cast<std::streamsize>(pool.usable_flags().size()));
  out.write(reinterpret_cast<const char*>(pool.raw_codes().data()),
            static_cast<std::streamsize>(pool.raw_codes().size()));
  out.close();
  if (!out) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError("write failed: " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError("cannot rename " + tmp_path + " to " + path +
                                 ": " + ec.message());
  }
  return util::Status::OK();
}

util::Result<QuantizedCodePool> ReadCodePool(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header), kHeaderBytesV1);
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::IOError("not a tabsketch code pool: " + path);
  }
  if (header.version != 1 && header.version != kVersion) {
    std::ostringstream msg;
    msg << "unsupported code-pool version " << header.version << " in "
        << path;
    return util::Status::IOError(msg.str());
  }
  header.sparsity = 1.0;
  if (header.version >= 2) {
    in.read(reinterpret_cast<char*>(&header.sparsity),
            sizeof(header.sparsity));
    if (!in) {
      return util::Status::IOError("truncated code pool: " + path);
    }
  }
  const size_t header_bytes =
      header.version >= 2 ? sizeof(header) : kHeaderBytesV1;
  if (header.kind != static_cast<uint32_t>(QuantKind::kInt8) &&
      header.kind != static_cast<uint32_t>(QuantKind::kInt16)) {
    std::ostringstream msg;
    msg << "unsupported code-pool quantization kind " << header.kind << " in "
        << path;
    return util::Status::IOError(msg.str());
  }
  if (!std::isfinite(header.scale) || header.scale < 0.0 ||
      !std::isfinite(header.offset)) {
    return util::Status::IOError("corrupt code-pool header in " + path);
  }

  QuantizedCodePool pool;
  pool.kind_ = static_cast<QuantKind>(header.kind);
  pool.params_.p = header.p;
  pool.params_.k = header.k;
  pool.params_.seed = header.seed;
  pool.params_.sparsity = header.sparsity;
  TABSKETCH_RETURN_IF_ERROR(pool.params_.Validate());
  pool.count_ = header.count;
  pool.k_ = header.k;
  pool.scale_ = header.scale;
  pool.offset_ = header.offset;
  pool.object_rows_ = header.object_rows;
  pool.object_cols_ = header.object_cols;

  // The payload must be exactly count flag bytes + count rows of k codes
  // (overflow-safe before any allocation).
  in.seekg(0, std::ios::end);
  const uint64_t payload_bytes =
      static_cast<uint64_t>(in.tellg()) - header_bytes;
  in.seekg(static_cast<std::streamoff>(header_bytes), std::ios::beg);
  const uint64_t code_bytes = QuantCodeBytes(pool.kind_);
  if (header.count > payload_bytes) {
    return util::Status::IOError("corrupt code-pool header in " + path);
  }
  const uint64_t code_payload = payload_bytes - header.count;
  if (header.count != 0 &&
      header.k > code_payload / (header.count * code_bytes)) {
    return util::Status::IOError("corrupt code-pool header in " + path);
  }
  if (header.count * header.k * code_bytes != code_payload) {
    return util::Status::IOError("corrupt code-pool header in " + path);
  }

  pool.usable_.resize(header.count);
  in.read(reinterpret_cast<char*>(pool.usable_.data()),
          static_cast<std::streamsize>(pool.usable_.size()));
  pool.codes_.resize(code_payload);
  in.read(reinterpret_cast<char*>(pool.codes_.data()),
          static_cast<std::streamsize>(pool.codes_.size()));
  if (!in) {
    return util::Status::IOError("truncated code pool: " + path);
  }
  for (uint8_t& flag : pool.usable_) flag = flag != 0 ? 1 : 0;
  return pool;
}

}  // namespace tabsketch::core
