#include "core/knn.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/lp_distance.h"
#include "util/logging.h"

namespace tabsketch::core {

bool NeighborBefore(const Neighbor& a, const Neighbor& b) {
  // `a.distance != b.distance` alone is not a valid ordering test when either
  // side is NaN (it is true while neither `<` holds, violating strict weak
  // ordering and making std::partial_sort UB). Order NaN after every real
  // distance, and break all remaining ties by index so results are
  // deterministic.
  const bool a_nan = std::isnan(a.distance);
  const bool b_nan = std::isnan(b.distance);
  if (a_nan != b_nan) return b_nan;
  if (!a_nan && a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

std::vector<Neighbor> SmallestKNeighbors(std::vector<Neighbor> all,
                                         size_t k) {
  SmallestKNeighborsInPlace(&all, k);
  return all;
}

void SmallestKNeighborsInPlace(std::vector<Neighbor>* all, size_t k) {
  k = std::min(k, all->size());
  std::partial_sort(all->begin(), all->begin() + static_cast<ptrdiff_t>(k),
                    all->end(), NeighborBefore);
  all->resize(k);
}

std::vector<Neighbor> TopKBySketch(const Sketch& query,
                                   std::span<const Sketch> corpus,
                                   const DistanceEstimator& estimator,
                                   size_t k, std::optional<size_t> skip) {
  std::vector<Neighbor> all;
  all.reserve(corpus.size());
  std::vector<double> scratch;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (skip && *skip == i) continue;
    all.push_back(Neighbor{
        i, estimator.EstimateWithScratch(query.values, corpus[i].values,
                                         &scratch)});
  }
  return SmallestKNeighbors(std::move(all), k);
}

util::Result<std::vector<Neighbor>> TopKFilterRefine(
    const table::TileGrid& grid, std::span<const Sketch> sketches,
    const DistanceEstimator& estimator, size_t query_tile, size_t k,
    size_t candidates) {
  const size_t n = grid.num_tiles();
  if (sketches.size() != n) {
    return util::Status::InvalidArgument(
        "sketch count does not match tile count");
  }
  if (query_tile >= n) {
    return util::Status::OutOfRange("query tile out of range");
  }
  if (k == 0 || candidates < k || candidates > n - 1) {
    std::ostringstream msg;
    msg << "need 1 <= k <= candidates <= tiles-1, got k=" << k
        << " candidates=" << candidates << " tiles=" << n;
    return util::Status::InvalidArgument(msg.str());
  }

  // Filter: cheap sketch scan for the candidate set.
  const std::vector<Neighbor> filtered = TopKBySketch(
      sketches[query_tile], sketches, estimator, candidates, query_tile);

  // Refine: exact distances on the candidates only.
  const table::TableView query_view = grid.Tile(query_tile);
  std::vector<Neighbor> refined;
  refined.reserve(filtered.size());
  for (const Neighbor& candidate : filtered) {
    refined.push_back(Neighbor{
        candidate.index,
        LpDistance(query_view, grid.Tile(candidate.index), estimator.p())});
  }
  return SmallestKNeighbors(std::move(refined), k);
}

std::vector<Neighbor> TopKExact(const table::TileGrid& grid, double p,
                                size_t query_tile, size_t k) {
  TABSKETCH_CHECK(query_tile < grid.num_tiles());
  const table::TableView query_view = grid.Tile(query_tile);
  std::vector<Neighbor> all;
  all.reserve(grid.num_tiles() - 1);
  for (size_t i = 0; i < grid.num_tiles(); ++i) {
    if (i == query_tile) continue;
    all.push_back(Neighbor{i, LpDistance(query_view, grid.Tile(i), p)});
  }
  return SmallestKNeighbors(std::move(all), k);
}

}  // namespace tabsketch::core
