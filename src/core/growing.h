#ifndef TABSKETCH_CORE_GROWING_H_
#define TABSKETCH_CORE_GROWING_H_

#include <cstddef>
#include <vector>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::core {

/// Maintains tile sketches for a table that grows along the time (column)
/// axis — the paper's "stitching consecutive days" workflow, done
/// incrementally: appending a day's columns sketches only the newly
/// completed tiles; nothing already sketched is touched or recomputed.
///
/// Tiles are the cells of the fixed tile_rows x tile_cols grid over the
/// current table; columns that do not yet fill a whole tile column stay
/// pending until later appends complete them.
class GrowingTableSketcher {
 public:
  /// `num_rows` is fixed for the lifetime (the station axis); tiles must
  /// divide it... more precisely tile_rows <= num_rows; trailing rows that
  /// do not fill a tile are ignored, as in TileGrid.
  static util::Result<GrowingTableSketcher> Create(const SketchParams& params,
                                                   size_t num_rows,
                                                   size_t tile_rows,
                                                   size_t tile_cols);

  /// Appends `piece` (same row count as the table) to the right; sketches
  /// any tile columns the append completes.
  util::Status AppendColumns(const table::Matrix& piece);

  const table::Matrix& table() const { return table_; }
  const SketchParams& params() const { return sketcher_.params(); }

  /// Tile-grid dimensions over the *completed* region.
  size_t grid_rows() const { return grid_rows_; }
  size_t grid_cols() const { return grid_cols_; }
  size_t num_tiles() const { return grid_rows_ * grid_cols_; }

  /// Columns appended but not yet part of a completed tile column.
  size_t pending_cols() const { return table_.cols() - grid_cols_ * tile_cols_; }

  /// Sketch of completed tile (grid_row, grid_col).
  const Sketch& TileSketch(size_t grid_row, size_t grid_col) const;

  /// All completed tile sketches in TileGrid row-major order (tile index =
  /// grid_row * grid_cols() + grid_col), matching what SketchAllTiles over
  /// the completed region would produce.
  std::vector<Sketch> SketchesInGridOrder() const;

  /// Total tile sketches computed since creation (equals num_tiles(); the
  /// point is that it never exceeds it — no recomputation).
  size_t sketches_computed() const { return sketches_computed_; }

 private:
  GrowingTableSketcher(Sketcher sketcher, size_t num_rows, size_t tile_rows,
                       size_t tile_cols);

  /// Sketches tiles of any newly completed tile columns.
  void SketchNewTiles();

  Sketcher sketcher_;
  size_t tile_rows_;
  size_t tile_cols_;
  size_t grid_rows_;
  size_t grid_cols_ = 0;
  table::Matrix table_;
  /// sketches_[grid_row][grid_col].
  std::vector<std::vector<Sketch>> sketches_;
  size_t sketches_computed_ = 0;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_GROWING_H_
