#ifndef TABSKETCH_CORE_GROWING_H_
#define TABSKETCH_CORE_GROWING_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::core {

/// Maintains tile sketches for a sliding window over a table that grows
/// along the time (column) axis — the paper's "stitching consecutive days"
/// workflow, done incrementally: appending a day's columns sketches only
/// the newly completed tiles, retiring the oldest tile columns drops their
/// sketches, and nothing surviving is ever touched or recomputed. Because
/// sketches are deterministic functions of tile content and the tile grid
/// is anchored at the window's first column (retirement only removes whole
/// tile columns, so surviving tile boundaries never shift), the window's
/// sketches are byte-identical to a batch SketchAllTiles over the same
/// region — the invariant the streaming serve path builds on.
///
/// Tiles are the cells of the fixed tile_rows x tile_cols grid over the
/// current window; columns that do not yet fill a whole tile column stay
/// pending until later appends complete them.
class GrowingTableSketcher {
 public:
  /// `num_rows` is fixed for the lifetime (the station axis); tiles must
  /// divide it... more precisely tile_rows <= num_rows; trailing rows that
  /// do not fill a tile are ignored, as in TileGrid.
  static util::Result<GrowingTableSketcher> Create(const SketchParams& params,
                                                   size_t num_rows,
                                                   size_t tile_rows,
                                                   size_t tile_cols);

  /// Appends `piece` (same row count as the table) to the right; sketches
  /// any tile columns the append completes, fanning the new tiles over
  /// `threads` workers (bit-identical output for any thread count).
  util::Status AppendColumns(const table::Matrix& piece, size_t threads = 1);

  /// Drops the window's oldest `tile_columns` completed tile columns (and
  /// their table columns). InvalidArgument when the window holds fewer.
  /// Retiring everything is allowed: the window keeps only pending columns
  /// (if any) and grows again on the next append.
  util::Status RetireColumns(size_t tile_columns);

  const table::Matrix& table() const { return table_; }
  const SketchParams& params() const { return sketcher_.params(); }
  size_t tile_rows() const { return tile_rows_; }
  size_t tile_cols() const { return tile_cols_; }

  /// Tile-grid dimensions over the *completed* region of the window.
  size_t grid_rows() const { return grid_rows_; }
  size_t grid_cols() const { return grid_cols_; }
  size_t num_tiles() const { return grid_rows_ * grid_cols_; }

  /// Columns appended but not yet part of a completed tile column.
  size_t pending_cols() const { return table_.cols() - grid_cols_ * tile_cols_; }

  /// Tile columns retired since creation; the window's first tile column is
  /// tile column `retired_tile_cols()` of the full (never-materialized)
  /// stream.
  size_t retired_tile_cols() const { return retired_tile_cols_; }

  /// Sketch of completed tile (grid_row, grid_col), grid_col relative to
  /// the current window start.
  const Sketch& TileSketch(size_t grid_row, size_t grid_col) const;

  /// All completed tile sketches in TileGrid row-major order (tile index =
  /// grid_row * grid_cols() + grid_col), matching what SketchAllTiles over
  /// the completed window region would produce.
  std::vector<Sketch> SketchesInGridOrder() const;

  /// Same order, but sharing ownership of the stored sketches — successor
  /// serve::Snapshot generations hold these pointers so surviving tiles are
  /// literally the same objects across appends/retires (zero copies, zero
  /// recomputation).
  std::vector<std::shared_ptr<const Sketch>> SketchSharesInGridOrder() const;

  /// Total tile sketches computed since creation. Equals
  /// grid_rows() * (grid_cols() + retired_tile_cols()) — i.e. exactly one
  /// computation per distinct tile ever completed, never more.
  size_t sketches_computed() const { return sketches_computed_; }

 private:
  GrowingTableSketcher(Sketcher sketcher, size_t num_rows, size_t tile_rows,
                       size_t tile_cols);

  /// Sketches tiles of any newly completed tile columns.
  void SketchNewTiles(size_t threads);

  Sketcher sketcher_;
  size_t tile_rows_;
  size_t tile_cols_;
  size_t grid_rows_;
  size_t grid_cols_ = 0;
  size_t retired_tile_cols_ = 0;
  table::Matrix table_;
  /// sketches_[grid_row][grid_col]; shared so snapshot generations can
  /// alias them (see SketchSharesInGridOrder).
  std::vector<std::vector<std::shared_ptr<const Sketch>>> sketches_;
  size_t sketches_computed_ = 0;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_GROWING_H_
