#ifndef TABSKETCH_CORE_LP_DISTANCE_H_
#define TABSKETCH_CORE_LP_DISTANCE_H_

#include <span>

#include "table/matrix.h"

namespace tabsketch::core {

/// Exact Lp distance between two equal-length vectors:
///   ( sum_i |a_i - b_i|^p )^(1/p),  p > 0.
///
/// For p < 1 this is not a metric (the triangle inequality fails) but it is
/// exactly the dissimilarity the paper studies; as p -> 0 it approaches the
/// Hamming distance and strongly discounts outliers. Specialized fast paths
/// are taken for p = 1 and p = 2.
///
/// This routine is the exact baseline that sketching approximates; its cost
/// is linear in the object size, which is what makes comparisons between
/// large subtables expensive (paper Section 1).
double LpDistance(std::span<const double> a, std::span<const double> b,
                  double p);

/// Exact Lp distance between two subtables of identical dimensions,
/// treating each as its row-major linearization.
double LpDistance(const table::TableView& a, const table::TableView& b,
                  double p);

/// Sum of |a_i - b_i|^p without the final 1/p root (the "p-th power" of the
/// distance for p >= 1). Useful when only comparisons are needed, since
/// x -> x^(1/p) is monotone.
double LpDistancePow(std::span<const double> a, std::span<const double> b,
                     double p);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_LP_DISTANCE_H_
