#ifndef TABSKETCH_CORE_ESTIMATOR_H_
#define TABSKETCH_CORE_ESTIMATOR_H_

#include <span>
#include <vector>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "util/result.h"

namespace tabsketch::core {

/// Which estimator turns a pair of sketches into a distance estimate.
enum class EstimatorKind {
  /// Median estimator: median(|s(x)_i - s(y)_i|) / B(p). Valid for every
  /// p in (0, 2] (paper Theorems 1-2).
  kMedian,
  /// L2 estimator: ||s(x) - s(y)||_2 / sqrt(k). Valid only for p = 2, where
  /// sketching reduces to a Johnson-Lindenstrauss projection. Faster than
  /// running a median selection (paper Section 4.4 notes exactly this).
  kL2,
  /// kL2 when p == 2, kMedian otherwise.
  kAuto,
};

/// Estimates the Lp distance between two objects from their sketches.
/// Stateless apart from the cached B(p); safe to share across threads via
/// EstimateWithScratch (Estimate allocates a per-call scratch internally).
class DistanceEstimator {
 public:
  /// Builds an estimator for the family `params`. Resolving kAuto and
  /// checking that kL2 is only used with p = 2 happen here. Computes B(p)
  /// eagerly (Monte-Carlo on first use for fractional p).
  static util::Result<DistanceEstimator> Create(
      const SketchParams& params, EstimatorKind kind = EstimatorKind::kAuto);

  EstimatorKind kind() const { return kind_; }
  double p() const { return p_; }
  /// The scale factor B(p) in use (1 for the L2 estimator).
  double scale() const { return scale_; }

  /// Distance estimate from two sketches of the same family and object
  /// shape. `scratch` is resized as needed; passing the same vector across
  /// calls makes the median path allocation-free.
  double EstimateWithScratch(std::span<const double> a,
                             std::span<const double> b,
                             std::vector<double>* scratch) const;

  /// Convenience overloads that allocate their own scratch.
  double Estimate(std::span<const double> a, std::span<const double> b) const;
  double Estimate(const Sketch& a, const Sketch& b) const;

  /// A distance estimate with a two-sided confidence interval over the
  /// sketch's randomness.
  struct Interval {
    double lower;
    double estimate;
    double upper;
  };

  /// Estimate plus an approximate `confidence` interval (in (0, 1), e.g.
  /// 0.95). Median path: the classic distribution-free order-statistic
  /// interval for a median — ranks k/2 -+ z*sqrt(k)/2 of the |component
  /// differences|, scaled by 1/B(p). L2 path: chi-square interval for the
  /// scale of N(0, D^2) components (Wilson-Hilferty quantile
  /// approximation). Both are asymptotic in k; coverage is verified
  /// empirically in tests.
  Interval EstimateWithInterval(std::span<const double> a,
                                std::span<const double> b, double confidence,
                                std::vector<double>* scratch) const;

 private:
  DistanceEstimator(EstimatorKind kind, double p, double scale)
      : kind_(kind), p_(p), scale_(scale) {}

  EstimatorKind kind_;
  double p_;
  double scale_;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_ESTIMATOR_H_
