#ifndef TABSKETCH_CORE_SKETCH_CACHE_H_
#define TABSKETCH_CORE_SKETCH_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/sketcher.h"
#include "table/tiling.h"

namespace tabsketch::core {

/// Interface over "the sketch of tile `index`" with a pluggable retention
/// policy. Implementations: OnDemandSketchCache (grow-only, unbounded),
/// LruSketchCache (sharded, memory-budgeted), UncachedSketchSource (no
/// retention, the serving baseline) and FixedSketchSource (preloaded, e.g. a
/// SketchSet read from disk). Because every implementation derives its
/// sketches from the same deterministic Sketcher family, callers get
/// bit-identical values whichever policy is plugged in — retention only moves
/// compute cost, never results.
///
/// All implementations are safe for concurrent Get() calls.
class TileSketchCache {
 public:
  virtual ~TileSketchCache() = default;

  /// The sketch of tile `index`. Shared ownership: the returned pointer
  /// stays valid even if the entry is evicted (or the cache cleared)
  /// concurrently.
  virtual std::shared_ptr<const Sketch> Get(size_t index) = 0;

  /// Get() plus per-lookup attribution: sets `*computed` to whether this
  /// lookup computed the sketch (a miss) instead of serving a retained or
  /// preloaded one. The serve path threads these flags into per-request
  /// RequestStats (serve/query_engine.h) so the slow-query log can say
  /// which requests paid compute. The default forwards to Get() and reports
  /// a hit — correct for sources that never compute (FixedSketchSource).
  virtual std::shared_ptr<const Sketch> GetTracked(size_t index,
                                                   bool* computed) {
    *computed = false;
    return Get(index);
  }

  /// Number of tiles addressable through this cache.
  virtual size_t num_tiles() const = 0;

  /// Sketches computed so far (lookups not served from retained entries).
  virtual size_t computed() const = 0;

  /// Lookups served without computing.
  virtual size_t hits() const = 0;
};

/// No retention at all: every Get() sketches the tile afresh. This is the
/// "pay O(k * tile_size) on every comparison" baseline the paper's scenario
/// (2) improves on; the query-cache ablation measures cache policies against
/// it.
class UncachedSketchSource : public TileSketchCache {
 public:
  /// `sketcher` and `grid` must outlive the source.
  UncachedSketchSource(const Sketcher* sketcher, const table::TileGrid* grid)
      : sketcher_(sketcher), grid_(grid) {}

  std::shared_ptr<const Sketch> Get(size_t index) override;
  std::shared_ptr<const Sketch> GetTracked(size_t index,
                                           bool* computed) override {
    *computed = true;  // no retention: every lookup computes
    return Get(index);
  }
  size_t num_tiles() const override { return grid_->num_tiles(); }
  size_t computed() const override {
    return computed_.load(std::memory_order_relaxed);
  }
  size_t hits() const override { return 0; }

 private:
  const Sketcher* sketcher_;
  const table::TileGrid* grid_;
  std::atomic<size_t> computed_{0};
};

/// Serves sketches that were materialized up front (the paper's scenario (1):
/// a precomputed sketch set, typically read back from disk). Every lookup is
/// a hit; nothing is ever computed or evicted.
class FixedSketchSource : public TileSketchCache {
 public:
  explicit FixedSketchSource(std::vector<Sketch> sketches);
  /// Aliasing variant: serves sketches owned elsewhere (the streaming serve
  /// path, where successive snapshot generations share surviving tile
  /// sketches instead of copying them). Every pointer must be non-null.
  explicit FixedSketchSource(
      std::vector<std::shared_ptr<const Sketch>> sketches);

  std::shared_ptr<const Sketch> Get(size_t index) override;
  size_t num_tiles() const override { return sketches_.size(); }
  size_t computed() const override { return 0; }
  size_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::shared_ptr<const Sketch>> sketches_;
  std::atomic<size_t> hits_{0};
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SKETCH_CACHE_H_
