#ifndef TABSKETCH_CORE_SPARSE_KERNEL_H_
#define TABSKETCH_CORE_SPARSE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/sketch_params.h"
#include "table/matrix.h"

namespace tabsketch::core {

/// One random stable matrix of a sparse family, stored as its nonzero
/// entries in row-major order (coordinate layout; rows are short enough that
/// explicit per-row offsets buy nothing over the flat walk).
///
/// Built by walking the same counter-based derivation as StableRandomMatrix
/// and keeping only the support, so Dense() reproduces the bulk matrix
/// bit-for-bit, and any accumulation that visits the nonzeros in storage
/// order matches the dense row-major dot product bit-for-bit as well: the
/// skipped entries are exact zeros, and adding a zero product never changes
/// a finite accumulator.
struct SparseKernel {
  size_t rows = 0;
  size_t cols = 0;
  /// Coordinates and value of nonzero e, sorted by (row, col).
  std::vector<uint32_t> entry_rows;
  std::vector<uint32_t> entry_cols;
  std::vector<double> values;

  size_t nnz() const { return values.size(); }

  /// Scatters the nonzeros into a dense rows x cols matrix. Bit-identical to
  /// StableRandomMatrix for the (params, index, shape) the kernel was built
  /// from.
  table::Matrix Dense() const;
};

/// Extracts the index-th kernel of the family in CSR-style form. Works for
/// any sparsity (a dense family just yields every entry); `params` must be
/// valid and the shape within the 32-bit coordinate range.
SparseKernel SparseStableKernel(const SketchParams& params, size_t index,
                                size_t rows, size_t cols);

/// All k kernels of the family for one shape.
std::vector<SparseKernel> SparseStableKernels(const SketchParams& params,
                                              size_t rows, size_t cols);

/// Valid-mode 2-D cross-correlation against a sparse kernel, O(nnz) per
/// output position:
///   out(i, j) = sum_e values[e] * data(i + entry_rows[e], j + entry_cols[e])
/// Output is (data.rows - rows + 1) x (data.cols - cols + 1); the kernel
/// must fit inside the data. Per output element the contributions accumulate
/// in storage (row-major) order, so the result is bit-identical to
/// fft::CrossCorrelateNaive(data, kernel.Dense()) for finite data.
table::Matrix CrossCorrelateSparse(const table::Matrix& data,
                                   const SparseKernel& kernel);

/// 1-D variant for series sketching; `kernel` must have rows == 1 and fit
/// inside the series.
std::vector<double> CrossCorrelateSparse1D(std::span<const double> series,
                                           const SparseKernel& kernel);

/// Deterministic dense-FFT vs sparse-direct choice for one kernel of an
/// all-positions sketch (DESIGN.md Section 16): direct time-domain work is
/// nnz * positions fused multiply-adds, while riding a shared CorrelationPlan
/// costs one forward + one inverse pass over the padded grid regardless of
/// the kernel, modeled as kFftKernelCostFactor * P * log2(P) with P the
/// padded element count. Depends only on sizes and the kernel's nnz — never
/// on thread count or timing — so path selection (and therefore the output)
/// is reproducible for a given family.
bool PreferSparsePath(size_t nnz, size_t positions, size_t data_rows,
                      size_t data_cols);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SPARSE_KERNEL_H_
