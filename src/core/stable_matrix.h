#ifndef TABSKETCH_CORE_STABLE_MATRIX_H_
#define TABSKETCH_CORE_STABLE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sketch_params.h"
#include "table/matrix.h"

namespace tabsketch::core {

/// Deterministic seed of the index-th random matrix of shape rows x cols in
/// the sketch family identified by `master_seed`. The same (seed, index,
/// shape) always regenerates bit-identical matrices, which is what makes
/// sketches produced in different places (single-tile sketching, FFT sketch
/// fields, pools, saved-and-reloaded runs) mutually comparable.
uint64_t StableMatrixSeed(uint64_t master_seed, size_t index, size_t rows,
                          size_t cols);

/// A single entry R[index](row, col) of the family's random matrix,
/// regenerated in O(1) by counter-based derivation (rng::SampleSparseStableAt
/// on a per-entry seed; with params.sparsity < 1 the same seed also decides
/// support membership, so sparse families keep O(1) random access). Bulk
/// generation (StableRandomMatrix) and CSR extraction (core/sparse_kernel.h)
/// walk exactly this function, so random access, materialized matrices and
/// sparse kernels are bit-identical — the invariant behind O(k) streaming
/// updates (core/updatable_sketch.h).
double StableEntry(const SketchParams& params, size_t index, size_t rows,
                   size_t cols, size_t row, size_t col);

/// Generates the index-th random matrix R[index] of the family: rows x cols
/// entries drawn iid from the symmetric p-stable distribution SaS(params.p)
/// (paper Section 3.3, "pre-processing phase"), gated and rescaled per entry
/// when params.sparsity < 1. `params` must be valid.
table::Matrix StableRandomMatrix(const SketchParams& params, size_t index,
                                 size_t rows, size_t cols);

/// Generates all k matrices of the family for the given shape.
std::vector<table::Matrix> StableRandomMatrices(const SketchParams& params,
                                                size_t rows, size_t cols);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_STABLE_MATRIX_H_
