#ifndef TABSKETCH_CORE_CODE_KERNELS_H_
#define TABSKETCH_CORE_CODE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tabsketch::core::kernels {

/// Reused buffers for the code-distance kernels. One per thread: the median
/// kernels fill `diff` with per-component |a - b| and select by counting
/// into the small histograms, so a warm scratch makes every call
/// allocation-free.
struct CodeScratch {
  std::vector<uint16_t> diff;
  std::vector<uint32_t> hist_hi;
  std::vector<uint32_t> hist_lo0;
  std::vector<uint32_t> hist_lo1;
};

/// Elementwise |a - b| over `k` codes into `*diff` (resized to k, element
/// order preserved). The AVX2 paths widen in-order (cvtepu8/16), so the
/// buffer contents are byte-identical to the scalar fallback — the layout a
/// NEON port must also preserve.
void AbsDiff(const uint8_t* a, const uint8_t* b, size_t k,
             std::vector<uint16_t>* diff);
void AbsDiff(const uint16_t* a, const uint16_t* b, size_t k,
             std::vector<uint16_t>* diff);

/// Median of the `k` integer differences in `diff`, selected by exact
/// counting (one 256-bucket pass for 8-bit diffs, a two-level high/low-byte
/// radix for 16-bit). Even k averages the two middle order statistics, so
/// the result is always an exact x.0 or x.5 — no float accumulation, hence
/// bit-identical across SIMD variants and platforms. k must be > 0.
double MedianOfDiffs8(const uint16_t* diff, size_t k, CodeScratch* scratch);
double MedianOfDiffs16(const uint16_t* diff, size_t k, CodeScratch* scratch);

/// median(|a - b|) over k codes: AbsDiff + MedianOfDiffs.
double MedianAbsDiff(const uint8_t* a, const uint8_t* b, size_t k,
                     CodeScratch* scratch);
double MedianAbsDiff(const uint16_t* a, const uint16_t* b, size_t k,
                     CodeScratch* scratch);

/// sum_i (a_i - b_i)^2 with exact 64-bit integer accumulation (no overflow
/// for any k below 2^32 even at the 16-bit extremes).
uint64_t SumSquaredDiff(const uint8_t* a, const uint8_t* b, size_t k);
uint64_t SumSquaredDiff(const uint16_t* a, const uint16_t* b, size_t k);

/// True when the AVX2 kernel translation unit was compiled in
/// (TABSKETCH_SIMD=ON on an x86-64 toolchain).
bool Avx2CompiledIn();
/// True when the AVX2 kernels are compiled in AND this CPU supports AVX2 —
/// i.e. the dispatched entry points above take the vector path.
bool Avx2Active();

/// Scalar reference implementations, always available. The dispatched entry
/// points above must produce bit-identical results; the code-kernel tests
/// assert exactly that on whatever hardware they run.
namespace scalar {
void AbsDiff8(const uint8_t* a, const uint8_t* b, size_t k, uint16_t* out);
void AbsDiff16(const uint16_t* a, const uint16_t* b, size_t k, uint16_t* out);
uint64_t SumSquaredDiff8(const uint8_t* a, const uint8_t* b, size_t k);
uint64_t SumSquaredDiff16(const uint16_t* a, const uint16_t* b, size_t k);
}  // namespace scalar

}  // namespace tabsketch::core::kernels

#endif  // TABSKETCH_CORE_CODE_KERNELS_H_
