#include "core/sketch_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tabsketch::core {
namespace {

constexpr char kMagic[4] = {'T', 'S', 'K', 'S'};
constexpr uint32_t kVersion = 2;

struct Header {
  char magic[4];
  uint32_t version;
  double p;
  uint64_t k;
  uint64_t seed;
  uint64_t object_rows;
  uint64_t object_cols;
  uint64_t count;
  // v2 appends the family sparsity (FORMATS.md); v1 files end at `count`
  // and imply a dense family (sparsity 1.0).
  double sparsity;
};
constexpr size_t kHeaderBytesV1 = sizeof(Header) - sizeof(double);
static_assert(sizeof(Header) == 64, "TSKS v2 header must be padding-free");

}  // namespace

util::Status WriteSketchSet(const SketchSet& set, const std::string& path) {
  TABSKETCH_RETURN_IF_ERROR(set.params.Validate());
  for (const Sketch& sketch : set.sketches) {
    if (sketch.size() != set.params.k) {
      return util::Status::InvalidArgument(
          "sketch length disagrees with params.k");
    }
  }
  // Temp-file-then-rename, mirroring WriteSketchPool: a crash mid-write must
  // not leave a half-written file that passes the magic check.
  const std::string tmp_path = path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open for writing: " + tmp_path);
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.p = set.params.p;
  header.k = set.params.k;
  header.seed = set.params.seed;
  header.object_rows = set.object_rows;
  header.object_cols = set.object_cols;
  header.count = set.sketches.size();
  header.sparsity = set.params.sparsity;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const Sketch& sketch : set.sketches) {
    out.write(reinterpret_cast<const char*>(sketch.values.data()),
              static_cast<std::streamsize>(sketch.size() * sizeof(double)));
  }
  out.close();
  if (!out) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError("write failed: " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError("cannot rename " + tmp_path + " to " +
                                 path + ": " + ec.message());
  }
  return util::Status::OK();
}

util::Result<SketchSet> ReadSketchSet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header), kHeaderBytesV1);
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::IOError("not a tabsketch sketch set: " + path);
  }
  if (header.version != 1 && header.version != kVersion) {
    std::ostringstream msg;
    msg << "unsupported sketch-set version " << header.version << " in "
        << path;
    return util::Status::IOError(msg.str());
  }
  header.sparsity = 1.0;
  if (header.version >= 2) {
    in.read(reinterpret_cast<char*>(&header.sparsity),
            sizeof(header.sparsity));
    if (!in) {
      return util::Status::IOError("truncated sketch set: " + path);
    }
  }
  const size_t header_bytes =
      header.version >= 2 ? sizeof(header) : kHeaderBytesV1;
  SketchSet set;
  set.params.p = header.p;
  set.params.k = header.k;
  set.params.seed = header.seed;
  set.params.sparsity = header.sparsity;
  TABSKETCH_RETURN_IF_ERROR(set.params.Validate());
  set.object_rows = header.object_rows;
  set.object_cols = header.object_cols;
  // Guard against corrupted counts before allocating: the payload must be
  // exactly count sketches of k doubles (overflow-safe check).
  in.seekg(0, std::ios::end);
  const uint64_t payload_bytes =
      static_cast<uint64_t>(in.tellg()) - header_bytes;
  in.seekg(static_cast<std::streamoff>(header_bytes), std::ios::beg);
  const uint64_t max_doubles = payload_bytes / sizeof(double);
  if (header.count != 0 && header.k > max_doubles / header.count) {
    return util::Status::IOError("corrupt sketch-set header in " + path);
  }
  if (header.count * header.k * sizeof(double) != payload_bytes) {
    return util::Status::IOError("corrupt sketch-set header in " + path);
  }
  set.sketches.resize(header.count);
  for (Sketch& sketch : set.sketches) {
    sketch.values.resize(header.k);
    in.read(reinterpret_cast<char*>(sketch.values.data()),
            static_cast<std::streamsize>(header.k * sizeof(double)));
  }
  if (!in) {
    return util::Status::IOError("truncated sketch set: " + path);
  }
  return set;
}

}  // namespace tabsketch::core
