#ifndef TABSKETCH_CORE_KNN_H_
#define TABSKETCH_CORE_KNN_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/estimator.h"
#include "core/sketcher.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::core {

/// One similarity-search hit.
struct Neighbor {
  size_t index;
  /// Sketch-estimated or exact Lp distance, depending on the producing call.
  double distance;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.index == b.index && a.distance == b.distance;
  }
};

/// Strict weak ordering over neighbors: ascending distance, ties broken by
/// index. A NaN distance (a sketch estimate can be NaN when the underlying
/// data carries NaNs) orders after every real distance — and NaN-vs-NaN falls
/// back to the index tie-break — so the comparator stays a valid strict weak
/// order and sorting with it is never UB.
bool NeighborBefore(const Neighbor& a, const Neighbor& b);

/// The smallest `k` of `all` under NeighborBefore, in sorted order
/// (k is clamped to all.size()).
std::vector<Neighbor> SmallestKNeighbors(std::vector<Neighbor> all, size_t k);

/// SmallestKNeighbors without giving up the vector's storage: partial-sorts
/// `*all` and truncates it to k, keeping its capacity for reuse (the query
/// engine's per-thread workspace leans on this to stay allocation-free
/// across batch requests).
void SmallestKNeighborsInPlace(std::vector<Neighbor>* all, size_t k);

/// The `k` corpus sketches closest to `query` under the estimator, sorted by
/// ascending estimated distance (ties by index). `skip` (if set) excludes
/// one corpus index — pass the query's own index for self-search. The paper
/// frames sketches as serving "any mining or similarity algorithms that use
/// Lp norms"; nearest-neighbor scan over constant-size sketches is the
/// simplest instance: O(corpus * k) regardless of object size.
std::vector<Neighbor> TopKBySketch(const Sketch& query,
                                   std::span<const Sketch> corpus,
                                   const DistanceEstimator& estimator,
                                   size_t k,
                                   std::optional<size_t> skip = std::nullopt);

/// Filter-and-refine search over the tiles of a grid: sketches select
/// `candidates` promising tiles cheaply, exact Lp distances re-rank them and
/// the best `k` are returned with *exact* distances. With candidates >= k
/// modestly above k, recall approaches exhaustive exact search at a fraction
/// of the cost (ablation-benchmarked). Requires:
///   - `sketches[i]` is the sketch of grid tile i in the estimator's family,
///   - candidates >= k, and both <= number of tiles minus one.
util::Result<std::vector<Neighbor>> TopKFilterRefine(
    const table::TileGrid& grid, std::span<const Sketch> sketches,
    const DistanceEstimator& estimator, size_t query_tile, size_t k,
    size_t candidates);

/// Exhaustive exact top-k over grid tiles (the baseline for recall
/// measurements). Excludes the query tile itself.
std::vector<Neighbor> TopKExact(const table::TileGrid& grid, double p,
                                size_t query_tile, size_t k);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_KNN_H_
