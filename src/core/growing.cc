#include "core/growing.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace tabsketch::core {

GrowingTableSketcher::GrowingTableSketcher(Sketcher sketcher, size_t num_rows,
                                           size_t tile_rows, size_t tile_cols)
    : sketcher_(std::move(sketcher)),
      tile_rows_(tile_rows),
      tile_cols_(tile_cols),
      grid_rows_(num_rows / tile_rows),
      table_(num_rows, 0),
      sketches_(grid_rows_) {}

util::Result<GrowingTableSketcher> GrowingTableSketcher::Create(
    const SketchParams& params, size_t num_rows, size_t tile_rows,
    size_t tile_cols) {
  TABSKETCH_ASSIGN_OR_RETURN(Sketcher sketcher, Sketcher::Create(params));
  if (tile_rows == 0 || tile_cols == 0 || tile_rows > num_rows) {
    std::ostringstream msg;
    msg << "tile " << tile_rows << "x" << tile_cols
        << " invalid for a table with " << num_rows << " rows";
    return util::Status::InvalidArgument(msg.str());
  }
  return GrowingTableSketcher(std::move(sketcher), num_rows, tile_rows,
                              tile_cols);
}

util::Status GrowingTableSketcher::AppendColumns(const table::Matrix& piece) {
  if (piece.rows() != table_.rows()) {
    std::ostringstream msg;
    msg << "appended piece has " << piece.rows() << " rows, table has "
        << table_.rows();
    return util::Status::InvalidArgument(msg.str());
  }
  if (piece.cols() == 0) return util::Status::OK();

  // Grow the table (column-axis append implies a rebuild of the row-major
  // storage; the sketching work saved dominates this copy).
  table::Matrix grown(table_.rows(), table_.cols() + piece.cols());
  for (size_t r = 0; r < table_.rows(); ++r) {
    auto old_row = table_.Row(r);
    auto new_row = piece.Row(r);
    auto dst = grown.Row(r);
    std::copy(old_row.begin(), old_row.end(), dst.begin());
    std::copy(new_row.begin(), new_row.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(old_row.size()));
  }
  table_ = std::move(grown);

  SketchNewTiles();
  return util::Status::OK();
}

void GrowingTableSketcher::SketchNewTiles() {
  const size_t completed_cols = table_.cols() / tile_cols_;
  for (size_t gc = grid_cols_; gc < completed_cols; ++gc) {
    for (size_t gr = 0; gr < grid_rows_; ++gr) {
      const table::TableView tile = table_.Window(
          gr * tile_rows_, gc * tile_cols_, tile_rows_, tile_cols_);
      sketches_[gr].push_back(sketcher_.SketchOf(tile));
      ++sketches_computed_;
    }
  }
  grid_cols_ = completed_cols;
}

const Sketch& GrowingTableSketcher::TileSketch(size_t grid_row,
                                               size_t grid_col) const {
  TABSKETCH_CHECK(grid_row < grid_rows_ && grid_col < grid_cols_)
      << "tile (" << grid_row << "," << grid_col << ") out of "
      << grid_rows_ << "x" << grid_cols_;
  return sketches_[grid_row][grid_col];
}

std::vector<Sketch> GrowingTableSketcher::SketchesInGridOrder() const {
  std::vector<Sketch> out;
  out.reserve(num_tiles());
  for (size_t gr = 0; gr < grid_rows_; ++gr) {
    for (size_t gc = 0; gc < grid_cols_; ++gc) {
      out.push_back(sketches_[gr][gc]);
    }
  }
  return out;
}

}  // namespace tabsketch::core
