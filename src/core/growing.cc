#include "core/growing.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"

namespace tabsketch::core {

GrowingTableSketcher::GrowingTableSketcher(Sketcher sketcher, size_t num_rows,
                                           size_t tile_rows, size_t tile_cols)
    : sketcher_(std::move(sketcher)),
      tile_rows_(tile_rows),
      tile_cols_(tile_cols),
      grid_rows_(num_rows / tile_rows),
      table_(num_rows, 0),
      sketches_(grid_rows_) {}

util::Result<GrowingTableSketcher> GrowingTableSketcher::Create(
    const SketchParams& params, size_t num_rows, size_t tile_rows,
    size_t tile_cols) {
  TABSKETCH_ASSIGN_OR_RETURN(Sketcher sketcher, Sketcher::Create(params));
  if (tile_rows == 0 || tile_cols == 0 || tile_rows > num_rows) {
    std::ostringstream msg;
    msg << "tile " << tile_rows << "x" << tile_cols
        << " invalid for a table with " << num_rows << " rows";
    return util::Status::InvalidArgument(msg.str());
  }
  return GrowingTableSketcher(std::move(sketcher), num_rows, tile_rows,
                              tile_cols);
}

util::Status GrowingTableSketcher::AppendColumns(const table::Matrix& piece,
                                                 size_t threads) {
  if (piece.rows() != table_.rows()) {
    std::ostringstream msg;
    msg << "appended piece has " << piece.rows() << " rows, table has "
        << table_.rows();
    return util::Status::InvalidArgument(msg.str());
  }
  if (piece.cols() == 0) return util::Status::OK();

  // Grow the table (column-axis append implies a rebuild of the row-major
  // storage; the sketching work saved dominates this copy).
  table::Matrix grown(table_.rows(), table_.cols() + piece.cols());
  for (size_t r = 0; r < table_.rows(); ++r) {
    auto old_row = table_.Row(r);
    auto new_row = piece.Row(r);
    auto dst = grown.Row(r);
    std::copy(old_row.begin(), old_row.end(), dst.begin());
    std::copy(new_row.begin(), new_row.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(old_row.size()));
  }
  table_ = std::move(grown);

  SketchNewTiles(threads == 0 ? 1 : threads);
  return util::Status::OK();
}

util::Status GrowingTableSketcher::RetireColumns(size_t tile_columns) {
  if (tile_columns > grid_cols_) {
    std::ostringstream msg;
    msg << "cannot retire " << tile_columns << " tile columns, window has "
        << grid_cols_;
    return util::Status::InvalidArgument(msg.str());
  }
  if (tile_columns == 0) return util::Status::OK();

  const size_t dropped_cols = tile_columns * tile_cols_;
  table::Matrix shrunk(table_.rows(), table_.cols() - dropped_cols);
  for (size_t r = 0; r < table_.rows(); ++r) {
    auto old_row = table_.Row(r);
    auto dst = shrunk.Row(r);
    std::copy(old_row.begin() + static_cast<std::ptrdiff_t>(dropped_cols),
              old_row.end(), dst.begin());
  }
  table_ = std::move(shrunk);

  for (auto& row : sketches_) {
    row.erase(row.begin(),
              row.begin() + static_cast<std::ptrdiff_t>(tile_columns));
  }
  grid_cols_ -= tile_columns;
  retired_tile_cols_ += tile_columns;
  return util::Status::OK();
}

void GrowingTableSketcher::SketchNewTiles(size_t threads) {
  const size_t completed_cols = table_.cols() / tile_cols_;
  if (completed_cols <= grid_cols_) return;
  const size_t new_cols = completed_cols - grid_cols_;

  // One job per new tile; results land in fixed slots, so the sketch bytes
  // (deterministic per tile) and their order are identical for any thread
  // count.
  std::vector<std::shared_ptr<const Sketch>> fresh(new_cols * grid_rows_);
  util::ParallelFor(fresh.size(), threads, [&](size_t job) {
    const size_t gc = grid_cols_ + job / grid_rows_;
    const size_t gr = job % grid_rows_;
    const table::TableView tile = table_.Window(
        gr * tile_rows_, gc * tile_cols_, tile_rows_, tile_cols_);
    fresh[job] = std::make_shared<const Sketch>(sketcher_.SketchOf(tile));
  });
  for (size_t job = 0; job < fresh.size(); ++job) {
    sketches_[job % grid_rows_].push_back(std::move(fresh[job]));
    ++sketches_computed_;
  }
  grid_cols_ = completed_cols;
}

const Sketch& GrowingTableSketcher::TileSketch(size_t grid_row,
                                               size_t grid_col) const {
  TABSKETCH_CHECK(grid_row < grid_rows_ && grid_col < grid_cols_)
      << "tile (" << grid_row << "," << grid_col << ") out of "
      << grid_rows_ << "x" << grid_cols_;
  return *sketches_[grid_row][grid_col];
}

std::vector<Sketch> GrowingTableSketcher::SketchesInGridOrder() const {
  std::vector<Sketch> out;
  out.reserve(num_tiles());
  for (size_t gr = 0; gr < grid_rows_; ++gr) {
    for (size_t gc = 0; gc < grid_cols_; ++gc) {
      out.push_back(*sketches_[gr][gc]);
    }
  }
  return out;
}

std::vector<std::shared_ptr<const Sketch>>
GrowingTableSketcher::SketchSharesInGridOrder() const {
  std::vector<std::shared_ptr<const Sketch>> out;
  out.reserve(num_tiles());
  for (size_t gr = 0; gr < grid_rows_; ++gr) {
    for (size_t gc = 0; gc < grid_cols_; ++gc) {
      out.push_back(sketches_[gr][gc]);
    }
  }
  return out;
}

}  // namespace tabsketch::core
