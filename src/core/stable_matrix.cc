#include "core/stable_matrix.h"

#include "rng/splitmix64.h"
#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "util/logging.h"

namespace tabsketch::core {

uint64_t StableMatrixSeed(uint64_t master_seed, size_t index, size_t rows,
                          size_t cols) {
  // Mix the shape and index into distinct substream seeds. Shapes and indices
  // are far below 2^21, so the packed word is collision-free.
  const uint64_t shape_tag = (static_cast<uint64_t>(rows) << 42) ^
                             (static_cast<uint64_t>(cols) << 21) ^
                             static_cast<uint64_t>(index);
  return rng::MixSeeds(master_seed, shape_tag);
}

double StableEntry(const SketchParams& params, size_t index, size_t rows,
                   size_t cols, size_t row, size_t col) {
  TABSKETCH_DCHECK(row < rows && col < cols)
      << "(" << row << "," << col << ") out of " << rows << "x" << cols;
  const uint64_t matrix_seed =
      StableMatrixSeed(params.seed, index, rows, cols);
  const uint64_t entry_seed = rng::MixSeeds(
      matrix_seed, static_cast<uint64_t>(row) * cols + col);
  return rng::SampleSparseStableAt(params.p, params.sparsity, entry_seed);
}

table::Matrix StableRandomMatrix(const SketchParams& params, size_t index,
                                 size_t rows, size_t cols) {
  TABSKETCH_CHECK(params.Validate().ok()) << params.Validate();
  TABSKETCH_CHECK(index < params.k) << "matrix index " << index
                                    << " out of range k=" << params.k;
  // Walks the counter-based per-entry derivation so that bulk matrices and
  // StableEntry random access agree bit-for-bit.
  const uint64_t matrix_seed =
      StableMatrixSeed(params.seed, index, rows, cols);
  table::Matrix out(rows, cols);
  uint64_t counter = 0;
  for (double& value : out.Values()) {
    value = rng::SampleSparseStableAt(params.p, params.sparsity,
                                      rng::MixSeeds(matrix_seed, counter++));
  }
  return out;
}

std::vector<table::Matrix> StableRandomMatrices(const SketchParams& params,
                                                size_t rows, size_t cols) {
  std::vector<table::Matrix> out;
  out.reserve(params.k);
  for (size_t i = 0; i < params.k; ++i) {
    out.push_back(StableRandomMatrix(params, i, rows, cols));
  }
  return out;
}

}  // namespace tabsketch::core
