#include "core/pool_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "table/matrix.h"

namespace tabsketch::core {
namespace {

constexpr char kMagic[4] = {'T', 'S', 'K', 'P'};
constexpr uint32_t kVersion = 2;

struct Header {
  char magic[4];
  uint32_t version;
  double p;
  uint64_t k;
  uint64_t seed;
  uint64_t data_rows;
  uint64_t data_cols;
  uint64_t num_fields;
  // v2 appends the family sparsity (FORMATS.md); v1 files end at
  // `num_fields` and imply a dense family (sparsity 1.0).
  double sparsity;
};
constexpr size_t kHeaderBytesV1 = sizeof(Header) - sizeof(double);
static_assert(sizeof(Header) == 64, "TSKP v2 header must be padding-free");

struct FieldHeader {
  uint64_t window_rows;
  uint64_t window_cols;
  uint64_t position_rows;
  uint64_t position_cols;
};

}  // namespace

util::Status WriteSketchPool(const SketchPool& pool,
                             const std::string& path) {
  // Write to a sibling temp file and rename into place on success: a crash
  // mid-write must never leave a file at `path` that passes the magic/version
  // check and only fails later as "truncated".
  const std::string tmp_path = path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open for writing: " + tmp_path);
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.p = pool.params().p;
  header.k = pool.params().k;
  header.seed = pool.params().seed;
  header.data_rows = pool.data_rows();
  header.data_cols = pool.data_cols();
  header.num_fields = pool.fields().size();
  header.sparsity = pool.params().sparsity;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  for (const auto& [size, field] : pool.fields()) {
    FieldHeader field_header;
    field_header.window_rows = size.first;
    field_header.window_cols = size.second;
    field_header.position_rows = field.position_rows();
    field_header.position_cols = field.position_cols();
    out.write(reinterpret_cast<const char*>(&field_header),
              sizeof(field_header));
    for (size_t i = 0; i < field.k(); ++i) {
      auto values = field.plane(i).Values();
      out.write(reinterpret_cast<const char*>(values.data()),
                static_cast<std::streamsize>(values.size() *
                                             sizeof(double)));
    }
  }
  out.close();
  if (!out) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError("write failed: " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::remove(tmp_path.c_str());
    return util::Status::IOError("cannot rename " + tmp_path + " to " +
                                 path + ": " + ec.message());
  }
  return util::Status::OK();
}

util::Result<SketchPool> ReadSketchPool(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header), kHeaderBytesV1);
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::IOError("not a tabsketch pool: " + path);
  }
  if (header.version != 1 && header.version != kVersion) {
    std::ostringstream msg;
    msg << "unsupported pool version " << header.version << " in " << path;
    return util::Status::IOError(msg.str());
  }
  header.sparsity = 1.0;
  if (header.version >= 2) {
    in.read(reinterpret_cast<char*>(&header.sparsity),
            sizeof(header.sparsity));
    if (!in) {
      return util::Status::IOError("truncated pool file: " + path);
    }
  }
  const size_t header_bytes =
      header.version >= 2 ? sizeof(header) : kHeaderBytesV1;
  SketchParams params{.p = header.p,
                      .k = header.k,
                      .seed = header.seed,
                      .sparsity = header.sparsity};
  TABSKETCH_RETURN_IF_ERROR(params.Validate());

  // Total file size, for overflow-safe allocation guards against corrupted
  // field headers.
  in.seekg(0, std::ios::end);
  const uint64_t file_bytes = static_cast<uint64_t>(in.tellg());
  in.seekg(static_cast<std::streamoff>(header_bytes), std::ios::beg);

  std::map<std::pair<size_t, size_t>, SketchField> fields;
  for (uint64_t f = 0; f < header.num_fields; ++f) {
    FieldHeader field_header;
    in.read(reinterpret_cast<char*>(&field_header), sizeof(field_header));
    if (!in) {
      return util::Status::IOError("truncated pool file: " + path);
    }
    const uint64_t max_positions = file_bytes / sizeof(double);
    if (field_header.position_rows == 0 || field_header.position_cols == 0 ||
        field_header.position_rows >
            max_positions / field_header.position_cols) {
      return util::Status::IOError("corrupt pool field header in " + path);
    }
    // Window dims must be sane too: non-zero, within the table, and
    // consistent with the declared position counts (all-positions fields
    // always span data - window + 1 positions per axis). A corrupt header
    // must not reach SketchField construction.
    if (field_header.window_rows == 0 || field_header.window_cols == 0 ||
        field_header.window_rows > header.data_rows ||
        field_header.window_cols > header.data_cols ||
        field_header.position_rows !=
            header.data_rows - field_header.window_rows + 1 ||
        field_header.position_cols !=
            header.data_cols - field_header.window_cols + 1) {
      return util::Status::IOError("corrupt pool field header in " + path);
    }
    std::vector<table::Matrix> planes;
    planes.reserve(params.k);
    for (uint64_t i = 0; i < params.k; ++i) {
      std::vector<double> values(field_header.position_rows *
                                 field_header.position_cols);
      in.read(reinterpret_cast<char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(double)));
      if (!in) {
        return util::Status::IOError("truncated pool file: " + path);
      }
      planes.emplace_back(field_header.position_rows,
                          field_header.position_cols, std::move(values));
    }
    fields.emplace(
        std::make_pair(field_header.window_rows, field_header.window_cols),
        SketchField(field_header.window_rows, field_header.window_cols,
                    std::move(planes)));
  }
  return SketchPool::FromParts(params, header.data_rows, header.data_cols,
                               std::move(fields));
}

}  // namespace tabsketch::core
