#include "core/code_kernels.h"

#include <cstdlib>

#include "util/logging.h"

#if defined(TABSKETCH_HAVE_AVX2)
#include "core/code_kernels_avx2.h"
#endif

namespace tabsketch::core::kernels {

namespace scalar {

void AbsDiff8(const uint8_t* a, const uint8_t* b, size_t k, uint16_t* out) {
  for (size_t i = 0; i < k; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    out[i] = static_cast<uint16_t>(d < 0 ? -d : d);
  }
}

void AbsDiff16(const uint16_t* a, const uint16_t* b, size_t k,
               uint16_t* out) {
  for (size_t i = 0; i < k; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    out[i] = static_cast<uint16_t>(d < 0 ? -d : d);
  }
}

uint64_t SumSquaredDiff8(const uint8_t* a, const uint8_t* b, size_t k) {
  uint64_t sum = 0;
  for (size_t i = 0; i < k; ++i) {
    const int64_t d = static_cast<int64_t>(a[i]) - static_cast<int64_t>(b[i]);
    sum += static_cast<uint64_t>(d * d);
  }
  return sum;
}

uint64_t SumSquaredDiff16(const uint16_t* a, const uint16_t* b, size_t k) {
  uint64_t sum = 0;
  for (size_t i = 0; i < k; ++i) {
    const int64_t d = static_cast<int64_t>(a[i]) - static_cast<int64_t>(b[i]);
    sum += static_cast<uint64_t>(d * d);
  }
  return sum;
}

}  // namespace scalar

bool Avx2CompiledIn() {
#if defined(TABSKETCH_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Active() {
#if defined(TABSKETCH_HAVE_AVX2)
  static const bool active = __builtin_cpu_supports("avx2") > 0;
  return active;
#else
  return false;
#endif
}

void AbsDiff(const uint8_t* a, const uint8_t* b, size_t k,
             std::vector<uint16_t>* diff) {
  diff->resize(k);
#if defined(TABSKETCH_HAVE_AVX2)
  if (Avx2Active()) {
    avx2::AbsDiff8(a, b, k, diff->data());
    return;
  }
#endif
  scalar::AbsDiff8(a, b, k, diff->data());
}

void AbsDiff(const uint16_t* a, const uint16_t* b, size_t k,
             std::vector<uint16_t>* diff) {
  diff->resize(k);
#if defined(TABSKETCH_HAVE_AVX2)
  if (Avx2Active()) {
    avx2::AbsDiff16(a, b, k, diff->data());
    return;
  }
#endif
  scalar::AbsDiff16(a, b, k, diff->data());
}

uint64_t SumSquaredDiff(const uint8_t* a, const uint8_t* b, size_t k) {
#if defined(TABSKETCH_HAVE_AVX2)
  if (Avx2Active()) return avx2::SumSquaredDiff8(a, b, k);
#endif
  return scalar::SumSquaredDiff8(a, b, k);
}

uint64_t SumSquaredDiff(const uint16_t* a, const uint16_t* b, size_t k) {
#if defined(TABSKETCH_HAVE_AVX2)
  if (Avx2Active()) return avx2::SumSquaredDiff16(a, b, k);
#endif
  return scalar::SumSquaredDiff16(a, b, k);
}

namespace {

/// The value holding the r0-th and r1-th order statistics (0-based,
/// r0 <= r1, both < total count) of a 256-bucket count histogram, averaged.
/// Selection over exact integer counts: deterministic however the counts
/// were produced.
double SelectPairFromHistogram(const uint32_t* hist, size_t r0, size_t r1) {
  size_t cumulative = 0;
  size_t v0 = 256;  // sentinel: "not found yet"
  for (size_t value = 0; value < 256; ++value) {
    cumulative += hist[value];
    if (v0 == 256 && cumulative > r0) v0 = value;
    if (cumulative > r1) {
      return 0.5 * static_cast<double>(v0 + value);
    }
  }
  TABSKETCH_CHECK(false);  // ranks were < total count by construction
  std::abort();
}

}  // namespace

double MedianOfDiffs8(const uint16_t* diff, size_t k, CodeScratch* scratch) {
  TABSKETCH_CHECK(k > 0);
  scratch->hist_hi.assign(256, 0);
  uint32_t* hist = scratch->hist_hi.data();
  for (size_t i = 0; i < k; ++i) ++hist[diff[i]];
  return SelectPairFromHistogram(hist, (k - 1) / 2, k / 2);
}

double MedianOfDiffs16(const uint16_t* diff, size_t k, CodeScratch* scratch) {
  TABSKETCH_CHECK(k > 0);
  const size_t r0 = (k - 1) / 2;
  const size_t r1 = k / 2;

  // Pass 1: histogram of high bytes locates the bucket(s) holding the two
  // middle order statistics.
  scratch->hist_hi.assign(256, 0);
  uint32_t* hi = scratch->hist_hi.data();
  for (size_t i = 0; i < k; ++i) ++hi[diff[i] >> 8];
  size_t cumulative = 0;
  size_t bucket0 = 256, bucket1 = 256;
  size_t rank0 = 0, rank1 = 0;  // ranks within their buckets
  for (size_t bucket = 0; bucket < 256; ++bucket) {
    const size_t next = cumulative + hi[bucket];
    if (bucket0 == 256 && next > r0) {
      bucket0 = bucket;
      rank0 = r0 - cumulative;
    }
    if (next > r1) {
      bucket1 = bucket;
      rank1 = r1 - cumulative;
      break;
    }
    cumulative = next;
  }
  TABSKETCH_CHECK(bucket0 < 256 && bucket1 < 256);

  // Pass 2: low-byte histograms for just the bucket(s) that matter.
  scratch->hist_lo0.assign(256, 0);
  uint32_t* lo0 = scratch->hist_lo0.data();
  uint32_t* lo1 = lo0;
  if (bucket1 != bucket0) {
    scratch->hist_lo1.assign(256, 0);
    lo1 = scratch->hist_lo1.data();
  }
  for (size_t i = 0; i < k; ++i) {
    const size_t high = diff[i] >> 8;
    if (high == bucket0) {
      ++lo0[diff[i] & 0xff];
    } else if (high == bucket1) {
      ++lo1[diff[i] & 0xff];
    }
  }
  auto low_select = [](const uint32_t* lo, size_t rank) -> size_t {
    size_t seen = 0;
    for (size_t value = 0; value < 256; ++value) {
      seen += lo[value];
      if (seen > rank) return value;
    }
    TABSKETCH_CHECK(false);
    std::abort();
  };
  const size_t v0 = (bucket0 << 8) | low_select(lo0, rank0);
  const size_t v1 = (bucket1 << 8) | low_select(lo1, rank1);
  return 0.5 * static_cast<double>(v0 + v1);
}

double MedianAbsDiff(const uint8_t* a, const uint8_t* b, size_t k,
                     CodeScratch* scratch) {
  AbsDiff(a, b, k, &scratch->diff);
  return MedianOfDiffs8(scratch->diff.data(), k, scratch);
}

double MedianAbsDiff(const uint16_t* a, const uint16_t* b, size_t k,
                     CodeScratch* scratch) {
  AbsDiff(a, b, k, &scratch->diff);
  return MedianOfDiffs16(scratch->diff.data(), k, scratch);
}

}  // namespace tabsketch::core::kernels
