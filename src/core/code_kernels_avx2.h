#ifndef TABSKETCH_CORE_CODE_KERNELS_AVX2_H_
#define TABSKETCH_CORE_CODE_KERNELS_AVX2_H_

// Internal declarations for the AVX2 kernel translation unit
// (code_kernels_avx2.cc, compiled with -mavx2). Only code_kernels.cc may
// include this header, and only under TABSKETCH_HAVE_AVX2 — the symbols do
// not exist in a TABSKETCH_SIMD=OFF build.

#include <cstddef>
#include <cstdint>

namespace tabsketch::core::kernels::avx2 {

void AbsDiff8(const uint8_t* a, const uint8_t* b, size_t k, uint16_t* out);
void AbsDiff16(const uint16_t* a, const uint16_t* b, size_t k, uint16_t* out);
uint64_t SumSquaredDiff8(const uint8_t* a, const uint8_t* b, size_t k);
uint64_t SumSquaredDiff16(const uint16_t* a, const uint16_t* b, size_t k);

}  // namespace tabsketch::core::kernels::avx2

#endif  // TABSKETCH_CORE_CODE_KERNELS_AVX2_H_
