#ifndef TABSKETCH_CORE_ONDEMAND_H_
#define TABSKETCH_CORE_ONDEMAND_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/sketch_cache.h"
#include "core/sketcher.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::core {

/// Lazily materialized sketches for the tiles of a TileGrid — the paper's
/// scenario (2): "sketches are not available and so they have to be computed
/// on demand", then stored for reuse, so the first comparison of a tile pays
/// O(k * tile_size) and every later comparison pays O(k).
///
/// Grow-only and unbounded: once computed, a sketch stays resident until
/// Clear(). For serving workloads that must bound memory, use the
/// LruSketchCache sibling behind the shared TileSketchCache interface.
///
/// Thread-safe: each slot is filled exactly once under a per-slot
/// std::once_flag, so concurrent ForTile calls (the parallel k-means
/// assignment loop) are safe and the cached sketch is bit-identical no matter
/// which thread computed it. Clear() requires exclusive access. The grid and
/// the sketcher must outlive the cache.
class OnDemandSketchCache : public TileSketchCache {
 public:
  OnDemandSketchCache(const Sketcher* sketcher, const table::TileGrid* grid)
      : sketcher_(sketcher),
        grid_(grid),
        sketches_(grid->num_tiles()),
        once_(grid->num_tiles()) {}

  /// The sketch of tile `index`, computing and caching it on first access.
  /// Safe to call concurrently; the returned reference stays valid until
  /// Clear().
  const Sketch& ForTile(size_t index);

  /// TileSketchCache interface: same lookup with shared ownership.
  std::shared_ptr<const Sketch> Get(size_t index) override;
  std::shared_ptr<const Sketch> GetTracked(size_t index,
                                           bool* computed) override;

  size_t num_tiles() const override { return sketches_.size(); }

  /// Number of sketches computed so far (cache misses).
  size_t computed() const override {
    return computed_.load(std::memory_order_relaxed);
  }
  /// Number of lookups served from the cache.
  size_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }

  /// Drops all cached sketches and counters. Not safe to call concurrently
  /// with ForTile.
  void Clear();

 private:
  /// Fills slot `index` if this is the first access; bumps hit/miss tallies.
  /// Returns whether this call computed the sketch (a miss).
  bool Materialize(size_t index);

  const Sketcher* sketcher_;
  const table::TileGrid* grid_;
  // Shared ownership per slot so Get() survives a concurrent Clear().
  std::vector<std::shared_ptr<const Sketch>> sketches_;
  // One flag per slot; a vector (not deque) is fine because the slot count
  // is fixed at construction and Clear() replaces the whole vector.
  std::vector<std::once_flag> once_;
  std::atomic<size_t> computed_{0};
  std::atomic<size_t> hits_{0};
};

/// Eagerly sketches every tile of `grid` — the paper's scenario (1), where
/// sketch construction is a separately-timed preprocessing phase.
std::vector<Sketch> SketchAllTiles(const Sketcher& sketcher,
                                   const table::TileGrid& grid);

/// SketchAllTiles distributed over `threads` worker threads (tiles are
/// independent and Sketcher is thread-safe). Identical output to the
/// sequential version for any thread count.
std::vector<Sketch> SketchAllTilesParallel(const Sketcher& sketcher,
                                           const table::TileGrid& grid,
                                           size_t threads);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_ONDEMAND_H_
