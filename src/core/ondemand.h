#ifndef TABSKETCH_CORE_ONDEMAND_H_
#define TABSKETCH_CORE_ONDEMAND_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "core/sketcher.h"
#include "table/tiling.h"
#include "util/result.h"

namespace tabsketch::core {

/// Lazily materialized sketches for the tiles of a TileGrid — the paper's
/// scenario (2): "sketches are not available and so they have to be computed
/// on demand", then stored for reuse, so the first comparison of a tile pays
/// O(k * tile_size) and every later comparison pays O(k).
///
/// Not thread-safe (the clustering loop is sequential). The grid and the
/// sketcher must outlive the cache.
class OnDemandSketchCache {
 public:
  OnDemandSketchCache(const Sketcher* sketcher, const table::TileGrid* grid)
      : sketcher_(sketcher),
        grid_(grid),
        sketches_(grid->num_tiles()) {}

  /// The sketch of tile `index`, computing and caching it on first access.
  const Sketch& ForTile(size_t index);

  /// Number of sketches computed so far (cache misses).
  size_t computed() const { return computed_; }
  /// Number of ForTile calls served from the cache.
  size_t hits() const { return hits_; }

  /// Drops all cached sketches and counters.
  void Clear();

 private:
  const Sketcher* sketcher_;
  const table::TileGrid* grid_;
  std::vector<std::optional<Sketch>> sketches_;
  size_t computed_ = 0;
  size_t hits_ = 0;
};

/// Eagerly sketches every tile of `grid` — the paper's scenario (1), where
/// sketch construction is a separately-timed preprocessing phase.
std::vector<Sketch> SketchAllTiles(const Sketcher& sketcher,
                                   const table::TileGrid& grid);

/// SketchAllTiles distributed over `threads` worker threads (tiles are
/// independent and Sketcher is thread-safe). Identical output to the
/// sequential version for any thread count.
std::vector<Sketch> SketchAllTilesParallel(const Sketcher& sketcher,
                                           const table::TileGrid& grid,
                                           size_t threads);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_ONDEMAND_H_
