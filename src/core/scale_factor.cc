#include "core/scale_factor.h"

#include <cmath>
#include <map>
#include <mutex>
#include <vector>

#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "util/logging.h"
#include "util/median.h"

namespace tabsketch::core {
namespace {

// Median of |N(0,1)|: Phi^-1(0.75).
constexpr double kMedianAbsGaussian = 0.6744897501960817;

// Fixed seed so B(p) is identical across processes and runs.
constexpr uint64_t kScaleFactorSeed = 0x5ca1eFac7012345ULL;

double ComputeByMonteCarlo(double p, size_t samples) {
  auto sampler = rng::StableSampler::Create(p);
  TABSKETCH_CHECK(sampler.ok()) << sampler.status();
  rng::Xoshiro256 gen(kScaleFactorSeed);
  std::vector<double> draws(samples);
  for (double& draw : draws) {
    draw = std::fabs(sampler->Sample(gen));
  }
  return util::MedianInPlace(draws);
}

}  // namespace

double MedianAbsStable(double p, size_t samples) {
  TABSKETCH_CHECK(p > 0.0 && p <= 2.0) << "p must be in (0, 2], got " << p;
  TABSKETCH_CHECK(samples > 0);
  if (p == 1.0) return 1.0;
  if (p == 2.0) return kMedianAbsGaussian;

  // Function-local static pointer: intentionally leaked so the cache has a
  // trivial destructor (static-storage rule).
  static std::mutex* mutex = new std::mutex;
  static auto* cache = new std::map<std::pair<double, size_t>, double>;
  const auto key = std::make_pair(p, samples);
  {
    std::lock_guard<std::mutex> lock(*mutex);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  const double value = ComputeByMonteCarlo(p, samples);
  {
    std::lock_guard<std::mutex> lock(*mutex);
    cache->emplace(key, value);
  }
  return value;
}

}  // namespace tabsketch::core
