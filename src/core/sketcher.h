#ifndef TABSKETCH_CORE_SKETCHER_H_
#define TABSKETCH_CORE_SKETCHER_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/sketch_params.h"
#include "core/sparse_kernel.h"
#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::fft {
class CorrelationPlan;
}  // namespace tabsketch::fft

namespace tabsketch::core {

/// An Lp sketch: the k dot products of one object (a subtable, linearized
/// row-major) with the k random stable matrices of a sketch family
/// (paper Section 3.2). Constant-size regardless of the object's size —
/// that is the entire point.
struct Sketch {
  std::vector<double> values;

  size_t size() const { return values.size(); }

  /// Component-wise sum, used to assemble compound sketches (Definition 4)
  /// and, via linearity of the dot product, sketches of sums of objects.
  void Add(const Sketch& other);

  /// Multiplies every component by `factor` (linearity: the sketch of c*X is
  /// c*sketch(X)), used e.g. for centroid sketches as means of member
  /// sketches.
  void Scale(double factor);
};

/// Which all-positions algorithm to use (paper Section 3.3).
enum class SketchAlgorithm {
  /// Direct dot products at every position: O(k N M).
  kNaive,
  /// FFT cross-correlation: O(k N log M) (Theorem 3).
  kFft,
  /// Per-kernel predicted-cost choice between the FFT path and the O(nnz)
  /// sparse-direct path (core/sparse_kernel.h). For dense families
  /// (sparsity = 1) this is exactly kFft; the decision depends only on
  /// sizes and each kernel's nnz, never on threads, so results stay
  /// bit-identical across thread counts.
  kAuto,
};

/// All-positions sketch data for one window shape over one table: plane i
/// holds, at (r, c), the dot product of R[i] with the window whose top-left
/// corner is (r, c). SketchAt gathers one position's k values into a Sketch.
class SketchField {
 public:
  SketchField(size_t window_rows, size_t window_cols,
              std::vector<table::Matrix> planes);

  size_t window_rows() const { return window_rows_; }
  size_t window_cols() const { return window_cols_; }
  /// Number of valid window positions per dimension.
  size_t position_rows() const { return planes_.front().rows(); }
  size_t position_cols() const { return planes_.front().cols(); }
  size_t k() const { return planes_.size(); }

  const table::Matrix& plane(size_t i) const { return planes_[i]; }

  /// The sketch of the window anchored at (row, col).
  Sketch SketchAt(size_t row, size_t col) const;

  /// Appends the window's sketch values at (row, col) component-wise into
  /// `sum->values` (which must have size k). Allocation-free accumulation
  /// path for compound sketches.
  void AccumulateAt(size_t row, size_t col, Sketch* sum) const;

 private:
  size_t window_rows_;
  size_t window_cols_;
  std::vector<table::Matrix> planes_;
};

/// Produces Lp sketches for a fixed parameter family. The random stable
/// matrices for each window shape are generated deterministically from the
/// family seed on first use and cached, so every Sketcher (and SketchPool)
/// with equal params yields mutually comparable sketches.
///
/// Thread-safe for concurrent SketchOf calls.
class Sketcher {
 public:
  /// Validates `params` and builds a sketcher.
  static util::Result<Sketcher> Create(const SketchParams& params);

  Sketcher(Sketcher&&) = default;
  Sketcher& operator=(Sketcher&&) = default;

  const SketchParams& params() const { return params_; }

  /// Sketch of a single subtable: O(k * size) dense dot products — the
  /// "sketch on demand" cost of the paper's clustering scenario (2) — or
  /// O(k * nnz) sparse-kernel walks when the family's sparsity < 1,
  /// bit-identical to the dense walk (the skipped entries are exact zeros).
  Sketch SketchOf(const table::TableView& view) const;

  /// Sketches of all positions of a (window_rows x window_cols) window over
  /// `data` (paper Theorem 3). The FFT path and the naive path agree to
  /// floating-point rounding. The k per-kernel correlations are independent
  /// and fan out over `threads` workers; the result is bit-identical for
  /// every thread count. Returns InvalidArgument if the window is empty or
  /// does not fit the table.
  util::Result<SketchField> SketchAllPositions(const table::Matrix& data,
                                               size_t window_rows,
                                               size_t window_cols,
                                               SketchAlgorithm algorithm,
                                               size_t threads = 1) const;

  /// FFT-path SketchAllPositions against a caller-provided plan, so one
  /// forward FFT of the data can be shared across many window shapes (the
  /// dyadic pool build constructs the plan once for all canonical sizes).
  /// The plan must have been built over the same table the windows address.
  /// Returns InvalidArgument if the window is empty or does not fit.
  util::Result<SketchField> SketchAllPositions(
      const fft::CorrelationPlan& plan, size_t window_rows,
      size_t window_cols, size_t threads = 1) const;

  /// The k random matrices for a window shape (cached).
  const std::vector<table::Matrix>& MatricesFor(size_t rows,
                                                size_t cols) const;

  /// The k kernels of a window shape in sparse CSR-style form (cached).
  /// Bit-identical in content to MatricesFor (same derivation, zeros
  /// dropped); only worth storing for sparse families.
  const std::vector<SparseKernel>& SparseKernelsFor(size_t rows,
                                                    size_t cols) const;

 private:
  // Shape-keyed cache of generated stable matrices, shared so that Sketcher
  // remains cheap to move while the cache (which can hold tens of MB for
  // large windows) is built once.
  struct MatrixCache {
    std::mutex mutex;
    std::map<std::pair<size_t, size_t>,
             std::shared_ptr<const std::vector<table::Matrix>>>
        entries;
    std::map<std::pair<size_t, size_t>,
             std::shared_ptr<const std::vector<SparseKernel>>>
        sparse_entries;
  };

  explicit Sketcher(const SketchParams& params);

  SketchParams params_;
  std::shared_ptr<MatrixCache> cache_;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SKETCHER_H_
