#ifndef TABSKETCH_CORE_QUANTIZED_SKETCH_H_
#define TABSKETCH_CORE_QUANTIZED_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/code_kernels.h"
#include "core/estimator.h"
#include "core/sketch_cache.h"
#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "util/result.h"
#include "util/status.h"

namespace tabsketch::core {

/// The quantized filter tier a code scan runs over: off, or 8-/16-bit codes
/// with a per-pool affine map (see QuantizedCodePool).
enum class QuantKind : uint8_t {
  kOff = 0,
  kInt8 = 1,
  kInt16 = 2,
};

/// Parses "off" / "int8" / "int16" (the `--quant=` flag values).
util::Result<QuantKind> ParseQuantKind(const std::string& text);
const char* QuantKindName(QuantKind kind);
/// Bytes per stored code: 1 (int8), 2 (int16), 0 (off).
size_t QuantCodeBytes(QuantKind kind);

/// The codes of one external sketch (a k-means centroid) quantized against a
/// pool's affine map. `usable` is false when the vector cannot be encoded
/// exactly within the pool's error bound (a non-finite component, or a value
/// outside the pool's range by more than half a quantization step); an
/// unusable vector's code distances are NaN, which the prefilters treat as
/// "always a candidate" — correctness never depends on encodability.
struct QuantizedVector {
  bool usable = false;
  /// k codes in the pool's width (1 or 2 bytes each, little-endian layout
  /// identical to the pool rows).
  std::vector<unsigned char> codes;
};

/// All tile sketches of a pool packed into integer codes under one affine
/// map: value ~= offset + scale * code, with offset = min finite component
/// and scale = (max - min) / (levels - 1) over the whole pool. Differences
/// cancel the offset, so a code distance is scale * (integer kernel result)
/// and the absolute error of any estimate reconstructed from codes is at
/// most `scale` (DESIGN.md §13 derives the bound); Slack() turns that into
/// the safe over-fetch margin the byte-identical filter-refine paths use.
///
/// Deterministic by construction: sketches are deterministic, the map is
/// derived from exact min/max scans, and encoding uses llround — the same
/// table and params always produce the same bytes (golden-tested).
/// Immutable after Build, so concurrent readers need no synchronization.
class QuantizedCodePool {
 public:
  /// Builds the code tier for every tile reachable through `cache` in two
  /// passes (min/max + flags, then encode). Passing each tile through the
  /// cache keeps peak memory bounded under an LRU budget; with a warm or
  /// fixed source the passes are pure reads. `kind` must not be kOff.
  static util::Result<QuantizedCodePool> Build(TileSketchCache* cache,
                                               QuantKind kind,
                                               const SketchParams& params,
                                               size_t object_rows,
                                               size_t object_cols);

  /// Build over an in-memory sketch span (the reload path, before the set
  /// moves into a FixedSketchSource).
  static util::Result<QuantizedCodePool> BuildFromSketches(
      std::span<const Sketch> sketches, QuantKind kind,
      const SketchParams& params, size_t object_rows, size_t object_cols);

  /// Build over any "sketch of tile i" getter (the streaming-ingest path,
  /// where window sketches live behind shared pointers).
  static util::Result<QuantizedCodePool> BuildFromGetter(
      const std::function<std::span<const double>(size_t)>& sketch_of,
      size_t count, QuantKind kind, const SketchParams& params,
      size_t object_rows, size_t object_cols);

  /// Marks "this window tile has no predecessor" in BuildSuccessor's
  /// base_of mapping.
  static constexpr size_t kNewTile = static_cast<size_t>(-1);

  /// Builds the successor pool of `base` for a slid window of
  /// `base_of.size()` tiles: surviving tile i copies its code row and
  /// usability flag from base tile base_of[i] (kNewTile marks a tile with
  /// no predecessor), and new tiles are encoded under the base's affine
  /// map when every finite component fits the base's representable range.
  /// When a new tile's values fall outside that range (the pool range
  /// grew), the whole window is re-encoded under a fresh map instead —
  /// `*rebuilt_map` reports which path was taken. Either way the map
  /// remains valid (per-component error <= scale/2 for every usable tile),
  /// so filter-refine answers derived via Slack() stay byte-identical to a
  /// from-scratch build (DESIGN.md §14); only after a retire-driven range
  /// shrink may the reused map be wider — and therefore the code *bytes*
  /// differ from a cold rebuild — without affecting any answer.
  /// `sketch_of` must cover every window tile (it is consulted for new
  /// tiles, and for all tiles on the rebuild path).
  static util::Result<QuantizedCodePool> BuildSuccessor(
      const QuantizedCodePool& base,
      const std::function<std::span<const double>(size_t)>& sketch_of,
      std::span<const size_t> base_of, bool* rebuilt_map);

  QuantKind kind() const { return kind_; }
  size_t count() const { return count_; }
  size_t k() const { return k_; }
  double scale() const { return scale_; }
  double offset() const { return offset_; }
  const SketchParams& params() const { return params_; }
  size_t object_rows() const { return object_rows_; }
  size_t object_cols() const { return object_cols_; }

  /// False when tile `i`'s sketch has a non-finite component; its code row
  /// is all zeros and every code distance involving it is NaN.
  bool tile_usable(size_t i) const { return usable_[i] != 0; }

  /// Code-space distance between tiles `a` and `b`, in the same units as the
  /// raw sketch statistic: scale * median(|code diffs|) (l2 == false) or
  /// scale * sqrt(mean squared code diff) (l2 == true). Divide by
  /// DistanceEstimator::scale() to compare against estimator output. NaN
  /// when either tile is unusable.
  double CodeEstimate(size_t a, size_t b, bool l2,
                      kernels::CodeScratch* scratch) const;

  /// CodeEstimate between tile `a` and an external quantized vector (NaN
  /// when the vector is not usable).
  double CodeEstimateAgainst(size_t a, const QuantizedVector& other, bool l2,
                             kernels::CodeScratch* scratch) const;

  /// Encodes an external sketch (e.g. a sketch-space centroid) with this
  /// pool's map. Returns usable=false if any component is non-finite or
  /// outside the pool's value range by more than scale/2 — the bound below
  /// would not hold for such a vector, so it must stay an unconditional
  /// candidate.
  QuantizedVector Quantize(std::span<const double> values) const;

  /// The guaranteed bound on |estimator estimate - CodeEstimate/est.scale()|
  /// for usable operands: scale / est.scale(), padded by a 1e-6 relative
  /// safety factor that dominates every floating-point rounding term in the
  /// comparison (DESIGN.md §13). Filter thresholds built with this slack
  /// keep every tile the full scan could rank ahead — the byte-identity
  /// guarantee.
  double Slack(const DistanceEstimator& estimator) const;

  /// Exact bytes of the code + flag arrays (the accounting serve::Snapshot
  /// subtracts from the LRU sketch budget, and quant.pool.bytes reports).
  size_t bytes() const { return PoolBytes(kind_, count_, k_); }
  static size_t PoolBytes(QuantKind kind, size_t count, size_t k) {
    return count * k * QuantCodeBytes(kind) + count;
  }

  /// Raw storage, for serialization and byte-stability tests.
  const std::vector<unsigned char>& raw_codes() const { return codes_; }
  const std::vector<uint8_t>& usable_flags() const { return usable_; }

 private:
  friend util::Result<QuantizedCodePool> ReadCodePool(const std::string&);

  QuantizedCodePool() = default;

  /// Shared two-pass build over any "sketch of tile i" getter.
  static util::Result<QuantizedCodePool> BuildImpl(
      const std::function<std::span<const double>(size_t)>& sketch_of,
      size_t count, QuantKind kind, const SketchParams& params,
      size_t object_rows, size_t object_cols);

  const uint8_t* Codes8(size_t i) const {
    return reinterpret_cast<const uint8_t*>(codes_.data()) + i * k_;
  }
  const uint16_t* Codes16(size_t i) const {
    return reinterpret_cast<const uint16_t*>(codes_.data()) + i * k_;
  }
  /// Encodes one finite in-range value (clamped to the code range).
  uint32_t EncodeValue(double value) const;
  /// Max representable code: levels - 1.
  uint32_t MaxCode() const { return kind_ == QuantKind::kInt8 ? 255 : 65535; }
  double CodeDistance(const unsigned char* a, const unsigned char* b, bool l2,
                      kernels::CodeScratch* scratch) const;

  QuantKind kind_ = QuantKind::kOff;
  size_t count_ = 0;
  size_t k_ = 0;
  double scale_ = 0.0;
  double offset_ = 0.0;
  SketchParams params_;
  size_t object_rows_ = 0;
  size_t object_cols_ = 0;
  /// count * k codes, row-major, in the kind's width (native little-endian).
  std::vector<unsigned char> codes_;
  /// One flag per tile (1 = usable).
  std::vector<uint8_t> usable_;
};

/// Writes `pool` to `path` in the TSKQ v1 binary format (docs/FORMATS.md):
/// header (magic, version, kind, params, shape, count, scale, offset), then
/// the usable flags and the code payload. Temp-file + atomic rename like
/// every other tabsketch writer.
util::Status WriteCodePool(const QuantizedCodePool& pool,
                           const std::string& path);

/// Reads a code pool written by WriteCodePool. Corrupt magic/version/kind,
/// inconsistent sizes and truncation are IOError, mirroring ReadSketchPool.
util::Result<QuantizedCodePool> ReadCodePool(const std::string& path);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_QUANTIZED_SKETCH_H_
