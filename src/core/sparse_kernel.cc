#include "core/sparse_kernel.h"

#include <algorithm>
#include <cmath>

#include "core/stable_matrix.h"
#include "rng/splitmix64.h"
#include "rng/stable.h"
#include "util/logging.h"

namespace tabsketch::core {
namespace {

/// Smallest power of two >= n, matching the padding CorrelationPlan applies
/// to the data before its forward transform (computed locally so the cost
/// model stays a pure size function).
size_t NextPowerOfTwoAtLeast(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

table::Matrix SparseKernel::Dense() const {
  table::Matrix out(rows, cols);
  for (size_t e = 0; e < values.size(); ++e) {
    out.At(entry_rows[e], entry_cols[e]) = values[e];
  }
  return out;
}

SparseKernel SparseStableKernel(const SketchParams& params, size_t index,
                                size_t rows, size_t cols) {
  TABSKETCH_CHECK(params.Validate().ok()) << params.Validate();
  TABSKETCH_CHECK(index < params.k)
      << "kernel index " << index << " out of range k=" << params.k;
  TABSKETCH_CHECK(rows <= UINT32_MAX && cols <= UINT32_MAX)
      << "kernel shape exceeds 32-bit coordinates";
  // The same counter walk as StableRandomMatrix: for gated-out entries the
  // sparse sampler only pays the (cheap) gate mix, never a stable draw, so
  // extraction costs O(rows * cols) mixes + O(nnz) stable samples.
  const uint64_t matrix_seed =
      StableMatrixSeed(params.seed, index, rows, cols);
  SparseKernel kernel;
  kernel.rows = rows;
  kernel.cols = cols;
  uint64_t counter = 0;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double value = rng::SampleSparseStableAt(
          params.p, params.sparsity, rng::MixSeeds(matrix_seed, counter++));
      if (value != 0.0) {
        kernel.entry_rows.push_back(static_cast<uint32_t>(r));
        kernel.entry_cols.push_back(static_cast<uint32_t>(c));
        kernel.values.push_back(value);
      }
    }
  }
  return kernel;
}

std::vector<SparseKernel> SparseStableKernels(const SketchParams& params,
                                              size_t rows, size_t cols) {
  std::vector<SparseKernel> out;
  out.reserve(params.k);
  for (size_t i = 0; i < params.k; ++i) {
    out.push_back(SparseStableKernel(params, i, rows, cols));
  }
  return out;
}

table::Matrix CrossCorrelateSparse(const table::Matrix& data,
                                   const SparseKernel& kernel) {
  TABSKETCH_CHECK(kernel.rows >= 1 && kernel.cols >= 1 &&
                  kernel.rows <= data.rows() && kernel.cols <= data.cols())
      << "kernel " << kernel.rows << "x" << kernel.cols
      << " does not fit table " << data.rows() << "x" << data.cols();
  const size_t out_rows = data.rows() - kernel.rows + 1;
  const size_t out_cols = data.cols() - kernel.cols + 1;
  table::Matrix out(out_rows, out_cols);
  // Row-blocked accumulation: for each output row, stream every nonzero's
  // shifted data row across the whole output row (contiguous, vectorizable).
  // Each output element still receives its contributions in nonzero-storage
  // order, exactly like a per-position walk, keeping the result independent
  // of the blocking.
  for (size_t r = 0; r < out_rows; ++r) {
    double* out_row = out.Row(r).data();
    for (size_t e = 0; e < kernel.nnz(); ++e) {
      const double value = kernel.values[e];
      const double* data_row =
          data.Row(r + kernel.entry_rows[e]).data() + kernel.entry_cols[e];
      for (size_t c = 0; c < out_cols; ++c) {
        out_row[c] += value * data_row[c];
      }
    }
  }
  return out;
}

std::vector<double> CrossCorrelateSparse1D(std::span<const double> series,
                                           const SparseKernel& kernel) {
  TABSKETCH_CHECK(kernel.rows == 1) << "1-D correlation needs a 1-row kernel";
  TABSKETCH_CHECK(kernel.cols >= 1 && kernel.cols <= series.size())
      << "kernel length " << kernel.cols << " does not fit series length "
      << series.size();
  const size_t out_length = series.size() - kernel.cols + 1;
  std::vector<double> out(out_length, 0.0);
  for (size_t e = 0; e < kernel.nnz(); ++e) {
    const double value = kernel.values[e];
    const double* shifted = series.data() + kernel.entry_cols[e];
    for (size_t i = 0; i < out_length; ++i) {
      out[i] += value * shifted[i];
    }
  }
  return out;
}

bool PreferSparsePath(size_t nnz, size_t positions, size_t data_rows,
                      size_t data_cols) {
  // Effective-FMA cost of one kernel on the shared FFT plan, calibrated
  // against bench/micro_sparse on 1024^2 tables: one kernel forward + one
  // inverse pass over the padded grid, ~ 2 * P * log2(P) fused
  // multiply-add-equivalents (real-pair packing already halves the raw
  // transform count; the blocked passes run below peak scalar throughput,
  // which the factor absorbs).
  constexpr double kFftKernelCostFactor = 2.0;
  const double padded =
      static_cast<double>(NextPowerOfTwoAtLeast(data_rows)) *
      static_cast<double>(NextPowerOfTwoAtLeast(data_cols));
  const double fft_cost =
      kFftKernelCostFactor * padded * std::log2(std::max(padded, 2.0));
  const double sparse_cost =
      static_cast<double>(nnz) * static_cast<double>(positions);
  return sparse_cost < fft_cost;
}

}  // namespace tabsketch::core
