#include "core/series_sketch.h"

#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/stable_matrix.h"
#include "fft/correlate1d.h"
#include "util/logging.h"

namespace tabsketch::core {

SeriesSketchField::SeriesSketchField(size_t window,
                                     std::vector<std::vector<double>> planes)
    : window_(window), planes_(std::move(planes)) {
  TABSKETCH_CHECK(!planes_.empty()) << "series field needs >= 1 plane";
  for (const auto& plane : planes_) {
    TABSKETCH_CHECK(plane.size() == planes_.front().size())
        << "series field planes must share length";
  }
}

Sketch SeriesSketchField::SketchAt(size_t pos) const {
  TABSKETCH_CHECK(pos < positions()) << pos << " out of " << positions();
  Sketch out;
  out.values.resize(planes_.size());
  for (size_t i = 0; i < planes_.size(); ++i) {
    out.values[i] = planes_[i][pos];
  }
  return out;
}

void SeriesSketchField::AccumulateAt(size_t pos, Sketch* sum) const {
  TABSKETCH_CHECK(pos < positions()) << pos << " out of " << positions();
  TABSKETCH_CHECK(sum->values.size() == planes_.size());
  for (size_t i = 0; i < planes_.size(); ++i) {
    sum->values[i] += planes_[i][pos];
  }
}

struct SeriesSketcher::VectorCache {
  std::mutex mutex;
  std::map<size_t, std::shared_ptr<const std::vector<std::vector<double>>>>
      entries;
  std::map<size_t, std::shared_ptr<const std::vector<SparseKernel>>>
      sparse_entries;
};

util::Result<SeriesSketcher> SeriesSketcher::Create(
    const SketchParams& params) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  return SeriesSketcher(params);
}

SeriesSketcher::SeriesSketcher(const SketchParams& params)
    : params_(params), cache_(std::make_shared<VectorCache>()) {}

const std::vector<std::vector<double>>& SeriesSketcher::VectorsFor(
    size_t window) const {
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->entries.find(window);
    if (it != cache_->entries.end()) return *it->second;
  }
  // Identical values to the 2-D family's 1 x window matrices: the shared
  // StableEntry derivation keys on (seed, index, rows=1, cols=window).
  auto generated =
      std::make_shared<std::vector<std::vector<double>>>(params_.k);
  for (size_t i = 0; i < params_.k; ++i) {
    (*generated)[i].resize(window);
    for (size_t c = 0; c < window; ++c) {
      (*generated)[i][c] = StableEntry(params_, i, 1, window, 0, c);
    }
  }
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->entries
                .emplace(window, std::shared_ptr<
                                     const std::vector<std::vector<double>>>(
                                     std::move(generated)))
                .first;
  return *it->second;
}

const std::vector<SparseKernel>& SeriesSketcher::SparseKernelsFor(
    size_t window) const {
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->sparse_entries.find(window);
    if (it != cache_->sparse_entries.end()) return *it->second;
  }
  auto generated = std::make_shared<const std::vector<SparseKernel>>(
      SparseStableKernels(params_, 1, window));
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it =
      cache_->sparse_entries.emplace(window, std::move(generated)).first;
  return *it->second;
}

Sketch SeriesSketcher::SketchOf(std::span<const double> window) const {
  TABSKETCH_CHECK(!window.empty()) << "cannot sketch an empty window";
  Sketch out;
  out.values.resize(params_.k);
  if (params_.sparsity < 1.0) {
    // O(nnz) support walk, bit-identical to the dense loop below (the
    // skipped products are exact zeros).
    const auto& kernels = SparseKernelsFor(window.size());
    for (size_t i = 0; i < params_.k; ++i) {
      const SparseKernel& kernel = kernels[i];
      double acc = 0.0;
      for (size_t e = 0; e < kernel.nnz(); ++e) {
        acc += window[kernel.entry_cols[e]] * kernel.values[e];
      }
      out.values[i] = acc;
    }
    return out;
  }
  const auto& vectors = VectorsFor(window.size());
  for (size_t i = 0; i < params_.k; ++i) {
    double acc = 0.0;
    const std::vector<double>& random = vectors[i];
    for (size_t c = 0; c < window.size(); ++c) {
      acc += window[c] * random[c];
    }
    out.values[i] = acc;
  }
  return out;
}

util::Result<SeriesSketchField> SeriesSketcher::SketchAllPositions(
    std::span<const double> series, size_t window,
    SketchAlgorithm algorithm) const {
  if (window < 1 || window > series.size()) {
    std::ostringstream msg;
    msg << "window length " << window << " does not fit the series of "
        << series.size() << " samples: it must be between 1 and the "
        << "series length";
    return util::Status::InvalidArgument(msg.str());
  }
  std::vector<std::vector<double>> planes;
  planes.reserve(params_.k);
  if (algorithm == SketchAlgorithm::kAuto && params_.sparsity < 1.0) {
    // 1-D analog of the 2-D auto path: each kernel independently picks the
    // shared-plan FFT or the O(nnz) direct walk by predicted cost.
    const auto& kernels = SparseKernelsFor(window);
    const auto& vectors = VectorsFor(window);
    const size_t positions = series.size() - window + 1;
    std::unique_ptr<fft::CorrelationPlan1D> plan;
    for (size_t i = 0; i < params_.k; ++i) {
      if (PreferSparsePath(kernels[i].nnz(), positions, 1, series.size())) {
        planes.push_back(CrossCorrelateSparse1D(series, kernels[i]));
      } else {
        if (!plan) plan = std::make_unique<fft::CorrelationPlan1D>(series);
        planes.push_back(plan->Correlate(vectors[i]));
      }
    }
  } else if (algorithm == SketchAlgorithm::kNaive) {
    const auto& vectors = VectorsFor(window);
    for (size_t i = 0; i < params_.k; ++i) {
      planes.push_back(fft::CrossCorrelateNaive1D(series, vectors[i]));
    }
  } else {
    const auto& vectors = VectorsFor(window);
    fft::CorrelationPlan1D plan(series);
    for (size_t i = 0; i < params_.k; ++i) {
      planes.push_back(plan.Correlate(vectors[i]));
    }
  }
  return SeriesSketchField(window, std::move(planes));
}

SeriesSketchPool::SeriesSketchPool(const SketchParams& params,
                                   size_t series_length)
    : params_(params), series_length_(series_length) {}

util::Result<SeriesSketchPool> SeriesSketchPool::Build(
    std::span<const double> series, const SketchParams& params,
    const Options& options) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  if (series.empty()) {
    return util::Status::InvalidArgument(
        "cannot build a pool over an empty series");
  }
  TABSKETCH_ASSIGN_OR_RETURN(SeriesSketcher sketcher,
                             SeriesSketcher::Create(params));
  SeriesSketchPool pool(params, series.size());
  for (size_t i = options.log2_min;
       i <= options.log2_max &&
       (static_cast<size_t>(1) << i) <= series.size();
       ++i) {
    const size_t window = static_cast<size_t>(1) << i;
    TABSKETCH_ASSIGN_OR_RETURN(
        SeriesSketchField field,
        sketcher.SketchAllPositions(series, window, options.algorithm));
    pool.fields_.emplace(window, std::move(field));
  }
  if (pool.fields_.empty()) {
    return util::Status::InvalidArgument(
        "no canonical dyadic length fits the series under the options");
  }
  return pool;
}

std::vector<size_t> SeriesSketchPool::CanonicalLengths() const {
  std::vector<size_t> out;
  out.reserve(fields_.size());
  for (const auto& entry : fields_) out.push_back(entry.first);
  return out;
}

namespace {

size_t LargestPowerOfTwoAtMost(size_t n) {
  TABSKETCH_CHECK(n >= 1);
  size_t p = 1;
  while ((p << 1) <= n) p <<= 1;
  return p;
}

}  // namespace

bool SeriesSketchPool::Covers(size_t length) const {
  if (length == 0) return false;
  return fields_.count(LargestPowerOfTwoAtMost(length)) > 0;
}

util::Result<Sketch> SeriesSketchPool::Query(size_t start,
                                             size_t length) const {
  if (length == 0) {
    return util::Status::InvalidArgument("query window must be non-empty");
  }
  if (start + length > series_length_) {
    std::ostringstream msg;
    msg << "query [" << start << ", " << start + length
        << ") exceeds series length " << series_length_;
    return util::Status::OutOfRange(msg.str());
  }
  const size_t a = LargestPowerOfTwoAtMost(length);
  auto it = fields_.find(a);
  if (it == fields_.end()) {
    std::ostringstream msg;
    msg << "canonical length " << a << " not in pool";
    return util::Status::NotFound(msg.str());
  }
  Sketch sum;
  sum.values.assign(params_.k, 0.0);
  it->second.AccumulateAt(start, &sum);
  it->second.AccumulateAt(start + length - a, &sum);
  return sum;
}

util::Result<Sketch> SeriesSketchPool::CanonicalSketchAt(
    size_t start, size_t length) const {
  auto it = fields_.find(length);
  if (it == fields_.end()) {
    std::ostringstream msg;
    msg << length << " is not a stored canonical length";
    return util::Status::NotFound(msg.str());
  }
  if (start + length > series_length_) {
    return util::Status::OutOfRange("canonical window exceeds the series");
  }
  return it->second.SketchAt(start);
}

}  // namespace tabsketch::core
