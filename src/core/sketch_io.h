#ifndef TABSKETCH_CORE_SKETCH_IO_H_
#define TABSKETCH_CORE_SKETCH_IO_H_

#include <string>
#include <vector>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "util/result.h"
#include "util/status.h"

namespace tabsketch::core {

/// A set of per-object sketches together with the parameters that produced
/// them, e.g. the sketches of every tile of a grid. Persisting this is how a
/// precomputed sketch pool is reused across runs (the paper's scenario (1)).
struct SketchSet {
  SketchParams params;
  /// Shape of the sketched objects; sketches are only comparable between
  /// equal shapes.
  size_t object_rows = 0;
  size_t object_cols = 0;
  std::vector<Sketch> sketches;
};

/// Writes `set` to `path` in a small binary format (magic "TSKS", version,
/// params, shape, count, then k doubles per sketch).
util::Status WriteSketchSet(const SketchSet& set, const std::string& path);

/// Reads a sketch set previously written by WriteSketchSet.
util::Result<SketchSet> ReadSketchSet(const std::string& path);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SKETCH_IO_H_
