#include "core/ondemand.h"

#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace tabsketch::core {

bool OnDemandSketchCache::Materialize(size_t index) {
  TABSKETCH_CHECK(index < sketches_.size())
      << "tile " << index << " out of " << sketches_.size();
  bool missed = false;
  std::call_once(once_[index], [&] {
    sketches_[index] = std::make_shared<const Sketch>(
        sketcher_->SketchOf(grid_->Tile(index)));
    computed_.fetch_add(1, std::memory_order_relaxed);
    missed = true;
  });
  if (missed) {
    TABSKETCH_METRIC_COUNT("ondemand.cache.misses");
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    TABSKETCH_METRIC_COUNT("ondemand.cache.hits");
  }
  return missed;
}

const Sketch& OnDemandSketchCache::ForTile(size_t index) {
  Materialize(index);
  return *sketches_[index];
}

std::shared_ptr<const Sketch> OnDemandSketchCache::Get(size_t index) {
  Materialize(index);
  return sketches_[index];
}

std::shared_ptr<const Sketch> OnDemandSketchCache::GetTracked(
    size_t index, bool* computed) {
  *computed = Materialize(index);
  return sketches_[index];
}

void OnDemandSketchCache::Clear() {
  size_t evicted = 0;
  for (const auto& slot : sketches_) evicted += slot != nullptr ? 1 : 0;
  TABSKETCH_METRIC_COUNT_N("ondemand.cache.evictions", evicted);
  for (auto& slot : sketches_) slot.reset();
  once_ = std::vector<std::once_flag>(sketches_.size());
  computed_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
}

std::vector<Sketch> SketchAllTiles(const Sketcher& sketcher,
                                   const table::TileGrid& grid) {
  std::vector<Sketch> out;
  out.reserve(grid.num_tiles());
  for (size_t t = 0; t < grid.num_tiles(); ++t) {
    out.push_back(sketcher.SketchOf(grid.Tile(t)));
  }
  return out;
}

std::vector<Sketch> SketchAllTilesParallel(const Sketcher& sketcher,
                                           const table::TileGrid& grid,
                                           size_t threads) {
  TABSKETCH_TRACE_SPAN("sketcher.sketch_tiles");
  // Pre-generate the shared random matrices once so workers only read the
  // cache (SketchOf is thread-safe regardless; this avoids a duplicate
  // generation race burning CPU).
  sketcher.MatricesFor(grid.tile_rows(), grid.tile_cols());
  std::vector<Sketch> out(grid.num_tiles());
  util::ParallelFor(grid.num_tiles(), threads, [&](size_t t) {
    out[t] = sketcher.SketchOf(grid.Tile(t));
  });
  return out;
}

}  // namespace tabsketch::core
