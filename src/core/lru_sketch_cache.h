#ifndef TABSKETCH_CORE_LRU_SKETCH_CACHE_H_
#define TABSKETCH_CORE_LRU_SKETCH_CACHE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/sketch_cache.h"
#include "core/sketcher.h"
#include "table/tiling.h"

namespace tabsketch::core {

/// Sharded, memory-budgeted LRU tile-sketch cache — the serving-shaped
/// replacement for the grow-only OnDemandSketchCache: a long-lived query
/// workload over a large tile grid keeps its working set hot while total
/// residency stays under a caller-set byte budget, instead of eventually
/// holding every sketch in memory.
///
/// Structure (the leveldb ShardedLRUCache shape): tile indices stripe over N
/// independent shards (tile % N), each with its own mutex, hash map and an
/// intrusive circular LRU list threaded through the entries. The byte budget
/// splits evenly across shards; after every insert a shard evicts from its
/// cold end until it is back under its slice, so global residency never
/// settles above the budget. A budget too small for even one entry degrades
/// gracefully to compute-and-release (every lookup misses and the entry is
/// evicted immediately) — results are still correct, only retention is lost.
///
/// Lookups are bit-identical to the uncached path for every budget and
/// thread count: sketches are deterministic functions of (family, tile), so
/// eviction can only ever cost recompute time, never change a value. Misses
/// compute outside the shard lock; two threads racing on the same absent
/// tile may both compute it (identical results, one retained). The loser of
/// that insert race still counts as a miss and a compute, so the counters
/// obey `computed() >= misses_retained`, where `misses_retained` is the
/// number of misses whose sketch was actually inserted:
/// `computed() == misses_retained + races()`. Hit-rate math that treats
/// every miss as one retained insert must subtract races() first.
///
/// Observability (all gated on the usual TABSKETCH_METRICS switches):
/// counters lru.cache.{hits,misses,evictions,races}, gauges
/// lru.cache.{capacity_bytes,peak_bytes}, and a lru.cache.compute trace span
/// around every miss's sketch construction.
class LruSketchCache : public TileSketchCache {
 public:
  struct Options {
    /// Total byte budget across all shards (entry payload + bookkeeping,
    /// see EntryBytes()).
    size_t capacity_bytes = size_t{64} << 20;
    /// Mutex stripes. Clamped to >= 1; use 1 for exactly predictable
    /// whole-cache eviction order (tests), more for concurrency.
    size_t shards = 8;
    /// Test-only hook, called on the miss path after the sketch is computed
    /// and before the shard is re-locked for insert — the window in which
    /// the insert race is decided. Lets tests park a thread there to make
    /// the race deterministic. Leave unset in production.
    std::function<void(size_t)> compute_hook;
  };

  /// `sketcher` and `grid` must outlive the cache.
  LruSketchCache(const Sketcher* sketcher, const table::TileGrid* grid,
                 const Options& options);
  ~LruSketchCache() override;

  LruSketchCache(const LruSketchCache&) = delete;
  LruSketchCache& operator=(const LruSketchCache&) = delete;

  std::shared_ptr<const Sketch> Get(size_t index) override;
  /// `*computed` reports whether this lookup paid a sketch construction —
  /// true on every miss, including insert-race losers (they computed even
  /// though the retained entry came from the race winner).
  std::shared_ptr<const Sketch> GetTracked(size_t index,
                                           bool* computed) override;
  size_t num_tiles() const override { return grid_->num_tiles(); }
  size_t computed() const override {
    return computed_.load(std::memory_order_relaxed);
  }
  size_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }

  /// Entries dropped to stay under the budget so far.
  size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Lost insert races: misses whose computed sketch was discarded because
  /// a concurrent miss on the same tile inserted first. See the class
  /// comment for the computed()/misses/races relationship.
  size_t races() const { return races_.load(std::memory_order_relaxed); }
  /// Bytes currently resident across all shards.
  size_t bytes_used() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of bytes_used() (sampled after each shard finished its
  /// post-insert eviction pass, i.e. steady-state residency).
  size_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Accounted bytes per cached entry for a sketch of length `sketch_k`:
  /// payload plus list/map bookkeeping. Exposed so tests (and budget
  /// pickers) can do exact eviction math.
  static size_t EntryBytes(size_t sketch_k);

 private:
  struct Entry {
    size_t tile = 0;
    size_t bytes = 0;
    std::shared_ptr<const Sketch> sketch;
    /// Intrusive circular LRU links; the shard's sentinel closes the ring
    /// (sentinel.next = hottest, sentinel.prev = coldest).
    Entry* prev = nullptr;
    Entry* next = nullptr;
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<size_t, std::unique_ptr<Entry>> entries;
    Entry lru;  // sentinel
    size_t bytes = 0;
  };

  Shard& ShardFor(size_t index) { return shards_[index % shards_.size()]; }
  static void Unlink(Entry* entry);
  static void PushFront(Shard* shard, Entry* entry);
  /// Evicts cold entries until `shard` is back under `shard_budget_`.
  /// Returns the bytes freed. Caller holds the shard mutex.
  size_t EvictOverBudget(Shard* shard);
  void NoteBytesDelta(size_t added, size_t removed);

  const Sketcher* sketcher_;
  const table::TileGrid* grid_;
  const size_t capacity_bytes_;
  size_t shard_budget_ = 0;
  std::function<void(size_t)> compute_hook_;
  std::vector<Shard> shards_;

  std::atomic<size_t> computed_{0};
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> races_{0};
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> peak_bytes_{0};
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_LRU_SKETCH_CACHE_H_
