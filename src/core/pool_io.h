#ifndef TABSKETCH_CORE_POOL_IO_H_
#define TABSKETCH_CORE_POOL_IO_H_

#include <string>

#include "core/sketch_pool.h"
#include "util/result.h"
#include "util/status.h"

namespace tabsketch::core {

/// Persists a dyadic sketch pool to `path` (magic "TSKP", version, params,
/// table dims, then per canonical size its k position planes). Pools cost
/// O(k N log^3 N) to build (paper Theorem 6); persisting one lets later runs
/// answer O(k) rectangle queries with no precompute at all.
util::Status WriteSketchPool(const SketchPool& pool, const std::string& path);

/// Reads a pool previously written by WriteSketchPool. The result answers
/// Query()/CanonicalSketchAt() exactly as the original did.
util::Result<SketchPool> ReadSketchPool(const std::string& path);

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_POOL_IO_H_
