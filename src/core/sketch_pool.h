#ifndef TABSKETCH_CORE_SKETCH_POOL_H_
#define TABSKETCH_CORE_SKETCH_POOL_H_

#include <cstddef>
#include <map>
#include <vector>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::core {

/// Which canonical dyadic window sizes a pool precomputes.
struct PoolOptions {
  /// Canonical window heights are 2^i for log2_min_rows <= i <=
  /// log2_max_rows (clamped so windows fit the table). Same for widths.
  size_t log2_min_rows = 3;  // 8
  size_t log2_max_rows = 63;  // effectively "up to the table height"
  size_t log2_min_cols = 3;
  size_t log2_max_cols = 63;

  /// Algorithm for the all-positions precompute. kAuto is exactly kFft for
  /// dense families (sparsity = 1); for sparse families each kernel is
  /// routed between the shared FFT plan and the O(nnz) sparse-direct path
  /// by predicted cost (DESIGN.md Section 16).
  SketchAlgorithm algorithm = SketchAlgorithm::kAuto;

  /// Worker threads for the precompute. The (canonical size x kernel) work
  /// items are independent, so the build fans them over util::ParallelFor;
  /// the resulting pool is bit-identical for every thread count. On the FFT
  /// path all workers share one CorrelationPlan, i.e. the forward FFT of the
  /// data is computed exactly once per build.
  size_t threads = 1;
};

/// Precomputed sketches for every position of every canonical dyadic window
/// size 2^i x 2^j over one table (paper Theorem 6), answering sketch queries
/// for *arbitrary* rectangles in O(k) by compound-sketch assembly
/// (Definition 4 / Theorem 5).
///
/// A compound sketch for a c x d rectangle with canonical size a x b
/// (a <= c < 2a, b <= d < 2b) is the component-wise sum of the four canonical
/// sketches anchored at the rectangle's corners:
///   s(i,j) + s(i+c-a, j) + s(i, j+d-b) + s(i+c-a, j+d-b).
/// The union of the four windows tiles the rectangle with cells covered 1, 2
/// or 4 times. Because all four windows re-use the same random matrices at
/// different alignments, the distance between two equal-dimension compound
/// sketches estimates the Lp norm of the *folded* difference (each canonical
/// offset accumulates the 1-4 rectangle cells it covers). This yields the
/// 4(1+eps) upper band of Theorem 5; for p < 1, sign cancellation inside the
/// fold can also deflate the estimate. Either way, compound estimates for
/// equal-dimension rectangles remain mutually comparable, which is all
/// clustering needs (the paper's own use).
///
/// Memory: k doubles per position per canonical size; pick PoolOptions ranges
/// accordingly for large tables.
class SketchPool {
 public:
  /// Precomputes all canonical sketch fields for `data`.
  /// Returns InvalidArgument if no canonical size fits the options.
  static util::Result<SketchPool> Build(const table::Matrix& data,
                                        const SketchParams& params,
                                        const PoolOptions& options);

  const SketchParams& params() const { return params_; }
  size_t data_rows() const { return data_rows_; }
  size_t data_cols() const { return data_cols_; }

  /// The canonical (height, width) pairs this pool holds, sorted.
  std::vector<std::pair<size_t, size_t>> CanonicalSizes() const;

  /// True if the pool can answer queries for rows x cols rectangles, i.e.
  /// the canonical size (largest power of two <= rows, same for cols) is
  /// stored.
  bool Covers(size_t rows, size_t cols) const;

  /// Compound sketch of the rectangle anchored at (row, col) spanning
  /// rows x cols. Always the four-corner sum, even when the rectangle is
  /// exactly canonical (the four anchors coincide and the sketch is 4x one
  /// canonical sketch), so that all equal-dimension query results are
  /// directly comparable.
  ///
  /// Returns OutOfRange if the rectangle does not fit the table, NotFound if
  /// the required canonical size is not in the pool.
  util::Result<Sketch> Query(size_t row, size_t col, size_t rows,
                             size_t cols) const;

  /// Direct canonical sketch (no compounding) for a window whose dimensions
  /// are exactly a stored canonical size. Comparable with single-object
  /// Sketcher::SketchOf output for the same family and shape.
  util::Result<Sketch> CanonicalSketchAt(size_t row, size_t col, size_t rows,
                                         size_t cols) const;

  /// All stored canonical fields, keyed by (height, width). Exposed for
  /// serialization (core/pool_io.h).
  const std::map<std::pair<size_t, size_t>, SketchField>& fields() const {
    return fields_;
  }

  /// Reassembles a pool from previously stored parts (deserialization
  /// path). Validates params; field consistency is the caller's contract.
  static util::Result<SketchPool> FromParts(
      const SketchParams& params, size_t data_rows, size_t data_cols,
      std::map<std::pair<size_t, size_t>, SketchField> fields);

 private:
  SketchPool(const SketchParams& params, size_t data_rows, size_t data_cols);

  static size_t LargestPowerOfTwoAtMost(size_t n);

  SketchParams params_;
  size_t data_rows_;
  size_t data_cols_;
  std::map<std::pair<size_t, size_t>, SketchField> fields_;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_SKETCH_POOL_H_
