#include "core/lru_sketch_cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tabsketch::core {
namespace {

/// Records the residency high-water mark into the lru.cache.peak_bytes gauge
/// (running-maximum semantics; there is no macro for Gauge::Max).
void RecordPeakBytesMetric(size_t peak) {
#if TABSKETCH_METRICS_ENABLED
  if (util::MetricsRegistry::Enabled()) {
    static util::Gauge* const gauge =
        util::MetricsRegistry::Global().GetGauge("lru.cache.peak_bytes");
    gauge->Max(static_cast<double>(peak));
  }
#else
  (void)peak;
#endif
}

}  // namespace

size_t LruSketchCache::EntryBytes(size_t sketch_k) {
  // Payload plus the bookkeeping a resident entry actually costs: the Entry
  // node (links + shared_ptr), the Sketch header, its heap control block and
  // an estimate of the hash-map node. Approximate but stable, so budget math
  // is portable and tests can be exact.
  constexpr size_t kMapNodeOverhead = 64;
  return sketch_k * sizeof(double) + sizeof(Entry) + sizeof(Sketch) +
         kMapNodeOverhead;
}

LruSketchCache::LruSketchCache(const Sketcher* sketcher,
                               const table::TileGrid* grid,
                               const Options& options)
    : sketcher_(sketcher),
      grid_(grid),
      capacity_bytes_(options.capacity_bytes),
      compute_hook_(options.compute_hook),
      shards_(std::max<size_t>(options.shards, 1)) {
  shard_budget_ = capacity_bytes_ / shards_.size();
  for (Shard& shard : shards_) {
    shard.lru.prev = &shard.lru;
    shard.lru.next = &shard.lru;
  }
  TABSKETCH_METRIC_GAUGE_SET("lru.cache.capacity_bytes", capacity_bytes_);
}

LruSketchCache::~LruSketchCache() = default;

void LruSketchCache::Unlink(Entry* entry) {
  entry->prev->next = entry->next;
  entry->next->prev = entry->prev;
  entry->prev = nullptr;
  entry->next = nullptr;
}

void LruSketchCache::PushFront(Shard* shard, Entry* entry) {
  entry->next = shard->lru.next;
  entry->prev = &shard->lru;
  shard->lru.next->prev = entry;
  shard->lru.next = entry;
}

size_t LruSketchCache::EvictOverBudget(Shard* shard) {
  size_t freed = 0;
  size_t evicted = 0;
  while (shard->bytes > shard_budget_ && shard->lru.prev != &shard->lru) {
    Entry* coldest = shard->lru.prev;
    Unlink(coldest);
    shard->bytes -= coldest->bytes;
    freed += coldest->bytes;
    ++evicted;
    // Outstanding shared_ptrs returned from Get keep the sketch itself
    // alive; only the cache's reference dies here.
    shard->entries.erase(coldest->tile);
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    TABSKETCH_METRIC_COUNT_N("lru.cache.evictions", evicted);
  }
  return freed;
}

void LruSketchCache::NoteBytesDelta(size_t added, size_t removed) {
  size_t now;
  if (added >= removed) {
    now = bytes_.fetch_add(added - removed, std::memory_order_relaxed) +
          (added - removed);
  } else {
    now = bytes_.fetch_sub(removed - added, std::memory_order_relaxed) -
          (removed - added);
  }
  // CAS running maximum; samples are taken after eviction restored the
  // budget invariant, so the recorded peak reflects steady-state residency.
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
  RecordPeakBytesMetric(peak_bytes_.load(std::memory_order_relaxed));
}

std::shared_ptr<const Sketch> LruSketchCache::Get(size_t index) {
  bool computed = false;
  return GetTracked(index, &computed);
}

std::shared_ptr<const Sketch> LruSketchCache::GetTracked(size_t index,
                                                         bool* computed) {
  TABSKETCH_CHECK(index < grid_->num_tiles())
      << "tile " << index << " out of " << grid_->num_tiles();
  *computed = false;
  Shard& shard = ShardFor(index);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(index);
    if (it != shard.entries.end()) {
      Entry* entry = it->second.get();
      Unlink(entry);
      PushFront(&shard, entry);
      hits_.fetch_add(1, std::memory_order_relaxed);
      TABSKETCH_METRIC_COUNT("lru.cache.hits");
      return entry->sketch;
    }
  }

  // Miss: compute outside the lock so a slow sketch never serializes the
  // shard. Concurrent misses on the same tile may compute twice; the results
  // are bit-identical and only one is retained.
  std::shared_ptr<const Sketch> sketch;
  {
    TABSKETCH_TRACE_SPAN("lru.cache.compute");
    sketch = std::make_shared<const Sketch>(
        sketcher_->SketchOf(grid_->Tile(index)));
  }
  computed_.fetch_add(1, std::memory_order_relaxed);
  TABSKETCH_METRIC_COUNT("lru.cache.misses");
  *computed = true;
  if (compute_hook_) compute_hook_(index);

  size_t added = 0;
  size_t removed = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(index);
    if (it != shard.entries.end()) {
      // Lost the insert race; the sketch this thread just computed is
      // discarded, but it was already counted above — hence
      // computed() == misses_retained + races() (see the class comment).
      // Serve (and touch) the retained entry.
      races_.fetch_add(1, std::memory_order_relaxed);
      TABSKETCH_METRIC_COUNT("lru.cache.races");
      Entry* entry = it->second.get();
      Unlink(entry);
      PushFront(&shard, entry);
      return entry->sketch;
    }
    auto entry = std::make_unique<Entry>();
    entry->tile = index;
    entry->bytes = EntryBytes(sketch->size());
    entry->sketch = sketch;
    shard.bytes += entry->bytes;
    added = entry->bytes;
    PushFront(&shard, entry.get());
    shard.entries.emplace(index, std::move(entry));
    removed = EvictOverBudget(&shard);
  }
  NoteBytesDelta(added, removed);
  return sketch;
}

}  // namespace tabsketch::core
