#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "core/scale_factor.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/normal.h"
#include "util/median.h"

namespace tabsketch::core {

util::Result<DistanceEstimator> DistanceEstimator::Create(
    const SketchParams& params, EstimatorKind kind) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  if (kind == EstimatorKind::kAuto) {
    kind = (params.p == 2.0) ? EstimatorKind::kL2 : EstimatorKind::kMedian;
  }
  if (kind == EstimatorKind::kL2 && params.p != 2.0) {
    return util::Status::InvalidArgument(
        "the L2 estimator is only valid for p = 2 sketches");
  }
  const double scale =
      (kind == EstimatorKind::kMedian) ? MedianAbsStable(params.p) : 1.0;
  return DistanceEstimator(kind, params.p, scale);
}

double DistanceEstimator::EstimateWithScratch(
    std::span<const double> a, std::span<const double> b,
    std::vector<double>* scratch) const {
  TABSKETCH_CHECK(a.size() == b.size() && !a.empty())
      << "estimating from mismatched or empty sketches";
  TABSKETCH_METRIC_COUNT("estimator.estimate.calls");
  if (kind_ == EstimatorKind::kL2) {
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
  }
  return util::MedianAbsDifference(a, b, scratch) / scale_;
}

DistanceEstimator::Interval DistanceEstimator::EstimateWithInterval(
    std::span<const double> a, std::span<const double> b, double confidence,
    std::vector<double>* scratch) const {
  TABSKETCH_CHECK(a.size() == b.size() && !a.empty())
      << "estimating from mismatched or empty sketches";
  TABSKETCH_CHECK(confidence > 0.0 && confidence < 1.0)
      << "confidence must be in (0, 1), got " << confidence;
  const double k = static_cast<double>(a.size());
  const double z = util::InverseNormalCdf(0.5 + confidence / 2.0);

  if (kind_ == EstimatorKind::kL2) {
    double sum_sq = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sum_sq += d * d;
    }
    const double estimate = std::sqrt(sum_sq / k);
    // Components ~ N(0, D^2), so sum_sq / D^2 ~ chi^2_k. Wilson-Hilferty:
    // chi^2_{k,q} ~ k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3.
    auto chi_square_quantile = [k](double zq) {
      const double t = 1.0 - 2.0 / (9.0 * k) + zq * std::sqrt(2.0 / (9.0 * k));
      return k * t * t * t;
    };
    const double hi_q = chi_square_quantile(z);
    const double lo_q = chi_square_quantile(-z);
    return Interval{std::sqrt(sum_sq / hi_q), estimate,
                    std::sqrt(sum_sq / (lo_q > 0.0 ? lo_q : 1e-12))};
  }

  // Median path: order statistics of |a_i - b_i| at the binomial-normal
  // ranks around the median. Only 3-4 order statistics are needed, so each
  // is selected in O(k) with nth_element on a shrinking suffix (ascending
  // ranks leave earlier selections in place) instead of fully sorting.
  const size_t n = a.size();
  scratch->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*scratch)[i] = std::fabs(a[i] - b[i]);
  }
  const double half_width = 0.5 * z * std::sqrt(k);
  const auto clamp_rank = [&](double rank) {
    if (rank < 0.0) return static_cast<size_t>(0);
    if (rank > k - 1.0) return n - 1;
    return static_cast<size_t>(rank);
  };
  const size_t lo_rank = clamp_rank(std::floor(k / 2.0 - half_width));
  const size_t hi_rank = clamp_rank(std::ceil(k / 2.0 + half_width));
  size_t ranks[4];
  size_t num_ranks = 0;
  ranks[num_ranks++] = lo_rank;
  if (n % 2 == 0) ranks[num_ranks++] = n / 2 - 1;
  ranks[num_ranks++] = n / 2;
  ranks[num_ranks++] = hi_rank;
  std::sort(ranks, ranks + num_ranks);
  num_ranks = std::unique(ranks, ranks + num_ranks) - ranks;
  size_t from = 0;
  for (size_t i = 0; i < num_ranks; ++i) {
    std::nth_element(scratch->begin() + from, scratch->begin() + ranks[i],
                     scratch->end());
    from = ranks[i] + 1;
  }
  const double estimate =
      (n % 2 == 1) ? (*scratch)[n / 2]
                   : 0.5 * ((*scratch)[n / 2 - 1] + (*scratch)[n / 2]);
  return Interval{(*scratch)[lo_rank] / scale_, estimate / scale_,
                  (*scratch)[hi_rank] / scale_};
}

double DistanceEstimator::Estimate(std::span<const double> a,
                                   std::span<const double> b) const {
  std::vector<double> scratch;
  return EstimateWithScratch(a, b, &scratch);
}

double DistanceEstimator::Estimate(const Sketch& a, const Sketch& b) const {
  return Estimate(std::span<const double>(a.values),
                  std::span<const double>(b.values));
}

}  // namespace tabsketch::core
