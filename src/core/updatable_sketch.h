#ifndef TABSKETCH_CORE_UPDATABLE_SKETCH_H_
#define TABSKETCH_CORE_UPDATABLE_SKETCH_H_

#include <cstddef>

#include "core/sketch_params.h"
#include "core/sketcher.h"
#include "table/matrix.h"
#include "util/result.h"

namespace tabsketch::core {

/// A sketch that can absorb streaming point updates to its underlying
/// subtable in O(k) time per update, without access to the data.
///
/// Sketches are dot products, so a cell update X(r, c) += delta changes
/// component i by delta * R[i](r, c); the counter-based random-matrix
/// derivation (core/stable_matrix.h) regenerates exactly that entry in O(1).
/// This is the turnstile-stream usage of stable sketches from the paper's
/// foundation [Indyk, FOCS 2000]: tabular stores that accumulate call counts
/// in place can keep tile sketches current without re-reading tiles.
///
/// The sketch remains bit-identical to re-sketching the updated subtable
/// from scratch with the same family parameters (tested invariant).
class UpdatableSketch {
 public:
  /// Starts from the all-zero subtable of the given shape (every sketch
  /// component is 0: the dot product with the zero matrix).
  static util::Result<UpdatableSketch> CreateEmpty(const SketchParams& params,
                                                   size_t rows, size_t cols);

  /// Starts from an existing subtable, sketching it with `sketcher` (whose
  /// parameters define the family).
  static util::Result<UpdatableSketch> FromView(const Sketcher& sketcher,
                                                const table::TableView& view);

  const SketchParams& params() const { return params_; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Applies X(row, col) += delta to the sketched subtable: O(k).
  /// (row, col) must lie inside the subtable's shape.
  void ApplyUpdate(size_t row, size_t col, double delta);

  /// Current sketch; comparable with any sketch of the same family and
  /// shape.
  const Sketch& sketch() const { return sketch_; }

  /// Number of updates absorbed so far.
  size_t updates_applied() const { return updates_applied_; }

 private:
  UpdatableSketch(const SketchParams& params, size_t rows, size_t cols,
                  Sketch sketch);

  SketchParams params_;
  size_t rows_;
  size_t cols_;
  Sketch sketch_;
  size_t updates_applied_ = 0;
};

}  // namespace tabsketch::core

#endif  // TABSKETCH_CORE_UPDATABLE_SKETCH_H_
