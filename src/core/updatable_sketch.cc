#include "core/updatable_sketch.h"

#include <utility>

#include "core/stable_matrix.h"
#include "util/logging.h"

namespace tabsketch::core {

UpdatableSketch::UpdatableSketch(const SketchParams& params, size_t rows,
                                 size_t cols, Sketch sketch)
    : params_(params), rows_(rows), cols_(cols), sketch_(std::move(sketch)) {}

util::Result<UpdatableSketch> UpdatableSketch::CreateEmpty(
    const SketchParams& params, size_t rows, size_t cols) {
  TABSKETCH_RETURN_IF_ERROR(params.Validate());
  if (rows == 0 || cols == 0) {
    return util::Status::InvalidArgument(
        "updatable sketch needs a non-empty shape");
  }
  Sketch zero;
  zero.values.assign(params.k, 0.0);
  return UpdatableSketch(params, rows, cols, std::move(zero));
}

util::Result<UpdatableSketch> UpdatableSketch::FromView(
    const Sketcher& sketcher, const table::TableView& view) {
  if (view.empty()) {
    return util::Status::InvalidArgument(
        "updatable sketch needs a non-empty subtable");
  }
  return UpdatableSketch(sketcher.params(), view.rows(), view.cols(),
                         sketcher.SketchOf(view));
}

void UpdatableSketch::ApplyUpdate(size_t row, size_t col, double delta) {
  TABSKETCH_CHECK(row < rows_ && col < cols_)
      << "update (" << row << "," << col << ") outside " << rows_ << "x"
      << cols_;
  for (size_t i = 0; i < params_.k; ++i) {
    sketch_.values[i] +=
        delta * StableEntry(params_, i, rows_, cols_, row, col);
  }
  ++updates_applied_;
}

}  // namespace tabsketch::core
