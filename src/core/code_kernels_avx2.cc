// AVX2 variants of the code-distance kernels. This translation unit is the
// only one compiled with -mavx2 (see src/CMakeLists.txt); it is added to the
// build only when TABSKETCH_SIMD is ON and the target is x86-64, and its
// entry points are only called after a runtime __builtin_cpu_supports check
// (kernels::Avx2Active), so no AVX2 instruction can leak onto an older CPU.
//
// Every kernel is integer-exact: widen/compare/accumulate only, no float
// math, so the results are bit-identical to the scalar reference — the
// property the query and k-means byte-identity guarantees rest on. The
// vector bodies process elements in order (cvtepu8/16 widening), and tails
// fall through to the scalar loops.

#include "core/code_kernels_avx2.h"

#if defined(TABSKETCH_HAVE_AVX2)

#include <immintrin.h>

namespace tabsketch::core::kernels::avx2 {
namespace {

uint64_t HorizontalSum64(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace

void AbsDiff8(const uint8_t* a, const uint8_t* b, size_t k, uint16_t* out) {
  size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // |a - b| for unsigned bytes: max - min, then widen in element order.
    const __m128i d8 =
        _mm_sub_epi8(_mm_max_epu8(va, vb), _mm_min_epu8(va, vb));
    const __m256i d16 = _mm256_cvtepu8_epi16(d8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d16);
  }
  for (; i < k; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    out[i] = static_cast<uint16_t>(d < 0 ? -d : d);
  }
}

void AbsDiff16(const uint16_t* a, const uint16_t* b, size_t k,
               uint16_t* out) {
  size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i d16 =
        _mm256_sub_epi16(_mm256_max_epu16(va, vb), _mm256_min_epu16(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), d16);
  }
  for (; i < k; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]);
    out[i] = static_cast<uint16_t>(d < 0 ? -d : d);
  }
}

uint64_t SumSquaredDiff8(const uint8_t* a, const uint8_t* b, size_t k) {
  // Per 16 bytes: |a-b| as u8, widen to 16 lanes of u16, then madd(d, d)
  // gives 8 pairwise i32 sums of squares (max 2 * 255^2, far below i32).
  // The i32 accumulator takes at most 2^14 iterations between flushes, so
  // each lane stays below 2^14 * 2 * 255^2 < 2^31.
  __m256i acc64 = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  while (i + 16 <= k) {
    __m256i acc32 = _mm256_setzero_si256();
    size_t block_end = i + (size_t{1} << 18);  // 2^14 iterations of 16
    if (block_end > k) block_end = k;
    for (; i + 16 <= block_end; i += 16) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      const __m128i d8 =
          _mm_sub_epi8(_mm_max_epu8(va, vb), _mm_min_epu8(va, vb));
      const __m256i d16 = _mm256_cvtepu8_epi16(d8);
      acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(d16, d16));
    }
    // Flush: zero-extend the non-negative i32 lanes into the u64 accumulator.
    acc64 = _mm256_add_epi64(acc64, _mm256_unpacklo_epi32(acc32, zero));
    acc64 = _mm256_add_epi64(acc64, _mm256_unpackhi_epi32(acc32, zero));
  }
  uint64_t sum = HorizontalSum64(acc64);
  for (; i < k; ++i) {
    const int64_t d = static_cast<int64_t>(a[i]) - static_cast<int64_t>(b[i]);
    sum += static_cast<uint64_t>(d * d);
  }
  return sum;
}

uint64_t SumSquaredDiff16(const uint16_t* a, const uint16_t* b, size_t k) {
  // A 16-bit diff squares up to 65535^2 > i32, so madd is unsafe here.
  // Widen diffs to u32 and use mul_epu32 on the even/odd u32 lanes, which
  // multiplies into full u64 products.
  __m256i acc64 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i d16 =
        _mm_sub_epi16(_mm_max_epu16(va, vb), _mm_min_epu16(va, vb));
    const __m256i d32 = _mm256_cvtepu16_epi32(d16);
    const __m256i even = _mm256_mul_epu32(d32, d32);
    const __m256i shifted = _mm256_srli_epi64(d32, 32);
    const __m256i odd = _mm256_mul_epu32(shifted, shifted);
    acc64 = _mm256_add_epi64(acc64, even);
    acc64 = _mm256_add_epi64(acc64, odd);
  }
  uint64_t sum = HorizontalSum64(acc64);
  for (; i < k; ++i) {
    const int64_t d = static_cast<int64_t>(a[i]) - static_cast<int64_t>(b[i]);
    sum += static_cast<uint64_t>(d * d);
  }
  return sum;
}

}  // namespace tabsketch::core::kernels::avx2

#endif  // TABSKETCH_HAVE_AVX2
