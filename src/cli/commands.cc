#include "cli/commands.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/flags.h"
#include "cluster/dbscan.h"
#include "cluster/exact_backend.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "cluster/sketch_backend.h"
#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/lru_sketch_cache.h"
#include "core/ondemand.h"
#include "core/pool_io.h"
#include "core/quantized_sketch.h"
#include "core/sketch_cache.h"
#include "core/sketch_pool.h"
#include "core/sketch_io.h"
#include "core/sketcher.h"
#include "core/growing.h"
#include "serve/ingest.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "data/call_volume.h"
#include "data/ip_traffic.h"
#include "data/six_region.h"
#include "eval/audit.h"
#include "table/table_io.h"
#include "table/tiling.h"
#include "util/atomic_file.h"
#include "util/metrics.h"
#include "util/metrics_snapshot.h"
#include "util/observability.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace tabsketch::cli {
namespace {

constexpr char kUsage[] = R"(tabsketch — sketch-based Lp distance mining for tabular data

usage: tabsketch <command> [--flags]

commands:
  generate   synthesize a dataset and write it as a binary table
             --dataset=call-volume|six-region|ip-traffic  --out=FILE
             [--rows=N --cols=N --days=N --seed=N]
  info       print a table's dimensions and value summary
             --table=FILE
  sketch     sketch every tile of a table and write the sketch set
             --table=FILE --out=FILE --tile-rows=N --tile-cols=N
             [--p=P --k=K --seed=N --threads=N]
             [--sparsity=S very sparse stable kernels, S in (0, 1],
             default 1 = dense; part of the family identity]
  distance   exact and sketch-estimated Lp distance between two rectangles
             --table=FILE --rect1=r,c,h,w --rect2=r,c,h,w
             [--p=P --k=K --seed=N]
  cluster    cluster a table's tiles; prints a summary, optionally writes
             per-tile assignments as CSV
             --table=FILE --tile-rows=N --tile-cols=N
             [--algo=kmeans|kmedoids|dbscan] [--k=N --p=P --seed=N]
             [--mode=exact|precomputed|ondemand] [--sketch-k=K]
             [--sparsity=S sparse sketch kernels (sketch modes only)]
             [--cache-bytes=N bound the on-demand sketch cache, 0 = keep all]
             [--quant=off|int8|int16 code-scan assignment prefilter over
             quantized sketches; output is byte-identical to off]
             [--epsilon=E --min-points=M] [--threads=N] [--out=FILE]
  pool-build build a dyadic sketch pool over a table and persist it
             --table=FILE --out=FILE [--p=P --k=K --seed=N
             --min-log2=N --max-log2=N --threads=N]
             [--sparsity=S sparse kernels with per-kernel FFT vs O(nnz)
             direct routing; recorded in the pool header]
  pool-query O(k) sketch distance between two equal-size rectangles
             --pool=FILE --rect1=r,c,h,w --rect2=r,c,h,w
             [--table=FILE for an exact reference]
  query      answer a batch file of distance / knn requests over a table's
             tiles (answers to stdout, cache statistics to stderr; output is
             byte-identical for every --threads and --cache-bytes)
             --table=FILE --tile-rows=N --tile-cols=N --batch=FILE
             [--p=P --k=K --seed=N --sparsity=S]
             [--sketches=FILE precomputed sketch set]
             [--cache-bytes=N LRU sketch-cache budget, 0 = keep all]
             [--threads=N] [--refine exact re-rank of knn candidates]
             [--candidates=N refine candidate-set size, 0 = auto]
             [--quant=off|int8|int16 filter-refine knn over quantized
             sketch codes; answers stay byte-identical to off]
             [--out=FILE write answers to a file instead of stdout]
  serve      long-lived query daemon on 127.0.0.1: a line protocol over TCP
             speaking the batch grammar plus ping / reload <sketches> /
             stats [json|prom|slow] / health / quit (see docs/FORMATS.md);
             SIGINT/SIGTERM drains and exits
             --table=FILE --tile-rows=N --tile-cols=N
             [--p=P --k=K --seed=N --sparsity=S]
             [--sketches=FILE precomputed sketch set]
             [--cache-bytes=N] [--threads=N] [--refine] [--candidates=N]
             [--quant=off|int8|int16 quantized knn prefilter tier]
             [--ingest enable streaming append / retire / window verbs;
             requires --table, excludes --sketches/--cache-bytes/reload]
             [--port=N listen port, 0 = ephemeral]
             [--port-file=FILE write the bound port (readiness signal)]
             [--max-inflight=N concurrent requests, 0 = thread count]
             [--max-queue=N waiting requests before load-shedding]
             [--deadline-ms=N bound time queued for a slot, 0 = none]
             [--slow-ms=T record requests slower than T ms in the slow log
             (`stats slow`); 0 = off]
             [--slow-log=FILE also mirror slow-log entries as JSONL]
             [--stats-interval=S rolling metrics-snapshot period backing
             the stats verb's window rates, seconds, default 1]
             [--stats-ring=N rolling snapshots kept, default 8]
  ingest     stream column pieces through a sliding-window sketch store and
             write the window's sketch set (byte-identical to `sketch` over
             the stitched window table)
             --pieces=F1,F2,... --tile-rows=N --tile-cols=N --out=FILE
             [--p=P --k=K --seed=N --sparsity=S --threads=N]
             [--window=N keep at most N tile columns, retiring the oldest]
             [--table-out=FILE also write the final window table]
  top        live view of a running serve daemon: polls its `stats json`
             verb and prints one line per interval with rates diffed
             client-side between consecutive polls
             --port=N (or --port-file=FILE written by serve)
             [--interval=S poll period in seconds, default 1]
             [--once poll twice, print a single data line, exit]
  help       show this message

global flags (every command):
  --metrics-json=FILE  dump per-stage timings and counters as JSON
                       ("tabsketch-metrics-v1", see docs/FORMATS.md)
  --trace-json=FILE    record a flight-recorder timeline and write it as
                       Chrome trace-event JSON ("tabsketch-trace-v1");
                       open in Perfetto or chrome://tracing
  --audit-rate=R       shadow-check an R-fraction (0..1, default 0) of
                       sketch distance estimates against the exact Lp
                       distance; errors land in audit.* metrics
)";

/// Prints `status` to err and returns 1 (for `return Fail(...)`).
int Fail(std::ostream& err, const util::Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

// Command-local error plumbing: every command takes `err` by this name and
// returns an int exit code, so a failed Status/Result becomes `return 1`
// with the diagnostic printed.
#define TABSKETCH_RETURN_CLI(expr)                        \
  do {                                                    \
    const ::tabsketch::util::Status _cli_status = (expr); \
    if (!_cli_status.ok()) return Fail(err, _cli_status); \
  } while (false)

#define TABSKETCH_ASSIGN_CLI(lhs, rexpr)                          \
  TABSKETCH_ASSIGN_CLI_IMPL_(                                     \
      TABSKETCH_CONCAT_(_cli_result, __LINE__), lhs, rexpr)
#define TABSKETCH_ASSIGN_CLI_IMPL_(result, lhs, rexpr)    \
  auto result = (rexpr);                                  \
  if (!result.ok()) return Fail(err, result.status());    \
  lhs = std::move(result).value()

/// Clamps a --threads flag value to a sane worker count (>= 1).
size_t ThreadsFromFlag(int64_t threads) {
  return static_cast<size_t>(std::max<int64_t>(threads, 1));
}

/// Range check for --sparsity, phrased in terms of the flag (the params-level
/// validation would fire too, but without naming the flag the user typed).
util::Status ValidateSparsityFlag(double sparsity) {
  if (!(sparsity > 0.0) || sparsity > 1.0) {
    std::ostringstream msg;
    msg << "--sparsity must be in (0, 1], got " << sparsity;
    return util::Status::InvalidArgument(msg.str());
  }
  return util::Status::OK();
}

int CmdGenerate(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"dataset", "out", "rows", "cols", "days", "seed", "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string dataset,
                       flags.GetRequired("dataset"));
  TABSKETCH_ASSIGN_CLI(const std::string path, flags.GetRequired("out"));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));

  table::Matrix matrix;
  if (dataset == "call-volume") {
    data::CallVolumeOptions options;
    TABSKETCH_ASSIGN_CLI(const int64_t rows, flags.GetInt("rows", 1024));
    TABSKETCH_ASSIGN_CLI(const int64_t days, flags.GetInt("days", 1));
    options.num_stations = static_cast<size_t>(rows);
    options.num_days = static_cast<size_t>(days);
    options.seed = static_cast<uint64_t>(seed);
    auto generated = data::GenerateCallVolume(options);
    if (!generated.ok()) return Fail(err, generated.status());
    matrix = std::move(generated).value();
  } else if (dataset == "six-region") {
    data::SixRegionOptions options;
    TABSKETCH_ASSIGN_CLI(const int64_t rows, flags.GetInt("rows", 256));
    TABSKETCH_ASSIGN_CLI(const int64_t cols, flags.GetInt("cols", 512));
    options.rows = static_cast<size_t>(rows);
    options.cols = static_cast<size_t>(cols);
    options.seed = static_cast<uint64_t>(seed);
    auto generated = data::GenerateSixRegion(options);
    if (!generated.ok()) return Fail(err, generated.status());
    matrix = std::move(generated->table);
  } else if (dataset == "ip-traffic") {
    data::IpTrafficOptions options;
    TABSKETCH_ASSIGN_CLI(const int64_t rows, flags.GetInt("rows", 1024));
    TABSKETCH_ASSIGN_CLI(const int64_t cols, flags.GetInt("cols", 288));
    options.num_hosts = static_cast<size_t>(rows);
    options.num_bins = static_cast<size_t>(cols);
    options.seed = static_cast<uint64_t>(seed);
    auto generated = data::GenerateIpTraffic(options);
    if (!generated.ok()) return Fail(err, generated.status());
    matrix = std::move(generated->table);
  } else {
    return Fail(err, util::Status::InvalidArgument(
                         "unknown --dataset '" + dataset +
                         "' (call-volume, six-region, ip-traffic)"));
  }

  const util::Status written = table::WriteBinary(matrix, path);
  if (!written.ok()) return Fail(err, written);
  out << "wrote " << matrix.rows() << "x" << matrix.cols() << " table to "
      << path << "\n";
  return 0;
}

int CmdInfo(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly({"table", "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string path, flags.GetRequired("table"));
  auto matrix = table::ReadBinary(path);
  if (!matrix.ok()) return Fail(err, matrix.status());
  double minimum = matrix->Values().front();
  double maximum = minimum;
  double total = 0.0;
  for (double value : matrix->Values()) {
    minimum = std::min(minimum, value);
    maximum = std::max(maximum, value);
    total += value;
  }
  out << path << ": " << matrix->rows() << "x" << matrix->cols() << " ("
      << matrix->size() * sizeof(double) << " bytes)\n"
      << "  min " << minimum << ", max " << maximum << ", mean "
      << total / static_cast<double>(matrix->size()) << "\n";
  return 0;
}

int CmdSketch(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly({"table", "out", "tile-rows",
                                        "tile-cols", "p", "k", "seed",
                                        "sparsity", "threads",
                                        "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetRequired("table"));
  TABSKETCH_ASSIGN_CLI(const std::string out_path, flags.GetRequired("out"));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_rows,
                       flags.GetInt("tile-rows", 0));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_cols,
                       flags.GetInt("tile-cols", 0));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t k, flags.GetInt("k", 256));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));
  TABSKETCH_ASSIGN_CLI(const double sparsity,
                       flags.GetDouble("sparsity", 1.0));
  TABSKETCH_RETURN_CLI(ValidateSparsityFlag(sparsity));
  TABSKETCH_ASSIGN_CLI(
      const int64_t threads,
      flags.GetInt("threads",
                   static_cast<int64_t>(util::DefaultThreadCount())));

  auto matrix = table::ReadBinary(table_path);
  if (!matrix.ok()) return Fail(err, matrix.status());
  auto grid = table::TileGrid::Create(&*matrix,
                                      static_cast<size_t>(tile_rows),
                                      static_cast<size_t>(tile_cols));
  if (!grid.ok()) return Fail(err, grid.status());

  core::SketchParams params{.p = p, .k = static_cast<size_t>(k),
                            .seed = static_cast<uint64_t>(seed),
                            .sparsity = sparsity};
  auto sketcher = core::Sketcher::Create(params);
  if (!sketcher.ok()) return Fail(err, sketcher.status());

  util::WallTimer timer;
  core::SketchSet set;
  set.params = params;
  set.object_rows = grid->tile_rows();
  set.object_cols = grid->tile_cols();
  set.sketches =
      core::SketchAllTilesParallel(*sketcher, *grid, ThreadsFromFlag(threads));
  const double seconds = timer.ElapsedSeconds();

  const util::Status written = core::WriteSketchSet(set, out_path);
  if (!written.ok()) return Fail(err, written);
  out << "sketched " << set.sketches.size() << " tiles (k=" << params.k
      << ", p=" << params.p << ") in " << seconds << "s -> " << out_path
      << "\n";
  return 0;
}

int CmdDistance(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly({"table", "rect1", "rect2", "p", "k",
                                        "seed", "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetRequired("table"));
  TABSKETCH_ASSIGN_CLI(const std::string rect1_text,
                       flags.GetRequired("rect1"));
  TABSKETCH_ASSIGN_CLI(const std::string rect2_text,
                       flags.GetRequired("rect2"));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t k, flags.GetInt("k", 256));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));

  auto matrix = table::ReadBinary(table_path);
  if (!matrix.ok()) return Fail(err, matrix.status());
  auto rect1 = ParseSizeList(rect1_text, 4);
  if (!rect1.ok()) return Fail(err, rect1.status());
  auto rect2 = ParseSizeList(rect2_text, 4);
  if (!rect2.ok()) return Fail(err, rect2.status());
  const auto& r1 = *rect1;
  const auto& r2 = *rect2;
  if (r1[2] != r2[2] || r1[3] != r2[3]) {
    return Fail(err, util::Status::InvalidArgument(
                         "rectangles must have equal dimensions"));
  }
  if (r1[0] + r1[2] > matrix->rows() || r1[1] + r1[3] > matrix->cols() ||
      r2[0] + r2[2] > matrix->rows() || r2[1] + r2[3] > matrix->cols()) {
    return Fail(err, util::Status::OutOfRange(
                         "rectangle exceeds the table"));
  }

  // Validate the family (in particular p in (0, 2]) before LpDistance, whose
  // precondition on p is a hard CHECK rather than a recoverable status.
  core::SketchParams params{.p = p, .k = static_cast<size_t>(k),
                            .seed = static_cast<uint64_t>(seed)};
  auto sketcher = core::Sketcher::Create(params);
  if (!sketcher.ok()) return Fail(err, sketcher.status());
  auto estimator = core::DistanceEstimator::Create(params);
  if (!estimator.ok()) return Fail(err, estimator.status());

  const table::TableView view1 =
      matrix->Window(r1[0], r1[1], r1[2], r1[3]);
  const table::TableView view2 =
      matrix->Window(r2[0], r2[1], r2[2], r2[3]);
  const double exact = core::LpDistance(view1, view2, p);
  const double approx = estimator->Estimate(sketcher->SketchOf(view1),
                                            sketcher->SketchOf(view2));
  // The exact distance is already on hand here, so auditing costs nothing
  // extra: record the pair whenever the auditor is on.
  if (eval::SketchAuditor::Enabled()) {
    eval::SketchAuditor::Global()
        .ChannelFor(params.p, params.k, params.sparsity)
        ->Record(exact, approx);
  }
  out << "L" << p << " distance, " << r1[2] << "x" << r1[3]
      << " rectangles:\n"
      << "  exact:     " << exact << "\n"
      << "  estimated: " << approx << "  (k=" << params.k << ")\n";
  return 0;
}

int CmdCluster(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"table", "tile-rows", "tile-cols", "algo", "k", "p", "seed", "mode",
       "sketch-k", "sparsity", "cache-bytes", "quant", "epsilon",
       "min-points", "threads", "out", "metrics-json", "trace-json",
       "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetRequired("table"));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_rows,
                       flags.GetInt("tile-rows", 0));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_cols,
                       flags.GetInt("tile-cols", 0));
  TABSKETCH_ASSIGN_CLI(const std::string algo,
                       flags.GetString("algo", "kmeans"));
  TABSKETCH_ASSIGN_CLI(const int64_t num_clusters, flags.GetInt("k", 8));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));
  TABSKETCH_ASSIGN_CLI(const std::string mode,
                       flags.GetString("mode", "precomputed"));
  TABSKETCH_ASSIGN_CLI(const int64_t sketch_k, flags.GetInt("sketch-k", 256));
  TABSKETCH_ASSIGN_CLI(const double sparsity,
                       flags.GetDouble("sparsity", 1.0));
  TABSKETCH_RETURN_CLI(ValidateSparsityFlag(sparsity));
  TABSKETCH_ASSIGN_CLI(const int64_t cache_bytes,
                       flags.GetInt("cache-bytes", 0));
  TABSKETCH_ASSIGN_CLI(const std::string quant_text,
                       flags.GetString("quant", "off"));
  TABSKETCH_ASSIGN_CLI(const core::QuantKind quant,
                       core::ParseQuantKind(quant_text));
  TABSKETCH_ASSIGN_CLI(const double epsilon, flags.GetDouble("epsilon", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t min_points,
                       flags.GetInt("min-points", 4));
  TABSKETCH_ASSIGN_CLI(
      const int64_t threads_flag,
      flags.GetInt("threads",
                   static_cast<int64_t>(util::DefaultThreadCount())));
  TABSKETCH_ASSIGN_CLI(const std::string out_path,
                       flags.GetString("out", ""));
  const size_t threads = ThreadsFromFlag(threads_flag);

  // Flag conflicts fail before any table IO.
  if (mode == "exact") {
    if (quant != core::QuantKind::kOff) {
      return Fail(err, util::Status::InvalidArgument(
                           "--quant applies to sketch modes only; "
                           "--mode=exact has no sketches to quantize"));
    }
    if (flags.Has("sparsity")) {
      return Fail(err, util::Status::InvalidArgument(
                           "--sparsity applies to sketch modes only; "
                           "--mode=exact has no sketch family"));
    }
  }

  auto matrix = table::ReadBinary(table_path);
  if (!matrix.ok()) return Fail(err, matrix.status());
  auto grid = table::TileGrid::Create(&*matrix,
                                      static_cast<size_t>(tile_rows),
                                      static_cast<size_t>(tile_cols));
  if (!grid.ok()) return Fail(err, grid.status());

  // Backend per --mode.
  std::unique_ptr<cluster::ClusteringBackend> backend;
  if (mode == "exact") {
    auto exact = cluster::ExactBackend::Create(&*grid, p);
    if (!exact.ok()) return Fail(err, exact.status());
    backend = std::make_unique<cluster::ExactBackend>(
        std::move(exact).value());
  } else if (mode == "precomputed" || mode == "ondemand") {
    if (cache_bytes < 0) {
      return Fail(err, util::Status::InvalidArgument(
                           "--cache-bytes must be >= 0"));
    }
    auto sketch = cluster::SketchBackend::Create(
        &*grid,
        {.p = p, .k = static_cast<size_t>(sketch_k),
         .seed = static_cast<uint64_t>(seed), .sparsity = sparsity},
        mode == "precomputed" ? cluster::SketchMode::kPrecomputed
                              : cluster::SketchMode::kOnDemand,
        core::EstimatorKind::kAuto, threads,
        static_cast<size_t>(cache_bytes), quant);
    if (!sketch.ok()) return Fail(err, sketch.status());
    backend = std::make_unique<cluster::SketchBackend>(
        std::move(sketch).value());
  } else {
    return Fail(err, util::Status::InvalidArgument(
                         "unknown --mode '" + mode +
                         "' (exact, precomputed, ondemand)"));
  }

  std::vector<int> assignment;
  if (algo == "kmeans") {
    auto result = cluster::RunKMeans(
        backend.get(), {.k = static_cast<size_t>(num_clusters),
                        .max_iterations = 50,
                        .seed = static_cast<uint64_t>(seed),
                        .threads = threads});
    if (!result.ok()) return Fail(err, result.status());
    out << "kmeans: " << result->iterations << " iterations, "
        << (result->converged ? "converged" : "iteration cap") << ", "
        << result->distance_evaluations << " distance evals, "
        << result->seconds << "s\n";
    assignment = std::move(result->assignment);
  } else if (algo == "kmedoids") {
    auto result = cluster::RunKMedoids(
        backend.get(), {.k = static_cast<size_t>(num_clusters),
                        .max_iterations = 30,
                        .seed = static_cast<uint64_t>(seed)});
    if (!result.ok()) return Fail(err, result.status());
    out << "kmedoids: " << result->iterations << " iterations, objective "
        << result->objective << ", " << result->seconds << "s\n  medoids:";
    for (size_t medoid : result->medoids) out << " " << medoid;
    out << "\n";
    assignment = std::move(result->assignment);
  } else if (algo == "dbscan") {
    auto result = cluster::RunDbscan(
        backend.get(), {.epsilon = epsilon,
                        .min_points = static_cast<size_t>(min_points)});
    if (!result.ok()) return Fail(err, result.status());
    out << "dbscan: " << result->num_clusters << " clusters, "
        << result->num_noise << " noise tiles, " << result->seconds
        << "s\n";
    assignment = std::move(result->assignment);
  } else {
    return Fail(err, util::Status::InvalidArgument(
                         "unknown --algo '" + algo +
                         "' (kmeans, kmedoids, dbscan)"));
  }

  // Cluster sizes summary.
  int max_label = -1;
  for (int label : assignment) max_label = std::max(max_label, label);
  std::vector<size_t> sizes(static_cast<size_t>(max_label + 1), 0);
  for (int label : assignment) {
    if (label >= 0) ++sizes[static_cast<size_t>(label)];
  }
  out << "cluster sizes:";
  for (size_t size : sizes) out << " " << size;
  out << "\n";

  // End-of-run accuracy audit summary (only when --audit-rate sampled
  // sketch estimates; exact-mode runs have nothing to audit).
  if (eval::SketchAuditor::Enabled()) {
    for (const auto& audit : eval::SketchAuditor::Global().Summaries()) {
      out << "audit p=" << audit.p << " k=" << audit.k;
      if (audit.sparsity < 1.0) out << " sparsity=" << audit.sparsity;
      out << ": " << audit.samples << " sampled, median relerr "
          << audit.median_relerr << ", worst " << audit.worst_relerr << ", "
          << audit.violations << " over eps=" << audit.epsilon << "\n";
    }
  }

  if (!out_path.empty()) {
    std::ofstream csv(out_path, std::ios::trunc);
    if (!csv) {
      return Fail(err,
                  util::Status::IOError("cannot write " + out_path));
    }
    csv << "tile,grid_row,grid_col,cluster\n";
    for (size_t t = 0; t < assignment.size(); ++t) {
      csv << t << "," << t / grid->grid_cols() << ","
          << t % grid->grid_cols() << "," << assignment[t] << "\n";
    }
    out << "assignments written to " << out_path << "\n";
  }
  return 0;
}

int CmdPoolBuild(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"table", "out", "p", "k", "seed", "sparsity", "min-log2", "max-log2",
       "threads", "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetRequired("table"));
  TABSKETCH_ASSIGN_CLI(const std::string out_path, flags.GetRequired("out"));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t k, flags.GetInt("k", 64));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));
  TABSKETCH_ASSIGN_CLI(const double sparsity,
                       flags.GetDouble("sparsity", 1.0));
  TABSKETCH_RETURN_CLI(ValidateSparsityFlag(sparsity));
  TABSKETCH_ASSIGN_CLI(const int64_t min_log2, flags.GetInt("min-log2", 3));
  TABSKETCH_ASSIGN_CLI(const int64_t max_log2, flags.GetInt("max-log2", 63));
  TABSKETCH_ASSIGN_CLI(
      const int64_t threads,
      flags.GetInt("threads",
                   static_cast<int64_t>(util::DefaultThreadCount())));

  auto matrix = table::ReadBinary(table_path);
  if (!matrix.ok()) return Fail(err, matrix.status());
  core::PoolOptions options;
  options.log2_min_rows = static_cast<size_t>(min_log2);
  options.log2_min_cols = static_cast<size_t>(min_log2);
  options.log2_max_rows = static_cast<size_t>(max_log2);
  options.log2_max_cols = static_cast<size_t>(max_log2);
  options.threads = ThreadsFromFlag(threads);
  util::WallTimer timer;
  auto pool = core::SketchPool::Build(
      *matrix, {.p = p, .k = static_cast<size_t>(k),
                .seed = static_cast<uint64_t>(seed), .sparsity = sparsity},
      options);
  if (!pool.ok()) return Fail(err, pool.status());
  const double seconds = timer.ElapsedSeconds();
  const util::Status written = core::WriteSketchPool(*pool, out_path);
  if (!written.ok()) return Fail(err, written);
  out << "pool with " << pool->CanonicalSizes().size()
      << " canonical sizes built in " << seconds << "s -> " << out_path
      << "\n";
  return 0;
}

int CmdPoolQuery(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"pool", "rect1", "rect2", "table", "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string pool_path,
                       flags.GetRequired("pool"));
  TABSKETCH_ASSIGN_CLI(const std::string rect1_text,
                       flags.GetRequired("rect1"));
  TABSKETCH_ASSIGN_CLI(const std::string rect2_text,
                       flags.GetRequired("rect2"));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetString("table", ""));

  auto pool = core::ReadSketchPool(pool_path);
  if (!pool.ok()) return Fail(err, pool.status());
  auto rect1 = ParseSizeList(rect1_text, 4);
  if (!rect1.ok()) return Fail(err, rect1.status());
  auto rect2 = ParseSizeList(rect2_text, 4);
  if (!rect2.ok()) return Fail(err, rect2.status());
  const auto& r1 = *rect1;
  const auto& r2 = *rect2;
  if (r1[2] != r2[2] || r1[3] != r2[3]) {
    return Fail(err, util::Status::InvalidArgument(
                         "rectangles must have equal dimensions"));
  }
  auto sketch1 = pool->Query(r1[0], r1[1], r1[2], r1[3]);
  if (!sketch1.ok()) return Fail(err, sketch1.status());
  auto sketch2 = pool->Query(r2[0], r2[1], r2[2], r2[3]);
  if (!sketch2.ok()) return Fail(err, sketch2.status());
  auto estimator = core::DistanceEstimator::Create(pool->params());
  if (!estimator.ok()) return Fail(err, estimator.status());
  out << "compound-sketch estimate: "
      << estimator->Estimate(*sketch1, *sketch2) << "\n";
  if (!table_path.empty()) {
    auto matrix = table::ReadBinary(table_path);
    if (!matrix.ok()) return Fail(err, matrix.status());
    out << "exact reference:          "
        << core::LpDistance(matrix->Window(r1[0], r1[1], r1[2], r1[3]),
                            matrix->Window(r2[0], r2[1], r2[2], r2[3]),
                            pool->params().p)
        << "  (compound estimates carry the Theorem-5 band)\n";
  }
  return 0;
}

int CmdQuery(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"table", "tile-rows", "tile-cols", "batch", "p", "k", "seed",
       "sparsity", "sketches", "cache-bytes", "threads", "refine",
       "candidates", "quant", "out", "metrics-json", "trace-json",
       "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetRequired("table"));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_rows,
                       flags.GetInt("tile-rows", 0));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_cols,
                       flags.GetInt("tile-cols", 0));
  TABSKETCH_ASSIGN_CLI(const std::string batch_path,
                       flags.GetRequired("batch"));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t k, flags.GetInt("k", 256));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));
  TABSKETCH_ASSIGN_CLI(const double sparsity,
                       flags.GetDouble("sparsity", 1.0));
  TABSKETCH_RETURN_CLI(ValidateSparsityFlag(sparsity));
  TABSKETCH_ASSIGN_CLI(const std::string sketches_path,
                       flags.GetString("sketches", ""));
  TABSKETCH_ASSIGN_CLI(const int64_t cache_bytes,
                       flags.GetInt("cache-bytes", 0));
  TABSKETCH_ASSIGN_CLI(
      const int64_t threads_flag,
      flags.GetInt("threads",
                   static_cast<int64_t>(util::DefaultThreadCount())));
  TABSKETCH_ASSIGN_CLI(const bool refine, flags.GetBool("refine", false));
  TABSKETCH_ASSIGN_CLI(const int64_t candidates,
                       flags.GetInt("candidates", 0));
  TABSKETCH_ASSIGN_CLI(const std::string quant_text,
                       flags.GetString("quant", "off"));
  TABSKETCH_ASSIGN_CLI(const core::QuantKind quant,
                       core::ParseQuantKind(quant_text));
  TABSKETCH_ASSIGN_CLI(const std::string out_path,
                       flags.GetString("out", ""));
  if (cache_bytes < 0 || candidates < 0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--cache-bytes and --candidates must be >= 0"));
  }

  if (!sketches_path.empty() &&
      (flags.Has("p") || flags.Has("k") || flags.Has("seed") ||
       flags.Has("sparsity"))) {
    return Fail(err, util::Status::InvalidArgument(
                         "--p/--k/--seed/--sparsity come from the "
                         "--sketches file; drop the flags"));
  }
  TABSKETCH_ASSIGN_CLI(const std::vector<serve::QueryRequest> batch,
                       serve::ParseBatchFile(batch_path));

  // The whole serving pipeline (table, grid, sketch source, estimator,
  // engine) is one Snapshot — the same composition `tabsketch serve`
  // publishes per generation. Sketch source selection lives there: a
  // precomputed set from disk, or compute through a cache — unbounded
  // on-demand by default, byte-budgeted LRU with --cache-bytes. All three
  // yield byte-identical answers (sketches are deterministic).
  serve::SnapshotSpec spec;
  spec.table_path = table_path;
  spec.tile_rows = static_cast<size_t>(tile_rows);
  spec.tile_cols = static_cast<size_t>(tile_cols);
  spec.sketches_path = sketches_path;
  spec.params = core::SketchParams{.p = p, .k = static_cast<size_t>(k),
                                   .seed = static_cast<uint64_t>(seed),
                                   .sparsity = sparsity};
  spec.cache_bytes = static_cast<size_t>(cache_bytes);
  spec.engine.threads = ThreadsFromFlag(threads_flag);
  spec.engine.refine = refine;
  spec.engine.candidates = static_cast<size_t>(candidates);
  spec.engine.quant = quant;
  TABSKETCH_ASSIGN_CLI(const std::shared_ptr<const serve::Snapshot> snapshot,
                       serve::Snapshot::Create(spec));

  util::WallTimer timer;
  auto results = snapshot->engine().Run(batch);
  if (!results.ok()) return Fail(err, results.status());
  const double seconds = timer.ElapsedSeconds();

  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::trunc);
    if (!file) {
      return Fail(err, util::Status::IOError("cannot write " + out_path));
    }
    for (const std::string& line : *results) file << line << "\n";
  } else {
    for (const std::string& line : *results) out << line << "\n";
  }
  // Statistics go to stderr: they vary with --threads/--cache-bytes and
  // timing, while the answers above must not.
  const core::TileSketchCache& cache = snapshot->cache();
  err << "answered " << results->size() << " requests in " << seconds
      << "s (" << cache.hits() << " cache hits, " << cache.computed()
      << " sketches computed)\n";
  if (const auto* lru = dynamic_cast<const core::LruSketchCache*>(&cache)) {
    err << "lru cache: " << lru->evictions() << " evictions, peak "
        << lru->peak_bytes() << " of " << lru->capacity_bytes()
        << " budget bytes\n";
  }
  return 0;
}

/// File descriptor the serve signal handler pokes to request shutdown; -1
/// when no serve command is active. Plain int store/load is async-signal-safe
/// via std::atomic with relaxed ordering.
std::atomic<int> g_serve_stop_fd{-1};

extern "C" void TabsketchServeSignalHandler(int /*signum*/) {
  const int fd = g_serve_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // The self-pipe is the wake mechanism; if it is full the daemon is
    // already waking up, so a short/failed write is fine to ignore.
    const ssize_t ignored = write(fd, &byte, 1);
    (void)ignored;
  }
}

/// Writes `port` to `path` atomically (tmp + rename), so a reader polling
/// for the file never sees a partial write. This is the daemon's readiness
/// signal for scripts.
util::Status WritePortFile(const std::string& path, uint16_t port) {
  return util::WriteFileAtomic(path, std::to_string(port) + "\n");
}

/// Enables the metrics registry for a daemon's lifetime. The stats verbs
/// serve live counters, so `serve` needs metrics on even when no
/// --metrics-json asked for a final dump. The destructor restores the
/// prior state so repeated in-process invocations (the tests) stay
/// isolated; when --metrics-json already enabled the registry this is a
/// no-op both ways.
class ScopedMetricsEnable {
 public:
  ScopedMetricsEnable() : was_enabled_(util::MetricsRegistry::Enabled()) {
    if (!was_enabled_) {
      util::PreregisterCoreMetrics(&util::MetricsRegistry::Global());
      util::MetricsRegistry::Global().ResetValues();
      util::MetricsRegistry::SetEnabled(true);
    }
  }
  ~ScopedMetricsEnable() {
    if (!was_enabled_) util::MetricsRegistry::SetEnabled(false);
  }
  ScopedMetricsEnable(const ScopedMetricsEnable&) = delete;
  ScopedMetricsEnable& operator=(const ScopedMetricsEnable&) = delete;

 private:
  const bool was_enabled_;
};

int CmdServe(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"table", "tile-rows", "tile-cols", "p", "k", "seed", "sparsity",
       "sketches", "cache-bytes", "threads", "refine", "candidates", "quant",
       "ingest", "port", "port-file", "max-inflight", "max-queue",
       "deadline-ms", "slow-ms", "slow-log", "stats-interval", "stats-ring",
       "metrics-json", "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string table_path,
                       flags.GetString("table", ""));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_rows,
                       flags.GetInt("tile-rows", 0));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_cols,
                       flags.GetInt("tile-cols", 0));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t k, flags.GetInt("k", 256));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));
  TABSKETCH_ASSIGN_CLI(const double sparsity,
                       flags.GetDouble("sparsity", 1.0));
  TABSKETCH_RETURN_CLI(ValidateSparsityFlag(sparsity));
  TABSKETCH_ASSIGN_CLI(const std::string sketches_path,
                       flags.GetString("sketches", ""));
  TABSKETCH_ASSIGN_CLI(const int64_t cache_bytes,
                       flags.GetInt("cache-bytes", 0));
  TABSKETCH_ASSIGN_CLI(
      const int64_t threads_flag,
      flags.GetInt("threads",
                   static_cast<int64_t>(util::DefaultThreadCount())));
  TABSKETCH_ASSIGN_CLI(const bool refine, flags.GetBool("refine", false));
  TABSKETCH_ASSIGN_CLI(const int64_t candidates,
                       flags.GetInt("candidates", 0));
  TABSKETCH_ASSIGN_CLI(const std::string quant_text,
                       flags.GetString("quant", "off"));
  TABSKETCH_ASSIGN_CLI(const core::QuantKind quant,
                       core::ParseQuantKind(quant_text));
  TABSKETCH_ASSIGN_CLI(const bool ingest_enabled,
                       flags.GetBool("ingest", false));
  TABSKETCH_ASSIGN_CLI(const int64_t port, flags.GetInt("port", 0));
  TABSKETCH_ASSIGN_CLI(const std::string port_file,
                       flags.GetString("port-file", ""));
  TABSKETCH_ASSIGN_CLI(const int64_t max_inflight,
                       flags.GetInt("max-inflight", 0));
  TABSKETCH_ASSIGN_CLI(const int64_t max_queue,
                       flags.GetInt("max-queue", 64));
  TABSKETCH_ASSIGN_CLI(const int64_t deadline_ms,
                       flags.GetInt("deadline-ms", 0));
  TABSKETCH_ASSIGN_CLI(const double slow_ms, flags.GetDouble("slow-ms", 0.0));
  TABSKETCH_ASSIGN_CLI(const std::string slow_log_path,
                       flags.GetString("slow-log", ""));
  TABSKETCH_ASSIGN_CLI(const double stats_interval,
                       flags.GetDouble("stats-interval", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t stats_ring,
                       flags.GetInt("stats-ring", 8));
  TABSKETCH_ASSIGN_CLI(const std::string metrics_json_path,
                       flags.GetString("metrics-json", ""));
  if (cache_bytes < 0 || candidates < 0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--cache-bytes and --candidates must be >= 0"));
  }
  if (port < 0 || port > 65535) {
    return Fail(err, util::Status::InvalidArgument(
                         "--port must be in [0, 65535]"));
  }
  if (max_inflight < 0 || max_queue < 0 || deadline_ms < 0) {
    return Fail(err,
                util::Status::InvalidArgument(
                    "--max-inflight/--max-queue/--deadline-ms must be >= 0"));
  }
  if (slow_ms < 0.0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--slow-ms must be >= 0 (0 = off)"));
  }
  if (!slow_log_path.empty() && slow_ms <= 0.0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--slow-log needs --slow-ms > 0"));
  }
  if (!(stats_interval > 0.0)) {
    return Fail(err, util::Status::InvalidArgument(
                         "--stats-interval must be > 0"));
  }
  if (stats_ring < 1) {
    return Fail(err, util::Status::InvalidArgument(
                         "--stats-ring must be >= 1"));
  }
  if (table_path.empty() && sketches_path.empty()) {
    return Fail(err, util::Status::InvalidArgument(
                         "serve needs --table and/or --sketches"));
  }
  if (!sketches_path.empty() &&
      (flags.Has("p") || flags.Has("k") || flags.Has("seed") ||
       flags.Has("sparsity"))) {
    return Fail(err, util::Status::InvalidArgument(
                         "--p/--k/--seed/--sparsity come from the "
                         "--sketches file; drop the flags"));
  }
  if (ingest_enabled && table_path.empty()) {
    return Fail(err, util::Status::InvalidArgument(
                         "--ingest needs --table to seed the window"));
  }
  if (ingest_enabled && !sketches_path.empty()) {
    return Fail(err, util::Status::InvalidArgument(
                         "--ingest computes its own sketches; drop "
                         "--sketches"));
  }
  if (ingest_enabled && cache_bytes != 0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--ingest pins every window sketch; drop "
                         "--cache-bytes"));
  }

  // Live introspection (`stats`, `health`, `top`) reads the registry, so
  // the daemon always runs with metrics on — declared before the ticker and
  // the server so it outlives both.
  const ScopedMetricsEnable metrics_enable;

  serve::SnapshotSpec spec;
  spec.table_path = table_path;
  spec.tile_rows = static_cast<size_t>(tile_rows);
  spec.tile_cols = static_cast<size_t>(tile_cols);
  spec.sketches_path = sketches_path;
  spec.params = core::SketchParams{.p = p, .k = static_cast<size_t>(k),
                                   .seed = static_cast<uint64_t>(seed),
                                   .sparsity = sparsity};
  spec.cache_bytes = static_cast<size_t>(cache_bytes);
  spec.engine.threads = ThreadsFromFlag(threads_flag);
  spec.engine.refine = refine;
  spec.engine.candidates = static_cast<size_t>(candidates);
  spec.engine.quant = quant;
  // With --ingest the StreamingIngest builds the first generation (and all
  // successors); `reload` is disabled — it would publish a snapshot the
  // ingest driver knows nothing about, desyncing its incremental state.
  std::unique_ptr<serve::StreamingIngest> ingest;
  std::shared_ptr<const serve::Snapshot> snapshot;
  if (ingest_enabled) {
    TABSKETCH_ASSIGN_CLI(ingest, serve::StreamingIngest::Create(spec));
    snapshot = ingest->initial();
  } else {
    TABSKETCH_ASSIGN_CLI(snapshot, serve::Snapshot::Create(spec));
  }
  const size_t tiles = snapshot->num_tiles();
  serve::SnapshotHolder holder(std::move(snapshot));

  // Rolling-snapshot ticker: backs the stats verb's last-window rates and,
  // when --metrics-json is set, atomically rewrites that file every
  // interval so a crash or SIGKILL still leaves fresh metrics behind.
  // Declared before the server so it is destroyed (final tick) after it.
  util::MetricsTicker::Options ticker_options;
  ticker_options.interval_seconds = stats_interval;
  ticker_options.ring_capacity = static_cast<size_t>(stats_ring);
  ticker_options.metrics_json_path = metrics_json_path;
  util::MetricsTicker ticker(ticker_options);

  serve::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.max_inflight = static_cast<size_t>(max_inflight);
  options.max_queue = static_cast<size_t>(max_queue);
  options.deadline_ms = static_cast<uint32_t>(deadline_ms);
  options.enable_reload = !ingest_enabled;
  options.ingest = ingest.get();
  options.ticker = &ticker;
  options.slow_ms = slow_ms;
  options.slow_log_path = slow_log_path;
  TABSKETCH_ASSIGN_CLI(const std::unique_ptr<serve::Server> server,
                       serve::Server::Start(&holder, options));

  // Self-pipe shutdown: SIGINT/SIGTERM write one byte, the foreground
  // thread blocks reading it, then drains the server. Handlers are
  // restored before returning so repeated in-process invocations (tests)
  // start clean.
  int stop_pipe[2];
  if (pipe(stop_pipe) != 0) {
    return Fail(err, util::Status::IOError("cannot create signal pipe"));
  }
  g_serve_stop_fd.store(stop_pipe[1], std::memory_order_relaxed);
  struct sigaction action {};
  struct sigaction old_int {};
  struct sigaction old_term {};
  action.sa_handler = TabsketchServeSignalHandler;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, &old_int);
  sigaction(SIGTERM, &action, &old_term);

  out << "serving " << holder.Current()->description() << " (" << tiles
      << " tiles) on 127.0.0.1:" << server->port() << "\n";
  out.flush();
  if (!port_file.empty()) {
    TABSKETCH_RETURN_CLI(WritePortFile(port_file, server->port()));
  }

  char byte = 0;
  while (read(stop_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  g_serve_stop_fd.store(-1, std::memory_order_relaxed);
  close(stop_pipe[0]);
  close(stop_pipe[1]);

  server->Shutdown();
  err << "served " << server->connections_accepted() << " connections, "
      << holder.swaps() << " snapshot swaps\n";
  return 0;
}

/// Splits "a,b,c" into non-empty segments.
std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

int CmdIngest(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"pieces", "tile-rows", "tile-cols", "out", "p", "k", "seed",
       "sparsity", "threads", "window", "table-out", "metrics-json",
       "trace-json", "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const std::string pieces_text,
                       flags.GetRequired("pieces"));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_rows,
                       flags.GetInt("tile-rows", 0));
  TABSKETCH_ASSIGN_CLI(const int64_t tile_cols,
                       flags.GetInt("tile-cols", 0));
  TABSKETCH_ASSIGN_CLI(const std::string out_path, flags.GetRequired("out"));
  TABSKETCH_ASSIGN_CLI(const double p, flags.GetDouble("p", 1.0));
  TABSKETCH_ASSIGN_CLI(const int64_t k, flags.GetInt("k", 256));
  TABSKETCH_ASSIGN_CLI(const int64_t seed, flags.GetInt("seed", 42));
  TABSKETCH_ASSIGN_CLI(const double sparsity,
                       flags.GetDouble("sparsity", 1.0));
  TABSKETCH_RETURN_CLI(ValidateSparsityFlag(sparsity));
  TABSKETCH_ASSIGN_CLI(
      const int64_t threads_flag,
      flags.GetInt("threads",
                   static_cast<int64_t>(util::DefaultThreadCount())));
  TABSKETCH_ASSIGN_CLI(const int64_t window, flags.GetInt("window", 0));
  TABSKETCH_ASSIGN_CLI(const std::string table_out,
                       flags.GetString("table-out", ""));
  const std::vector<std::string> pieces = SplitCommaList(pieces_text);
  if (pieces.empty()) {
    return Fail(err, util::Status::InvalidArgument(
                         "--pieces needs at least one file"));
  }
  if (window < 0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--window must be >= 0 (0 = unbounded)"));
  }
  const size_t threads = ThreadsFromFlag(threads_flag);

  // The same incremental engine `serve --ingest` runs, driven locally: each
  // piece appends (sketching only tiles it completes), a full window slides
  // by retiring the oldest tile columns.
  std::optional<core::GrowingTableSketcher> store;
  util::WallTimer timer;
  for (const std::string& piece_path : pieces) {
    auto piece = table::ReadBinary(piece_path);
    if (!piece.ok()) return Fail(err, piece.status());
    if (!store.has_value()) {
      TABSKETCH_ASSIGN_CLI(
          store, core::GrowingTableSketcher::Create(
                     core::SketchParams{.p = p, .k = static_cast<size_t>(k),
                                        .seed = static_cast<uint64_t>(seed),
                                        .sparsity = sparsity},
                     piece->rows(), static_cast<size_t>(tile_rows),
                     static_cast<size_t>(tile_cols)));
    }
    TABSKETCH_RETURN_CLI(store->AppendColumns(*piece, threads));
    if (window > 0 && store->grid_cols() > static_cast<size_t>(window)) {
      TABSKETCH_RETURN_CLI(store->RetireColumns(
          store->grid_cols() - static_cast<size_t>(window)));
    }
  }
  const double seconds = timer.ElapsedSeconds();

  core::SketchSet set;
  set.params = store->params();
  set.object_rows = store->tile_rows();
  set.object_cols = store->tile_cols();
  set.sketches = store->SketchesInGridOrder();
  TABSKETCH_RETURN_CLI(core::WriteSketchSet(set, out_path));
  if (!table_out.empty()) {
    TABSKETCH_RETURN_CLI(table::WriteBinary(store->table(), table_out));
  }
  out << "ingested " << pieces.size() << " pieces into window tile-cols ["
      << store->retired_tile_cols() << ", "
      << store->retired_tile_cols() + store->grid_cols() << ") ("
      << store->num_tiles() << " tiles, " << store->pending_cols()
      << " pending cols, " << store->sketches_computed()
      << " sketches computed) in " << seconds << "s -> " << out_path << "\n";
  if (!table_out.empty()) {
    out << "window table (" << store->table().rows() << "x"
        << store->table().cols() << ") -> " << table_out << "\n";
  }
  return 0;
}

/// Minimal loopback line-protocol client for `tabsketch top`: one
/// connection, one request line per Request(), one response line back.
class ServeClient {
 public:
  static util::Result<ServeClient> Connect(uint16_t port) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return util::Status::IOError("cannot create socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      close(fd);
      return util::Status::IOError("cannot connect to 127.0.0.1:" +
                                   std::to_string(port));
    }
    return ServeClient(fd);
  }

  ServeClient(ServeClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient& operator=(ServeClient&&) = delete;
  ~ServeClient() {
    if (fd_ >= 0) close(fd_);
  }

  /// Sends `line` and returns the daemon's one-line response (without the
  /// newline; a trailing CR is stripped like the server does).
  util::Result<std::string> Request(const std::string& line) {
    const std::string wire = line + "\n";
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = send(fd_, wire.data() + sent, wire.size() - sent, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return util::Status::IOError("connection lost to daemon");
      sent += static_cast<size_t>(n);
    }
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!response.empty() && response.back() == '\r') response.pop_back();
        return response;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return util::Status::IOError("connection closed by daemon");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;
};

/// Reads the port number out of a --port-file written by `serve`.
util::Result<uint16_t> ReadPortFile(const std::string& path) {
  std::ifstream file(path);
  long port = 0;
  if (!file || !(file >> port) || port <= 0 || port > 65535) {
    return util::Status::InvalidArgument("cannot read a port from " + path);
  }
  return static_cast<uint16_t>(port);
}

/// Pulls the number after `"key":` out of a flat one-line JSON object.
/// Missing keys return `fallback` — `top` degrades gracefully against a
/// daemon that predates a key instead of erroring out.
double JsonNumber(const std::string& json, const std::string& key,
                  double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return fallback;
  const char* start = json.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  return end == start ? fallback : value;
}

/// One parsed `stats json` poll, paired with the client-side receive time
/// so rates can be diffed between consecutive polls.
struct TopSample {
  std::chrono::steady_clock::time_point when;
  double requests_total = 0.0;
  double shed_total = 0.0;
  double deadline_total = 0.0;
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  double window_seconds = 0.0;
  double window_p50_ms = 0.0;
  double window_p99_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double inflight = 0.0;
  double connections_active = 0.0;
  double generation = 0.0;
  double tiles = 0.0;
};

TopSample ParseTopSample(const std::string& json) {
  TopSample sample;
  sample.when = std::chrono::steady_clock::now();
  sample.requests_total = JsonNumber(json, "requests_total", 0.0);
  sample.shed_total = JsonNumber(json, "shed_total", 0.0);
  sample.deadline_total = JsonNumber(json, "deadline_total", 0.0);
  sample.cache_hits = JsonNumber(json, "cache_hits", 0.0);
  sample.cache_misses = JsonNumber(json, "cache_misses", 0.0);
  sample.window_seconds = JsonNumber(json, "window_seconds", 0.0);
  sample.window_p50_ms = JsonNumber(json, "window_p50_ms", 0.0);
  sample.window_p99_ms = JsonNumber(json, "window_p99_ms", 0.0);
  sample.latency_p50_ms = JsonNumber(json, "latency_p50_ms", 0.0);
  sample.latency_p99_ms = JsonNumber(json, "latency_p99_ms", 0.0);
  sample.inflight = JsonNumber(json, "inflight_distance", 0.0) +
                    JsonNumber(json, "inflight_knn", 0.0);
  sample.connections_active = JsonNumber(json, "connections_active", 0.0);
  sample.generation = JsonNumber(json, "generation", 0.0);
  sample.tiles = JsonNumber(json, "tiles", 0.0);
  return sample;
}

/// Renders one `top` interval line from two consecutive polls: counters are
/// diffed client-side over the measured wall gap; percentiles prefer the
/// daemon's ticker window and fall back to the cumulative histogram when the
/// window is empty.
std::string RenderTopLine(const TopSample& prev, const TopSample& cur) {
  const double seconds =
      std::chrono::duration<double>(cur.when - prev.when).count();
  const double rps =
      seconds > 0.0 ? (cur.requests_total - prev.requests_total) / seconds
                    : 0.0;
  const double hits = cur.cache_hits - prev.cache_hits;
  const double misses = cur.cache_misses - prev.cache_misses;
  const double hit_ratio = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  const bool windowed = cur.window_seconds > 0.0;
  const double p50 = windowed ? cur.window_p50_ms : cur.latency_p50_ms;
  const double p99 = windowed ? cur.window_p99_ms : cur.latency_p99_ms;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%10.1f %9.3f %9.3f %6.2f %6.0f %6.0f %9.0f %6.0f %5.0f "
                "%7.0f",
                rps, p50, p99, hit_ratio,
                cur.shed_total - prev.shed_total,
                cur.deadline_total - prev.deadline_total, cur.inflight,
                cur.connections_active, cur.generation, cur.tiles);
  return line;
}

int CmdTop(const Flags& flags, std::ostream& out, std::ostream& err) {
  TABSKETCH_RETURN_CLI(flags.AllowOnly(
      {"port", "port-file", "interval", "once", "metrics-json", "trace-json",
       "audit-rate"}));
  TABSKETCH_ASSIGN_CLI(const int64_t port_flag, flags.GetInt("port", 0));
  TABSKETCH_ASSIGN_CLI(const std::string port_file,
                       flags.GetString("port-file", ""));
  TABSKETCH_ASSIGN_CLI(const double interval,
                       flags.GetDouble("interval", 1.0));
  TABSKETCH_ASSIGN_CLI(const bool once, flags.GetBool("once", false));
  if (port_flag < 0 || port_flag > 65535) {
    return Fail(err, util::Status::InvalidArgument(
                         "--port must be in [1, 65535]"));
  }
  if (port_flag == 0 && port_file.empty()) {
    return Fail(err, util::Status::InvalidArgument(
                         "top needs --port or --port-file"));
  }
  if (!(interval > 0.0)) {
    return Fail(err,
                util::Status::InvalidArgument("--interval must be > 0"));
  }
  uint16_t port = static_cast<uint16_t>(port_flag);
  if (port == 0) {
    TABSKETCH_ASSIGN_CLI(port, ReadPortFile(port_file));
  }

  TABSKETCH_ASSIGN_CLI(ServeClient client, ServeClient::Connect(port));
  const auto poll = [&]() -> util::Result<TopSample> {
    auto response = client.Request("stats json");
    if (!response.ok()) return response.status();
    if (response->rfind("error ", 0) == 0) {
      return util::Status::InvalidArgument("daemon answered: " + *response);
    }
    return ParseTopSample(*response);
  };

  char header[256];
  std::snprintf(header, sizeof(header),
                "%10s %9s %9s %6s %6s %6s %9s %6s %5s %7s", "rps", "p50_ms",
                "p99_ms", "hit", "shed", "ddl", "inflight", "conn", "gen",
                "tiles");
  out << header << "\n";
  out.flush();

  TABSKETCH_ASSIGN_CLI(TopSample prev, poll());
  size_t printed = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    auto cur = poll();
    if (!cur.ok()) {
      // The daemon going away mid-watch is the normal way a live view
      // ends; only a poll that never produced a line is an error.
      if (printed > 0) {
        err << "top: " << cur.status().ToString() << "\n";
        return 0;
      }
      return Fail(err, cur.status());
    }
    out << RenderTopLine(prev, *cur) << "\n";
    out.flush();
    ++printed;
    prev = *cur;
    if (once) return 0;
  }
}

}  // namespace

int RunTabsketchCli(int argc, const char* const* argv, std::ostream& out,
                    std::ostream& err) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(err, flags.status());
  const std::string& command = flags->command();
  if (command.empty() || command == "help") {
    out << kUsage;
    return command.empty() ? 1 : 0;
  }
  // The observability flags are handled here, outside the commands: enable
  // the requested subsystems (metrics reset first, so repeated in-process
  // invocations — the tests — each dump only their own run) before dispatch,
  // flush them after. Commands only have to list the flags in AllowOnly.
  auto metrics_path = flags->GetString("metrics-json", "");
  if (!metrics_path.ok()) return Fail(err, metrics_path.status());
  auto trace_path = flags->GetString("trace-json", "");
  if (!trace_path.ok()) return Fail(err, trace_path.status());
  auto audit_rate = flags->GetDouble("audit-rate", 0.0);
  if (!audit_rate.ok()) return Fail(err, audit_rate.status());
  if (!(*audit_rate >= 0.0) || *audit_rate > 1.0) {
    return Fail(err, util::Status::InvalidArgument(
                         "--audit-rate must be in [0, 1]"));
  }
  const util::ObservabilityArgs observability{*metrics_path, *trace_path,
                                              *audit_rate};
  util::SetupObservability(observability);

  int code = 1;
  if (command == "generate") {
    code = CmdGenerate(*flags, out, err);
  } else if (command == "info") {
    code = CmdInfo(*flags, out, err);
  } else if (command == "sketch") {
    code = CmdSketch(*flags, out, err);
  } else if (command == "distance") {
    code = CmdDistance(*flags, out, err);
  } else if (command == "cluster") {
    code = CmdCluster(*flags, out, err);
  } else if (command == "pool-build") {
    code = CmdPoolBuild(*flags, out, err);
  } else if (command == "pool-query") {
    code = CmdPoolQuery(*flags, out, err);
  } else if (command == "query") {
    code = CmdQuery(*flags, out, err);
  } else if (command == "serve") {
    code = CmdServe(*flags, out, err);
  } else if (command == "ingest") {
    code = CmdIngest(*flags, out, err);
  } else if (command == "top") {
    code = CmdTop(*flags, out, err);
  } else {
    err << "error: unknown command '" << command << "'\n\n" << kUsage;
    return 1;
  }

  if (!util::FlushObservability(observability, &out, &err)) return 1;
  return code;
}

}  // namespace tabsketch::cli
