#include "cli/flags.h"

#include <cstdlib>
#include <sstream>

namespace tabsketch::cli {
namespace {

bool IsFlagToken(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

}  // namespace

util::Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  int i = 1;
  // Positional command first.
  if (i < argc && !IsFlagToken(argv[i])) {
    flags.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string token = argv[i];
    if (!IsFlagToken(token)) {
      return util::Status::InvalidArgument(
          "unexpected positional argument '" + token +
          "' (flags are --key=value)");
    }
    const std::string body = token.substr(2);
    std::string name;
    std::string value;
    const size_t equals = body.find('=');
    if (equals != std::string::npos) {
      name = body.substr(0, equals);
      value = body.substr(equals + 1);
    } else {
      name = body;
      if (i + 1 >= argc || IsFlagToken(argv[i + 1])) {
        // Valueless flag: treat as boolean true.
        value = "true";
      } else {
        value = argv[++i];
      }
    }
    if (name.empty()) {
      return util::Status::InvalidArgument("empty flag name in '" + token +
                                           "'");
    }
    if (flags.values_.count(name) > 0) {
      return util::Status::InvalidArgument("flag --" + name +
                                           " given more than once");
    }
    flags.values_[name] = value;
  }
  return flags;
}

util::Result<std::string> Flags::GetString(const std::string& name,
                                           const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second;
}

util::Result<int64_t> Flags::GetInt(const std::string& name,
                                    int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("flag --" + name +
                                         " expects an integer, got '" +
                                         it->second + "'");
  }
  return static_cast<int64_t>(parsed);
}

util::Result<double> Flags::GetDouble(const std::string& name,
                                      double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("flag --" + name +
                                         " expects a number, got '" +
                                         it->second + "'");
  }
  return parsed;
}

util::Result<bool> Flags::GetBool(const std::string& name,
                                  bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return util::Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" +
                                       it->second + "'");
}

util::Result<std::string> Flags::GetRequired(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return util::Status::InvalidArgument("missing required flag --" + name);
  }
  return it->second;
}

util::Status Flags::AllowOnly(const std::vector<std::string>& allowed) const {
  for (const auto& [name, value] : values_) {
    bool known = false;
    for (const std::string& candidate : allowed) {
      if (name == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return util::Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return util::Status::OK();
}

util::Result<std::vector<size_t>> ParseSizeList(const std::string& text,
                                                size_t count) {
  std::vector<size_t> out;
  std::istringstream stream(text);
  std::string field;
  while (std::getline(stream, field, ',')) {
    char* end = nullptr;
    const long long parsed = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0' || parsed < 0) {
      return util::Status::InvalidArgument(
          "expected a non-negative integer, got '" + field + "'");
    }
    out.push_back(static_cast<size_t>(parsed));
  }
  if (out.size() != count) {
    std::ostringstream msg;
    msg << "expected " << count << " comma-separated integers, got "
        << out.size() << " in '" << text << "'";
    return util::Status::InvalidArgument(msg.str());
  }
  return out;
}

}  // namespace tabsketch::cli
