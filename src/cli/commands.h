#ifndef TABSKETCH_CLI_COMMANDS_H_
#define TABSKETCH_CLI_COMMANDS_H_

#include <ostream>

namespace tabsketch::cli {

/// Entry point of the `tabsketch` command-line tool, separated from main()
/// so commands are unit-testable. Writes results to `out`, diagnostics to
/// `err`; returns a process exit code (0 on success).
///
/// Commands:
///   generate  --dataset=call-volume|six-region|ip-traffic --out=FILE [...]
///   info      --table=FILE
///   sketch    --table=FILE --out=FILE --tile-rows=N --tile-cols=N
///             [--p= --k= --seed= --threads=]
///   distance  --table=FILE --rect1=r,c,h,w --rect2=r,c,h,w
///             [--p= --k= --seed=]
///   cluster   --table=FILE --tile-rows=N --tile-cols=N
///             [--algo=kmeans|kmedoids|dbscan] [--k= --p= --seed=]
///             [--mode=exact|precomputed|ondemand] [--sketch-k=]
///             [--cache-bytes=] [--epsilon= --min-points=] [--out=FILE]
///   query     --table=FILE --tile-rows=N --tile-cols=N --batch=FILE
///             [--p= --k= --seed=] [--sketches=FILE] [--cache-bytes=]
///             [--threads=] [--refine] [--candidates=] [--out=FILE]
///   serve     --table=FILE --tile-rows=N --tile-cols=N [--sketches=FILE]
///             [--p= --k= --seed=] [--cache-bytes=] [--threads=] [--refine]
///             [--candidates=] [--ingest] [--port= --port-file=]
///             [--max-inflight=] [--max-queue=] [--deadline-ms=]
///   ingest    --pieces=F1,F2,... --tile-rows=N --tile-cols=N --out=FILE
///             [--p= --k= --seed= --threads=] [--window=N] [--table-out=FILE]
///   help
int RunTabsketchCli(int argc, const char* const* argv, std::ostream& out,
                    std::ostream& err);

}  // namespace tabsketch::cli

#endif  // TABSKETCH_CLI_COMMANDS_H_
