#ifndef TABSKETCH_CLI_FLAGS_H_
#define TABSKETCH_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tabsketch::cli {

/// Minimal command-line parser for the tabsketch tool: one positional
/// command followed by --key=value (or --key value) flags.
///
///   tabsketch cluster --table=data.tbl --algo=kmeans --k=20
///
/// Unknown flags are an error at Validate time (callers list what they
/// accept), which catches typos like --tile-row=8.
class Flags {
 public:
  /// Parses argv[1..): the first non-flag token is the command, the rest
  /// must be flags. Returns InvalidArgument on malformed input (missing
  /// value, flag before command, repeated flag).
  static util::Result<Flags> Parse(int argc, const char* const* argv);

  /// The positional command ("generate", "cluster", ...); empty if none.
  const std::string& command() const { return command_; }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Typed getters: return the flag's value, or `fallback` if absent, or an
  /// error if present but unparsable.
  util::Result<std::string> GetString(const std::string& name,
                                      const std::string& fallback) const;
  util::Result<int64_t> GetInt(const std::string& name,
                               int64_t fallback) const;
  util::Result<double> GetDouble(const std::string& name,
                                 double fallback) const;
  util::Result<bool> GetBool(const std::string& name, bool fallback) const;

  /// A required string flag: error if absent.
  util::Result<std::string> GetRequired(const std::string& name) const;

  /// Errors unless every provided flag is in `allowed`.
  util::Status AllowOnly(const std::vector<std::string>& allowed) const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

/// Parses "a,b,c,d" into exactly `count` non-negative integers.
util::Result<std::vector<size_t>> ParseSizeList(const std::string& text,
                                                size_t count);

}  // namespace tabsketch::cli

#endif  // TABSKETCH_CLI_FLAGS_H_
