#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketch_pool.h"
#include "core/sketcher.h"
#include "fft/correlate.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 50.0;
  return out;
}

PoolOptions SmallPool() {
  PoolOptions options;
  options.log2_min_rows = 2;  // 4
  options.log2_min_cols = 2;
  return options;
}

TEST(SketchPoolTest, EnumeratesCanonicalSizes) {
  const table::Matrix data = RandomTable(16, 32, 1);
  auto pool = SketchPool::Build(data, {.p = 1.0, .k = 4, .seed = 9},
                                SmallPool());
  ASSERT_TRUE(pool.ok());
  const auto sizes = pool->CanonicalSizes();
  // Heights 4, 8, 16; widths 4, 8, 16, 32 -> 12 combinations.
  EXPECT_EQ(sizes.size(), 12u);
  EXPECT_TRUE(pool->Covers(4, 4));
  EXPECT_TRUE(pool->Covers(16, 32));
  EXPECT_TRUE(pool->Covers(31, 17));  // canonical 16x16 serves it
  EXPECT_FALSE(pool->Covers(2, 8));   // below the minimum canonical height
}

TEST(SketchPoolTest, RespectsSizeBounds) {
  const table::Matrix data = RandomTable(32, 32, 2);
  PoolOptions options;
  options.log2_min_rows = 3;
  options.log2_max_rows = 3;
  options.log2_min_cols = 4;
  options.log2_max_cols = 4;
  auto pool = SketchPool::Build(data, {.p = 1.0, .k = 2, .seed = 9}, options);
  ASSERT_TRUE(pool.ok());
  const auto sizes = pool->CanonicalSizes();
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], (std::make_pair<size_t, size_t>(8, 16)));
}

TEST(SketchPoolTest, FailsWhenNothingFits) {
  const table::Matrix data = RandomTable(4, 4, 3);
  PoolOptions options;
  options.log2_min_rows = 4;  // 16 > 4 rows
  options.log2_min_cols = 2;
  auto pool = SketchPool::Build(data, {.p = 1.0, .k = 2, .seed = 9}, options);
  EXPECT_FALSE(pool.ok());
}

TEST(SketchPoolTest, ParallelBuildIsBitIdentical) {
  const table::Matrix data = RandomTable(32, 32, 21);
  SketchParams params{.p = 1.0, .k = 6, .seed = 33};
  PoolOptions sequential_options = SmallPool();
  sequential_options.threads = 1;
  auto sequential = SketchPool::Build(data, params, sequential_options);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : {2u, 8u}) {
    PoolOptions parallel_options = SmallPool();
    parallel_options.threads = threads;
    auto parallel = SketchPool::Build(data, params, parallel_options);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->CanonicalSizes(), sequential->CanonicalSizes());
    for (const auto& [size, field] : sequential->fields()) {
      const SketchField& other = parallel->fields().at(size);
      ASSERT_EQ(other.k(), field.k());
      for (size_t i = 0; i < field.k(); ++i) {
        EXPECT_TRUE(other.plane(i) == field.plane(i))
            << "threads=" << threads << " size=" << size.first << "x"
            << size.second << " plane=" << i;
      }
    }
  }
}

TEST(SketchPoolTest, OddKParallelBuildIsBitIdentical) {
  // Odd k leaves one unpaired kernel per canonical size on the single-kernel
  // path while the rest ride CorrelatePair; the split must not depend on the
  // thread count.
  const table::Matrix data = RandomTable(32, 32, 25);
  SketchParams params{.p = 1.0, .k = 5, .seed = 44};
  PoolOptions sequential_options = SmallPool();
  sequential_options.threads = 1;
  auto sequential = SketchPool::Build(data, params, sequential_options);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : {2u, 8u}) {
    PoolOptions parallel_options = SmallPool();
    parallel_options.threads = threads;
    auto parallel = SketchPool::Build(data, params, parallel_options);
    ASSERT_TRUE(parallel.ok());
    for (const auto& [size, field] : sequential->fields()) {
      const SketchField& other = parallel->fields().at(size);
      for (size_t i = 0; i < field.k(); ++i) {
        EXPECT_TRUE(other.plane(i) == field.plane(i))
            << "threads=" << threads << " size=" << size.first << "x"
            << size.second << " plane=" << i;
      }
    }
  }
}

TEST(SketchPoolTest, OddKFftPlanesMatchNaiveCorrelation) {
  // Every plane of an FFT pool build — paired kernels and the odd leftover —
  // is the valid-mode correlation of the data with that kernel.
  const table::Matrix data = RandomTable(16, 16, 26);
  SketchParams params{.p = 1.0, .k = 5, .seed = 45};
  auto pool = SketchPool::Build(data, params, SmallPool());
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());
  for (const auto& [size, field] : pool->fields()) {
    const auto& kernels = sketcher->MatricesFor(size.first, size.second);
    for (size_t i = 0; i < field.k(); ++i) {
      const table::Matrix expected =
          fft::CrossCorrelateNaive(data, kernels[i]);
      const table::Matrix& plane = field.plane(i);
      ASSERT_EQ(plane.rows(), expected.rows());
      ASSERT_EQ(plane.cols(), expected.cols());
      for (size_t r = 0; r < expected.rows(); ++r) {
        for (size_t c = 0; c < expected.cols(); ++c) {
          EXPECT_NEAR(plane.At(r, c), expected.At(r, c), 1e-8)
              << "size=" << size.first << "x" << size.second << " plane=" << i;
        }
      }
    }
  }
}

TEST(SketchPoolTest, ParallelNaiveBuildIsBitIdentical) {
  const table::Matrix data = RandomTable(16, 16, 22);
  SketchParams params{.p = 2.0, .k = 4, .seed = 5};
  PoolOptions naive = SmallPool();
  naive.algorithm = SketchAlgorithm::kNaive;
  naive.threads = 1;
  auto sequential = SketchPool::Build(data, params, naive);
  ASSERT_TRUE(sequential.ok());
  naive.threads = 8;
  auto parallel = SketchPool::Build(data, params, naive);
  ASSERT_TRUE(parallel.ok());
  for (const auto& [size, field] : sequential->fields()) {
    const SketchField& other = parallel->fields().at(size);
    for (size_t i = 0; i < field.k(); ++i) {
      EXPECT_TRUE(other.plane(i) == field.plane(i));
    }
  }
}

TEST(SketchPoolTest, FftBuildConstructsExactlyOnePlan) {
  // The whole point of hoisting the plan: one forward FFT of the data per
  // build, no matter how many canonical sizes / kernels / threads.
  const table::Matrix data = RandomTable(32, 32, 23);
  for (size_t threads : {1u, 4u}) {
    PoolOptions options = SmallPool();
    options.threads = threads;
    const size_t before = fft::CorrelationPlan::plans_constructed();
    auto pool =
        SketchPool::Build(data, {.p = 1.0, .k = 5, .seed = 7}, options);
    ASSERT_TRUE(pool.ok());
    EXPECT_EQ(fft::CorrelationPlan::plans_constructed() - before, 1u)
        << "threads=" << threads;
  }
}

TEST(SketchPoolTest, NaiveBuildConstructsNoPlan) {
  const table::Matrix data = RandomTable(8, 8, 24);
  PoolOptions options = SmallPool();
  options.algorithm = SketchAlgorithm::kNaive;
  const size_t before = fft::CorrelationPlan::plans_constructed();
  auto pool = SketchPool::Build(data, {.p = 1.0, .k = 3, .seed = 7}, options);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(fft::CorrelationPlan::plans_constructed() - before, 0u);
}

TEST(SketchPoolTest, CanonicalSketchMatchesDirectSketcher) {
  const table::Matrix data = RandomTable(16, 16, 4);
  SketchParams params{.p = 1.0, .k = 6, .seed = 12};
  auto pool = SketchPool::Build(data, params, SmallPool());
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());
  for (size_t r : {0u, 3u, 8u}) {
    for (size_t c : {0u, 5u}) {
      auto pooled = pool->CanonicalSketchAt(r, c, 8, 8);
      ASSERT_TRUE(pooled.ok());
      const Sketch direct = sketcher->SketchOf(data.Window(r, c, 8, 8));
      for (size_t i = 0; i < params.k; ++i) {
        EXPECT_NEAR(pooled->values[i], direct.values[i], 1e-7);
      }
    }
  }
}

TEST(SketchPoolTest, CanonicalSketchErrors) {
  const table::Matrix data = RandomTable(16, 16, 4);
  auto pool = SketchPool::Build(data, {.p = 1.0, .k = 2, .seed = 12},
                                SmallPool());
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->CanonicalSketchAt(0, 0, 5, 8).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(pool->CanonicalSketchAt(12, 0, 8, 8).status().code(),
            util::StatusCode::kOutOfRange);
}

TEST(SketchPoolTest, QueryValidation) {
  const table::Matrix data = RandomTable(16, 16, 5);
  auto pool = SketchPool::Build(data, {.p = 1.0, .k = 2, .seed = 12},
                                SmallPool());
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->Query(0, 0, 0, 4).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(pool->Query(10, 0, 8, 8).status().code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(pool->Query(0, 0, 2, 4).status().code(),
            util::StatusCode::kNotFound);  // canonical height 2 not stored
  EXPECT_TRUE(pool->Query(0, 0, 8, 8).ok());
}

TEST(SketchPoolTest, DyadicQueryIsFourTimesCanonicalSketch) {
  // When the rectangle is exactly canonical, all four compound anchors
  // coincide, so the compound sketch is 4x the canonical one.
  const table::Matrix data = RandomTable(16, 16, 6);
  SketchParams params{.p = 1.0, .k = 5, .seed = 3};
  auto pool = SketchPool::Build(data, params, SmallPool());
  ASSERT_TRUE(pool.ok());
  auto compound = pool->Query(2, 3, 8, 8);
  auto canonical = pool->CanonicalSketchAt(2, 3, 8, 8);
  ASSERT_TRUE(compound.ok() && canonical.ok());
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(compound->values[i], 4.0 * canonical->values[i], 1e-7);
  }
}

TEST(SketchPoolTest, CompoundSketchEqualsSumOfCoveringSketches) {
  // Definition 4 literally: the compound sketch is the sum of the sketches
  // of the four overlapping canonical rectangles.
  const table::Matrix data = RandomTable(32, 32, 7);
  SketchParams params{.p = 1.0, .k = 4, .seed = 8};
  auto pool = SketchPool::Build(data, params, SmallPool());
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(pool.ok() && sketcher.ok());

  const size_t row = 3, col = 5, rows = 11, cols = 13;  // canonical 8x8
  auto compound = pool->Query(row, col, rows, cols);
  ASSERT_TRUE(compound.ok());

  Sketch expected = sketcher->SketchOf(data.Window(row, col, 8, 8));
  expected.Add(sketcher->SketchOf(data.Window(row + rows - 8, col, 8, 8)));
  expected.Add(sketcher->SketchOf(data.Window(row, col + cols - 8, 8, 8)));
  expected.Add(
      sketcher->SketchOf(data.Window(row + rows - 8, col + cols - 8, 8, 8)));
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(compound->values[i], expected.values[i], 1e-7);
  }
}

/// Theorem 5 behavior: a compound sketch of a rectangle equals the canonical
/// sketch of the *folded* rectangle (the four shifted windows re-use the same
/// random matrix), so the estimated distance between two equal-dimension
/// compound sketches is the Lp norm of the folded difference. Overlap cells
/// are counted 1, 2 or 4 times, giving the 4(1+eps) upper band of Theorem 5;
/// for p < 1 sign cancellation in the fold can also pull the ratio below 1.
/// Clustering only needs equal-dimension queries to be mutually comparable,
/// which this construction preserves.
class CompoundApproximationTest : public ::testing::TestWithParam<double> {};

TEST_P(CompoundApproximationTest, RatioWithinTheoremFiveBand) {
  const double p = GetParam();
  const table::Matrix data = RandomTable(64, 64, 10);
  SketchParams params{.p = p, .k = 300, .seed = 31};
  auto pool = SketchPool::Build(data, params, SmallPool());
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(pool.ok() && estimator.ok());

  const size_t rows = 11, cols = 13;
  struct Rect { size_t r, c; };
  const Rect a{1, 2};
  const Rect b{40, 37};
  auto sa = pool->Query(a.r, a.c, rows, cols);
  auto sb = pool->Query(b.r, b.c, rows, cols);
  ASSERT_TRUE(sa.ok() && sb.ok());
  const double approx = estimator->Estimate(*sa, *sb);
  const double exact = LpDistance(data.Window(a.r, a.c, rows, cols),
                                  data.Window(b.r, b.c, rows, cols), p);
  const double ratio = approx / exact;
  // For p >= 1 folding cannot cancel in expectation and the ratio sits in
  // roughly [1, 4]; for p < 1 cancellation deflates it (see class comment),
  // and the worst-case inflation is 4^(1/p). Bands include estimator noise
  // at k = 300.
  const double lower = (p < 1.0) ? 0.15 : 0.7;
  const double upper = (p < 1.0) ? 6.0 : 5.0;
  EXPECT_GT(ratio, lower) << "p=" << p;
  EXPECT_LT(ratio, upper) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, CompoundApproximationTest,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(SketchPoolTest, CompoundDistancesPreserveNearVsFar) {
  // What clustering needs: among equal-dimension rectangles, compound
  // estimates order a near pair before a far pair.
  table::Matrix data(64, 64);
  rng::Xoshiro256 gen(11);
  // Left half ~ N(0,1)-ish noise around 10; right half around 200.
  for (size_t r = 0; r < 64; ++r) {
    for (size_t c = 0; c < 64; ++c) {
      const double base = (c < 32) ? 10.0 : 200.0;
      data(r, c) = base + gen.NextDouble();
    }
  }
  SketchParams params{.p = 1.0, .k = 128, .seed = 5};
  auto pool = SketchPool::Build(data, params, SmallPool());
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(pool.ok() && estimator.ok());

  const size_t rows = 12, cols = 12;
  auto left1 = pool->Query(0, 0, rows, cols);
  auto left2 = pool->Query(40, 10, rows, cols);
  auto right = pool->Query(20, 50, rows, cols);
  ASSERT_TRUE(left1.ok() && left2.ok() && right.ok());
  const double near = estimator->Estimate(*left1, *left2);
  const double far = estimator->Estimate(*left1, *right);
  EXPECT_LT(near, far);
}

TEST(SketchPoolTest, FftAndNaivePoolsAgree) {
  const table::Matrix data = RandomTable(16, 16, 13);
  SketchParams params{.p = 1.0, .k = 3, .seed = 21};
  PoolOptions fft_options = SmallPool();
  PoolOptions naive_options = SmallPool();
  naive_options.algorithm = SketchAlgorithm::kNaive;
  auto fft_pool = SketchPool::Build(data, params, fft_options);
  auto naive_pool = SketchPool::Build(data, params, naive_options);
  ASSERT_TRUE(fft_pool.ok() && naive_pool.ok());
  auto qa = fft_pool->Query(1, 2, 9, 10);
  auto qb = naive_pool->Query(1, 2, 9, 10);
  ASSERT_TRUE(qa.ok() && qb.ok());
  for (size_t i = 0; i < params.k; ++i) {
    EXPECT_NEAR(qa->values[i], qb->values[i], 1e-6);
  }
}

}  // namespace
}  // namespace tabsketch::core
