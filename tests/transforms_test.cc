#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "table/matrix.h"
#include "table/transforms.h"

namespace tabsketch::table {
namespace {

TEST(TransformsTest, NamesAreStable) {
  EXPECT_STREQ(TileTransformName(TileTransform::kIdentity), "identity");
  EXPECT_STREQ(TileTransformName(TileTransform::kMeanCenter), "mean-center");
  EXPECT_STREQ(TileTransformName(TileTransform::kZScore), "z-score");
  EXPECT_STREQ(TileTransformName(TileTransform::kUnitPeak), "unit-peak");
  EXPECT_STREQ(TileTransformName(TileTransform::kLog1p), "log1p");
}

TEST(TransformsTest, IdentityCopies) {
  Matrix m(2, 2, {1, -2, 3, 4});
  EXPECT_TRUE(ApplyTransform(m.View(), TileTransform::kIdentity) == m);
}

TEST(TransformsTest, MeanCenterZeroesTheMean) {
  Matrix m(1, 4, {1, 2, 3, 6});  // mean 3
  const Matrix out = ApplyTransform(m.View(), TileTransform::kMeanCenter);
  EXPECT_TRUE(out == Matrix(1, 4, {-2, -1, 0, 3}));
}

TEST(TransformsTest, ZScoreUnitVariance) {
  Matrix m(1, 4, {2, 4, 6, 8});
  const Matrix out = ApplyTransform(m.View(), TileTransform::kZScore);
  double mean = 0.0;
  double variance = 0.0;
  for (double value : out.Values()) mean += value;
  mean /= 4.0;
  for (double value : out.Values()) variance += (value - mean) * (value - mean);
  variance /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(variance, 1.0, 1e-12);
}

TEST(TransformsTest, ZScoreConstantTileBecomesZero) {
  Matrix m(2, 2);
  m.Fill(7.0);
  const Matrix out = ApplyTransform(m.View(), TileTransform::kZScore);
  for (double value : out.Values()) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(TransformsTest, UnitPeakScalesToOne) {
  Matrix m(1, 3, {-8, 2, 4});
  const Matrix out = ApplyTransform(m.View(), TileTransform::kUnitPeak);
  EXPECT_DOUBLE_EQ(out(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(out(0, 2), 0.5);
}

TEST(TransformsTest, UnitPeakAllZeroStaysZero) {
  Matrix m(2, 2);
  const Matrix out = ApplyTransform(m.View(), TileTransform::kUnitPeak);
  for (double value : out.Values()) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(TransformsTest, UnitMeanScalesMeanToOne) {
  Matrix m(1, 4, {2, 4, 6, 8});  // mean 5
  const Matrix out = ApplyTransform(m.View(), TileTransform::kUnitMean);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.4);
  EXPECT_DOUBLE_EQ(out(0, 3), 1.6);
  double mean = 0.0;
  for (double value : out.Values()) mean += value;
  EXPECT_DOUBLE_EQ(mean / 4.0, 1.0);
}

TEST(TransformsTest, UnitMeanZeroMeanUnchanged) {
  Matrix m(1, 2, {-3.0, 3.0});
  const Matrix out = ApplyTransform(m.View(), TileTransform::kUnitMean);
  EXPECT_TRUE(out == m);
}

TEST(TransformsTest, Log1pSignPreserving) {
  Matrix m(1, 3, {0.0, std::exp(1.0) - 1.0, -(std::exp(2.0) - 1.0)});
  const Matrix out = ApplyTransform(m.View(), TileTransform::kLog1p);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_NEAR(out(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(out(0, 2), -2.0, 1e-12);
}

TEST(TransformsTest, TransformTilesActsPerTile) {
  // Two 1x2 tiles with different means: mean-centering per tile must use
  // each tile's own mean, not the global one.
  Matrix m(1, 4, {0, 2, 10, 14});
  auto out = TransformTiles(m, 1, 2, TileTransform::kMeanCenter);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(*out == Matrix(1, 4, {-1, 1, -2, 2}));
}

TEST(TransformsTest, TransformTilesKeepsTrailingRemainder) {
  Matrix m(1, 5, {0, 2, 10, 14, 99});
  auto out = TransformTiles(m, 1, 2, TileTransform::kMeanCenter);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->At(0, 4), 99.0);  // partial tile untouched
}

TEST(TransformsTest, TransformTilesRejectsOversizedTiles) {
  Matrix m(2, 2);
  EXPECT_FALSE(TransformTiles(m, 3, 1, TileTransform::kIdentity).ok());
}

TEST(TransformsTest, ZScoreMakesScaledTilesEqual) {
  // The motivating property: two tiles that differ only by offset and
  // dilation become identical after z-scoring.
  Matrix a(1, 4, {1, 2, 3, 4});
  Matrix b(1, 4, {10, 30, 50, 70});  // 20 * a - 10... affine image of a
  const Matrix za = ApplyTransform(a.View(), TileTransform::kZScore);
  const Matrix zb = ApplyTransform(b.View(), TileTransform::kZScore);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(za(0, c), zb(0, c), 1e-12);
  }
}

}  // namespace
}  // namespace tabsketch::table
