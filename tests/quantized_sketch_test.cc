#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/quantized_sketch.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"

namespace tabsketch::core {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<Sketch> RandomSketches(size_t count, size_t k, uint64_t seed,
                                   double lo = -50.0, double hi = 50.0) {
  rng::Xoshiro256 gen(seed);
  std::vector<Sketch> sketches(count);
  for (auto& sketch : sketches) {
    sketch.values.resize(k);
    for (double& v : sketch.values) {
      v = lo + gen.NextDouble() * (hi - lo);
    }
  }
  return sketches;
}

QuantizedCodePool BuildPool(const std::vector<Sketch>& sketches,
                            QuantKind kind, const SketchParams& params) {
  auto pool = QuantizedCodePool::BuildFromSketches(sketches, kind, params,
                                                   4, 4);
  EXPECT_TRUE(pool.ok()) << pool.status().ToString();
  return std::move(pool).value();
}

TEST(QuantKindTest, ParseAndName) {
  EXPECT_EQ(ParseQuantKind("off").value(), QuantKind::kOff);
  EXPECT_EQ(ParseQuantKind("int8").value(), QuantKind::kInt8);
  EXPECT_EQ(ParseQuantKind("int16").value(), QuantKind::kInt16);
  EXPECT_FALSE(ParseQuantKind("int32").ok());
  EXPECT_FALSE(ParseQuantKind("").ok());
  EXPECT_STREQ(QuantKindName(QuantKind::kInt8), "int8");
  EXPECT_STREQ(QuantKindName(QuantKind::kInt16), "int16");
  EXPECT_EQ(QuantCodeBytes(QuantKind::kOff), 0u);
  EXPECT_EQ(QuantCodeBytes(QuantKind::kInt8), 1u);
  EXPECT_EQ(QuantCodeBytes(QuantKind::kInt16), 2u);
}

TEST(QuantizedCodePoolTest, AffineMapCoversPoolRange) {
  const SketchParams params{.p = 1.0, .k = 8, .seed = 3};
  std::vector<Sketch> sketches(2);
  sketches[0].values = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  sketches[1].values = {10.0, 9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 255.0};
  const QuantizedCodePool pool =
      BuildPool(sketches, QuantKind::kInt8, params);
  EXPECT_EQ(pool.count(), 2u);
  EXPECT_EQ(pool.k(), 8u);
  EXPECT_EQ(pool.offset(), 0.0);
  EXPECT_EQ(pool.scale(), 255.0 / 255.0);
  EXPECT_TRUE(pool.tile_usable(0));
  EXPECT_TRUE(pool.tile_usable(1));
  // Values land exactly on code levels here, so codes recover them exactly.
  const auto& codes = pool.raw_codes();
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[7], 7);
  EXPECT_EQ(codes[15], 255);
}

TEST(QuantizedCodePoolTest, PoolBytesAccounting) {
  EXPECT_EQ(QuantizedCodePool::PoolBytes(QuantKind::kInt8, 10, 64),
            10u * 64 + 10);
  EXPECT_EQ(QuantizedCodePool::PoolBytes(QuantKind::kInt16, 10, 64),
            10u * 64 * 2 + 10);
  const SketchParams params{.p = 1.0, .k = 16, .seed = 9};
  const auto sketches = RandomSketches(7, 16, 11);
  const QuantizedCodePool pool =
      BuildPool(sketches, QuantKind::kInt16, params);
  EXPECT_EQ(pool.bytes(), 7u * 16 * 2 + 7);
}

TEST(QuantizedCodePoolTest, DegeneratePoolsAreSafe) {
  const SketchParams params{.p = 1.0, .k = 4, .seed = 1};
  // Constant pool: scale 0, every code 0, distances exactly 0.
  std::vector<Sketch> constant(3);
  for (auto& s : constant) s.values = {5.0, 5.0, 5.0, 5.0};
  const QuantizedCodePool pool =
      BuildPool(constant, QuantKind::kInt8, params);
  EXPECT_EQ(pool.scale(), 0.0);
  kernels::CodeScratch scratch;
  EXPECT_EQ(pool.CodeEstimate(0, 1, /*l2=*/false, &scratch), 0.0);
  const auto est = DistanceEstimator::Create(params).value();
  EXPECT_EQ(pool.Slack(est), 0.0);

  // Empty pool builds (count 0).
  auto empty = QuantizedCodePool::BuildFromSketches(
      std::span<const Sketch>{}, QuantKind::kInt8, params, 4, 4);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->count(), 0u);
}

TEST(QuantizedCodePoolTest, NonFiniteTilesAreFlaggedUnusable) {
  const SketchParams params{.p = 1.0, .k = 4, .seed = 1};
  std::vector<Sketch> sketches(3);
  sketches[0].values = {0.0, 1.0, 2.0, 3.0};
  sketches[1].values = {0.0, std::nan(""), 2.0, 3.0};
  sketches[2].values = {4.0, 5.0, 6.0,
                        std::numeric_limits<double>::infinity()};
  const QuantizedCodePool pool =
      BuildPool(sketches, QuantKind::kInt16, params);
  EXPECT_TRUE(pool.tile_usable(0));
  EXPECT_FALSE(pool.tile_usable(1));
  EXPECT_FALSE(pool.tile_usable(2));
  kernels::CodeScratch scratch;
  EXPECT_TRUE(std::isnan(pool.CodeEstimate(0, 1, false, &scratch)));
  EXPECT_TRUE(std::isnan(pool.CodeEstimate(1, 2, false, &scratch)));
  EXPECT_FALSE(std::isnan(pool.CodeEstimate(0, 0, false, &scratch)));
}

/// The tentpole guarantee: for usable tiles, the reconstructed code estimate
/// is within Slack() of the true sketch estimate — for both widths and both
/// estimators. This is the inequality every filter threshold builds on.
void CheckErrorBound(double p, EstimatorKind ekind, QuantKind qkind,
                     uint64_t seed) {
  const size_t k = 32;
  const size_t count = 24;
  const SketchParams params{.p = p, .k = k, .seed = seed};
  const auto sketches = RandomSketches(count, k, seed);
  const QuantizedCodePool pool = BuildPool(sketches, qkind, params);
  const auto est = DistanceEstimator::Create(params, ekind).value();
  const bool l2 = est.kind() == EstimatorKind::kL2;
  const double slack = pool.Slack(est);
  ASSERT_GT(slack, 0.0);
  kernels::CodeScratch scratch;
  std::vector<double> est_scratch;
  for (size_t a = 0; a < count; ++a) {
    for (size_t b = a + 1; b < count; ++b) {
      const double exact = est.EstimateWithScratch(
          sketches[a].values, sketches[b].values, &est_scratch);
      const double approx =
          pool.CodeEstimate(a, b, l2, &scratch) / est.scale();
      EXPECT_LE(std::abs(exact - approx), slack)
          << "p=" << p << " pair (" << a << "," << b << ")";
    }
  }
}

TEST(QuantizedCodePoolTest, ErrorBoundHoldsMedianInt8) {
  CheckErrorBound(1.0, EstimatorKind::kMedian, QuantKind::kInt8, 21);
}
TEST(QuantizedCodePoolTest, ErrorBoundHoldsMedianInt16) {
  CheckErrorBound(0.5, EstimatorKind::kMedian, QuantKind::kInt16, 22);
}
TEST(QuantizedCodePoolTest, ErrorBoundHoldsL2Int8) {
  CheckErrorBound(2.0, EstimatorKind::kL2, QuantKind::kInt8, 23);
}
TEST(QuantizedCodePoolTest, ErrorBoundHoldsL2Int16) {
  CheckErrorBound(2.0, EstimatorKind::kL2, QuantKind::kInt16, 24);
}

TEST(QuantizedCodePoolTest, QuantizeAcceptsInRangeRejectsOutOfRange) {
  const SketchParams params{.p = 1.0, .k = 4, .seed = 5};
  std::vector<Sketch> sketches(2);
  sketches[0].values = {0.0, 10.0, 20.0, 30.0};
  sketches[1].values = {5.0, 15.0, 25.0, 100.0};
  const QuantizedCodePool pool =
      BuildPool(sketches, QuantKind::kInt16, params);

  // Convex combinations of pool values are in range.
  const QuantizedVector mid = pool.Quantize(std::vector<double>{
      2.5, 12.5, 22.5, 65.0});
  EXPECT_TRUE(mid.usable);
  EXPECT_EQ(mid.codes.size(), 4u * 2);

  // Out-of-range by more than half a step -> unusable.
  const QuantizedVector above = pool.Quantize(std::vector<double>{
      0.0, 10.0, 20.0, 100.0 + pool.scale()});
  EXPECT_FALSE(above.usable);
  const QuantizedVector below = pool.Quantize(std::vector<double>{
      -pool.scale(), 10.0, 20.0, 30.0});
  EXPECT_FALSE(below.usable);

  // Non-finite component -> unusable.
  const QuantizedVector bad = pool.Quantize(std::vector<double>{
      0.0, std::nan(""), 20.0, 30.0});
  EXPECT_FALSE(bad.usable);

  // Wrong length -> unusable.
  const QuantizedVector wrong = pool.Quantize(std::vector<double>{0.0, 1.0});
  EXPECT_FALSE(wrong.usable);

  // Code distance against a usable vector matches the symmetric in-pool
  // computation; against an unusable vector it is NaN.
  kernels::CodeScratch scratch;
  EXPECT_FALSE(std::isnan(pool.CodeEstimateAgainst(0, mid, false, &scratch)));
  EXPECT_TRUE(std::isnan(pool.CodeEstimateAgainst(0, bad, false, &scratch)));
}

TEST(QuantizedCodePoolTest, BuildIsDeterministic) {
  const SketchParams params{.p = 1.0, .k = 16, .seed = 77};
  const auto sketches = RandomSketches(9, 16, 42);
  const QuantizedCodePool a = BuildPool(sketches, QuantKind::kInt8, params);
  const QuantizedCodePool b = BuildPool(sketches, QuantKind::kInt8, params);
  EXPECT_EQ(a.raw_codes(), b.raw_codes());
  EXPECT_EQ(a.usable_flags(), b.usable_flags());
  EXPECT_EQ(a.scale(), b.scale());
  EXPECT_EQ(a.offset(), b.offset());
}

// ---------------------------------------------------------------------------
// TSKQ serialization: round trip, atomicity, rejection of corrupt files, and
// the golden byte-stability fixture (tests/golden/code_pool_v1.tskq).

QuantizedCodePool GoldenPool(double sparsity = 1.0) {
  // Exactly-representable values mirroring tests/golden/generate_golden.py.
  const SketchParams params{
      .p = 0.5, .k = 6, .seed = 1234, .sparsity = sparsity};
  std::vector<Sketch> sketches(3);
  for (int s = 0; s < 3; ++s) {
    sketches[s].values.resize(6);
    for (int j = 0; j < 6; ++j) {
      sketches[s].values[j] = s * 1.5 + j * 0.25 - 2.0;
    }
  }
  sketches[1].values[2] = std::nan("");  // one unusable tile in the fixture
  auto pool = QuantizedCodePool::BuildFromSketches(
      sketches, QuantKind::kInt8, params, 8, 16);
  EXPECT_TRUE(pool.ok());
  return std::move(pool).value();
}

std::string GoldenPath(const std::string& name) {
  return std::string(TABSKETCH_TEST_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CodePoolIoTest, RoundTripBothWidths) {
  const SketchParams params{.p = 1.5, .k = 12, .seed = 31};
  const auto sketches = RandomSketches(11, 12, 99);
  for (QuantKind kind : {QuantKind::kInt8, QuantKind::kInt16}) {
    const QuantizedCodePool pool = BuildPool(sketches, kind, params);
    const std::string path = TempPath("tabsketch_codepool_rt.tskq");
    ASSERT_TRUE(WriteCodePool(pool, path).ok());
    auto loaded = ReadCodePool(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->kind(), pool.kind());
    EXPECT_EQ(loaded->count(), pool.count());
    EXPECT_EQ(loaded->k(), pool.k());
    EXPECT_EQ(loaded->scale(), pool.scale());
    EXPECT_EQ(loaded->offset(), pool.offset());
    EXPECT_EQ(loaded->params(), pool.params());
    EXPECT_EQ(loaded->object_rows(), pool.object_rows());
    EXPECT_EQ(loaded->object_cols(), pool.object_cols());
    EXPECT_EQ(loaded->raw_codes(), pool.raw_codes());
    EXPECT_EQ(loaded->usable_flags(), pool.usable_flags());
    std::remove(path.c_str());
  }
}

TEST(CodePoolIoTest, SuccessfulWriteLeavesNoTempFile) {
  const std::string path = TempPath("tabsketch_codepool_atomic.tskq");
  ASSERT_TRUE(WriteCodePool(GoldenPool(), path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, SerializationIsByteStable) {
  // The writer emits version 2 (88-byte header with the family sparsity);
  // the v2 fixture pins those bytes for a sparsity-0.25 family.
  const std::string golden = ReadFileBytes(GoldenPath("code_pool_v2.tskq"));
  ASSERT_FALSE(golden.empty()) << "missing golden fixture";
  const std::string path = TempPath("tabsketch_codepool_golden.tskq");
  ASSERT_TRUE(WriteCodePool(GoldenPool(0.25), path).ok());
  EXPECT_EQ(ReadFileBytes(path), golden)
      << "code-pool serialization bytes changed; if intentional, bump the "
         "TSKQ version and regenerate tests/golden";
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, GoldenFileRoundTrips) {
  // The v1 fixture has no sparsity field; reading it must imply a dense
  // family (sparsity 1.0) so pre-v2 archives keep loading byte-identically.
  auto loaded = ReadCodePool(GoldenPath("code_pool_v1.tskq"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const QuantizedCodePool expected = GoldenPool();
  EXPECT_EQ(loaded->kind(), expected.kind());
  EXPECT_EQ(loaded->count(), expected.count());
  EXPECT_EQ(loaded->scale(), expected.scale());
  EXPECT_EQ(loaded->offset(), expected.offset());
  EXPECT_EQ(loaded->params().sparsity, 1.0);
  EXPECT_EQ(loaded->raw_codes(), expected.raw_codes());
  EXPECT_EQ(loaded->usable_flags(), expected.usable_flags());
  EXPECT_FALSE(loaded->tile_usable(1));
}

TEST(CodePoolIoGoldenTest, V2GoldenFileRoundTrips) {
  auto loaded = ReadCodePool(GoldenPath("code_pool_v2.tskq"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const QuantizedCodePool expected = GoldenPool(0.25);
  EXPECT_EQ(loaded->params(), expected.params());
  EXPECT_EQ(loaded->params().sparsity, 0.25);
  EXPECT_EQ(loaded->raw_codes(), expected.raw_codes());
  EXPECT_EQ(loaded->usable_flags(), expected.usable_flags());
}

TEST(CodePoolIoGoldenTest, CorruptedSparsityIsRejected) {
  // Out-of-range sparsity in a v2 header (the double at offset 80) must
  // fail parameter validation.
  std::string bytes = ReadFileBytes(GoldenPath("code_pool_v2.tskq"));
  ASSERT_FALSE(bytes.empty());
  const double bad = 2.0;
  std::memcpy(bytes.data() + 80, &bad, sizeof(bad));
  const std::string path = TempPath("tabsketch_codepool_badsparsity.tskq");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadCodePool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, TruncatedSparsityFieldIsCleanIOError) {
  // A v2 file cut mid-sparsity (84 of 88 header bytes) must be IOError.
  const std::string bytes = ReadFileBytes(GoldenPath("code_pool_v2.tskq"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_codepool_shortsparsity.tskq");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), 84);
  }
  auto loaded = ReadCodePool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, CorruptedMagicIsCleanIOError) {
  std::string bytes = ReadFileBytes(GoldenPath("code_pool_v1.tskq"));
  ASSERT_FALSE(bytes.empty());
  bytes[0] = 'X';
  const std::string path = TempPath("tabsketch_codepool_badmagic.tskq");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadCodePool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, CorruptedVersionAndKindAreCleanIOErrors) {
  const std::string bytes = ReadFileBytes(GoldenPath("code_pool_v1.tskq"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_codepool_badfield.tskq");
  // version is the u32 at offset 4, kind the u32 at offset 8.
  for (const size_t offset : {size_t{4}, size_t{8}}) {
    std::string mutated = bytes;
    const uint32_t bogus = 0x7fffffff;
    std::memcpy(mutated.data() + offset, &bogus, sizeof(bogus));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    auto loaded = ReadCodePool(path);
    EXPECT_FALSE(loaded.ok()) << "field at offset " << offset;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, TruncatedHeaderAndPayloadAreCleanIOErrors) {
  const std::string bytes = ReadFileBytes(GoldenPath("code_pool_v1.tskq"));
  ASSERT_FALSE(bytes.empty());
  const std::string path = TempPath("tabsketch_codepool_trunc.tskq");
  for (const size_t keep :
       {size_t{0}, size_t{5}, size_t{40}, size_t{79}, bytes.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    auto loaded = ReadCodePool(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

TEST(CodePoolIoGoldenTest, OversizedCountIsCleanIOError) {
  std::string bytes = ReadFileBytes(GoldenPath("code_pool_v1.tskq"));
  ASSERT_FALSE(bytes.empty());
  const uint64_t huge = ~uint64_t{0} / 8;
  // count is the u64 at offset 56 of the TSKQ header.
  std::memcpy(bytes.data() + 56, &huge, sizeof(huge));
  const std::string path = TempPath("tabsketch_codepool_hugecount.tskq");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = ReadCodePool(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(CodePoolIoTest, MissingFileIsIOError) {
  auto loaded = ReadCodePool(TempPath("does_not_exist.tskq"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kIOError);
}

}  // namespace
}  // namespace tabsketch::core
