#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/scale_factor.h"
#include "rng/stable.h"
#include "rng/xoshiro256.h"
#include "util/median.h"

namespace tabsketch::rng {
namespace {

TEST(StableSamplerTest, RejectsBadAlpha) {
  EXPECT_FALSE(StableSampler::Create(0.0).ok());
  EXPECT_FALSE(StableSampler::Create(-1.0).ok());
  EXPECT_FALSE(StableSampler::Create(2.5).ok());
}

TEST(StableSamplerTest, AcceptsFullRange) {
  for (double alpha : {0.1, 0.5, 1.0, 1.5, 2.0}) {
    auto sampler = StableSampler::Create(alpha);
    ASSERT_TRUE(sampler.ok()) << alpha;
    EXPECT_DOUBLE_EQ(sampler->alpha(), alpha);
  }
}

TEST(StableSamplerTest, AlphaTwoMatchesStandardNormal) {
  auto sampler = StableSampler::Create(2.0);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 gen(101);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = sampler->Sample(gen);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);  // N(0,1) by our convention
}

TEST(StableSamplerTest, AlphaOneMatchesCauchyQuartiles) {
  auto sampler = StableSampler::Create(1.0);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 gen(103);
  constexpr int kDraws = 200000;
  std::vector<double> draws(kDraws);
  for (double& d : draws) d = std::fabs(sampler->Sample(gen));
  EXPECT_NEAR(util::MedianInPlace(draws), 1.0, 0.02);
}

class StableSymmetryTest : public ::testing::TestWithParam<double> {};

TEST_P(StableSymmetryTest, DistributionIsSymmetric) {
  const double alpha = GetParam();
  auto sampler = StableSampler::Create(alpha);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 gen(107);
  constexpr int kDraws = 100000;
  int positive = 0;
  std::vector<double> draws(kDraws);
  for (double& d : draws) {
    d = sampler->Sample(gen);
    if (d > 0.0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / kDraws, 0.5, 0.01)
      << "alpha=" << alpha;
  // Median of a symmetric law is ~0.
  EXPECT_NEAR(util::MedianInPlace(draws), 0.0,
              0.03 * core::MedianAbsStable(alpha))
      << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, StableSymmetryTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.25, 1.5,
                                           1.75, 2.0));

/// The stability property itself (paper Section 3.2): for iid X_i ~
/// SaS(alpha) and coefficients a, the combination sum a_i X_i has the same
/// distribution as ||a||_alpha * X. We verify via the median of absolute
/// values: median|sum a_i X_i| should equal ||a||_alpha * B(alpha).
class StabilityPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(StabilityPropertyTest, LinearCombinationScalesByLpNorm) {
  const double alpha = GetParam();
  auto sampler = StableSampler::Create(alpha);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 gen(109);

  const std::vector<double> coeffs = {3.0, -1.5, 0.5, 2.0, -4.0};
  double norm_pow = 0.0;
  for (double c : coeffs) norm_pow += std::pow(std::fabs(c), alpha);
  const double lp_norm = std::pow(norm_pow, 1.0 / alpha);

  constexpr int kTrials = 60000;
  std::vector<double> combos(kTrials);
  for (double& combo : combos) {
    double acc = 0.0;
    for (double c : coeffs) acc += c * sampler->Sample(gen);
    combo = std::fabs(acc);
  }
  const double observed_median = util::MedianInPlace(combos);
  const double expected_median = lp_norm * core::MedianAbsStable(alpha);
  EXPECT_NEAR(observed_median / expected_median, 1.0, 0.05)
      << "alpha=" << alpha << " observed=" << observed_median
      << " expected=" << expected_median;
}

INSTANTIATE_TEST_SUITE_P(Alphas, StabilityPropertyTest,
                         ::testing::Values(0.25, 0.4, 0.5, 0.6, 0.75, 1.0,
                                           1.25, 1.5, 1.75, 2.0));

TEST(StableSamplerTest, HeavyTailsGrowAsAlphaShrinks) {
  // Smaller alpha => heavier tails => larger high quantiles of |X|.
  Xoshiro256 gen(113);
  auto quantile99 = [&gen](double alpha) {
    auto sampler = StableSampler::Create(alpha);
    EXPECT_TRUE(sampler.ok());
    constexpr int kDraws = 50000;
    std::vector<double> draws(kDraws);
    for (double& d : draws) d = std::fabs(sampler->Sample(gen));
    std::nth_element(draws.begin(), draws.begin() + kDraws * 99 / 100,
                     draws.end());
    return draws[kDraws * 99 / 100];
  };
  const double q_half = quantile99(0.5);
  const double q_one = quantile99(1.0);
  const double q_two = quantile99(2.0);
  EXPECT_GT(q_half, q_one);
  EXPECT_GT(q_one, q_two);
}

}  // namespace
}  // namespace tabsketch::rng
