#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/ip_traffic.h"

namespace tabsketch::data {
namespace {

TEST(IpTrafficTest, ValidatesOptions) {
  IpTrafficOptions options;
  options.num_hosts = 0;
  EXPECT_FALSE(GenerateIpTraffic(options).ok());
  options = IpTrafficOptions{};
  options.hosts_per_subnet = 0;
  EXPECT_FALSE(GenerateIpTraffic(options).ok());
  options = IpTrafficOptions{};
  options.hosts_per_subnet = options.num_hosts + 1;
  EXPECT_FALSE(GenerateIpTraffic(options).ok());
  options = IpTrafficOptions{};
  options.pareto_alpha = 0.0;
  EXPECT_FALSE(GenerateIpTraffic(options).ok());
  options = IpTrafficOptions{};
  options.noise_sigma = -1.0;
  EXPECT_FALSE(GenerateIpTraffic(options).ok());
}

TEST(IpTrafficTest, ShapeAndGroundTruth) {
  IpTrafficOptions options;
  options.num_hosts = 128;
  options.hosts_per_subnet = 16;
  options.num_bins = 96;
  auto data = GenerateIpTraffic(options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->table.rows(), 128u);
  EXPECT_EQ(data->table.cols(), 96u);
  ASSERT_EQ(data->subnet_of_host.size(), 128u);
  EXPECT_EQ(data->profile_of_subnet.size(), 8u);
  EXPECT_EQ(data->subnet_of_host[0], 0);
  EXPECT_EQ(data->subnet_of_host[15], 0);
  EXPECT_EQ(data->subnet_of_host[16], 1);
  EXPECT_EQ(data->subnet_of_host[127], 7);
}

TEST(IpTrafficTest, DeterministicPerSeed) {
  IpTrafficOptions options;
  options.num_hosts = 64;
  options.num_bins = 48;
  auto a = GenerateIpTraffic(options);
  auto b = GenerateIpTraffic(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->table == b->table);
  options.seed ^= 7;
  auto c = GenerateIpTraffic(options);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->table == c->table);
}

TEST(IpTrafficTest, AllValuesPositive) {
  IpTrafficOptions options;
  options.num_hosts = 64;
  options.num_bins = 48;
  auto data = GenerateIpTraffic(options);
  ASSERT_TRUE(data.ok());
  for (double value : data->table.Values()) EXPECT_GT(value, 0.0);
}

TEST(IpTrafficTest, RatesAreHeavyTailed) {
  IpTrafficOptions options;
  options.num_hosts = 512;
  options.num_bins = 32;
  options.noise_sigma = 0.0;
  options.flash_events = 0.0;
  auto data = GenerateIpTraffic(options);
  ASSERT_TRUE(data.ok());
  // Top host's total traffic dwarfs the median host's (Pareto tail).
  std::vector<double> totals(data->table.rows());
  for (size_t h = 0; h < data->table.rows(); ++h) {
    double total = 0.0;
    for (double v : data->table.Row(h)) total += v;
    totals[h] = total;
  }
  std::sort(totals.begin(), totals.end());
  EXPECT_GT(totals.back(), 20.0 * totals[totals.size() / 2]);
}

TEST(IpTrafficTest, SubnetMatesShareTemporalShape) {
  // Hosts of the same subnet have correlated (normalized) time profiles;
  // hosts of subnets with different classes generally do not. Check a weak
  // version: correlation within one diurnal subnet exceeds correlation
  // between a diurnal and a bursty subnet host.
  IpTrafficOptions options;
  options.num_hosts = 256;
  options.hosts_per_subnet = 32;
  options.num_bins = 192;
  options.noise_sigma = 0.05;
  options.flash_events = 0.0;
  auto data = GenerateIpTraffic(options);
  ASSERT_TRUE(data.ok());

  // Locate one diurnal and one bursty subnet.
  int diurnal = -1, bursty = -1;
  for (size_t s = 0; s < data->profile_of_subnet.size(); ++s) {
    if (data->profile_of_subnet[s] == SubnetProfile::kDiurnal && diurnal < 0)
      diurnal = static_cast<int>(s);
    if (data->profile_of_subnet[s] == SubnetProfile::kBursty && bursty < 0)
      bursty = static_cast<int>(s);
  }
  ASSERT_GE(diurnal, 0);
  ASSERT_GE(bursty, 0);

  auto correlation = [&](size_t host_a, size_t host_b) {
    auto a = data->table.Row(host_a);
    auto b = data->table.Row(host_b);
    double mean_a = 0.0, mean_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      mean_a += a[i];
      mean_b += b[i];
    }
    mean_a /= static_cast<double>(a.size());
    mean_b /= static_cast<double>(b.size());
    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - mean_a) * (b[i] - mean_b);
      var_a += (a[i] - mean_a) * (a[i] - mean_a);
      var_b += (b[i] - mean_b) * (b[i] - mean_b);
    }
    return cov / std::sqrt(var_a * var_b);
  };

  const size_t d0 = static_cast<size_t>(diurnal) * 32;
  const size_t b0 = static_cast<size_t>(bursty) * 32;
  EXPECT_GT(correlation(d0, d0 + 1), correlation(d0, b0));
}

}  // namespace
}  // namespace tabsketch::data
