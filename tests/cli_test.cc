#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/commands.h"
#include "cli/flags.h"
#include "json_checker.h"
#include "util/metrics.h"

namespace tabsketch::cli {
namespace {

util::Result<Flags> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "tabsketch");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesCommandAndFlags) {
  auto flags = ParseArgs({"cluster", "--table=x.tbl", "--k=20"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->command(), "cluster");
  EXPECT_TRUE(flags->Has("table"));
  EXPECT_EQ(flags->GetString("table", "").value(), "x.tbl");
  EXPECT_EQ(flags->GetInt("k", 0).value(), 20);
}

TEST(FlagsTest, SpaceSeparatedValues) {
  auto flags = ParseArgs({"info", "--table", "y.tbl"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("table", "").value(), "y.tbl");
}

TEST(FlagsTest, ValuelessFlagIsBooleanTrue) {
  auto flags = ParseArgs({"run", "--verbose"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("verbose", false).value());
}

TEST(FlagsTest, EmptyArgvHasNoCommand) {
  auto flags = ParseArgs({});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->command().empty());
}

TEST(FlagsTest, RejectsPositionalAfterFlags) {
  EXPECT_FALSE(ParseArgs({"cmd", "--a=1", "stray"}).ok());
}

TEST(FlagsTest, RejectsDuplicateFlags) {
  EXPECT_FALSE(ParseArgs({"cmd", "--a=1", "--a=2"}).ok());
}

TEST(FlagsTest, TypedGetterErrors) {
  auto flags = ParseArgs({"cmd", "--n=abc", "--x=1.2.3", "--b=maybe"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetInt("n", 0).ok());
  EXPECT_FALSE(flags->GetDouble("x", 0.0).ok());
  EXPECT_FALSE(flags->GetBool("b", false).ok());
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  auto flags = ParseArgs({"cmd"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7).value(), 7);
  EXPECT_EQ(flags->GetDouble("x", 1.5).value(), 1.5);
  EXPECT_EQ(flags->GetString("s", "d").value(), "d");
  EXPECT_FALSE(flags->GetRequired("s").ok());
}

TEST(FlagsTest, AllowOnlyCatchesTypos) {
  auto flags = ParseArgs({"cmd", "--tile-row=8"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->AllowOnly({"tile-rows"}).ok());
  EXPECT_TRUE(flags->AllowOnly({"tile-row"}).ok());
}

TEST(ParseSizeListTest, ParsesExactCount) {
  auto parsed = ParseSizeList("1,2,30,4", 4);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, (std::vector<size_t>{1, 2, 30, 4}));
}

TEST(ParseSizeListTest, RejectsWrongCountAndGarbage) {
  EXPECT_FALSE(ParseSizeList("1,2,3", 4).ok());
  EXPECT_FALSE(ParseSizeList("1,x,3,4", 4).ok());
  EXPECT_FALSE(ParseSizeList("1,-2,3,4", 4).ok());
}

/// Runs the CLI with the given args; returns {exit code, stdout, stderr}.
struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunCli(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "tabsketch");
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunTabsketchCli(static_cast<int>(argv.size()),
                                   argv.data(), out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CliTest, NoCommandPrintsUsageAndFails) {
  const CliRun run = RunCli({});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  const CliRun run = RunCli({"help"});
  EXPECT_EQ(run.code, 0);
  EXPECT_NE(run.out.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliRun run = RunCli({"frobnicate"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, GenerateRequiresDataset) {
  const CliRun run = RunCli({"generate", "--out=/tmp/x.tbl"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("--dataset"), std::string::npos);
}

TEST(CliTest, GenerateRejectsUnknownDataset) {
  const CliRun run =
      RunCli({"generate", "--dataset=nope", "--out=/tmp/x.tbl"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("unknown --dataset"), std::string::npos);
}

TEST(CliTest, GenerateRejectsUnknownFlag) {
  const CliRun run = RunCli({"generate", "--dataset=six-region",
                          "--out=/tmp/x.tbl", "--bogus=1"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("unknown flag"), std::string::npos);
}

TEST(CliTest, EndToEndPipeline) {
  const std::string table_path = TempPath("cli_test_table.tbl");
  const std::string sketch_path = TempPath("cli_test_sketches.bin");
  const std::string assign_path = TempPath("cli_test_assign.csv");
  const std::string table_flag = "--table=" + table_path;

  // generate
  {
    const std::string out_flag = "--out=" + table_path;
    const CliRun run =
        RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
             "--rows=64", "--cols=128", "--seed=7"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("64x128"), std::string::npos);
  }
  // info
  {
    const CliRun run = RunCli({"info", table_flag.c_str()});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("64x128"), std::string::npos);
    EXPECT_NE(run.out.find("mean"), std::string::npos);
  }
  // sketch
  {
    const std::string out_flag = "--out=" + sketch_path;
    const CliRun run =
        RunCli({"sketch", table_flag.c_str(), out_flag.c_str(),
             "--tile-rows=8", "--tile-cols=8", "--p=0.5", "--k=32"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("sketched 128 tiles"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(sketch_path));
  }
  // distance
  {
    const CliRun run =
        RunCli({"distance", table_flag.c_str(), "--rect1=0,0,16,16",
             "--rect2=40,40,16,16", "--p=1", "--k=128"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("exact:"), std::string::npos);
    EXPECT_NE(run.out.find("estimated:"), std::string::npos);
  }
  // cluster (kmeans, precomputed) with CSV output
  {
    const std::string out_flag = "--out=" + assign_path;
    const CliRun run =
        RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
             "--tile-cols=8", "--algo=kmeans", "--k=6", "--p=0.5",
             out_flag.c_str()});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("kmeans:"), std::string::npos);
    std::ifstream csv(assign_path);
    std::string header;
    std::getline(csv, header);
    EXPECT_EQ(header, "tile,grid_row,grid_col,cluster");
    size_t lines = 0;
    std::string line;
    while (std::getline(csv, line)) {
      if (!line.empty()) ++lines;
    }
    EXPECT_EQ(lines, 128u);
  }
  // cluster (kmedoids, exact mode)
  {
    const CliRun run =
        RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
             "--tile-cols=8", "--algo=kmedoids", "--k=3", "--mode=exact"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("medoids:"), std::string::npos);
  }
  // cluster (dbscan, on-demand sketches)
  {
    const CliRun run = RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
                            "--tile-cols=8", "--algo=dbscan",
                            "--epsilon=100000", "--min-points=3",
                            "--mode=ondemand"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("dbscan:"), std::string::npos);
  }

  std::remove(table_path.c_str());
  std::remove(sketch_path.c_str());
  std::remove(assign_path.c_str());
}

TEST(CliTest, PoolBuildAndQuery) {
  const std::string table_path = TempPath("cli_pool_table.tbl");
  const std::string pool_path = TempPath("cli_pool.pool");
  const std::string table_flag = "--table=" + table_path;
  const std::string pool_flag = "--pool=" + pool_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64"})
                  .code,
              0);
  }
  {
    const std::string out_flag = "--out=" + pool_path;
    const CliRun run =
        RunCli({"pool-build", table_flag.c_str(), out_flag.c_str(),
                "--k=8", "--min-log2=3", "--max-log2=4"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("canonical sizes"), std::string::npos);
  }
  {
    const CliRun run = RunCli({"pool-query", pool_flag.c_str(),
                               "--rect1=0,0,12,12", "--rect2=40,40,12,12",
                               table_flag.c_str()});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.out.find("compound-sketch estimate"), std::string::npos);
    EXPECT_NE(run.out.find("exact reference"), std::string::npos);
  }
  {
    // Query below the minimum canonical size must fail cleanly.
    const CliRun run = RunCli({"pool-query", pool_flag.c_str(),
                               "--rect1=0,0,4,4", "--rect2=8,8,4,4"});
    EXPECT_EQ(run.code, 1);
    EXPECT_NE(run.err.find("NotFound"), std::string::npos);
  }
  std::remove(table_path.c_str());
  std::remove(pool_path.c_str());
}

TEST(CliTest, QueryOutputIsByteIdenticalAcrossThreadsAndCaches) {
  const std::string table_path = TempPath("cli_query_table.tbl");
  const std::string batch_path = TempPath("cli_query_batch.txt");
  const std::string sketch_path = TempPath("cli_query_sketches.bin");
  const std::string out_path = TempPath("cli_query_out.txt");
  const std::string table_flag = "--table=" + table_path;
  const std::string batch_flag = "--batch=" + batch_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64", "--seed=11"})
                  .code,
              0);
  }
  {
    // Mixed batch with repeats (cache hits), comments, and blank lines.
    std::ofstream batch(batch_path);
    batch << "# mixed batch\n"
          << "distance 0 63\n"
          << "knn 5 4\n"
          << "\n"
          << "distance 0 63   # repeat\n"
          << "knn 5 4\n"
          << "distance 17 42\n"
          << "knn 63 2\n";
  }

  // Reference run: single thread, unbounded on-demand cache.
  const CliRun reference =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), "--p=1", "--k=64", "--threads=1"});
  ASSERT_EQ(reference.code, 0) << reference.err;
  EXPECT_NE(reference.out.find("distance 0 63 = "), std::string::npos);
  EXPECT_NE(reference.out.find("knn 5 4 = "), std::string::npos);
  EXPECT_NE(reference.err.find("answered 6 requests"), std::string::npos);

  // Every thread count and cache budget — including a 1-byte budget that
  // evicts on every lookup — must reproduce the reference bytes exactly.
  for (const char* extra : {"--threads=4", "--cache-bytes=1",
                            "--cache-bytes=1000000"}) {
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), "--p=1", "--k=64", extra});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_EQ(run.out, reference.out) << "with " << extra;
  }
  {
    // The eviction-forcing budget must actually report LRU churn on stderr.
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), "--p=1", "--k=64", "--cache-bytes=1"});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_NE(run.err.find("lru cache:"), std::string::npos);
  }
  {
    // Serving from a sketch set written by `tabsketch sketch` with the same
    // parameters also matches byte-for-byte.
    const std::string out_flag = "--out=" + sketch_path;
    ASSERT_EQ(RunCli({"sketch", table_flag.c_str(), out_flag.c_str(),
                      "--tile-rows=8", "--tile-cols=8", "--p=1", "--k=64",
                      "--seed=42"})
                  .code,
              0);
    const std::string sketches_flag = "--sketches=" + sketch_path;
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), sketches_flag.c_str()});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_EQ(run.out, reference.out);

    // --sketches carries its own params; explicit ones are rejected.
    const CliRun clash =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), sketches_flag.c_str(), "--k=64"});
    EXPECT_EQ(clash.code, 1);
    EXPECT_NE(clash.err.find("--sketches"), std::string::npos);
  }
  {
    // --out routes the answers to a file; stdout stays empty.
    const std::string out_flag = "--out=" + out_path;
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), "--p=1", "--k=64", out_flag.c_str()});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_TRUE(run.out.empty());
    std::ifstream in(out_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), reference.out);
  }

  std::remove(table_path.c_str());
  std::remove(batch_path.c_str());
  std::remove(sketch_path.c_str());
  std::remove(out_path.c_str());
}

// The quantized code tier is a filter only: every --quant width must
// reproduce the --quant=off bytes exactly, for both query and cluster,
// across thread counts and cache budgets. Bad widths and exact-mode
// combinations are rejected up front.
TEST(CliTest, QuantOutputsAreByteIdenticalToOff) {
  const std::string table_path = TempPath("cli_quant_table.tbl");
  const std::string batch_path = TempPath("cli_quant_batch.txt");
  const std::string table_flag = "--table=" + table_path;
  const std::string batch_flag = "--batch=" + batch_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64", "--seed=23"})
                  .code,
              0);
  }
  {
    std::ofstream batch(batch_path);
    batch << "distance 0 63\n"
          << "knn 5 4\n"
          << "distance 17 42\n"
          << "knn 63 20\n";
  }

  const CliRun query_off =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), "--p=1", "--k=64", "--quant=off"});
  ASSERT_EQ(query_off.code, 0) << query_off.err;
  for (const char* quant : {"--quant=int8", "--quant=int16"}) {
    for (const char* extra : {"--threads=4", "--cache-bytes=4096"}) {
      const CliRun run =
          RunCli({"query", table_flag.c_str(), "--tile-rows=8",
                  "--tile-cols=8", batch_flag.c_str(), "--p=1", "--k=64",
                  quant, extra});
      ASSERT_EQ(run.code, 0) << run.err;
      EXPECT_EQ(run.out, query_off.out) << quant << " with " << extra;
    }
  }

  // Filter-and-refine knn on top of the code tier also matches --quant=off.
  const CliRun refine_off =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), "--p=1", "--k=64", "--refine"});
  ASSERT_EQ(refine_off.code, 0) << refine_off.err;
  for (const char* quant : {"--quant=int8", "--quant=int16"}) {
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), "--p=1", "--k=64", "--refine", quant});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_EQ(run.out, refine_off.out) << "refine with " << quant;
  }

  // Clustering: the assignment CSV must match byte-for-byte (stdout also
  // reports distance-eval counts and wall time, which the prefilter is
  // allowed — indeed expected — to change).
  const std::string csv_path = TempPath("cli_quant_assign.csv");
  const std::string csv_flag = "--out=" + csv_path;
  auto run_cluster = [&](const char* quant) -> std::string {
    const CliRun run =
        RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
                "--tile-cols=8", "--p=2", "--sketch-k=64", "--k=3",
                "--seed=7", csv_flag.c_str(), quant});
    EXPECT_EQ(run.code, 0) << run.err;
    std::ifstream in(csv_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string cluster_off = run_cluster("--quant=off");
  ASSERT_NE(cluster_off.find("tile,grid_row,grid_col,cluster"),
            std::string::npos);
  EXPECT_EQ(run_cluster("--quant=int8"), cluster_off);
  EXPECT_EQ(run_cluster("--quant=int16"), cluster_off);

  {
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), "--p=1", "--k=64", "--quant=int7"});
    EXPECT_EQ(run.code, 1);
    EXPECT_NE(run.err.find("quantization"), std::string::npos);
  }
  {
    // Exact mode has no sketches, so there is nothing to quantize.
    const CliRun run =
        RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
                "--tile-cols=8", "--mode=exact", "--k=3", "--quant=int8"});
    EXPECT_EQ(run.code, 1);
    EXPECT_NE(run.err.find("--quant"), std::string::npos);
  }

  std::remove(table_path.c_str());
  std::remove(batch_path.c_str());
  std::remove(csv_path.c_str());
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Extracts the numeric value of `"key": <number>` from a metrics dump.
/// Returns -1 when the key is absent (all real metric values are >= 0).
double MetricValue(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// Minimal blocking line client for the serve daemon tests.
class CliServeClient {
 public:
  explicit CliServeClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~CliServeClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  std::string RecvLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Polls `path` until it appears and parses the port the daemon wrote.
uint16_t WaitForPortFile(const std::string& path) {
  for (int i = 0; i < 2000; ++i) {
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return static_cast<uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return 0;
}

// The ISSUE-6 acceptance scenario: the daemon answers a mixed batch over a
// socket byte-identically to single-shot `query` on the same inputs,
// including across a live `reload` snapshot swap, shuts down cleanly on
// SIGTERM, and its metrics dump carries the serve.* schema.
TEST(CliTest, ServeDaemonMatchesQueryAndReloads) {
  const std::string table_path = TempPath("cli_serve_table.tbl");
  const std::string batch_path = TempPath("cli_serve_batch.txt");
  const std::string day1_path = TempPath("cli_serve_day1.sks");
  const std::string day2_path = TempPath("cli_serve_day2.sks");
  const std::string port_path = TempPath("cli_serve.port");
  const std::string json_path = TempPath("cli_serve_metrics.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string batch_flag = "--batch=" + batch_path;
  std::remove(port_path.c_str());
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64", "--seed=11"})
                  .code,
              0);
  }
  // Two sketch-set generations over the same table, different seeds.
  for (const auto& [path, seed] :
       {std::pair<std::string, const char*>{day1_path, "--seed=42"},
        std::pair<std::string, const char*>{day2_path, "--seed=43"}}) {
    const std::string out_flag = "--out=" + path;
    ASSERT_EQ(RunCli({"sketch", table_flag.c_str(), out_flag.c_str(),
                      "--tile-rows=8", "--tile-cols=8", "--p=1", "--k=64",
                      seed})
                  .code,
              0);
  }
  const std::vector<std::string> batch_lines = {
      "distance 0 63", "knn 5 4", "distance 17 42", "knn 63 2"};
  {
    std::ofstream batch(batch_path);
    for (const std::string& line : batch_lines) batch << line << "\n";
  }

  // `query` reference answers for each generation.
  const std::string day1_flag = "--sketches=" + day1_path;
  const std::string day2_flag = "--sketches=" + day2_path;
  const CliRun day1_ref =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), day1_flag.c_str()});
  ASSERT_EQ(day1_ref.code, 0) << day1_ref.err;
  const CliRun day2_ref =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), day2_flag.c_str()});
  ASSERT_EQ(day2_ref.code, 0) << day2_ref.err;
  const std::vector<std::string> day1_lines = SplitLines(day1_ref.out);
  const std::vector<std::string> day2_lines = SplitLines(day2_ref.out);
  ASSERT_EQ(day1_lines.size(), batch_lines.size());
  ASSERT_NE(day1_lines, day2_lines);

  // The daemon runs in-process on another thread; SIGTERM stops it.
  const std::string port_flag = "--port-file=" + port_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  CliRun serve_run{-1, "", ""};
  std::thread daemon([&] {
    serve_run = RunCli({"serve", table_flag.c_str(), "--tile-rows=8",
                        "--tile-cols=8", day1_flag.c_str(),
                        "--cache-bytes=1000000", port_flag.c_str(),
                        json_flag.c_str()});
  });
  const uint16_t port = WaitForPortFile(port_path);
  ASSERT_NE(port, 0) << "daemon never wrote its port file";

  {
    CliServeClient client(port);
    ASSERT_TRUE(client.connected());
    client.SendLine("ping");
    EXPECT_EQ(client.RecvLine(), "ok ping");
    // Day-1 answers match `query` byte-for-byte...
    for (size_t i = 0; i < batch_lines.size(); ++i) {
      client.SendLine(batch_lines[i]);
      EXPECT_EQ(client.RecvLine(), day1_lines[i]) << "line " << i;
    }
    // ...and after one live reload, so do day-2 answers.
    client.SendLine("reload " + day2_path);
    const std::string ack = client.RecvLine();
    EXPECT_EQ(ack.find("ok reload "), 0u) << ack;
    for (size_t i = 0; i < batch_lines.size(); ++i) {
      client.SendLine(batch_lines[i]);
      EXPECT_EQ(client.RecvLine(), day2_lines[i]) << "line " << i;
    }
    client.SendLine("quit");
    EXPECT_EQ(client.RecvLine(), "ok bye");
  }

  raise(SIGTERM);
  daemon.join();
  EXPECT_EQ(serve_run.code, 0) << serve_run.err;
  EXPECT_NE(serve_run.out.find("serving "), std::string::npos);
  EXPECT_NE(serve_run.err.find("1 snapshot swaps"), std::string::npos);

  // The metrics dump carries the serve.* schema and the LRU race counter.
  const std::string json = ReadWholeFile(json_path);
  EXPECT_GE(MetricValue(json, "serve.connections.accepted"), 0.0);
  EXPECT_GE(MetricValue(json, "serve.requests.distance"), 0.0);
  EXPECT_GE(MetricValue(json, "serve.requests.knn"), 0.0);
  EXPECT_GE(MetricValue(json, "serve.requests.reload"), 0.0);
  EXPECT_GE(MetricValue(json, "serve.snapshot.swaps"), 0.0);
  EXPECT_GE(MetricValue(json, "serve.queue.depth"), 0.0);
  EXPECT_GE(MetricValue(json, "lru.cache.races"), 0.0);
  EXPECT_NE(json.find("serve.request.latency.seconds"), std::string::npos);
#if TABSKETCH_METRICS_ENABLED
  EXPECT_EQ(MetricValue(json, "serve.connections.accepted"), 1.0);
  EXPECT_EQ(MetricValue(json, "serve.requests.distance"), 4.0);
  EXPECT_EQ(MetricValue(json, "serve.requests.knn"), 4.0);
  EXPECT_EQ(MetricValue(json, "serve.requests.reload"), 1.0);
  EXPECT_EQ(MetricValue(json, "serve.snapshot.swaps"), 1.0);
#endif

  for (const std::string& path :
       {table_path, batch_path, day1_path, day2_path, port_path, json_path}) {
    std::remove(path.c_str());
  }
}

TEST(CliTest, ServeRejectsBadFlags) {
  EXPECT_EQ(RunCli({"serve"}).code, 1);
  EXPECT_EQ(RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--port=70000"})
                .code,
            1);
  EXPECT_EQ(RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--deadline-ms=-1"})
                .code,
            1);
  // Introspection flags: --slow-log needs a threshold, the ticker needs a
  // positive interval and at least one ring slot.
  EXPECT_EQ(RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--slow-log=/tmp/slow.jsonl"})
                .code,
            1);
  EXPECT_EQ(RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--slow-ms=-1"})
                .code,
            1);
  EXPECT_EQ(RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--stats-interval=0"})
                .code,
            1);
  EXPECT_EQ(RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--stats-ring=0"})
                .code,
            1);
}

TEST(CliTest, TopRejectsBadFlags) {
  EXPECT_EQ(RunCli({"top"}).code, 1);  // needs --port or --port-file
  EXPECT_EQ(RunCli({"top", "--port=70000"}).code, 1);
  EXPECT_EQ(RunCli({"top", "--port=1", "--interval=0"}).code, 1);
  // An unreadable port file is a clean error, not a hang.
  EXPECT_EQ(RunCli({"top", "--port-file=/no/such/port.file", "--once"}).code,
            1);
}

TEST(CliTest, TopOnceAndTickerMetricsFileAgainstLiveDaemon) {
  const std::string table_path = TempPath("cli_top_table.tbl");
  const std::string port_path = TempPath("cli_top.port");
  const std::string json_path = TempPath("cli_top_metrics.json");
  const std::string table_flag = "--table=" + table_path;
  std::remove(port_path.c_str());
  std::remove(json_path.c_str());
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=32", "--cols=32", "--seed=3"})
                  .code,
              0);
  }

  const std::string port_flag = "--port-file=" + port_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  CliRun serve_run{-1, "", ""};
  std::thread daemon([&] {
    serve_run = RunCli({"serve", table_flag.c_str(), "--tile-rows=8",
                        "--tile-cols=8", port_flag.c_str(), json_flag.c_str(),
                        "--stats-interval=0.05"});
  });
  const uint16_t port = WaitForPortFile(port_path);
  ASSERT_NE(port, 0) << "daemon never wrote its port file";

  // The ticker atomically rewrites --metrics-json every interval: while the
  // daemon is still running, the file on disk is a complete valid document
  // carrying the ticker's own counter.
  bool ticked = false;
  for (int i = 0; i < 2000 && !ticked; ++i) {
    const std::string json = ReadWholeFile(json_path);
    if (!json.empty() && tabsketch::testing::JsonChecker::Valid(json) &&
        json.find("serve.ticker.ticks") != std::string::npos) {
      ticked = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(ticked) << "metrics file never rewritten while serving";

  // Background traffic so the two polls `top --once` takes bracket live
  // requests and the client-side diffed rate is observable.
  std::atomic<bool> stop_traffic{false};
  std::thread traffic([&] {
    CliServeClient client(port);
    if (!client.connected()) return;
    while (!stop_traffic.load()) {
      client.SendLine("distance 0 1");
      if (client.RecvLine().empty()) return;
    }
  });

  const CliRun top =
      RunCli({"top", port_flag.c_str(), "--interval=0.2", "--once"});
  stop_traffic.store(true);
  traffic.join();
  EXPECT_EQ(top.code, 0) << top.err;
  const std::vector<std::string> lines = SplitLines(top.out);
  ASSERT_EQ(lines.size(), 2u) << top.out;  // header + exactly one data line
  EXPECT_NE(lines[0].find("rps"), std::string::npos) << top.out;
  EXPECT_NE(lines[0].find("p99_ms"), std::string::npos) << top.out;
  EXPECT_NE(lines[0].find("tiles"), std::string::npos) << top.out;
  const double rps = std::strtod(lines[1].c_str(), nullptr);
#if TABSKETCH_METRICS_ENABLED
  EXPECT_GT(rps, 0.0) << top.out;
#else
  EXPECT_GE(rps, 0.0) << top.out;
#endif

  raise(SIGTERM);
  daemon.join();
  EXPECT_EQ(serve_run.code, 0) << serve_run.err;
  for (const std::string& path : {table_path, port_path, json_path}) {
    std::remove(path.c_str());
  }
}

/// Generates `cols`-column six-region pieces (32 rows each) and returns
/// their paths; the caller removes them.
std::vector<std::string> GeneratePieces(const std::string& prefix,
                                        const std::vector<int>& piece_cols) {
  std::vector<std::string> paths;
  for (size_t i = 0; i < piece_cols.size(); ++i) {
    const std::string path =
        TempPath(prefix + "_piece" + std::to_string(i) + ".tbl");
    const std::string out_flag = "--out=" + path;
    const std::string cols_flag =
        "--cols=" + std::to_string(piece_cols[i]);
    const std::string seed_flag = "--seed=" + std::to_string(100 + i);
    EXPECT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=32", cols_flag.c_str(), seed_flag.c_str()})
                  .code,
              0);
    paths.push_back(path);
  }
  return paths;
}

std::string JoinComma(const std::vector<std::string>& parts) {
  std::string joined;
  for (const std::string& part : parts) {
    if (!joined.empty()) joined += ",";
    joined += part;
  }
  return joined;
}

TEST(CliTest, IngestMatchesBatchSketchByteForByte) {
  // Streaming `ingest` over uneven pieces (the middle one leaves pending
  // columns mid-stream) must write the same bytes `sketch` writes over the
  // stitched table — sketches and the .skt writer are deterministic.
  const std::vector<std::string> pieces =
      GeneratePieces("cli_ingest_id", {20, 12, 16});
  const std::string stream_out = TempPath("cli_ingest_id_stream.skt");
  const std::string table_out = TempPath("cli_ingest_id_stitched.tbl");
  const std::string batch_out = TempPath("cli_ingest_id_batch.skt");
  const std::string pieces_flag = "--pieces=" + JoinComma(pieces);
  const std::string stream_flag = "--out=" + stream_out;
  const std::string table_out_flag = "--table-out=" + table_out;
  const CliRun ingest =
      RunCli({"ingest", pieces_flag.c_str(), "--tile-rows=8",
              "--tile-cols=8", stream_flag.c_str(), table_out_flag.c_str(),
              "--p=1", "--k=32", "--seed=7", "--threads=3"});
  ASSERT_EQ(ingest.code, 0) << ingest.err;
  EXPECT_NE(ingest.out.find("ingested 3 pieces"), std::string::npos);
  EXPECT_NE(ingest.out.find("tile-cols [0, 6)"), std::string::npos);

  const std::string table_flag = "--table=" + table_out;
  const std::string batch_flag = "--out=" + batch_out;
  const CliRun sketch =
      RunCli({"sketch", table_flag.c_str(), batch_flag.c_str(),
              "--tile-rows=8", "--tile-cols=8", "--p=1", "--k=32",
              "--seed=7"});
  ASSERT_EQ(sketch.code, 0) << sketch.err;
  EXPECT_EQ(ReadWholeFile(stream_out), ReadWholeFile(batch_out));

  for (const std::string& path : pieces) std::remove(path.c_str());
  for (const std::string& path : {stream_out, table_out, batch_out}) {
    std::remove(path.c_str());
  }
}

TEST(CliTest, IngestWindowSlidesAndMatchesSuffixSketch) {
  // --window=2 retires overflow after every piece: the final window is the
  // stream's last two tile columns, and its sketch set must byte-match a
  // batch `sketch` over the final window table.
  const std::vector<std::string> pieces =
      GeneratePieces("cli_ingest_win", {16, 16, 16});
  const std::string stream_out = TempPath("cli_ingest_win_stream.skt");
  const std::string table_out = TempPath("cli_ingest_win_window.tbl");
  const std::string batch_out = TempPath("cli_ingest_win_batch.skt");
  const std::string pieces_flag = "--pieces=" + JoinComma(pieces);
  const std::string stream_flag = "--out=" + stream_out;
  const std::string table_out_flag = "--table-out=" + table_out;
  const CliRun ingest =
      RunCli({"ingest", pieces_flag.c_str(), "--tile-rows=8",
              "--tile-cols=8", stream_flag.c_str(), table_out_flag.c_str(),
              "--k=32", "--window=2"});
  ASSERT_EQ(ingest.code, 0) << ingest.err;
  EXPECT_NE(ingest.out.find("tile-cols [4, 6)"), std::string::npos);
  EXPECT_NE(ingest.out.find("window table (32x16)"), std::string::npos);

  const std::string table_flag = "--table=" + table_out;
  const std::string batch_flag = "--out=" + batch_out;
  ASSERT_EQ(RunCli({"sketch", table_flag.c_str(), batch_flag.c_str(),
                    "--tile-rows=8", "--tile-cols=8", "--k=32"})
                .code,
            0);
  EXPECT_EQ(ReadWholeFile(stream_out), ReadWholeFile(batch_out));

  for (const std::string& path : pieces) std::remove(path.c_str());
  for (const std::string& path : {stream_out, table_out, batch_out}) {
    std::remove(path.c_str());
  }
}

TEST(CliTest, IngestRejectsBadFlags) {
  const CliRun no_pieces = RunCli({"ingest", "--tile-rows=8",
                                   "--tile-cols=8", "--out=/tmp/x.skt"});
  EXPECT_EQ(no_pieces.code, 1);
  EXPECT_NE(no_pieces.err.find("--pieces"), std::string::npos);
  EXPECT_EQ(RunCli({"ingest", "--pieces=,", "--tile-rows=8",
                    "--tile-cols=8", "--out=/tmp/x.skt"})
                .code,
            1);
  EXPECT_EQ(RunCli({"ingest", "--pieces=/tmp/a.tbl", "--tile-rows=8",
                    "--tile-cols=8", "--out=/tmp/x.skt", "--window=-1"})
                .code,
            1);
}

TEST(CliTest, ServeIngestFlagValidation) {
  // All three rejections fire before any file is opened or port bound.
  const CliRun needs_table =
      RunCli({"serve", "--sketches=/tmp/x.skt", "--ingest"});
  EXPECT_EQ(needs_table.code, 1);
  EXPECT_NE(needs_table.err.find("--ingest"), std::string::npos);
  const CliRun with_sketches =
      RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
              "--tile-cols=8", "--sketches=/tmp/x.skt", "--ingest"});
  EXPECT_EQ(with_sketches.code, 1);
  EXPECT_NE(with_sketches.err.find("--sketches"), std::string::npos);
  const CliRun with_cache =
      RunCli({"serve", "--table=/tmp/x.tbl", "--tile-rows=8",
              "--tile-cols=8", "--cache-bytes=4096", "--ingest"});
  EXPECT_EQ(with_cache.code, 1);
  EXPECT_NE(with_cache.err.find("--cache-bytes"), std::string::npos);
}

TEST(CliTest, ServeIngestDaemonMatchesQueryOnStitchedTable) {
  // The acceptance scenario: a daemon grown by `append` verbs answers
  // byte-identically to `tabsketch query` over the stitched table —
  // including the quantized filter tier.
  const std::vector<std::string> pieces =
      GeneratePieces("cli_serve_ingest", {16, 16, 16});
  const std::string stitched_path = TempPath("cli_serve_ingest_full.tbl");
  const std::string batch_path = TempPath("cli_serve_ingest_batch.txt");
  const std::string port_path = TempPath("cli_serve_ingest.port");
  const std::string json_path = TempPath("cli_serve_ingest_metrics.json");
  std::remove(port_path.c_str());

  // Stitch via ingest --table-out (whose bytes the tests above pin), then
  // take `query` reference answers before the daemon starts (RunCli resets
  // the global metrics registry; the daemon's dump must stay its own).
  {
    const std::string pieces_flag = "--pieces=" + JoinComma(pieces);
    const std::string out_flag = "--out=" + TempPath("cli_serve_ingest.skt");
    const std::string table_out_flag = "--table-out=" + stitched_path;
    ASSERT_EQ(RunCli({"ingest", pieces_flag.c_str(), "--tile-rows=8",
                      "--tile-cols=8", out_flag.c_str(),
                      table_out_flag.c_str(), "--k=64"})
                  .code,
              0);
    std::remove(TempPath("cli_serve_ingest.skt").c_str());
  }
  const std::vector<std::string> batch_lines = {
      "distance 0 23", "knn 5 4", "distance 17 22", "knn 23 3"};
  {
    std::ofstream batch(batch_path);
    for (const std::string& line : batch_lines) batch << line << "\n";
  }
  const std::string stitched_flag = "--table=" + stitched_path;
  const std::string batch_flag = "--batch=" + batch_path;
  const CliRun reference =
      RunCli({"query", stitched_flag.c_str(), "--tile-rows=8",
              "--tile-cols=8", batch_flag.c_str(), "--k=64",
              "--quant=int8"});
  ASSERT_EQ(reference.code, 0) << reference.err;
  const std::vector<std::string> expected = SplitLines(reference.out);
  ASSERT_EQ(expected.size(), batch_lines.size());

  const std::string seed_flag = "--table=" + pieces[0];
  const std::string port_flag = "--port-file=" + port_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  CliRun serve_run{-1, "", ""};
  std::thread daemon([&] {
    serve_run = RunCli({"serve", seed_flag.c_str(), "--tile-rows=8",
                        "--tile-cols=8", "--k=64", "--quant=int8",
                        "--ingest", port_flag.c_str(), json_flag.c_str()});
  });
  const uint16_t port = WaitForPortFile(port_path);
  ASSERT_NE(port, 0) << "daemon never wrote its port file";

  {
    CliServeClient client(port);
    ASSERT_TRUE(client.connected());
    client.SendLine("window");
    EXPECT_EQ(client.RecvLine(),
              "ok window tile-cols=2 start=0 pending=0 tiles=8");
    for (size_t i = 1; i < pieces.size(); ++i) {
      client.SendLine("append " + pieces[i]);
      const std::string ack = client.RecvLine();
      EXPECT_EQ(ack.find("ok append "), 0u) << ack;
    }
    // Every answer over the appended window byte-matches `query` over the
    // stitched table.
    for (size_t i = 0; i < batch_lines.size(); ++i) {
      client.SendLine(batch_lines[i]);
      EXPECT_EQ(client.RecvLine(), expected[i]) << batch_lines[i];
    }
    // reload is disabled under --ingest.
    client.SendLine("reload " + stitched_path);
    EXPECT_EQ(client.RecvLine(),
              "error failed-precondition reload disabled");
    client.SendLine("quit");
    EXPECT_EQ(client.RecvLine(), "ok bye");
  }

  raise(SIGTERM);
  daemon.join();
  EXPECT_EQ(serve_run.code, 0) << serve_run.err;
  EXPECT_NE(serve_run.err.find("2 snapshot swaps"), std::string::npos);

  // The dump carries the ingest.* schema.
  const std::string json = ReadWholeFile(json_path);
  EXPECT_GE(MetricValue(json, "ingest.appends"), 0.0);
  EXPECT_GE(MetricValue(json, "ingest.tiles.sketched"), 0.0);
  EXPECT_GE(MetricValue(json, "ingest.tiles.reused"), 0.0);
  EXPECT_GE(MetricValue(json, "ingest.window.tile_cols"), 0.0);
  EXPECT_NE(json.find("ingest.append.latency.seconds"), std::string::npos);
#if TABSKETCH_METRICS_ENABLED
  EXPECT_EQ(MetricValue(json, "ingest.appends"), 2.0);
  EXPECT_EQ(MetricValue(json, "ingest.columns.appended"), 32.0);
  EXPECT_EQ(MetricValue(json, "ingest.tiles.sketched"), 16.0);
  EXPECT_EQ(MetricValue(json, "ingest.tiles.reused"), 24.0);
  EXPECT_EQ(MetricValue(json, "serve.requests.append"), 2.0);
  EXPECT_EQ(MetricValue(json, "ingest.window.tile_cols"), 6.0);
  EXPECT_EQ(MetricValue(json, "ingest.window.pending_cols"), 0.0);
#endif

  for (const std::string& path : pieces) std::remove(path.c_str());
  for (const std::string& path :
       {stitched_path, batch_path, port_path, json_path}) {
    std::remove(path.c_str());
  }
}

TEST(CliTest, QueryRejectsBadBatchWithLineNumber) {
  const std::string table_path = TempPath("cli_query_bad_table.tbl");
  const std::string batch_path = TempPath("cli_query_bad_batch.txt");
  const std::string out_flag = "--out=" + table_path;
  ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                    "--rows=32", "--cols=32"})
                .code,
            0);
  {
    std::ofstream batch(batch_path);
    batch << "distance 0 1\nteleport 2 3\n";
  }
  const std::string table_flag = "--table=" + table_path;
  const std::string batch_flag = "--batch=" + batch_path;
  const CliRun run =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str()});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("line 2"), std::string::npos);
  std::remove(table_path.c_str());
  std::remove(batch_path.c_str());
}

TEST(CliTest, DistanceRejectsMismatchedRectangles) {
  const std::string table_path = TempPath("cli_test_rect.tbl");
  const std::string out_flag = "--out=" + table_path;
  ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                 "--rows=32", "--cols=32"})
                .code,
            0);
  const std::string table_flag = "--table=" + table_path;
  const CliRun run = RunCli({"distance", table_flag.c_str(),
                          "--rect1=0,0,8,8", "--rect2=0,0,8,9"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("equal dimensions"), std::string::npos);
  std::remove(table_path.c_str());
}

TEST(CliTest, DistanceRejectsOutOfRangeP) {
  // --p outside (0, 2] used to reach LpDistance's precondition CHECK and
  // abort; the family is now validated first, so this is a clean error.
  const std::string table_path = TempPath("cli_test_badp.tbl");
  const std::string out_flag = "--out=" + table_path;
  ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                 "--rows=32", "--cols=32"})
                .code,
            0);
  const std::string table_flag = "--table=" + table_path;
  for (const char* bad_p : {"--p=0", "--p=-1", "--p=2.5"}) {
    const CliRun run = RunCli({"distance", table_flag.c_str(),
                            "--rect1=0,0,8,8", "--rect2=8,8,8,8", bad_p});
    EXPECT_EQ(run.code, 1) << bad_p;
    EXPECT_NE(run.err.find("p must be in (0, 2]"), std::string::npos)
        << bad_p << ": " << run.err;
  }
  std::remove(table_path.c_str());
}

TEST(CliTest, ClusterRejectsUnknownAlgoAndMode) {
  const std::string table_path = TempPath("cli_test_algo.tbl");
  const std::string out_flag = "--out=" + table_path;
  ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                 "--rows=32", "--cols=32"})
                .code,
            0);
  const std::string table_flag = "--table=" + table_path;
  EXPECT_EQ(RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
                 "--tile-cols=8", "--algo=zzz"})
                .code,
            1);
  EXPECT_EQ(RunCli({"cluster", table_flag.c_str(), "--tile-rows=8",
                 "--tile-cols=8", "--mode=zzz"})
                .code,
            1);
  std::remove(table_path.c_str());
}

TEST(CliTest, InfoMissingFileFails) {
  const CliRun run = RunCli({"info", "--table=/tmp/definitely_missing.tbl"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("error"), std::string::npos);
}

// The ISSUE-3 acceptance scenario: cluster a 256x256 demo table with
// --metrics-json and validate that the dump is well-formed JSON carrying the
// documented per-stage timings and the exact-vs-sketch evaluation split.
TEST(CliMetricsTest, ClusterDumpCarriesDocumentedSchema) {
  const std::string table_path = TempPath("cli_metrics_table.tbl");
  const std::string json_path = TempPath("cli_metrics_cluster.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=256", "--cols=256", "--seed=3"})
                  .code,
              0);
  }
  const CliRun run =
      RunCli({"cluster", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              "--algo=kmeans", "--k=6", "--sketch-k=64", json_flag.c_str()});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("metrics written to"), std::string::npos);

  const std::string json = ReadWholeFile(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(tabsketch::testing::JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"tabsketch-metrics-v1\""),
            std::string::npos);

  // Per-stage timing keys are always present (preregistered), and the stages
  // this run exercises have recorded samples.
  for (const char* stage :
       {"span.fft.correlate.seconds", "span.pool.build.seconds",
        "span.cluster.assign.seconds"}) {
    EXPECT_NE(json.find(std::string("\"") + stage + "\""), std::string::npos)
        << "missing stage " << stage;
  }
  EXPECT_GE(MetricValue(json, "span.cluster.assign.seconds"), 0.0);

#if TABSKETCH_METRICS_ENABLED
  // Precomputed sketch mode: every distance evaluation is a sketch estimate.
  // (With the layer compiled out the dump still carries the preregistered
  // keys, but every value is zero, so only the ON build asserts counts.)
  const double sketch_evals =
      MetricValue(json, "cluster.distance_evals.sketch");
  const double exact_evals = MetricValue(json, "cluster.distance_evals.exact");
  EXPECT_GT(sketch_evals, 0.0);
  EXPECT_EQ(exact_evals, 0.0);
  EXPECT_GT(MetricValue(json, "estimator.estimate.calls"), 0.0);
  EXPECT_GT(MetricValue(json, "sketcher.sketch_of.calls"), 0.0);
  EXPECT_GT(MetricValue(json, "cluster.kmeans.iterations"), 0.0);
#endif  // TABSKETCH_METRICS_ENABLED

  std::remove(table_path.c_str());
  std::remove(json_path.c_str());
}

TEST(CliMetricsTest, ExactModeSplitsEvaluationsToExact) {
  const std::string table_path = TempPath("cli_metrics_exact.tbl");
  const std::string json_path = TempPath("cli_metrics_exact.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64"})
                  .code,
              0);
  }
  const CliRun run =
      RunCli({"cluster", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              "--algo=kmeans", "--k=4", "--mode=exact", json_flag.c_str()});
  ASSERT_EQ(run.code, 0) << run.err;
  const std::string json = ReadWholeFile(json_path);
  EXPECT_TRUE(tabsketch::testing::JsonChecker::Valid(json)) << json;
#if TABSKETCH_METRICS_ENABLED
  EXPECT_GT(MetricValue(json, "cluster.distance_evals.exact"), 0.0);
  EXPECT_EQ(MetricValue(json, "cluster.distance_evals.sketch"), 0.0);
#endif  // TABSKETCH_METRICS_ENABLED
  std::remove(table_path.c_str());
  std::remove(json_path.c_str());
}

TEST(CliMetricsTest, PoolBuildDumpRecordsFftAndPoolStages) {
  const std::string table_path = TempPath("cli_metrics_pool.tbl");
  const std::string pool_path = TempPath("cli_metrics_pool.pool");
  const std::string json_path = TempPath("cli_metrics_pool.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64"})
                  .code,
              0);
  }
  const std::string out_flag = "--out=" + pool_path;
  const CliRun run =
      RunCli({"pool-build", table_flag.c_str(), out_flag.c_str(), "--k=8",
              "--min-log2=3", "--max-log2=5", json_flag.c_str()});
  ASSERT_EQ(run.code, 0) << run.err;

  const std::string json = ReadWholeFile(json_path);
  EXPECT_TRUE(tabsketch::testing::JsonChecker::Valid(json)) << json;
#if TABSKETCH_METRICS_ENABLED
  EXPECT_EQ(MetricValue(json, "fft.plan.constructions"), 1.0);
  EXPECT_GT(MetricValue(json, "fft.correlate_pair.calls"), 0.0);
  EXPECT_EQ(MetricValue(json, "pool.build.canonical_sizes"), 9.0);
  // The overall build span and one per-canonical-size histogram.
  EXPECT_GE(MetricValue(json, "span.pool.build.seconds"), 0.0);
  EXPECT_NE(json.find("\"span.pool.build.size_8x8.seconds\""),
            std::string::npos);
  // The fft stage span recorded at least one sample.
  const size_t fft_span = json.find("\"span.fft.correlate.seconds\"");
  ASSERT_NE(fft_span, std::string::npos);
  const std::string fft_entry = json.substr(fft_span, 80);
  EXPECT_EQ(fft_entry.find("\"count\": 0,"), std::string::npos) << fft_entry;
#endif  // TABSKETCH_METRICS_ENABLED

  std::remove(table_path.c_str());
  std::remove(pool_path.c_str());
  std::remove(json_path.c_str());
}

TEST(CliMetricsTest, RepeatedRunsResetBetweenDumps) {
  const std::string table_path = TempPath("cli_metrics_reset.tbl");
  const std::string json_path = TempPath("cli_metrics_reset.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=32", "--cols=32"})
                  .code,
              0);
  }
  auto sketch_calls = [&] {
    const CliRun run = RunCli({"distance", table_flag.c_str(),
                               "--rect1=0,0,8,8", "--rect2=16,16,8,8",
                               "--k=16", json_flag.c_str()});
    EXPECT_EQ(run.code, 0) << run.err;
    return MetricValue(ReadWholeFile(json_path), "sketcher.sketch_of.calls");
  };
  // Identical runs dump identical counts — the registry resets per run
  // instead of accumulating across in-process invocations. (In OFF builds
  // both runs dump zero, which still satisfies the reset invariant.)
  const double first = sketch_calls();
#if TABSKETCH_METRICS_ENABLED
  EXPECT_GT(first, 0.0);
#endif  // TABSKETCH_METRICS_ENABLED
  EXPECT_EQ(sketch_calls(), first);
  std::remove(table_path.c_str());
  std::remove(json_path.c_str());
}

/// Extracts `"inner": <number>` from inside the one-line JSON object dumped
/// for `"outer": {...}` — used to read a single histogram percentile.
/// Returns -1 when either key is absent. (Only referenced when the
/// observability layer is compiled in, hence maybe_unused.)
[[maybe_unused]] double NestedMetricValue(const std::string& json,
                                          const std::string& outer,
                                          const std::string& inner) {
  const size_t start = json.find("\"" + outer + "\": {");
  if (start == std::string::npos) return -1.0;
  const size_t end = json.find('}', start);
  const std::string needle = "\"" + inner + "\": ";
  const size_t pos = json.find(needle, start);
  if (pos == std::string::npos || pos > end) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// Returns the full line of `text` containing `needle` ("" when absent).
std::string LineContaining(const std::string& text, const std::string& needle) {
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return "";
  const size_t begin = text.rfind('\n', pos);
  const size_t line_start = begin == std::string::npos ? 0 : begin + 1;
  const size_t line_end = text.find('\n', pos);
  return text.substr(line_start, line_end == std::string::npos
                                     ? std::string::npos
                                     : line_end - line_start);
}

TEST(CliTraceTest, ClusterTraceJsonIsValidChromeTrace) {
  const std::string table_path = TempPath("cli_trace_table.tbl");
  const std::string trace_path = TempPath("cli_trace_cluster.trace.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string trace_flag = "--trace-json=" + trace_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64", "--seed=3"})
                  .code,
              0);
  }
  const CliRun run =
      RunCli({"cluster", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              "--algo=kmeans", "--k=4", "--sketch-k=64", trace_flag.c_str()});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("trace written to"), std::string::npos);

  const std::string json = ReadWholeFile(trace_path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(tabsketch::testing::JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"tabsketch-trace-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
#if TABSKETCH_METRICS_ENABLED
  // The instrumented spans show up as complete ('X') events; with the layer
  // compiled out the file still carries valid (metadata-only) JSON.
  EXPECT_NE(json.find("\"cluster.assign\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
#endif  // TABSKETCH_METRICS_ENABLED

  std::remove(table_path.c_str());
  std::remove(trace_path.c_str());
}

// Observability must observe, not perturb: the clustering output with
// tracing and full-rate auditing enabled is byte-identical to a plain run.
TEST(CliTraceTest, ObservabilityDoesNotPerturbClusterOutput) {
  const std::string table_path = TempPath("cli_identity_table.tbl");
  const std::string plain_csv = TempPath("cli_identity_plain.csv");
  const std::string traced_csv = TempPath("cli_identity_traced.csv");
  const std::string trace_path = TempPath("cli_identity.trace.json");
  const std::string table_flag = "--table=" + table_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64", "--seed=3"})
                  .code,
              0);
  }
  const std::string plain_out_flag = "--out=" + plain_csv;
  const CliRun plain =
      RunCli({"cluster", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              "--algo=kmeans", "--k=4", "--sketch-k=64", "--seed=9",
              plain_out_flag.c_str()});
  ASSERT_EQ(plain.code, 0) << plain.err;

  const std::string traced_out_flag = "--out=" + traced_csv;
  const std::string trace_flag = "--trace-json=" + trace_path;
  const CliRun traced =
      RunCli({"cluster", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              "--algo=kmeans", "--k=4", "--sketch-k=64", "--seed=9",
              traced_out_flag.c_str(), trace_flag.c_str(),
              "--audit-rate=1"});
  ASSERT_EQ(traced.code, 0) << traced.err;

  EXPECT_EQ(ReadWholeFile(plain_csv), ReadWholeFile(traced_csv));
  // The human-readable summary matches too (the timing line carries a
  // wall-clock figure, so compare the deterministic cluster-sizes line).
  const std::string sizes = LineContaining(plain.out, "cluster sizes:");
  ASSERT_FALSE(sizes.empty()) << plain.out;
  EXPECT_EQ(LineContaining(traced.out, "cluster sizes:"), sizes);

  std::remove(table_path.c_str());
  std::remove(plain_csv.c_str());
  std::remove(traced_csv.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliSparsityTest, RejectsOutOfRangeAndGarbage) {
  // --sparsity range/parse errors fail fast and name the flag, before any
  // table IO happens (mirrors the --audit-rate contract).
  for (const char* bad : {"--sparsity=0", "--sparsity=-0.5",
                          "--sparsity=1.5"}) {
    const CliRun run = RunCli({"pool-build", "--table=/tmp/none.tbl",
                               "--out=/tmp/none.pool", bad});
    EXPECT_EQ(run.code, 1) << bad;
    EXPECT_NE(run.err.find("--sparsity"), std::string::npos)
        << bad << ": " << run.err;
  }
  const CliRun garbage = RunCli({"pool-build", "--table=/tmp/none.tbl",
                                 "--out=/tmp/none.pool", "--sparsity=abc"});
  EXPECT_EQ(garbage.code, 1);
  EXPECT_NE(garbage.err.find("sparsity"), std::string::npos) << garbage.err;
}

TEST(CliSparsityTest, ExactClusterModeRejectsSparsity) {
  const CliRun run = RunCli({"cluster", "--table=/tmp/none.tbl",
                             "--tile-rows=8", "--tile-cols=8",
                             "--mode=exact", "--sparsity=0.5"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("--sparsity"), std::string::npos) << run.err;
}

TEST(CliSparsityTest, QueryRejectsSparsityAlongsideSketchesFile) {
  const CliRun run = RunCli({"query", "--table=/tmp/none.tbl",
                             "--tile-rows=8", "--tile-cols=8",
                             "--batch=/tmp/none_batch.txt",
                             "--sketches=/tmp/none.skt", "--sparsity=0.5"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("--sparsity"), std::string::npos) << run.err;
}

TEST(CliSparsityTest, SparseQueryIsByteIdenticalAcrossThreadsAndCaches) {
  // The acceptance invariant for the sparse tier's query path: answers are
  // byte-identical across thread counts and cache budgets, because the
  // FFT-vs-direct choice never consults either.
  const std::string table_path = TempPath("cli_sparse_table.tbl");
  const std::string batch_path = TempPath("cli_sparse_batch.txt");
  const std::string table_flag = "--table=" + table_path;
  const std::string batch_flag = "--batch=" + batch_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=64", "--cols=64", "--seed=5"})
                  .code,
              0);
  }
  {
    std::ofstream batch(batch_path);
    batch << "distance 0 63\n"
          << "knn 5 4\n"
          << "distance 17 42\n";
  }
  const CliRun baseline =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), "--p=1", "--k=64", "--sparsity=0.1",
              "--threads=1"});
  ASSERT_EQ(baseline.code, 0) << baseline.err;
  for (const char* extra : {"--threads=4", "--cache-bytes=1",
                            "--cache-bytes=1000000"}) {
    const CliRun run =
        RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
                batch_flag.c_str(), "--p=1", "--k=64", "--sparsity=0.1",
                extra});
    ASSERT_EQ(run.code, 0) << run.err;
    EXPECT_EQ(run.out, baseline.out) << extra;
  }
  // A different sparsity is a different family: answers must change.
  const CliRun dense =
      RunCli({"query", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              batch_flag.c_str(), "--p=1", "--k=64", "--threads=1"});
  ASSERT_EQ(dense.code, 0) << dense.err;
  EXPECT_NE(dense.out, baseline.out);
  std::remove(table_path.c_str());
  std::remove(batch_path.c_str());
}

TEST(CliAuditTest, RejectsOutOfRangeRate) {
  const CliRun run = RunCli({"cluster", "--table=/tmp/none.tbl",
                             "--tile-rows=8", "--tile-cols=8",
                             "--audit-rate=1.5"});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("--audit-rate"), std::string::npos) << run.err;
}

// The ISSUE-4 acceptance scenario: a full-rate audit of a 64-sketch p = 1
// run dumps a relative-error histogram whose median sits inside the
// Theorem 1-2 envelope eps = C(p)/sqrt(k) = 4/sqrt(64) = 0.5.
TEST(CliAuditTest, RateOneDumpReportsEnvelopeConsistentErrors) {
  const std::string table_path = TempPath("cli_audit_table.tbl");
  const std::string json_path = TempPath("cli_audit_metrics.json");
  const std::string table_flag = "--table=" + table_path;
  const std::string json_flag = "--metrics-json=" + json_path;
  {
    const std::string out_flag = "--out=" + table_path;
    ASSERT_EQ(RunCli({"generate", "--dataset=six-region", out_flag.c_str(),
                      "--rows=128", "--cols=128", "--seed=3"})
                  .code,
              0);
  }
  const CliRun run =
      RunCli({"cluster", table_flag.c_str(), "--tile-rows=8", "--tile-cols=8",
              "--algo=kmeans", "--k=4", "--sketch-k=64", "--p=1",
              "--audit-rate=1", json_flag.c_str()});
  ASSERT_EQ(run.code, 0) << run.err;

  const std::string json = ReadWholeFile(json_path);
  EXPECT_TRUE(tabsketch::testing::JsonChecker::Valid(json)) << json;
#if TABSKETCH_METRICS_ENABLED
  // End-of-run summary line on stdout.
  EXPECT_NE(run.out.find("audit p=1 k=64:"), std::string::npos) << run.out;
  const double samples = MetricValue(json, "audit.samples");
  EXPECT_GT(samples, 0.0);
  const double p50 = NestedMetricValue(json, "audit.relerr.p1", "p50");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 0.5);
  // Violations of the eps bound are the tail, never the bulk.
  const double violations = MetricValue(json, "audit.violations");
  EXPECT_GE(violations, 0.0);
  EXPECT_LT(violations, samples / 2.0);
#else
  // With the layer compiled out the flag parses but the auditor is inert.
  EXPECT_EQ(run.out.find("audit p="), std::string::npos) << run.out;
#endif  // TABSKETCH_METRICS_ENABLED

  std::remove(table_path.c_str());
  std::remove(json_path.c_str());
}

}  // namespace
}  // namespace tabsketch::cli
