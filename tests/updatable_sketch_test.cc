#include <gtest/gtest.h>

#include <vector>

#include "core/estimator.h"
#include "core/lp_distance.h"
#include "core/sketcher.h"
#include "core/stable_matrix.h"
#include "core/updatable_sketch.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"

namespace tabsketch::core {
namespace {

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble() * 10.0;
  return out;
}

TEST(StableEntryTest, MatchesBulkMatrix) {
  SketchParams params{.p = 0.75, .k = 3, .seed = 42};
  const table::Matrix bulk = StableRandomMatrix(params, 1, 5, 7);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(bulk.At(r, c), StableEntry(params, 1, 5, 7, r, c))
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(StableEntryTest, MatchesBulkMatrixAtClassicP) {
  for (double p : {1.0, 2.0}) {
    SketchParams params{.p = p, .k = 2, .seed = 9};
    const table::Matrix bulk = StableRandomMatrix(params, 0, 4, 4);
    for (size_t r = 0; r < 4; ++r) {
      for (size_t c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(bulk.At(r, c), StableEntry(params, 0, 4, 4, r, c))
            << "p=" << p;
      }
    }
  }
}

TEST(UpdatableSketchTest, CreateValidates) {
  EXPECT_FALSE(
      UpdatableSketch::CreateEmpty({.p = 0.0, .k = 4, .seed = 1}, 2, 2).ok());
  EXPECT_FALSE(
      UpdatableSketch::CreateEmpty({.p = 1.0, .k = 4, .seed = 1}, 0, 2).ok());
  EXPECT_TRUE(
      UpdatableSketch::CreateEmpty({.p = 1.0, .k = 4, .seed = 1}, 2, 2).ok());
}

TEST(UpdatableSketchTest, EmptyStartsAtZero) {
  auto sketch = UpdatableSketch::CreateEmpty({.p = 1.0, .k = 8, .seed = 1},
                                             4, 4);
  ASSERT_TRUE(sketch.ok());
  for (double value : sketch->sketch().values) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
  EXPECT_EQ(sketch->updates_applied(), 0u);
}

TEST(UpdatableSketchTest, UpdatesMatchResketchingFromScratch) {
  SketchParams params{.p = 0.5, .k = 16, .seed = 77};
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());

  table::Matrix data = RandomTable(6, 9, 3);
  auto updatable = UpdatableSketch::FromView(*sketcher, data.View());
  ASSERT_TRUE(updatable.ok());

  // Apply a series of point updates to both the sketch and the data.
  rng::Xoshiro256 gen(5);
  for (int update = 0; update < 25; ++update) {
    const size_t r = gen.NextBounded(6);
    const size_t c = gen.NextBounded(9);
    const double delta = gen.NextDouble() * 4.0 - 2.0;
    updatable->ApplyUpdate(r, c, delta);
    data(r, c) += delta;
  }
  EXPECT_EQ(updatable->updates_applied(), 25u);

  const Sketch fresh = sketcher->SketchOf(data.View());
  ASSERT_EQ(updatable->sketch().size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_NEAR(updatable->sketch().values[i], fresh.values[i], 1e-9)
        << "component " << i;
  }
}

TEST(UpdatableSketchTest, BuildFromEmptyByUpdatesEqualsDirectSketch) {
  SketchParams params{.p = 1.0, .k = 12, .seed = 11};
  auto sketcher = Sketcher::Create(params);
  ASSERT_TRUE(sketcher.ok());
  const table::Matrix data = RandomTable(4, 5, 7);

  auto built = UpdatableSketch::CreateEmpty(params, 4, 5);
  ASSERT_TRUE(built.ok());
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      built->ApplyUpdate(r, c, data.At(r, c));
    }
  }
  const Sketch direct = sketcher->SketchOf(data.View());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(built->sketch().values[i], direct.values[i], 1e-9);
  }
}

TEST(UpdatableSketchTest, UpdatedSketchComparableWithStaticSketches) {
  // Distance between an updated sketch and a static sketch tracks the true
  // distance of the updated data.
  SketchParams params{.p = 1.0, .k = 400, .seed = 13};
  auto sketcher = Sketcher::Create(params);
  auto estimator = DistanceEstimator::Create(params);
  ASSERT_TRUE(sketcher.ok() && estimator.ok());

  table::Matrix x = RandomTable(8, 8, 21);
  const table::Matrix y = RandomTable(8, 8, 22);
  auto updatable = UpdatableSketch::FromView(*sketcher, x.View());
  ASSERT_TRUE(updatable.ok());
  const Sketch sketch_y = sketcher->SketchOf(y.View());

  // Drift x toward y in a corner region.
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      const double delta = y.At(r, c) - x.At(r, c);
      updatable->ApplyUpdate(r, c, delta);
      x(r, c) += delta;
    }
  }
  const double exact = core::LpDistance(x.View(), y.View(), 1.0);
  const double approx = estimator->Estimate(updatable->sketch(), sketch_y);
  EXPECT_NEAR(approx / exact, 1.0, 0.25);
}

TEST(UpdatableSketchDeathTest, OutOfShapeUpdateAborts) {
  auto sketch = UpdatableSketch::CreateEmpty({.p = 1.0, .k = 2, .seed = 1},
                                             2, 3);
  ASSERT_TRUE(sketch.ok());
  EXPECT_DEATH(sketch->ApplyUpdate(2, 0, 1.0), "outside");
}

}  // namespace
}  // namespace tabsketch::core
