#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ondemand.h"
#include "json_checker.h"
#include "core/sketch_io.h"
#include "core/sketcher.h"
#include "rng/xoshiro256.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "table/matrix.h"
#include "table/table_io.h"
#include "table/tiling.h"
#include "util/metrics.h"
#include "util/metrics_snapshot.h"

namespace tabsketch::serve {
namespace {

using std::chrono::steady_clock;

table::Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  table::Matrix out(rows, cols);
  for (double& value : out.Values()) value = gen.NextDouble();
  return out;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Blocking line-protocol test client on a loopback socket.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  void SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Next response line, or "" on EOF.
  std::string RecvLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True if the peer closes without sending more data.
  bool AtEof() {
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Writes the shared table + two sketch-set generations (different seeds) to
/// temp files once for the whole suite.
class ServeTest : public ::testing::Test {
 protected:
  static constexpr size_t kTileRows = 6;
  static constexpr size_t kTileCols = 6;

  ServeTest()
      : data_(RandomTable(24, 24, 9)),
        grid_(*table::TileGrid::Create(&data_, kTileRows, kTileCols)) {}

  void SetUp() override {
    // Unique per test: ctest runs suite members as concurrent processes, and
    // shared fixture paths would race a reader against another test's
    // truncate-and-rewrite.
    const std::string prefix =
        std::string("serve_test_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_";
    table_path_ = TempPath(prefix + "table.tbl");
    day1_path_ = TempPath(prefix + "day1.sks");
    day2_path_ = TempPath(prefix + "day2.sks");
    ASSERT_TRUE(table::WriteBinary(data_, table_path_).ok());
    WriteGeneration(day1_path_, /*seed=*/5);
    WriteGeneration(day2_path_, /*seed=*/6);
  }

  void TearDown() override {
    std::remove(table_path_.c_str());
    std::remove(day1_path_.c_str());
    std::remove(day2_path_.c_str());
  }

  void WriteGeneration(const std::string& path, uint64_t seed) {
    core::Sketcher sketcher =
        core::Sketcher::Create({.p = 1.0, .k = 64, .seed = seed}).value();
    core::SketchSet set;
    set.params = {.p = 1.0, .k = 64, .seed = seed};
    set.object_rows = kTileRows;
    set.object_cols = kTileCols;
    set.sketches = SketchAllTiles(sketcher, grid_);
    ASSERT_TRUE(core::WriteSketchSet(set, path).ok());
  }

  SnapshotSpec TableSpec() const {
    SnapshotSpec spec;
    spec.table_path = table_path_;
    spec.tile_rows = kTileRows;
    spec.tile_cols = kTileCols;
    spec.params = {.p = 1.0, .k = 64, .seed = 5};
    return spec;
  }

  /// The mixed batch the byte-identity tests replay, as protocol lines.
  std::vector<std::string> MixedBatchLines() const {
    std::vector<std::string> lines;
    const size_t n = grid_.num_tiles();
    for (size_t i = 0; i < n; ++i) {
      lines.push_back("distance " + std::to_string(i) + " " +
                      std::to_string((i + 3) % n));
      lines.push_back("knn " + std::to_string(i) + " 3");
    }
    return lines;
  }

  /// Reference answers for `lines` straight from a snapshot's engine.
  std::vector<std::string> ReferenceAnswers(
      const Snapshot& snapshot, const std::vector<std::string>& lines) const {
    std::vector<QueryRequest> batch;
    for (size_t i = 0; i < lines.size(); ++i) {
      auto parsed = ParseBatchLine(lines[i], i + 1);
      EXPECT_TRUE(parsed.ok());
      if (parsed.ok() && parsed->has_value()) batch.push_back(**parsed);
    }
    auto results = snapshot.engine().Run(batch);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    return results.ok() ? *results : std::vector<std::string>{};
  }

  table::Matrix data_;
  table::TileGrid grid_;
  std::string table_path_;
  std::string day1_path_;
  std::string day2_path_;
};

TEST(AdmissionControllerTest, AdmitsUpToLimitThenQueuesAndSheds) {
  AdmissionController admission(/*max_inflight=*/2, /*max_queue=*/0);
  EXPECT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kAdmitted);
  EXPECT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kAdmitted);
  // Queue size 0: the third concurrent request is shed without waiting.
  EXPECT_EQ(admission.Enter(steady_clock::now() + std::chrono::hours(1)),
            AdmissionController::Admission::kShed);
  admission.Leave();
  EXPECT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kAdmitted);
  admission.Leave();
  admission.Leave();
}

TEST(AdmissionControllerTest, QueuedRequestGetsSlotWhenFreed) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queue=*/4);
  ASSERT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kAdmitted);
  std::promise<AdmissionController::Admission> verdict;
  std::thread waiter(
      [&] { verdict.set_value(admission.Enter(std::nullopt)); });
  while (admission.queue_depth() == 0) std::this_thread::yield();
  admission.Leave();
  EXPECT_EQ(verdict.get_future().get(),
            AdmissionController::Admission::kAdmitted);
  waiter.join();
  admission.Leave();
}

TEST(AdmissionControllerTest, DeadlineExpiresWhileQueued) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queue=*/4);
  ASSERT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kAdmitted);
  EXPECT_EQ(
      admission.Enter(steady_clock::now() + std::chrono::milliseconds(20)),
      AdmissionController::Admission::kDeadlineExpired);
  EXPECT_EQ(admission.queue_depth(), 0u);
  admission.Leave();
}

TEST(AdmissionControllerTest, CloseRejectsWaitersAndNewcomers) {
  AdmissionController admission(/*max_inflight=*/1, /*max_queue=*/4);
  ASSERT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kAdmitted);
  std::promise<AdmissionController::Admission> verdict;
  std::thread waiter(
      [&] { verdict.set_value(admission.Enter(std::nullopt)); });
  while (admission.queue_depth() == 0) std::this_thread::yield();
  admission.Close();
  EXPECT_EQ(verdict.get_future().get(),
            AdmissionController::Admission::kClosed);
  waiter.join();
  EXPECT_EQ(admission.Enter(std::nullopt),
            AdmissionController::Admission::kClosed);
  admission.Leave();
}

TEST_F(ServeTest, SnapshotCreateMatchesQueryComposition) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->num_tiles(), grid_.num_tiles());
  EXPECT_NE((*snapshot)->description().find(table_path_), std::string::npos);
}

TEST_F(ServeTest, SnapshotRequiresTableOrSketches) {
  EXPECT_FALSE(Snapshot::Create(SnapshotSpec{}).ok());
}

TEST_F(ServeTest, WithSketchSetReusesGridAndSwapsAnswers) {
  auto day1 = Snapshot::Create(TableSpec());
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  auto day2 = Snapshot::WithSketchSet(**day1, day2_path_);
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  EXPECT_EQ((*day2)->num_tiles(), grid_.num_tiles());

  const std::vector<QueryRequest> batch = {
      QueryRequest{QueryRequest::Kind::kDistance, 2, 7, 0}};
  auto a1 = (*day1)->engine().Run(batch);
  auto a2 = (*day2)->engine().Run(batch);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  // Different sketch seeds → different estimates: the swap is observable.
  EXPECT_NE((*a1)[0], (*a2)[0]);
}

TEST_F(ServeTest, WithSketchSetRejectsMismatchUnderRefine) {
  SnapshotSpec spec = TableSpec();
  spec.engine.refine = true;
  auto base = Snapshot::Create(spec);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  // A sketch set over a different tile shape cannot back refined serving.
  const std::string odd_path = TempPath("serve_test_odd.sks");
  core::Sketcher sketcher =
      core::Sketcher::Create({.p = 1.0, .k = 64, .seed = 5}).value();
  core::SketchSet set;
  set.params = {.p = 1.0, .k = 64, .seed = 5};
  set.object_rows = kTileRows + 1;
  set.object_cols = kTileCols;
  set.sketches.resize(grid_.num_tiles(),
                      core::Sketch{std::vector<double>(64, 0.0)});
  ASSERT_TRUE(core::WriteSketchSet(set, odd_path).ok());
  EXPECT_FALSE(Snapshot::WithSketchSet(**base, odd_path).ok());
}

TEST_F(ServeTest, QuantSnapshotPinsCodesAndMatchesOff) {
  // A quantized snapshot builds and pins the code tier, subtracts its bytes
  // from the cache budget, and answers byte-identically to the unquantized
  // composition — including under a constrained total budget.
  auto reference = Snapshot::Create(TableSpec());
  ASSERT_TRUE(reference.ok());
  const std::vector<std::string> lines = MixedBatchLines();
  const std::vector<std::string> expected =
      ReferenceAnswers(**reference, lines);

  for (size_t cache_bytes : {size_t{0}, size_t{20000}}) {
    SnapshotSpec spec = TableSpec();
    spec.engine.quant = core::QuantKind::kInt8;
    spec.cache_bytes = cache_bytes;
    auto snapshot = Snapshot::Create(spec);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    ASSERT_NE((*snapshot)->codes(), nullptr);
    EXPECT_EQ((*snapshot)->codes()->kind(), core::QuantKind::kInt8);
    EXPECT_EQ((*snapshot)->codes()->count(), grid_.num_tiles());
    EXPECT_EQ(ReferenceAnswers(**snapshot, lines), expected)
        << "cache_bytes=" << cache_bytes;
  }

  // Off snapshots carry no code tier.
  EXPECT_EQ((*reference)->codes(), nullptr);
}

TEST_F(ServeTest, ReloadRebuildsCodeTierAtomically) {
  // WithSketchSet derives the successor's codes from the *new* sketches; the
  // reloaded generation must answer exactly like a from-scratch quantized
  // snapshot over the same set, and differently from day 1.
  SnapshotSpec spec = TableSpec();
  spec.engine.quant = core::QuantKind::kInt16;
  auto day1 = Snapshot::Create(spec);
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  auto day2 = Snapshot::WithSketchSet(**day1, day2_path_);
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  ASSERT_NE((*day2)->codes(), nullptr);
  EXPECT_EQ((*day2)->codes()->kind(), core::QuantKind::kInt16);

  SnapshotSpec fresh_spec;
  fresh_spec.sketches_path = day2_path_;
  fresh_spec.engine.quant = core::QuantKind::kInt16;
  auto fresh = Snapshot::Create(fresh_spec);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  const std::vector<std::string> lines = MixedBatchLines();
  const std::vector<std::string> reloaded = ReferenceAnswers(**day2, lines);
  EXPECT_EQ(reloaded, ReferenceAnswers(**fresh, lines));
  EXPECT_NE(reloaded, ReferenceAnswers(**day1, lines));
}

TEST_F(ServeTest, SnapshotHolderSwapCounts) {
  auto day1 = Snapshot::Create(TableSpec());
  ASSERT_TRUE(day1.ok());
  SnapshotHolder holder(*day1);
  EXPECT_EQ(holder.swaps(), 0u);
  EXPECT_EQ(holder.Current().get(), day1->get());
  auto day2 = Snapshot::WithSketchSet(**day1, day2_path_);
  ASSERT_TRUE(day2.ok());
  holder.Swap(*day2);
  EXPECT_EQ(holder.swaps(), 1u);
  EXPECT_EQ(holder.Current().get(), day2->get());
}

TEST_F(ServeTest, PingQuitAndBlankLineProtocol) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);
  auto server = Server::Start(&holder, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient client((*server)->port());
  // Blank and comment lines produce no response; the next response after
  // them must be the ping's.
  client.SendLine("");
  client.SendLine("# comment only");
  client.SendLine("ping");
  EXPECT_EQ(client.RecvLine(), "ok ping");
  client.SendLine("frobnicate 1 2");
  const std::string error = client.RecvLine();
  EXPECT_EQ(error.find("error invalid-argument"), 0u) << error;
  client.SendLine("quit");
  EXPECT_EQ(client.RecvLine(), "ok bye");
  EXPECT_TRUE(client.AtEof());
  (*server)->Shutdown();
}

TEST_F(ServeTest, MixedBatchByteIdenticalToQueryEngineAcrossConfigs) {
  // The daemon must answer byte-identically to the engine for each cache
  // policy / thread count combination (the `query` CLI equivalence).
  struct Config {
    size_t cache_bytes;
    size_t threads;
  };
  for (const Config& config :
       {Config{0, 1}, Config{1, 1}, Config{0, 4}, Config{1 << 20, 4}}) {
    SnapshotSpec spec = TableSpec();
    spec.cache_bytes = config.cache_bytes;
    spec.engine.threads = config.threads;
    auto snapshot = Snapshot::Create(spec);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    const std::vector<std::string> lines = MixedBatchLines();
    const std::vector<std::string> expected =
        ReferenceAnswers(**snapshot, lines);

    SnapshotHolder holder(*snapshot);
    auto server = Server::Start(&holder, ServerOptions{});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    TestClient client((*server)->port());
    for (const std::string& line : lines) client.SendLine(line);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(client.RecvLine(), expected[i])
          << "line " << i << " cache_bytes=" << config.cache_bytes
          << " threads=" << config.threads;
    }
    (*server)->Shutdown();
  }
}

TEST_F(ServeTest, ConcurrentClientsGetByteIdenticalAnswers) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  const std::vector<std::string> lines = MixedBatchLines();
  const std::vector<std::string> expected =
      ReferenceAnswers(**snapshot, lines);

  SnapshotHolder holder(*snapshot);
  ServerOptions options;
  options.max_inflight = 4;
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr size_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::string>> answers(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client((*server)->port());
      for (const std::string& line : lines) client.SendLine(line);
      for (size_t i = 0; i < lines.size(); ++i) {
        answers[c].push_back(client.RecvLine());
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(answers[c], expected) << "client " << c;
  }
  EXPECT_EQ((*server)->connections_accepted(), kClients);
  (*server)->Shutdown();
}

TEST_F(ServeTest, DeadlineExpiryReturnsTypedError) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);

  // One execution slot; the first request parks in the hook, so the second
  // request must sit in the admission queue past its deadline.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.deadline_ms = 50;
  options.pre_request_hook = [&](const QueryRequest&) {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient blocker((*server)->port());
  blocker.SendLine("distance 0 1");
  while (entered.load() == 0) std::this_thread::yield();

  TestClient victim((*server)->port());
  victim.SendLine("distance 2 3");
  const std::string error = victim.RecvLine();
  EXPECT_EQ(error.find("error deadline-exceeded"), 0u) << error;

  release.set_value();
  EXPECT_EQ(blocker.RecvLine().find("distance 0 1 = "), 0u);
  (*server)->Shutdown();
}

TEST_F(ServeTest, OverloadedQueueShedsWithTypedError) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;  // no waiting: excess is shed immediately
  options.pre_request_hook = [&](const QueryRequest&) {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient blocker((*server)->port());
  blocker.SendLine("distance 0 1");
  while (entered.load() == 0) std::this_thread::yield();

  TestClient shed((*server)->port());
  shed.SendLine("distance 2 3");
  const std::string error = shed.RecvLine();
  EXPECT_EQ(error.find("error overloaded"), 0u) << error;

  release.set_value();
  EXPECT_EQ(blocker.RecvLine().find("distance 0 1 = "), 0u);
  (*server)->Shutdown();
}

TEST_F(ServeTest, ReloadSwapsSnapshotForNewRequests) {
  SnapshotSpec spec = TableSpec();
  spec.sketches_path = day1_path_;
  auto day1 = Snapshot::Create(spec);
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  auto day2 = Snapshot::WithSketchSet(**day1, day2_path_);
  ASSERT_TRUE(day2.ok());
  const std::vector<std::string> line = {"distance 2 7"};
  const std::string day1_answer = ReferenceAnswers(**day1, line)[0];
  const std::string day2_answer = ReferenceAnswers(**day2, line)[0];
  ASSERT_NE(day1_answer, day2_answer);

  SnapshotHolder holder(*day1);
  auto server = Server::Start(&holder, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  TestClient client((*server)->port());
  client.SendLine("distance 2 7");
  EXPECT_EQ(client.RecvLine(), day1_answer);
  client.SendLine("reload " + day2_path_);
  const std::string ack = client.RecvLine();
  EXPECT_EQ(ack.find("ok reload "), 0u) << ack;
  EXPECT_NE(ack.find("tiles=16"), std::string::npos) << ack;
  client.SendLine("distance 2 7");
  EXPECT_EQ(client.RecvLine(), day2_answer);
  EXPECT_EQ(holder.swaps(), 1u);
  (*server)->Shutdown();
}

TEST_F(ServeTest, ReloadFailureKeepsServingOldSnapshot) {
  SnapshotSpec spec = TableSpec();
  spec.sketches_path = day1_path_;
  auto day1 = Snapshot::Create(spec);
  ASSERT_TRUE(day1.ok());
  const std::vector<std::string> line = {"distance 2 7"};
  const std::string day1_answer = ReferenceAnswers(**day1, line)[0];

  SnapshotHolder holder(*day1);
  auto server = Server::Start(&holder, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  TestClient client((*server)->port());
  client.SendLine("reload " + TempPath("serve_test_missing.sks"));
  const std::string error = client.RecvLine();
  EXPECT_EQ(error.find("error io-error"), 0u) << error;
  client.SendLine("distance 2 7");
  EXPECT_EQ(client.RecvLine(), day1_answer);
  EXPECT_EQ(holder.swaps(), 0u);
  (*server)->Shutdown();
}

TEST_F(ServeTest, SnapshotSwapMidRequestKeepsOldSnapshotAnswer) {
  // RCU consistency: a request that captured its snapshot before a reload
  // must answer from that old generation even though the swap completed
  // while it was in flight.
  SnapshotSpec spec = TableSpec();
  spec.sketches_path = day1_path_;
  auto day1 = Snapshot::Create(spec);
  ASSERT_TRUE(day1.ok());
  auto day2_preview = Snapshot::WithSketchSet(**day1, day2_path_);
  ASSERT_TRUE(day2_preview.ok());
  const std::vector<std::string> line = {"distance 2 7"};
  const std::string day1_answer = ReferenceAnswers(**day1, line)[0];
  const std::string day2_answer = ReferenceAnswers(**day2_preview, line)[0];
  ASSERT_NE(day1_answer, day2_answer);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServerOptions options;
  options.max_inflight = 2;  // the parked request must not block the reload
  options.pre_request_hook = [&](const QueryRequest&) {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  SnapshotHolder holder(*day1);
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient inflight((*server)->port());
  inflight.SendLine("distance 2 7");  // captures day1, parks in the hook
  while (entered.load() == 0) std::this_thread::yield();

  TestClient admin((*server)->port());
  admin.SendLine("reload " + day2_path_);
  EXPECT_EQ(admin.RecvLine().find("ok reload "), 0u);
  EXPECT_EQ(holder.swaps(), 1u);

  // The parked request finishes on the old generation...
  release.set_value();
  EXPECT_EQ(inflight.RecvLine(), day1_answer);
  // ...and its next request sees the new one.
  inflight.SendLine("distance 2 7");
  EXPECT_EQ(inflight.RecvLine(), day2_answer);
  (*server)->Shutdown();
}

TEST_F(ServeTest, GracefulShutdownDrainsInflightRequest) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServerOptions options;
  options.pre_request_hook = [&](const QueryRequest&) {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient client((*server)->port());
  client.SendLine("distance 0 1");
  while (entered.load() == 0) std::this_thread::yield();

  // Shutdown must block on the parked request (drain), not abandon it.
  std::atomic<bool> shutdown_done{false};
  std::thread closer([&] {
    (*server)->Shutdown();
    shutdown_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(shutdown_done.load());

  release.set_value();
  // The in-flight answer is still delivered, then the connection closes.
  EXPECT_EQ(client.RecvLine().find("distance 0 1 = "), 0u);
  EXPECT_TRUE(client.AtEof());
  closer.join();
  EXPECT_TRUE(shutdown_done.load());
}

// ---------------------------------------------------------------------------
// Introspection plane: stats / health verbs, slow-query log, gauges.

/// Enables the global metrics registry for one test and restores/wipes it on
/// exit, so serve tests can assert on live counters without leaking state
/// (mirrors GlobalMetricsGuard in metrics_test.cc).
class ScopedGlobalMetrics {
 public:
  ScopedGlobalMetrics() : was_enabled_(util::MetricsRegistry::Enabled()) {
    util::PreregisterCoreMetrics(&util::MetricsRegistry::Global());
    util::MetricsRegistry::Global().ResetValues();
    util::MetricsRegistry::SetEnabled(true);
  }
  ~ScopedGlobalMetrics() {
    util::MetricsRegistry::SetEnabled(was_enabled_);
    util::MetricsRegistry::Global().ResetValues();
  }
  ScopedGlobalMetrics(const ScopedGlobalMetrics&) = delete;
  ScopedGlobalMetrics& operator=(const ScopedGlobalMetrics&) = delete;

 private:
  const bool was_enabled_;
};

/// Pulls the number after `"key":` out of a flat one-line JSON object;
/// -1 when the key is missing.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// Reads a multi-line `stats prom` response until its `# EOF` marker.
std::string RecvPromText(TestClient* client) {
  std::string text;
  for (;;) {
    const std::string line = client->RecvLine();
    if (line.empty() && text.empty()) return text;  // EOF before any data
    text += line + "\n";
    if (line == "# EOF") return text;
  }
}

TEST_F(ServeTest, HealthAndStatsAnswerOneLineJson) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);
  auto server = Server::Start(&holder, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  TestClient client((*server)->port());

  client.SendLine("health");
  const std::string health = client.RecvLine();
  EXPECT_EQ(health.find("{\"schema\":\"tabsketch-health-v1\","
                        "\"status\":\"ok\""),
            0u)
      << health;
  EXPECT_TRUE(testing::JsonChecker::Valid(health)) << health;
  EXPECT_EQ(JsonNumber(health, "tiles"), 16.0) << health;

  // `stats` defaults to the json mode; the v1 document's keys must appear in
  // their documented order (the golden shape clients and `top` rely on).
  client.SendLine("stats");
  const std::string stats = client.RecvLine();
  EXPECT_EQ(stats.find("{\"schema\":\"tabsketch-stats-v1\""), 0u) << stats;
  EXPECT_TRUE(testing::JsonChecker::Valid(stats)) << stats;
  const char* const kOrderedKeys[] = {
      "uptime_seconds",     "generation",         "tiles",
      "connections_accepted", "connections_active", "inflight_distance",
      "inflight_knn",       "queue_depth",        "requests_distance",
      "requests_knn",       "requests_total",     "errors_total",
      "shed_total",         "deadline_total",     "slow_total",
      "ticker_ticks",       "latency_p50_ms",     "latency_p99_ms",
      "cache_hits",         "cache_misses",       "cache_hit_ratio",
      "quant_scanned",      "quant_kept",         "quant_keep_ratio",
      "window_start_col",   "window_tile_cols",   "window_pending_cols",
      "window_seconds",     "window_rps",         "window_p50_ms",
      "window_p99_ms",      "window_shed",        "window_deadline",
      "window_cache_hit_ratio", "window_quant_keep_ratio"};
  size_t last_pos = 0;
  for (const char* key : kOrderedKeys) {
    std::string needle = "\"";
    needle += key;
    needle += "\":";
    const size_t pos = stats.find(needle);
    ASSERT_NE(pos, std::string::npos) << "missing key " << key << ": " << stats;
    EXPECT_GT(pos, last_pos) << "key out of order: " << key;
    last_pos = pos;
  }

  client.SendLine("stats json");
  EXPECT_TRUE(testing::JsonChecker::Valid(client.RecvLine()));
  client.SendLine("stats bogus");
  EXPECT_EQ(client.RecvLine().find("error invalid-argument"), 0u);
  client.SendLine("stats json extra");
  EXPECT_EQ(client.RecvLine().find("error invalid-argument"), 0u);
  (*server)->Shutdown();
}

TEST_F(ServeTest, SlowQueryLogRecordsWithAttributionAndJsonlMirror) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);

  const std::string jsonl_path = TempPath("serve_test_slow.jsonl");
  std::remove(jsonl_path.c_str());
  ServerOptions options;
  options.slow_ms = 5.0;
  options.slow_log_path = jsonl_path;
  // Every query deterministically exceeds the threshold.
  options.pre_request_hook = [](const QueryRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient client((*server)->port());
  client.SendLine("distance 0 1");
  EXPECT_EQ(client.RecvLine().find("distance 0 1 = "), 0u);
  client.SendLine("knn 2 3");
  EXPECT_EQ(client.RecvLine().find("knn 2 "), 0u);

  client.SendLine("stats slow");
  const std::string slow = client.RecvLine();
  EXPECT_EQ(slow.find("{\"schema\":\"tabsketch-slow-v1\""), 0u) << slow;
  EXPECT_TRUE(testing::JsonChecker::Valid(slow)) << slow;
  EXPECT_EQ(JsonNumber(slow, "total"), 2.0) << slow;
  EXPECT_NE(slow.find("\"verb\":\"distance\""), std::string::npos) << slow;
  EXPECT_NE(slow.find("\"verb\":\"knn\""), std::string::npos) << slow;

  const std::vector<SlowQueryEntry> entries = (*server)->slow_log().Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 1u);
  EXPECT_EQ(entries[1].id, 2u);
  EXPECT_EQ(entries[0].verb, "distance");
  EXPECT_GE(entries[0].handle_seconds, 0.005);
  EXPECT_EQ(entries[0].bytes, std::string("distance 0 1").size());
  EXPECT_EQ(entries[0].generation, 0u);
  // Cache attribution rode along: a distance touches two tile sketches.
  EXPECT_EQ(entries[0].stats.cache_hits + entries[0].stats.cache_misses, 2u);
  (*server)->Shutdown();

  // The JSONL mirror holds one valid object per line, flushed per record.
  std::ifstream mirror(jsonl_path);
  ASSERT_TRUE(mirror.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(mirror, line)) {
    EXPECT_TRUE(testing::JsonChecker::Valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(jsonl_path.c_str());
}

TEST_F(ServeTest, FastRequestsStayOutOfSlowLog) {
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);
  ServerOptions options;
  options.slow_ms = 10000.0;  // nothing in this test is that slow
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  TestClient client((*server)->port());
  client.SendLine("distance 0 1");
  EXPECT_EQ(client.RecvLine().find("distance 0 1 = "), 0u);
  client.SendLine("stats slow");
  const std::string slow = client.RecvLine();
  EXPECT_EQ(JsonNumber(slow, "total"), 0.0) << slow;
  EXPECT_NE(slow.find("\"entries\":[]"), std::string::npos) << slow;
  EXPECT_EQ((*server)->slow_log().total(), 0u);
  (*server)->Shutdown();
}

TEST_F(ServeTest, StatsVerbsAnswerWhileQueryPathIsSaturated) {
  // The introspection plane bypasses admission control: with the single
  // execution slot wedged by a parked request, stats / health / stats slow
  // must still answer.
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> entered{0};
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;
  options.pre_request_hook = [&](const QueryRequest&) {
    if (entered.fetch_add(1) == 0) released.wait();
  };
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient blocker((*server)->port());
  blocker.SendLine("distance 0 1");
  while (entered.load() == 0) std::this_thread::yield();

  TestClient observer((*server)->port());
  observer.SendLine("stats json");
  EXPECT_TRUE(testing::JsonChecker::Valid(observer.RecvLine()));
  observer.SendLine("health");
  EXPECT_EQ(observer.RecvLine().find("{\"schema\":\"tabsketch-health-v1\""),
            0u);
  observer.SendLine("stats slow");
  EXPECT_TRUE(testing::JsonChecker::Valid(observer.RecvLine()));
  observer.SendLine("stats prom");
  EXPECT_NE(RecvPromText(&observer).find("# EOF\n"), std::string::npos);

  release.set_value();
  EXPECT_EQ(blocker.RecvLine().find("distance 0 1 = "), 0u);
  (*server)->Shutdown();
}

#if TABSKETCH_METRICS_ENABLED
TEST_F(ServeTest, StatsJsonCountsTrafficAndPromExposesRegistry) {
  const ScopedGlobalMetrics metrics;
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);
  auto server = Server::Start(&holder, ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient client((*server)->port());
  for (int i = 0; i < 3; ++i) {
    client.SendLine("distance 0 1");
    EXPECT_EQ(client.RecvLine().find("distance 0 1 = "), 0u);
  }
  for (int i = 0; i < 2; ++i) {
    client.SendLine("knn 2 3");
    EXPECT_EQ(client.RecvLine().find("knn 2 "), 0u);
  }

  client.SendLine("stats json");
  const std::string stats = client.RecvLine();
  EXPECT_EQ(JsonNumber(stats, "requests_distance"), 3.0) << stats;
  EXPECT_EQ(JsonNumber(stats, "requests_knn"), 2.0) << stats;
  EXPECT_EQ(JsonNumber(stats, "requests_total"), 5.0) << stats;
  EXPECT_EQ(JsonNumber(stats, "connections_accepted"), 1.0) << stats;
  EXPECT_EQ(JsonNumber(stats, "connections_active"), 1.0) << stats;
  EXPECT_GT(JsonNumber(stats, "latency_p50_ms"), 0.0) << stats;

  client.SendLine("stats prom");
  const std::string prom = RecvPromText(&client);
  EXPECT_NE(prom.find("# TYPE tabsketch_serve_requests_distance counter\n"
                      "tabsketch_serve_requests_distance 3\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("# TYPE tabsketch_serve_request_latency_seconds histogram\n"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("tabsketch_serve_request_latency_seconds_count 5\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"} 5\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# EOF\n"), std::string::npos) << prom;
  (*server)->Shutdown();
}

TEST_F(ServeTest, StatsJsonWindowRatesComeFromTickerBaseline) {
  const ScopedGlobalMetrics metrics;
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  SnapshotHolder holder(*snapshot);

  util::MetricsTicker::Options ticker_options;
  ticker_options.interval_seconds = 0.02;
  ticker_options.ring_capacity = 8;
  util::MetricsTicker ticker(ticker_options);
  ServerOptions options;
  options.ticker = &ticker;
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Keep traffic flowing while polling: once a ring snapshot at least half
  // an interval old exists, the diff window over the continuing stream must
  // show a non-zero rate. (A single up-front burst could race the ticker —
  // a tick between burst and scrape would swallow it into the baseline.)
  TestClient client((*server)->port());
  std::string last_stats;
  bool saw_window_rate = false;
  for (int attempt = 0; attempt < 400 && !saw_window_rate; ++attempt) {
    client.SendLine("distance 0 1");
    EXPECT_EQ(client.RecvLine().find("distance 0 1 = "), 0u);
    client.SendLine("stats json");
    last_stats = client.RecvLine();
    ASSERT_TRUE(testing::JsonChecker::Valid(last_stats)) << last_stats;
    saw_window_rate = JsonNumber(last_stats, "window_seconds") > 0.0 &&
                      JsonNumber(last_stats, "window_rps") > 0.0;
  }
  EXPECT_TRUE(saw_window_rate) << last_stats;
  EXPECT_GT(JsonNumber(last_stats, "ticker_ticks"), 0.0) << last_stats;
  (*server)->Shutdown();
}

TEST_F(ServeTest, GaugesBalanceOnEveryExitPath) {
  const ScopedGlobalMetrics metrics;
  util::Gauge* const connections =
      util::MetricsRegistry::Global().GetGauge("serve.connections.active");
  util::Gauge* const inflight_distance =
      util::MetricsRegistry::Global().GetGauge("serve.inflight.distance");
  util::Gauge* const inflight_knn =
      util::MetricsRegistry::Global().GetGauge("serve.inflight.knn");

  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());

  {
    // Phase A: normal answers, a protocol error, and a shed request
    // (max_queue = 0) all release their gauges.
    SnapshotHolder holder(*snapshot);
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::atomic<int> entered{0};
    ServerOptions options;
    options.max_inflight = 1;
    options.max_queue = 0;
    options.pre_request_hook = [&](const QueryRequest&) {
      if (entered.fetch_add(1) == 0) released.wait();
    };
    auto server = Server::Start(&holder, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    TestClient blocker((*server)->port());
    blocker.SendLine("distance 0 1");
    while (entered.load() == 0) std::this_thread::yield();
    // The parked request holds its per-verb in-flight gauge.
    EXPECT_EQ(inflight_distance->value(), 1.0);

    TestClient shed((*server)->port());
    shed.SendLine("knn 2 3");
    EXPECT_EQ(shed.RecvLine().find("error overloaded"), 0u);
    shed.SendLine("frobnicate");
    EXPECT_EQ(shed.RecvLine().find("error invalid-argument"), 0u);

    release.set_value();
    EXPECT_EQ(blocker.RecvLine().find("distance 0 1 = "), 0u);
    (*server)->Shutdown();
  }
  EXPECT_EQ(connections->value(), 0.0);
  EXPECT_EQ(inflight_distance->value(), 0.0);
  EXPECT_EQ(inflight_knn->value(), 0.0);

  {
    // Phase B: the deadline-expired exit path also balances.
    SnapshotHolder holder(*snapshot);
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::atomic<int> entered{0};
    ServerOptions options;
    options.max_inflight = 1;
    options.max_queue = 4;
    options.deadline_ms = 50;
    options.pre_request_hook = [&](const QueryRequest&) {
      if (entered.fetch_add(1) == 0) released.wait();
    };
    auto server = Server::Start(&holder, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    TestClient blocker((*server)->port());
    blocker.SendLine("distance 0 1");
    while (entered.load() == 0) std::this_thread::yield();
    TestClient victim((*server)->port());
    victim.SendLine("knn 2 3");
    EXPECT_EQ(victim.RecvLine().find("error deadline-exceeded"), 0u);
    release.set_value();
    EXPECT_EQ(blocker.RecvLine().find("distance 0 1 = "), 0u);
    (*server)->Shutdown();
  }
  EXPECT_EQ(connections->value(), 0.0);
  EXPECT_EQ(inflight_distance->value(), 0.0);
  EXPECT_EQ(inflight_knn->value(), 0.0);
}
#endif  // TABSKETCH_METRICS_ENABLED

TEST_F(ServeTest, AnswersByteIdenticalWithIntrospectionPlaneOn) {
  // The whole plane at once — metrics on (where compiled in), a fast ticker,
  // an everything-is-slow slow log, interleaved stats scrapes — must not
  // change a single answer byte relative to the bare engine.
#if TABSKETCH_METRICS_ENABLED
  const ScopedGlobalMetrics metrics;
#endif
  auto snapshot = Snapshot::Create(TableSpec());
  ASSERT_TRUE(snapshot.ok());
  const std::vector<std::string> lines = MixedBatchLines();
  const std::vector<std::string> expected = ReferenceAnswers(**snapshot, lines);

  util::MetricsTicker::Options ticker_options;
  ticker_options.interval_seconds = 0.01;
  util::MetricsTicker ticker(ticker_options);
  SnapshotHolder holder(*snapshot);
  ServerOptions options;
  options.ticker = &ticker;
  options.slow_ms = 1e-6;  // record every request
  auto server = Server::Start(&holder, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  TestClient observer((*server)->port());
  TestClient client((*server)->port());
  for (size_t i = 0; i < lines.size(); ++i) {
    client.SendLine(lines[i]);
    EXPECT_EQ(client.RecvLine(), expected[i]) << "line " << i;
    if (i % 8 == 0) {
      observer.SendLine("stats json");
      EXPECT_TRUE(testing::JsonChecker::Valid(observer.RecvLine()));
    }
  }
  EXPECT_EQ((*server)->slow_log().total(), lines.size());
  (*server)->Shutdown();
}

}  // namespace
}  // namespace tabsketch::serve
