#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/confusion.h"
#include "eval/hungarian.h"
#include "eval/measures.h"
#include "eval/quality.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::eval {
namespace {

TEST(MeasuresTest, CumulativeCorrectnessExactMatch) {
  const std::vector<double> exact = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(CumulativeCorrectness(exact, exact), 1.0);
}

TEST(MeasuresTest, CumulativeCorrectnessAveragesOutNoise) {
  const std::vector<double> exact = {10.0, 10.0};
  const std::vector<double> approx = {9.0, 11.0};  // errors cancel
  EXPECT_DOUBLE_EQ(CumulativeCorrectness(exact, approx), 1.0);
}

TEST(MeasuresTest, CumulativeCorrectnessBias) {
  const std::vector<double> exact = {10.0, 10.0};
  const std::vector<double> approx = {12.0, 12.0};
  EXPECT_DOUBLE_EQ(CumulativeCorrectness(exact, approx), 1.2);
}

TEST(MeasuresTest, AverageCorrectnessPenalizesBothDirections) {
  const std::vector<double> exact = {10.0, 10.0};
  const std::vector<double> approx = {9.0, 11.0};
  // Per-pair relative errors are 0.1 each -> 1 - 0.1 = 0.9.
  EXPECT_DOUBLE_EQ(AverageCorrectness(exact, approx), 0.9);
}

TEST(MeasuresTest, AverageCorrectnessPerfect) {
  const std::vector<double> exact = {3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(AverageCorrectness(exact, exact), 1.0);
}

TEST(MeasuresTest, AverageCorrectnessZeroExactHandled) {
  const std::vector<double> exact = {0.0, 10.0};
  const std::vector<double> approx_good = {0.0, 10.0};
  const std::vector<double> approx_bad = {1.0, 10.0};
  EXPECT_DOUBLE_EQ(AverageCorrectness(exact, approx_good), 1.0);
  EXPECT_DOUBLE_EQ(AverageCorrectness(exact, approx_bad), 0.5);
}

TEST(MeasuresTest, PairwiseComparisonAllCorrect) {
  const std::vector<double> exy = {1.0, 5.0};
  const std::vector<double> exz = {2.0, 3.0};
  const std::vector<double> axy = {1.1, 4.9};
  const std::vector<double> axz = {1.9, 3.1};
  EXPECT_DOUBLE_EQ(PairwiseComparisonCorrectness(exy, exz, axy, axz), 1.0);
}

TEST(MeasuresTest, PairwiseComparisonHalfCorrect) {
  const std::vector<double> exy = {1.0, 5.0};
  const std::vector<double> exz = {2.0, 3.0};
  const std::vector<double> axy = {1.1, 2.0};  // second flipped
  const std::vector<double> axz = {1.9, 3.0};
  EXPECT_DOUBLE_EQ(PairwiseComparisonCorrectness(exy, exz, axy, axz), 0.5);
}

TEST(HungarianTest, IdentityCostPicksDiagonal) {
  table::Matrix cost(3, 3);
  cost.Fill(1.0);
  cost(0, 0) = 0.0;
  cost(1, 1) = 0.0;
  cost(2, 2) = 0.0;
  const std::vector<int> match = MinCostAssignment(cost);
  EXPECT_EQ(match, (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, PermutedOptimum) {
  // Cheapest assignment is the anti-diagonal.
  table::Matrix cost(3, 3, {9, 9, 1,
                            9, 1, 9,
                            1, 9, 9});
  const std::vector<int> match = MinCostAssignment(cost);
  EXPECT_EQ(match, (std::vector<int>{2, 1, 0}));
}

TEST(HungarianTest, NontrivialOptimum) {
  // Classic example where greedy row-wise assignment is suboptimal.
  table::Matrix cost(3, 3, {4, 1, 3,
                            2, 0, 5,
                            3, 2, 2});
  const std::vector<int> match = MinCostAssignment(cost);
  // Optimal total = 1 + 2 + 2 = 5 via (0->1, 1->0, 2->2).
  double total = 0.0;
  for (size_t r = 0; r < 3; ++r) total += cost(r, match[r]);
  EXPECT_DOUBLE_EQ(total, 5.0);
  EXPECT_EQ(match, (std::vector<int>{1, 0, 2}));
}

TEST(HungarianTest, OneByOne) {
  table::Matrix cost(1, 1, {42.0});
  EXPECT_EQ(MinCostAssignment(cost), (std::vector<int>{0}));
}

TEST(HungarianTest, MaxWeightIsMinCostOfNegation) {
  table::Matrix weight(2, 2, {5, 1,
                              2, 6});
  const std::vector<int> match = MaxWeightAssignment(weight);
  EXPECT_EQ(match, (std::vector<int>{0, 1}));
}

TEST(HungarianTest, AssignmentIsPermutation) {
  table::Matrix cost(5, 5);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      cost(r, c) = static_cast<double>((r * 7 + c * 3) % 11);
    }
  }
  const std::vector<int> match = MinCostAssignment(cost);
  std::vector<bool> seen(5, false);
  for (int column : match) {
    ASSERT_GE(column, 0);
    ASSERT_LT(column, 5);
    EXPECT_FALSE(seen[column]);
    seen[column] = true;
  }
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  // Exhaustive check against all n! permutations for small n.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    constexpr size_t kN = 6;
    table::Matrix cost(kN, kN);
    // Simple deterministic pseudo-random fill.
    uint64_t state = seed * 2654435761ULL + 12345;
    for (double& value : cost.Values()) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      value = static_cast<double>((state >> 33) % 1000);
    }
    const std::vector<int> match = MinCostAssignment(cost);
    double hungarian_total = 0.0;
    for (size_t r = 0; r < kN; ++r) {
      hungarian_total += cost(r, static_cast<size_t>(match[r]));
    }
    std::vector<int> permutation = {0, 1, 2, 3, 4, 5};
    double best = 1e300;
    do {
      double total = 0.0;
      for (size_t r = 0; r < kN; ++r) {
        total += cost(r, static_cast<size_t>(permutation[r]));
      }
      best = std::min(best, total);
    } while (std::next_permutation(permutation.begin(), permutation.end()));
    EXPECT_DOUBLE_EQ(hungarian_total, best) << "seed " << seed;
  }
}

TEST(ConfusionTest, BestMatchAtLeastLiteralAgreement) {
  // Property: optimal relabeling can only improve on literal labels.
  uint64_t state = 99;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> a(40), b(40);
    for (size_t i = 0; i < a.size(); ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      a[i] = static_cast<int>((state >> 33) % 4);
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      b[i] = static_cast<int>((state >> 33) % 4);
    }
    const table::Matrix confusion = ConfusionMatrix(a, b, 4);
    EXPECT_GE(BestMatchAgreement(confusion), Agreement(confusion) - 1e-12)
        << "trial " << trial;
  }
}

TEST(ConfusionTest, CountsPlacements) {
  const std::vector<int> a = {0, 0, 1, 1, 2};
  const std::vector<int> b = {0, 1, 1, 1, 2};
  const table::Matrix confusion = ConfusionMatrix(a, b, 3);
  EXPECT_DOUBLE_EQ(confusion(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(confusion(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(confusion(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(confusion(2, 2), 1.0);
}

TEST(ConfusionTest, SkipsUnassigned) {
  const std::vector<int> a = {0, -1, 1};
  const std::vector<int> b = {0, 0, -1};
  const table::Matrix confusion = ConfusionMatrix(a, b, 2);
  double total = 0.0;
  for (double v : confusion.Values()) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(ConfusionTest, LiteralAgreement) {
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(Agreement(ConfusionMatrix(a, b, 2)), 0.75);
}

TEST(ConfusionTest, BestMatchAgreementHandlesRelabeling) {
  // b is a with labels swapped: literal agreement 0, best-match 1.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Agreement(ConfusionMatrix(a, b, 2)), 0.0);
  EXPECT_DOUBLE_EQ(BestMatchAgreement(a, b, 2), 1.0);
}

TEST(ConfusionTest, BestMatchAgreementPartial) {
  const std::vector<int> a = {0, 0, 0, 1, 1, 1};
  const std::vector<int> b = {2, 2, 0, 0, 0, 1};
  // Best matching: a0 -> b2 (2 tiles), a1 -> b0 (2 tiles) = 4/6.
  EXPECT_NEAR(BestMatchAgreement(a, b, 3), 4.0 / 6.0, 1e-12);
}

TEST(QualityTest, SpreadOfPerfectClusteringIsSmall) {
  table::Matrix data(4, 4);
  // Two horizontal bands of constant value -> zero spread when clustered
  // by band.
  for (size_t c = 0; c < 4; ++c) {
    data(0, c) = 5.0;
    data(1, c) = 5.0;
    data(2, c) = 50.0;
    data(3, c) = 50.0;
  }
  auto grid = table::TileGrid::Create(&data, 2, 2);
  ASSERT_TRUE(grid.ok());
  // Tiles 0,1 = top band; 2,3 = bottom band.
  const std::vector<int> by_band = {0, 0, 1, 1};
  const std::vector<int> mixed = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(ClusteringSpread(*grid, by_band, 2, 1.0), 0.0);
  EXPECT_GT(ClusteringSpread(*grid, mixed, 2, 1.0), 0.0);
}

TEST(QualityTest, SpreadHandComputed) {
  table::Matrix data(1, 4, {0.0, 2.0, 10.0, 14.0});
  auto grid = table::TileGrid::Create(&data, 1, 1);
  ASSERT_TRUE(grid.ok());
  const std::vector<int> assignment = {0, 0, 1, 1};
  // Cluster 0 centroid = 1 -> spread 1+1 = 2; cluster 1 centroid = 12 ->
  // spread 2+2 = 4. Total 6.
  EXPECT_DOUBLE_EQ(ClusteringSpread(*grid, assignment, 2, 1.0), 6.0);
}

TEST(QualityTest, QualityPercentOrientation) {
  // Sketched clustering with smaller spread scores above 100%.
  EXPECT_DOUBLE_EQ(QualityOfSketchedClusteringPercent(110.0, 100.0), 110.0);
  EXPECT_DOUBLE_EQ(QualityOfSketchedClusteringPercent(90.0, 100.0), 90.0);
}

}  // namespace
}  // namespace tabsketch::eval
