#include <gtest/gtest.h>

#include <vector>

#include "cluster/exact_backend.h"
#include "cluster/hierarchy.h"
#include "cluster/sketch_backend.h"
#include "eval/confusion.h"
#include "rng/xoshiro256.h"
#include "table/matrix.h"
#include "table/tiling.h"

namespace tabsketch::cluster {
namespace {

/// 1 x n table of scalar "tiles" at the given positions: distances are just
/// absolute differences, so dendrograms are easy to reason about.
struct ScalarTiles {
  table::Matrix data;
};

ScalarTiles MakeScalar(const std::vector<double>& values) {
  ScalarTiles out;
  out.data = table::Matrix(1, values.size(),
                           std::vector<double>(values.begin(), values.end()));
  return out;
}

TEST(HierarchyTest, TwoObjectsOneMerge) {
  ScalarTiles tiles = MakeScalar({0.0, 5.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kSingle);
  ASSERT_TRUE(dendrogram.ok());
  ASSERT_EQ(dendrogram->merges.size(), 1u);
  EXPECT_DOUBLE_EQ(dendrogram->merges[0].distance, 5.0);
}

TEST(HierarchyTest, SingleLinkageChainsMergeFirst) {
  // Points 0, 1, 2 close together; 10 far. First two merges join the chain.
  ScalarTiles tiles = MakeScalar({0.0, 1.0, 2.0, 10.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kSingle);
  ASSERT_TRUE(dendrogram.ok());
  ASSERT_EQ(dendrogram->merges.size(), 3u);
  EXPECT_DOUBLE_EQ(dendrogram->merges[0].distance, 1.0);
  EXPECT_DOUBLE_EQ(dendrogram->merges[1].distance, 1.0);
  // The final merge attaches the outlier at single-linkage distance 8.
  EXPECT_DOUBLE_EQ(dendrogram->merges[2].distance, 8.0);
}

TEST(HierarchyTest, CompleteLinkageUsesFarthestPair) {
  ScalarTiles tiles = MakeScalar({0.0, 1.0, 2.0, 10.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kComplete);
  ASSERT_TRUE(dendrogram.ok());
  // Final merge distance = farthest pair across the two last clusters = 10.
  EXPECT_DOUBLE_EQ(dendrogram->merges.back().distance, 10.0);
}

TEST(HierarchyTest, AverageLinkageUsesMeanDistance) {
  ScalarTiles tiles = MakeScalar({0.0, 2.0, 10.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kAverage);
  ASSERT_TRUE(dendrogram.ok());
  ASSERT_EQ(dendrogram->merges.size(), 2u);
  EXPECT_DOUBLE_EQ(dendrogram->merges[0].distance, 2.0);
  // Average of |0-10| and |2-10| = 9.
  EXPECT_DOUBLE_EQ(dendrogram->merges[1].distance, 9.0);
}

TEST(HierarchyTest, CutAtKValidation) {
  ScalarTiles tiles = MakeScalar({0.0, 1.0, 2.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kSingle);
  ASSERT_TRUE(dendrogram.ok());
  EXPECT_FALSE(dendrogram->CutAtK(0).ok());
  EXPECT_FALSE(dendrogram->CutAtK(4).ok());
  auto all_separate = dendrogram->CutAtK(3);
  ASSERT_TRUE(all_separate.ok());
  EXPECT_EQ(*all_separate, (std::vector<int>{0, 1, 2}));
  auto all_together = dendrogram->CutAtK(1);
  ASSERT_TRUE(all_together.ok());
  EXPECT_EQ(*all_together, (std::vector<int>{0, 0, 0}));
}

TEST(HierarchyTest, CutRecoversWellSeparatedGroups) {
  ScalarTiles tiles = MakeScalar({0.0, 1.0, 2.0, 100.0, 101.0, 200.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    auto dendrogram = AgglomerativeCluster(&*backend, linkage);
    ASSERT_TRUE(dendrogram.ok());
    auto cut = dendrogram->CutAtK(3);
    ASSERT_TRUE(cut.ok());
    const std::vector<int> truth = {0, 0, 0, 1, 1, 2};
    EXPECT_DOUBLE_EQ(eval::BestMatchAgreement(truth, *cut, 3), 1.0);
  }
}

TEST(HierarchyTest, SketchedDistancesRecoverGroupsToo) {
  // Banded tiles, 2 groups; hierarchical clustering on sketched distances.
  table::Matrix data(4, 32);
  rng::Xoshiro256 gen(3);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 32; ++c) {
      data(r, c) = (c < 16 ? 10.0 : 500.0) + gen.NextDouble();
    }
  }
  auto grid = table::TileGrid::Create(&data, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto backend = SketchBackend::Create(&*grid, {.p = 1.0, .k = 64, .seed = 1},
                                       SketchMode::kPrecomputed);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kAverage);
  ASSERT_TRUE(dendrogram.ok());
  auto cut = dendrogram->CutAtK(2);
  ASSERT_TRUE(cut.ok());
  const std::vector<int> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(eval::BestMatchAgreement(truth, *cut, 2), 1.0);
}

TEST(HierarchyTest, SingleObjectDendrogramIsEmpty) {
  ScalarTiles tiles = MakeScalar({42.0});
  auto grid = table::TileGrid::Create(&tiles.data, 1, 1);
  ASSERT_TRUE(grid.ok());
  auto backend = ExactBackend::Create(&*grid, 1.0);
  ASSERT_TRUE(backend.ok());
  auto dendrogram = AgglomerativeCluster(&*backend, Linkage::kSingle);
  ASSERT_TRUE(dendrogram.ok());
  EXPECT_TRUE(dendrogram->merges.empty());
  auto cut = dendrogram->CutAtK(1);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(*cut, (std::vector<int>{0}));
}

}  // namespace
}  // namespace tabsketch::cluster
