#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "data/call_volume.h"
#include "data/six_region.h"
#include "table/tiling.h"

namespace tabsketch::data {
namespace {

TEST(CallVolumeTest, ValidatesOptions) {
  CallVolumeOptions options;
  options.num_stations = 0;
  EXPECT_FALSE(GenerateCallVolume(options).ok());
  options = CallVolumeOptions{};
  options.noise_sigma = -1.0;
  EXPECT_FALSE(GenerateCallVolume(options).ok());
  options = CallVolumeOptions{};
  options.coast_shift_hours = 25.0;
  EXPECT_FALSE(GenerateCallVolume(options).ok());
}

TEST(CallVolumeTest, ShapeMatchesOptions) {
  CallVolumeOptions options;
  options.num_stations = 64;
  options.bins_per_day = 48;
  options.num_days = 3;
  auto table = GenerateCallVolume(options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows(), 64u);
  EXPECT_EQ(table->cols(), 48u * 3u);
}

TEST(CallVolumeTest, DeterministicPerSeed) {
  CallVolumeOptions options;
  options.num_stations = 32;
  options.bins_per_day = 48;
  auto a = GenerateCallVolume(options);
  auto b = GenerateCallVolume(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  options.seed ^= 1;
  auto c = GenerateCallVolume(options);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*a == *c);
}

TEST(CallVolumeTest, AllValuesNonNegative) {
  CallVolumeOptions options;
  options.num_stations = 64;
  options.bins_per_day = 96;
  auto table = GenerateCallVolume(options);
  ASSERT_TRUE(table.ok());
  for (double value : table->Values()) EXPECT_GE(value, 0.0);
}

TEST(CallVolumeTest, DiurnalShapeNightBelowMidday) {
  CallVolumeOptions options;
  options.num_stations = 128;
  options.bins_per_day = 144;
  options.noise_sigma = 0.0;
  auto table = GenerateCallVolume(options);
  ASSERT_TRUE(table.ok());
  // 3am bin vs 1pm bin, averaged over all stations.
  const size_t night_bin = 144 * 3 / 24;
  const size_t midday_bin = 144 * 13 / 24;
  double night = 0.0;
  double midday = 0.0;
  for (size_t s = 0; s < table->rows(); ++s) {
    night += table->At(s, night_bin);
    midday += table->At(s, midday_bin);
  }
  EXPECT_GT(midday, 10.0 * night);
}

TEST(CallVolumeTest, CoastShiftDelaysWesternMorning) {
  CallVolumeOptions options;
  options.num_stations = 200;
  options.bins_per_day = 144;
  options.noise_sigma = 0.0;
  options.coast_shift_hours = 3.0;
  auto table = GenerateCallVolume(options);
  ASSERT_TRUE(table.ok());
  // At 8am Eastern the East (row 0) is ramping up while the West (last row,
  // 5am local) is still asleep. Compare volume normalized by each station's
  // own daily peak to cancel population differences.
  auto normalized_at = [&](size_t station, size_t bin) {
    double peak = 0.0;
    for (size_t b = 0; b < 144; ++b) {
      peak = std::max(peak, table->At(station, b));
    }
    return table->At(station, bin) / peak;
  };
  const size_t bin_8am = 144 * 8 / 24;
  EXPECT_GT(normalized_at(0, bin_8am), 3.0 * normalized_at(199, bin_8am));
}

TEST(CallVolumeTest, MetrosCreateSpatialVolumeVariation) {
  CallVolumeOptions options;
  options.num_stations = 256;
  options.bins_per_day = 48;
  options.noise_sigma = 0.0;
  auto table = GenerateCallVolume(options);
  ASSERT_TRUE(table.ok());
  // Total daily volume per station should vary by more than an order of
  // magnitude between the busiest and quietest stations.
  double min_total = 1e300;
  double max_total = 0.0;
  for (size_t s = 0; s < table->rows(); ++s) {
    double total = 0.0;
    for (double v : table->Row(s)) total += v;
    min_total = std::min(min_total, total);
    max_total = std::max(max_total, total);
  }
  EXPECT_GT(max_total, 10.0 * min_total);
}

TEST(StitchColumnsTest, ConcatenatesAlongTime) {
  table::Matrix a(2, 2, {1, 2, 3, 4});
  table::Matrix b(2, 1, {9, 8});
  const std::array<table::Matrix, 2> pieces = {a, b};
  auto stitched = StitchColumns(pieces);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->rows(), 2u);
  EXPECT_EQ(stitched->cols(), 3u);
  EXPECT_DOUBLE_EQ(stitched->At(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(stitched->At(1, 0), 3.0);
}

TEST(StitchColumnsTest, RejectsMismatchedRows) {
  table::Matrix a(2, 2);
  table::Matrix b(3, 2);
  const std::array<table::Matrix, 2> pieces = {a, b};
  EXPECT_FALSE(StitchColumns(pieces).ok());
}

TEST(StitchColumnsTest, RejectsEmptyInput) {
  EXPECT_FALSE(StitchColumns({}).ok());
}

TEST(SixRegionTest, ValidatesOptions) {
  SixRegionOptions options;
  options.rows = 3;  // fewer than six regions
  EXPECT_FALSE(GenerateSixRegion(options).ok());
  options = SixRegionOptions{};
  options.outlier_fraction = 1.5;
  EXPECT_FALSE(GenerateSixRegion(options).ok());
}

TEST(SixRegionTest, RegionSizesMatchFractions) {
  SixRegionOptions options;
  options.rows = 256;
  options.cols = 64;
  auto data = GenerateSixRegion(options);
  ASSERT_TRUE(data.ok());
  std::array<int, kNumRegions> counts{};
  for (int region : data->region_of_row) ++counts[region];
  EXPECT_EQ(counts[0], 64);  // 1/4 of 256
  EXPECT_EQ(counts[1], 64);
  EXPECT_EQ(counts[2], 64);
  EXPECT_EQ(counts[3], 32);  // 1/8
  EXPECT_EQ(counts[4], 16);  // 1/16
  EXPECT_EQ(counts[5], 16);  // 1/16
}

TEST(SixRegionTest, NonOutlierValuesNearRegionMean) {
  SixRegionOptions options;
  options.rows = 128;
  options.cols = 64;
  options.outlier_fraction = 0.0;
  auto data = GenerateSixRegion(options);
  ASSERT_TRUE(data.ok());
  for (size_t r = 0; r < data->table.rows(); ++r) {
    const double mean = kRegionMeans[data->region_of_row[r]];
    for (double value : data->table.Row(r)) {
      EXPECT_GE(value, mean - options.uniform_half_width);
      EXPECT_LE(value, mean + options.uniform_half_width);
    }
  }
}

TEST(SixRegionTest, OutlierFractionApproximatelyRespected) {
  SixRegionOptions options;
  options.rows = 256;
  options.cols = 256;
  options.outlier_fraction = 0.01;
  auto data = GenerateSixRegion(options);
  ASSERT_TRUE(data.ok());
  size_t outliers = 0;
  for (size_t r = 0; r < data->table.rows(); ++r) {
    const double mean = kRegionMeans[data->region_of_row[r]];
    for (double value : data->table.Row(r)) {
      if (std::fabs(value - mean) > options.uniform_half_width) ++outliers;
    }
  }
  const double fraction =
      static_cast<double>(outliers) / static_cast<double>(data->table.size());
  EXPECT_NEAR(fraction, 0.01, 0.003);
}

TEST(SixRegionTest, DeterministicPerSeed) {
  SixRegionOptions options;
  options.rows = 64;
  options.cols = 32;
  auto a = GenerateSixRegion(options);
  auto b = GenerateSixRegion(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->table == b->table);
}

TEST(SixRegionTest, GroundTruthForTilesUsesCenterRow) {
  SixRegionOptions options;
  options.rows = 64;
  options.cols = 64;
  options.outlier_fraction = 0.0;
  auto data = GenerateSixRegion(options);
  ASSERT_TRUE(data.ok());
  auto grid = table::TileGrid::Create(&data->table, 8, 8);
  ASSERT_TRUE(grid.ok());
  const auto truth = GroundTruthForTiles(*data, *grid);
  ASSERT_EQ(truth.size(), grid->num_tiles());
  // First tile row (rows 0-7) lies inside region 0 (rows 0-15).
  EXPECT_EQ(truth[0], 0);
  // Last tile row (rows 56-63) lies inside region 5 (rows 60-63)?
  // Region boundaries for 64 rows: starts at 0,16,32,48,56,60.
  EXPECT_EQ(truth[truth.size() - 1], 5);
}

}  // namespace
}  // namespace tabsketch::data
